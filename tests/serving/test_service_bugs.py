"""Regression lockdown for the ISSUE-6 serving-layer bug sweep.

Three latent bugs that only bite under real clocks and sustained load:

- **clock mixing** — an injected scheduling clock (``submit(now=...)``
  or ``EmbeddingService(clock=...)``) used to drive only the age-based
  flush decision while ``wait_seconds`` was measured against a separate
  always-real ``time.monotonic()`` stamp, so injected-time tests and
  trace replays reported waits of ~0 (silently clamped) instead of the
  simulated wait;
- **response-buffer aliasing** — anything short of a guaranteed copy on
  egress can hand callers views into the resident
  :class:`InferencePlan`'s output buffer, which the *next* replay
  silently overwrites;
- **unbounded observability state** — ``flush_log`` grew one entry per
  flush forever, and per-bucket stats grew per distinct bucket id.
"""

import numpy as np
import pytest

from repro.core import HAFusionConfig
from repro.serving import (
    AdmissionError,
    EmbedRequest,
    EmbeddingService,
    FlushPolicy,
)
from serving_utils import TINY, make_views


@pytest.fixture()
def service():
    policy = FlushPolicy(max_batch=3, max_wait=5.0, bucket_edges=(4, 8, 16))
    return EmbeddingService.build([make_views(16)], HAFusionConfig(**TINY),
                                  seed=5, policy=policy)


class TestOneClock:
    """The clock-mixing fix: ticket creation, poll and the flush all
    read one injectable clock, so ``wait_seconds`` is measured on the
    same timeline that decides max-wait flushes."""

    def test_injected_now_drives_wait_seconds(self, service):
        """Pre-fix this reported ~0.0 (real monotonic elapsed between
        two immediate calls), not the 7 simulated seconds."""
        ticket = service.submit(EmbedRequest(make_views(6)), now=100.0)
        assert not ticket.done
        [response] = service.poll(now=107.0)
        assert response.wait_seconds == pytest.approx(7.0)

    def test_injected_service_clock(self):
        """A service built with ``clock=`` never touches the real clock
        for scheduling or wait provenance."""
        fake = iter([10.0, 25.0]).__next__
        clock_calls = []

        def clock():
            t = fake()
            clock_calls.append(t)
            return t

        policy = FlushPolicy(max_batch=8, max_wait=5.0,
                             bucket_edges=(4, 8, 16))
        service = EmbeddingService.build(
            [make_views(16)], HAFusionConfig(**TINY), seed=5,
            policy=policy, clock=clock)
        ticket = service.submit(EmbedRequest(make_views(6)))
        assert ticket.submitted_at == 10.0
        [response] = service.poll()
        assert response.wait_seconds == pytest.approx(15.0)
        assert clock_calls   # the injected clock was really consulted

    def test_full_bucket_flush_waits_are_consistent(self, service):
        """A size-triggered flush stamps every co-batched response's
        wait against the flush's ``now``, on the submission clock."""
        tickets = [
            service.submit(EmbedRequest(make_views(6, seed=1)), now=50.0),
            service.submit(EmbedRequest(make_views(6, seed=2)), now=51.0),
            service.submit(EmbedRequest(make_views(6, seed=3)), now=53.0),
        ]
        assert all(t.done for t in tickets)   # max_batch=3 → third flushes
        assert tickets[0].response.batch_size == 3
        waits = [t.response.wait_seconds for t in tickets]
        assert waits == [pytest.approx(3.0), pytest.approx(2.0),
                         pytest.approx(0.0)]

    def test_flush_accepts_injected_now(self, service):
        ticket = service.submit(EmbedRequest(make_views(6)), now=200.0)
        [response] = service.flush(now=209.0)
        assert ticket.done
        assert response.wait_seconds == pytest.approx(9.0)


class TestEgressCopies:
    """The aliasing fix: every array leaving the service owns its data —
    never a view into the resident plan's output buffer."""

    def _plan_output(self, service, views):
        from repro.core.engine import make_batch
        batch = make_batch([views], n_max=service.n_max,
                           view_dims=service.view_dims)
        return service.plan_for(batch)._output

    def test_replay_does_not_corrupt_prior_response(self, service):
        """The ISSUE-6 scenario: serve, checksum, serve different data
        through the same resident plan, re-checksum the *first*
        response.  An egress view would have been silently overwritten
        by the second replay."""
        first_views = make_views(6, seed=1)
        [first] = service.run([EmbedRequest(first_views)])
        checksum = np.float64(first.embeddings).sum()
        snapshot = first.embeddings.copy()
        # Same bucket, same resident plan, different input values.
        [second] = service.run([EmbedRequest(make_views(6, seed=2))])
        assert not np.array_equal(second.embeddings, snapshot)
        assert np.float64(first.embeddings).sum() == checksum
        assert (first.embeddings == snapshot).all()

    @pytest.mark.parametrize("kwargs", [
        {},                                    # the no-dtype path
        {"dtype": np.float64},                 # astype to the model dtype
        {"dtype": np.float32},                 # converting astype
        {"region_subset": [3, 0]},             # fancy-indexed egress
        {"region_subset": [1], "dtype": np.float64},
    ])
    def test_responses_never_alias_the_plan_buffer(self, service, kwargs):
        """``astype(..., copy=False)`` on a cropped view of the plan
        output was the trap: the same-dtype request would alias."""
        views = make_views(6, seed=3)
        [response] = service.run([EmbedRequest(views, **kwargs)])
        plan_output = self._plan_output(service, views)
        assert not np.shares_memory(response.embeddings, plan_output)
        # Owning its buffer outright is the stronger invariant.
        assert response.embeddings.base is None

    def test_embed_batch_outputs_own_their_data(self, service):
        from repro.core.engine import make_batch
        batch = make_batch([make_views(6, seed=4)], n_max=service.n_max,
                           view_dims=service.view_dims)
        [h] = service.embed_batch(batch)
        assert not np.shares_memory(h, service.plan_for(batch)._output)
        before = h.copy()
        service.embed_batch(make_batch([make_views(6, seed=5)],
                                       n_max=service.n_max,
                                       view_dims=service.view_dims))
        assert (h == before).all()


class TestBoundedObservability:
    """``flush_log`` and the per-bucket stats map stay bounded under
    sustained traffic, with drops/overflow counted in ``stats()``."""

    def make_service(self, **kwargs):
        policy = FlushPolicy(max_batch=1, max_wait=60.0,
                             bucket_edges=(4, 8, 16))
        return EmbeddingService.build([make_views(16)],
                                      HAFusionConfig(**TINY), seed=5,
                                      policy=policy, **kwargs)

    def test_flush_log_is_bounded_and_counts_drops(self):
        service = self.make_service(flush_log_cap=4)
        for i in range(10):
            service.run([EmbedRequest(make_views(6, seed=i))])
        assert len(service.flush_log) == 4
        assert service.flush_seq == 10
        stats = service.stats()
        assert stats["flushes"] == 10
        assert stats["flush_log_dropped"] == 6
        # The survivors are the newest flushes, seq-stamped.
        assert [f["seq"] for f in service.flush_log] == [7, 8, 9, 10]

    def test_bucket_stats_overflow_rollup(self):
        service = self.make_service(max_tracked_buckets=2)
        # Three distinct buckets: n4, n8, n16 (max_batch=1 → one flush
        # each); the third must roll into "(overflow)".
        for n in (3, 6, 12):
            service.run([EmbedRequest(make_views(n, seed=n))])
        stats = service.stats()
        assert len(service._bucket_stats) == 3   # 2 tracked + overflow
        assert EmbeddingService.OVERFLOW_BUCKET in stats["buckets"]
        assert stats["bucket_stats_overflow_flushes"] == 1
        # Aggregate accounting still covers every region served.
        assert stats["regions"] == 3 + 6 + 12

    def test_caps_validated(self):
        with pytest.raises(ValueError, match="flush_log_cap"):
            self.make_service(flush_log_cap=0)
        with pytest.raises(ValueError, match="max_tracked_buckets"):
            self.make_service(max_tracked_buckets=0)

    def test_default_log_keeps_responses_flowing(self):
        service = self.make_service(flush_log_cap=2)
        responses = [service.run([EmbedRequest(make_views(6, seed=i))])[0]
                     for i in range(5)]
        assert all(r.embeddings.shape == (6, TINY["d"]) for r in responses)


class TestTypedAdmission:
    """Oversize/mismatch rejections are typed AdmissionErrors raised at
    submit time, with the queues left clean; a failed flush requeues
    FIFO and a retry succeeds."""

    def test_oversize_is_a_typed_submit_time_rejection(self, service):
        with pytest.raises(AdmissionError) as excinfo:
            service.submit(EmbedRequest(make_views(17)))
        assert excinfo.value.reason == "oversize"
        assert service.pending() == 0          # nothing was queued

    def test_scheduler_oversize_is_typed_too(self, service):
        scheduler = service._require_scheduler()
        with pytest.raises(AdmissionError) as excinfo:
            scheduler.bucket_edge(99)
        assert excinfo.value.reason == "oversize"
        with pytest.raises(AdmissionError):
            scheduler.bucket_edge(0)

    def test_view_mismatch_reason(self, service):
        from repro.data.features import ViewSet
        wide = ViewSet(names=("mobility", "poi"),
                       matrices=[np.zeros((4, 20)), np.zeros((4, 6))])
        with pytest.raises(AdmissionError) as excinfo:
            service.submit(EmbedRequest(wide))
        assert excinfo.value.reason == "view_mismatch"

    def test_failed_flush_requeues_then_retry_succeeds(self, service,
                                                       monkeypatch):
        tickets = [service.submit(EmbedRequest(make_views(6, seed=i)),
                                  now=float(i))
                   for i in range(2)]
        assert service.pending() == 2

        real_run_batch = EmbeddingService._run_batch
        calls = {"n": 0}

        def failing_run_batch(self, batch, compiled, tag="batched_embed"):
            calls["n"] += 1
            raise RuntimeError("transient compute failure")

        monkeypatch.setattr(EmbeddingService, "_run_batch",
                            failing_run_batch)
        with pytest.raises(RuntimeError, match="transient"):
            service.flush(now=10.0)
        # The popped tickets went back, FIFO order intact.
        assert service.pending() == 2
        assert not any(t.done for t in tickets)

        monkeypatch.setattr(EmbeddingService, "_run_batch", real_run_batch)
        responses = service.flush(now=12.0)
        assert [r.request_id for r in responses] \
            == [t.request.request_id for t in tickets]
        assert all(t.done for t in tickets)
        # Waits span the failure: measured from original submission.
        assert responses[0].wait_seconds == pytest.approx(12.0)
        assert responses[1].wait_seconds == pytest.approx(11.0)
