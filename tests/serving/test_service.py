"""EmbeddingService lockdown: round-trip parity with the direct engine
paths, warm-up packs with zero record epochs, provenance, and the
deprecation shims' signature lock."""

import inspect

import numpy as np
import pytest

from repro.core import HAFusionConfig, batched_embed, make_batch, sequential_embed
from repro.core.engine import _EmbedOptions
from repro.nn import RECORD_STATS, PlanCache
from repro.serving import (
    EmbedRequest,
    EmbeddingService,
    FlushPolicy,
    WarmupPack,
    default_shape_grid,
)
from serving_utils import TINY, make_views


@pytest.fixture(scope="module")
def cities():
    return [make_views(10, seed=i) for i in range(3)]


@pytest.fixture(scope="module")
def ragged_cities():
    return [make_views(n, seed=n) for n in (10, 7, 4)]


class TestRoundTripParity:
    """Acceptance criterion: the service round-trips bit-identically
    (≤1e-8 in float64) with direct ``batched_embed``."""

    def test_uniform_traffic_is_bitwise_identical(self, cities):
        service = EmbeddingService.build(
            cities, HAFusionConfig(**TINY), seed=11,
            policy=FlushPolicy(max_batch=len(cities), max_wait=60.0))
        direct = batched_embed(make_batch(cities), model=service.model,
                               compiled=True, plan_cache=service.plan_cache)
        responses = service.run([EmbedRequest(vs) for vs in cities])
        # Same composition, same plan, same resident buffers: the
        # scheduler flush IS the direct batched pass.
        for response, reference in zip(responses, direct.embeddings):
            assert (response.embeddings == reference).all()

    def test_ragged_traffic_parity(self, ragged_cities):
        service = EmbeddingService.build(
            ragged_cities, HAFusionConfig(**TINY), seed=11,
            policy=FlushPolicy(max_batch=8, max_wait=60.0))
        batch = make_batch(ragged_cities, n_max=service.n_max,
                           view_dims=service.view_dims)
        direct = batched_embed(batch, model=service.model,
                               compiled=True, plan_cache=service.plan_cache)
        responses = service.run([EmbedRequest(vs) for vs in ragged_cities])
        for response, reference in zip(responses, direct.embeddings):
            assert np.abs(response.embeddings - reference).max() <= 1e-8

    def test_eager_and_compiled_service_agree(self, ragged_cities):
        config = HAFusionConfig(**TINY)
        compiled = EmbeddingService.build(ragged_cities, config, seed=11)
        eager = EmbeddingService(compiled.model, n_max=compiled.n_max,
                                 view_dims=compiled.view_dims,
                                 compiled=False)
        batch = make_batch(ragged_cities)
        for a, b in zip(compiled.embed_batch(batch), eager.embed_batch(batch)):
            assert np.abs(a - b).max() <= 1e-8


class TestShims:
    def test_shim_signatures_identical(self):
        """The kwargs-drift lock: both embed shims share one signature,
        and that signature is exactly the _EmbedOptions field list."""
        batched = inspect.signature(batched_embed)
        sequential = inspect.signature(sequential_embed)
        assert batched.parameters == sequential.parameters
        option_fields = list(_EmbedOptions.__dataclass_fields__)
        assert list(batched.parameters)[1:] == option_fields

    def test_shims_route_through_the_service(self, cities):
        service = EmbeddingService.build(cities, HAFusionConfig(**TINY),
                                         seed=11)
        batch = make_batch(cities)
        direct = service.embed_batch(batch, compiled=False)
        shim = batched_embed(batch, model=service.model)
        for a, b in zip(direct, shim.embeddings):
            assert (a == b).all()
        seq_direct = service.embed_each(batch, compiled=False)
        seq_shim = sequential_embed(batch, model=service.model)
        for a, b in zip(seq_direct, seq_shim.embeddings):
            assert (a == b).all()


class TestWarmupPack:
    def test_warm_start_performs_zero_record_epochs(self, ragged_cities,
                                                    tmp_path):
        """Acceptance criterion: after a warm-up pack load, a fresh
        service serves the warmed shape grid without a single record
        epoch, bit-identically."""
        config = HAFusionConfig(**TINY)
        policy = FlushPolicy(max_batch=3, max_wait=60.0)
        reference = EmbeddingService.build(
            ragged_cities, config, seed=11, policy=policy,
            plan_cache=PlanCache(directory=tmp_path))
        pack = WarmupPack.build(reference)
        assert pack.shapes  # the scheduler grid is non-trivial
        warm_responses = reference.run(
            [EmbedRequest(vs) for vs in ragged_cities])

        restarted = EmbeddingService.build(ragged_cities, config, seed=11,
                                           policy=policy)
        WarmupPack.load(tmp_path).attach(restarted)
        RECORD_STATS.reset()
        responses = restarted.run([EmbedRequest(vs) for vs in ragged_cities])
        assert RECORD_STATS.total == 0
        assert restarted.plan_cache.stats()["misses"] == 0
        for a, b in zip(warm_responses, responses):
            assert (a.embeddings == b.embeddings).all()
        assert all(r.plan_event in ("disk", "spec", "hit") for r in responses)

    def test_default_shape_grid_covers_every_edge(self):
        grid = default_shape_grid(4, (8, 16))
        assert grid == [(4, 8), (1, 8), (4, 16), (1, 16)]

    def test_incompatible_pack_rejected(self, ragged_cities, tmp_path):
        config = HAFusionConfig(**TINY)
        service = EmbeddingService.build(
            ragged_cities, config, seed=11,
            plan_cache=PlanCache(directory=tmp_path))
        pack = WarmupPack.build(service, shape_grid=[(1, 10)])
        other = EmbeddingService.build(
            ragged_cities, HAFusionConfig(**{**TINY, "d": 24}), seed=11)
        assert not pack.compatible_with(other)
        with pytest.raises(ValueError, match="different architecture"):
            pack.attach(other)

    def test_manifest_write_is_atomic(self, ragged_cities, tmp_path,
                                      monkeypatch):
        """PR 9 satellite: a crash between the manifest's temp write and
        its atomic rename must leave *no* manifest — ``exists()`` (the
        fleet's pre-flight) must never see a partial pack as valid."""
        import os
        service = EmbeddingService.build(
            ragged_cities, HAFusionConfig(**TINY), seed=11,
            plan_cache=PlanCache(directory=tmp_path))
        real_replace = os.replace

        def crashing_replace(src, dst, *args, **kwargs):
            if str(dst).endswith("warmup_pack.json"):
                raise OSError("injected crash mid-manifest-write")
            return real_replace(src, dst, *args, **kwargs)

        monkeypatch.setattr(os, "replace", crashing_replace)
        with pytest.raises(OSError, match="injected"):
            WarmupPack.build(service, shape_grid=[(1, 10)])
        assert not WarmupPack.exists(tmp_path)
        with pytest.raises(FileNotFoundError):
            WarmupPack.load(tmp_path)

    def test_crashed_rebuild_preserves_existing_manifest(self, ragged_cities,
                                                         tmp_path,
                                                         monkeypatch):
        import os
        service = EmbeddingService.build(
            ragged_cities, HAFusionConfig(**TINY), seed=11,
            plan_cache=PlanCache(directory=tmp_path))
        original = WarmupPack.build(service, shape_grid=[(1, 10)])
        real_replace = os.replace

        def crashing_replace(src, dst, *args, **kwargs):
            if str(dst).endswith("warmup_pack.json"):
                raise OSError("injected crash mid-manifest-write")
            return real_replace(src, dst, *args, **kwargs)

        monkeypatch.setattr(os, "replace", crashing_replace)
        with pytest.raises(OSError, match="injected"):
            WarmupPack.build(service, shape_grid=[(1, 10), (1, 7)])
        # The previous manifest survives the crashed rebuild intact.
        assert WarmupPack.exists(tmp_path)
        assert WarmupPack.load(tmp_path).manifest == original.manifest

    def test_pack_requires_a_directory(self, ragged_cities):
        service = EmbeddingService.build(ragged_cities,
                                         HAFusionConfig(**TINY), seed=11)
        with pytest.raises(ValueError, match="on-disk"):
            WarmupPack.build(service, shape_grid=[(1, 10)])

    def test_traffic_shapes_are_valid_warm_shapes(self, ragged_cities,
                                                  tmp_path):
        """Every manifest entry — grid or traffic-derived — must be a
        composition ``service.warm`` accepts (the traffic entries come
        from the flush log, one per co-batch, not one per response)."""
        config = HAFusionConfig(**TINY)
        service = EmbeddingService.build(
            ragged_cities, config, seed=11,
            policy=FlushPolicy(max_batch=2, max_wait=60.0),
            plan_cache=PlanCache(directory=tmp_path))
        pack = WarmupPack.build(service, traffic=ragged_cities)
        traffic_shapes = [s for s in pack.shapes if s.get("from_traffic")]
        assert traffic_shapes
        for shape in pack.shapes:
            assert len(shape["n_regions"]) == shape["batch_size"]
            service.warm(shape["batch_size"], shape["n_regions"])


class TestRequestFeatures:
    def test_region_subset(self, cities):
        service = EmbeddingService.build(cities, HAFusionConfig(**TINY),
                                         seed=11)
        full, subset = service.run([
            EmbedRequest(cities[0]),
            EmbedRequest(cities[0], region_subset=[7, 0, 3]),
        ])
        assert subset.embeddings.shape == (3, TINY["d"])
        assert (subset.embeddings == full.embeddings[[7, 0, 3]]).all()

    def test_region_subset_validated(self, cities):
        with pytest.raises(ValueError, match="out of range"):
            EmbedRequest(cities[0], region_subset=[11])

    def test_stats_report(self, ragged_cities):
        service = EmbeddingService.build(
            ragged_cities, HAFusionConfig(**TINY), seed=11,
            policy=FlushPolicy(max_batch=2, max_wait=60.0))
        service.run([EmbedRequest(vs) for vs in ragged_cities])
        stats = service.stats()
        assert stats["requests"] == stats["responses"] == 3
        assert stats["pending"] == 0
        assert stats["regions"] == sum(vs.n_regions for vs in ragged_cities)
        assert 0.0 <= stats["padding_overhead"] < 1.0
        assert stats["regions_per_sec"] > 0
        for bucket in stats["buckets"].values():
            assert bucket["requests"] >= 1
            assert sum(bucket["plan_events"].values()) == bucket["batches"]
        assert stats["plan_cache"]["misses"] >= 1
        replays = [row["replays"] for row in stats["resident_plans"]]
        assert replays == sorted(replays, reverse=True)

    def test_warm_validates_shapes(self, ragged_cities):
        service = EmbeddingService.build(ragged_cities,
                                         HAFusionConfig(**TINY), seed=11)
        with pytest.raises(ValueError, match="region counts"):
            service.warm(2, [5, 99])
        with pytest.raises(ValueError, match="batch_size"):
            service.warm(2, [5])


class TestMakeBatchForcing:
    def test_forced_layout(self, ragged_cities):
        batch = make_batch(ragged_cities, n_max=12, view_dims=[14, 6])
        assert batch.n_max == 12
        assert batch.view_dims == [14, 6]
        assert batch.is_padded

    def test_forced_layout_validated(self, ragged_cities):
        with pytest.raises(ValueError, match="n_max"):
            make_batch(ragged_cities, n_max=5)
        with pytest.raises(ValueError, match="view_dims"):
            make_batch(ragged_cities, view_dims=[4, 6])
