"""Shared fixtures for the serving test suites (one definition of the
tiny model family and the synthetic view sets, so the scheduler and
service suites can never drift onto different models)."""

import numpy as np

from repro.data.features import ViewSet

#: Smallest HAFusion that still exercises every module.
TINY = dict(d=16, d_prime=8, conv_channels=2, memory_size=4, num_heads=2,
            intra_layers=1, inter_layers=1, fusion_layers=1, dropout=0.0)


def make_views(n_regions: int, dims=(12, 6), seed: int = 0) -> ViewSet:
    rng = np.random.default_rng(seed)
    return ViewSet(names=("mobility", "poi"),
                   matrices=[rng.standard_normal((n_regions, d))
                             for d in dims])
