"""Fault-tolerance tests: the fleet supervisor under deterministic chaos.

Every failure mode the supervisor handles is reproduced here with a
:class:`FaultPlan` instead of a racing ``kill`` from a shell: workers
killed mid-batch (crash → retry → respawn), batches that raise (bounded
retry → typed exhaustion), stragglers (the frontend's per-batch
deadline), a decayed fleet (degraded admission, fully-down typed
unavailability) — plus the client-side retry/backoff/reconnect loop
against a scripted server.

The headline assertion mirrors the serving suite's tentpole: a mixed
trace served through a fleet whose worker is **killed mid-trace** (and
another batch delayed) completes **bit-identical** to the fault-free
in-process reference, with zero record epochs — including on the
respawned worker, which re-attaches the same warm-up pack.
"""

import json
import queue as queue_mod
import socket
import threading
import time

import numpy as np
import pytest

from repro.core import HAFusionConfig
from repro.serving import (
    AdmissionError,
    EmbedRequest,
    EmbedResponse,
    EmbeddingService,
    FaultPlan,
    FaultSpec,
    FlushPolicy,
    FrontendClient,
    FrontendThread,
    InjectedFault,
    ServingFleet,
    ServingFrontend,
    ServingUnavailable,
    WarmupPack,
    request_to_wire,
    response_to_wire,
)
from serving_utils import TINY, make_views

#: Shared frontend/worker policy (same reasons as test_frontend).
_POLICY = FlushPolicy(max_batch=3, max_wait=30.0, bucket_edges=(4, 8, 16))
_SEED = 11


def build_tiny_service() -> EmbeddingService:
    return EmbeddingService.build([make_views(16)], HAFusionConfig(**TINY),
                                  seed=_SEED, policy=_POLICY)


def chaos_trace() -> list[EmbedRequest]:
    """Mixed trace for the kill-mid-trace test: under ``_POLICY`` the
    frontend dispatches it as four deterministic batches — the full
    ``[6, 7, 8]`` co-batch (batch 1), then the flush remainders
    ``[5, 6]`` (batch 2), ``[3, 4]`` float32 (batch 3) and ``[16]``
    (batch 4)."""
    specs = [
        (6, None), (3, "float32"), (7, None), (16, None),
        (4, "float32"), (8, None), (5, None), (6, None),
    ]
    return [EmbedRequest(make_views(n, seed=300 + i), dtype=dtype,
                         name=f"chaos{i}")
            for i, (n, dtype) in enumerate(specs)]


def pair_batch() -> list[EmbedRequest]:
    """The two-request batch the direct fleet tests submit."""
    return [EmbedRequest(make_views(6, seed=70), name="pair-a"),
            EmbedRequest(make_views(6, seed=71), name="pair-b")]


def make_frontend(fleet: ServingFleet, **kwargs) -> ServingFrontend:
    kwargs.setdefault("n_max", 16)
    kwargs.setdefault("view_dims", (12, 6))
    kwargs.setdefault("view_names", ("mobility", "poi"))
    kwargs.setdefault("policy", _POLICY)
    return ServingFrontend(fleet, **kwargs)


@pytest.fixture(scope="module")
def pack(tmp_path_factory):
    """Warm-up pack + fault-free in-process references.  Running the
    traces through the pack-building service persists every co-batch
    composition's plan spec on disk, so the fleets (respawned workers
    included) provably never record."""
    pack_dir = tmp_path_factory.mktemp("faults_pack")
    service = build_tiny_service()
    WarmupPack.build(service, directory=pack_dir)
    trace_reference = service.run(chaos_trace())
    pair_reference = service.run(pair_batch())
    return {"dir": pack_dir, "trace": trace_reference,
            "pair": pair_reference}


def make_fleet(pack, **kwargs) -> ServingFleet:
    kwargs.setdefault("n_workers", 2)
    return ServingFleet(build_tiny_service, pack_dir=pack["dir"], **kwargs)


def assert_pair_served(result, pack) -> None:
    assert result.error is None
    assert [r.name for r in result.responses] == ["pair-a", "pair-b"]
    for got, want in zip(result.responses, pack["pair"]):
        assert np.array_equal(got.embeddings, want.embeddings)


# ----------------------------------------------------------------------
# FaultPlan semantics (no processes)
# ----------------------------------------------------------------------

class TestFaultPlan:

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="fault kind"):
            FaultSpec(kind="explode")
        with pytest.raises(ValueError, match="fault when"):
            FaultSpec(kind="kill", when="sometime")
        with pytest.raises(ValueError, match="seconds"):
            FaultSpec(kind="delay", seconds=-1.0)

    def test_selectors_are_conjunctive(self):
        spec = FaultSpec(kind="fail", worker_id=1, batch_id=2)
        assert spec.matches(1, 2, 9, 1, "before")
        assert not spec.matches(0, 2, 9, 1, "before")   # wrong worker
        assert not spec.matches(1, 3, 9, 1, "before")   # wrong batch
        assert not spec.matches(1, 2, 9, 2, "before")   # attempt defaults 1
        assert not spec.matches(1, 2, 9, 1, "after")    # wrong side

    def test_attempt_none_matches_every_execution(self):
        spec = FaultSpec(kind="fail", batch_id=2, attempt=None)
        assert spec.matches(0, 2, 1, 1, "before")
        assert spec.matches(0, 2, 1, 3, "before")

    def test_fail_raises_and_delay_sleeps_in_plan_order(self):
        plan = (FaultPlan()
                .delay(0.05, batch_id=1)
                .fail("boom", batch_id=1))
        started = time.monotonic()
        with pytest.raises(InjectedFault, match="boom"):
            plan.apply(0, 1, 1, 1, "before")
        assert time.monotonic() - started >= 0.05
        # Non-matching points are no-ops.
        plan.apply(0, 2, 2, 1, "before")
        plan.apply(0, 1, 1, 2, "before")


# ----------------------------------------------------------------------
# Fleet supervisor (direct submit/next_result, no frontend)
# ----------------------------------------------------------------------

class TestSupervisor:

    def test_failed_batch_is_retried_transparently(self, pack):
        """A worker exception costs one retry, not the answer: the
        caller sees only the terminal served result."""
        plan = FaultPlan().fail(batch_id=7)
        with make_fleet(pack, n_workers=1, fault_plan=plan) as fleet:
            fleet.submit(7, pair_batch())
            result = fleet.next_result(timeout=60)
            assert_pair_served(result, pack)
            assert result.attempt == 2
            assert fleet.retries == 1
            assert fleet.crashes == 0
            assert fleet.failed_batches == 0
            assert fleet.total_record_epochs() == 0

    def test_retry_exhaustion_is_a_typed_failure(self, pack):
        plan = FaultPlan().fail(batch_id=9, attempt=None)
        with make_fleet(pack, n_workers=1, max_attempts=2,
                        fault_plan=plan) as fleet:
            fleet.submit(9, pair_batch())
            result = fleet.next_result(timeout=60)
            assert result.responses is None
            assert "failed after 2 attempt(s)" in result.error
            assert "InjectedFault" in result.error
            assert fleet.retries == 1
            assert fleet.failed_batches == 1

    def test_killed_worker_batch_retried_and_slot_respawned(self, pack):
        """The crash path end to end: SIGKILL mid-batch → the claimed
        batch requeues onto a live worker, the dead slot respawns warm,
        and the fleet ends at full strength with zero record epochs."""
        # The short delay lets the claim message flush to the queue
        # before the process dies with it.
        plan = FaultPlan().delay(0.05, batch_id=5).kill(batch_id=5)
        with make_fleet(pack, n_workers=2, fault_plan=plan) as fleet:
            fleet.submit(5, pair_batch())
            result = fleet.next_result(timeout=60)
            assert_pair_served(result, pack)
            assert result.attempt == 2
            assert fleet.crashes == 1
            assert fleet.retries == 1
            assert fleet.respawns == 1
            deadline = time.monotonic() + 60
            while fleet.live_workers() < 2:
                assert time.monotonic() < deadline
                try:
                    fleet.next_result(timeout=0.2)   # absorb the READY
                except queue_mod.Empty:
                    pass
            assert fleet.total_record_epochs() == 0
            assert not fleet.fully_down

    def test_fully_down_fleet_fails_outstanding_typed(self, pack):
        """No live worker and no respawn budget: outstanding batches
        fail typed instead of waiting on attempts nobody can serve."""
        plan = FaultPlan().delay(0.05, batch_id=3).kill(batch_id=3)
        with make_fleet(pack, n_workers=1, respawn_workers=False,
                        fault_plan=plan) as fleet:
            fleet.submit(3, pair_batch())
            result = fleet.next_result(timeout=60)
            assert result.responses is None
            assert "worker died mid-batch" in result.error
            assert fleet.fully_down
            assert fleet.crashes == 1
            assert fleet.respawns == 0
            report = fleet.supervision_report()
            assert report["live"] == 0
            assert report["fully_down"] is True
            assert report["failed_batches"] == 1

    def test_forgotten_batch_result_is_discarded(self, pack):
        """forget() (the frontend deadline path) makes the dispatch
        terminal: the late result is dropped, not delivered."""
        plan = FaultPlan().delay(0.3, batch_id=4)
        with make_fleet(pack, n_workers=1, fault_plan=plan) as fleet:
            fleet.submit(4, pair_batch())
            fleet.forget(4)
            with pytest.raises(queue_mod.Empty):
                fleet.next_result(timeout=1.0)
            assert fleet.failed_batches == 0

    def test_start_timeout_is_one_overall_deadline(self, tmp_path):
        """Regression: the ready-wait used to grant each worker its own
        ``timeout`` window, so ``n_workers`` stragglers stretched
        ``start(timeout=1)`` to ``n_workers`` seconds of waiting.  With
        one overall deadline the staggered builders below (ready at
        ~0 s, ~0.7 s, ~1.4 s) must trip it — the old per-worker wait
        would have succeeded instead."""
        fleet = ServingFleet(_staggered_builder, (str(tmp_path),),
                             n_workers=3)
        started = time.monotonic()
        with pytest.raises(TimeoutError, match="workers became ready"):
            fleet.start(timeout=1.0)
        assert time.monotonic() - started < 3.0
        assert not fleet.started

    def test_missing_pack_fails_preflight(self, tmp_path):
        """A missing pack directory fails once in the parent, before
        any worker is spawned."""
        fleet = ServingFleet(build_tiny_service, n_workers=2,
                             pack_dir=tmp_path / "no_such_pack")
        with pytest.raises(FileNotFoundError, match="warm-up pack"):
            fleet.start()
        assert not fleet.started


def _staggered_builder(flag_dir: str):
    """Worker builder whose i-th caller takes ~0.7·i seconds: the
    slot claim is an O_EXCL file create, so the stagger is process-safe
    under any start method."""
    import os
    slot = 0
    for slot in range(16):
        try:
            os.close(os.open(os.path.join(flag_dir, f"slot{slot}"),
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY))
            break
        except FileExistsError:
            continue
    time.sleep(0.7 * slot)
    return None   # never serves a batch; only the READY handshake matters


# ----------------------------------------------------------------------
# Frontend under chaos
# ----------------------------------------------------------------------

class TestFrontendChaos:

    def test_kill_and_delay_mid_trace_is_bit_identical(self, pack):
        """The acceptance gate: one worker killed and one batch delayed
        mid-trace, yet the trace completes bit-identical to the
        fault-free in-process reference — no hung client, no record
        epoch (the respawned worker re-attached the pack), and the
        fleet ends at full strength."""
        plan = (FaultPlan()
                .delay(0.2, batch_id=1)                      # straggler
                .delay(0.05, batch_id=2).kill(batch_id=2))   # crash
        fleet = make_fleet(pack, n_workers=2, fault_plan=plan)
        harness = FrontendThread(make_frontend(fleet)).start()
        try:
            with harness.client() as client:
                responses = client.embed_many(chaos_trace())
                stats = client.stats()
        finally:
            harness.stop()
        assert len(responses) == len(pack["trace"])
        for got, want in zip(responses, pack["trace"]):
            assert got.name == want.name
            assert got.embeddings.dtype == want.embeddings.dtype
            assert np.array_equal(got.embeddings, want.embeddings)
            assert got.bucket_id == want.bucket_id
            assert got.batch_size == want.batch_size
        assert stats["served"] == len(pack["trace"])
        assert stats["errors"] == 0
        fleet_stats = stats["fleet"]
        assert fleet_stats["crashes"] == 1
        assert fleet_stats["respawns"] == 1
        assert fleet_stats["retries"] >= 1
        assert fleet_stats["failed_batches"] == 0
        assert fleet_stats["live"] == 2
        assert fleet_stats["record_epochs"] == 0

    def test_batch_deadline_fails_typed_then_recovers(self, pack):
        """A wedged batch cannot hang its futures: past
        ``batch_deadline`` the waiters fail typed (``unavailable`` with
        a retry hint), the late result is discarded, and the next
        dispatch serves normally."""
        plan = FaultPlan().delay(1.5, batch_id=1)
        fleet = make_fleet(pack, n_workers=1, fault_plan=plan)
        harness = FrontendThread(
            make_frontend(fleet, batch_deadline=0.4)).start()
        try:
            with harness.client() as client:
                out = client.embed_many(
                    [EmbedRequest(make_views(6, seed=60), name="late")],
                    on_error="return")
                reply = out[0]
                assert isinstance(reply, dict)
                assert reply["error"] == "unavailable"
                assert "deadline" in reply["message"]
                assert reply["retry_after"] == pytest.approx(
                    _POLICY.max_wait)
                time.sleep(1.3)   # let the wedged worker finish batch 1
                retried = client.embed_many(
                    [EmbedRequest(make_views(6, seed=60), name="late")])
                stats = client.stats()
        finally:
            harness.stop()
        assert retried[0].embeddings.shape == (6, TINY["d"])
        assert stats["deadline_failures"] == 1
        assert stats["unavailable"] == 1
        assert stats["served"] == 1

    def test_degraded_fleet_sheds_earlier(self, pack):
        """Half the fleet dead (respawn off) halves the effective
        queue-depth bound: a burst that a healthy fleet would absorb is
        partially shed, with the degradation named in the message."""
        plan = FaultPlan().delay(0.05, batch_id=1).kill(batch_id=1)
        fleet = make_fleet(pack, n_workers=2, respawn_workers=False,
                           fault_plan=plan)
        harness = FrontendThread(
            make_frontend(fleet, max_queue_depth=4)).start()
        try:
            with harness.client() as client:
                first = client.embed_many(
                    [EmbedRequest(make_views(6, seed=62), name="seed")],
                    on_error="return")
                # Served via retry on the surviving worker.
                assert isinstance(first[0], EmbedResponse)
                deadline = time.monotonic() + 30
                while not client.stats()["degraded"]:
                    assert time.monotonic() < deadline
                    time.sleep(0.05)
                burst = [EmbedRequest(make_views(6, seed=63 + i),
                                      name=f"burst{i}") for i in range(5)]
                out = client.embed_many(burst, on_error="return")
                stats = client.stats()
        finally:
            harness.stop()
        served = [r for r in out if isinstance(r, EmbedResponse)]
        shed = [r for r in out if isinstance(r, dict)]
        # max_queue_depth 4 × (1 live / 2 workers) = effective depth 2.
        assert len(served) == 2
        assert len(shed) == 3
        for reply in shed:
            assert reply["error"] == "overload"
            assert "degraded" in reply["message"]
        assert stats["degraded"] is True
        assert stats["fleet"]["live"] == 1
        assert stats["fleet"]["crashes"] == 1

    def test_stop_fails_inflight_futures_typed(self, pack):
        """Regression: stopping the frontend with a request in flight
        used to leave its future pending forever (the client blocked
        until socket timeout).  Now the drain is bounded and whatever
        remains is failed with a typed ``unavailable`` reply."""
        plan = FaultPlan().delay(2.0, batch_id=1)
        fleet = make_fleet(pack, n_workers=1, fault_plan=plan)
        harness = FrontendThread(
            make_frontend(fleet, drain_timeout=0.2)).start()
        client = harness.client()
        stopped = False
        try:
            wire = request_to_wire(
                EmbedRequest(make_views(6, seed=61), name="stuck"))
            wire["id"] = 1
            client._send(wire)
            client._send({"op": "flush", "id": 2})
            flush_reply = client._recv()   # confirms the dispatch
            assert flush_reply["id"] == 2
            assert flush_reply["dispatched"] == 1
            harness.stop()
            stopped = True
            reply = client._recv()
            assert reply["id"] == 1
            assert reply["ok"] is False
            assert reply["error"] == "unavailable"
            assert "stopped" in reply["message"]
        finally:
            client.close()
            if not stopped:
                harness.stop()


# ----------------------------------------------------------------------
# Client retry/backoff/reconnect (scripted server, no fleet)
# ----------------------------------------------------------------------

def _ok_reply() -> dict:
    return response_to_wire(EmbedResponse(
        request_id=1, name="ok", embeddings=np.zeros((3, 4)),
        bucket_id="n4/d12x6/model", n_regions=3, batch_size=1, padded=True,
        padding_waste=0.0, plan_event="hit", wait_seconds=0.0,
        compute_seconds=0.0))


class _ScriptedServer:
    """Plays a script of connections: each entry is a list of replies
    (one per received line) or ``"drop"`` (read one line, then close the
    connection without answering — the mid-restart frontend)."""

    def __init__(self, connections):
        self.connections = connections
        self.requests_seen = 0
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        for script in self.connections:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            with conn:
                rfile = conn.makefile("rb")
                if script == "drop":
                    if rfile.readline():
                        self.requests_seen += 1
                    continue
                for reply in script:
                    if not rfile.readline():
                        break
                    self.requests_seen += 1
                    conn.sendall(json.dumps(reply).encode("utf-8") + b"\n")
                rfile.readline()   # hold until the client hangs up

    def close(self):
        try:
            self._sock.close()
        except OSError:   # pragma: no cover
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class TestClientRetry:

    def test_overload_retried_after_retry_after(self):
        script = [[{"ok": False, "error": "overload", "message": "shed",
                    "retry_after": 0.01},
                   _ok_reply()]]
        with _ScriptedServer(script) as server:
            with FrontendClient("127.0.0.1", server.port, retries=2,
                                backoff=0.01) as client:
                response = client.embed(EmbedRequest(make_views(3, seed=1)))
            assert response.name == "ok"
            assert server.requests_seen == 2

    def test_reconnects_after_connection_drop(self):
        script = ["drop", [_ok_reply()]]
        with _ScriptedServer(script) as server:
            with FrontendClient("127.0.0.1", server.port, retries=2,
                                backoff=0.01) as client:
                response = client.embed(EmbedRequest(make_views(3, seed=2)))
                assert not client.closed
            assert response.name == "ok"
            assert server.requests_seen == 2

    def test_permanent_rejection_is_never_retried(self):
        script = [[{"ok": False, "error": "oversize", "message": "too big",
                    "retry_after": None}]]
        with _ScriptedServer(script) as server:
            with FrontendClient("127.0.0.1", server.port, retries=3,
                                backoff=0.01) as client:
                with pytest.raises(AdmissionError) as excinfo:
                    client.embed(EmbedRequest(make_views(3, seed=3)))
            assert excinfo.value.reason == "oversize"
            assert server.requests_seen == 1

    def test_unavailable_exhausts_into_typed_error(self):
        unavailable = {"ok": False, "error": "unavailable",
                       "message": "fleet down", "retry_after": 0.01}
        with _ScriptedServer([[unavailable, unavailable]]) as server:
            with FrontendClient("127.0.0.1", server.port, retries=1,
                                backoff=0.01) as client:
                with pytest.raises(ServingUnavailable) as excinfo:
                    client.embed(EmbedRequest(make_views(3, seed=4)))
            assert excinfo.value.retry_after == pytest.approx(0.01)
            assert server.requests_seen == 2

    def test_close_is_idempotent_and_reconnect_revives(self):
        with _ScriptedServer([[], [{"ok": True, "pong": True}]]) as server:
            client = FrontendClient("127.0.0.1", server.port)
            client.close()
            client.close()   # idempotent
            assert client.closed
            with pytest.raises(ConnectionError, match="closed"):
                client.call({"op": "ping"})
            client.reconnect()
            assert not client.closed
            assert client.ping()
            client.close()
