"""Shape-bucket scheduler edge cases.

Pure scheduler mechanics (bucket-edge arithmetic, FIFO queues, flush
triggers) plus the service-level behaviours that depend on them: an
empty-queue flush is a no-op, a single ragged request serves correctly,
dtype-mixed queues are never co-batched, a request exactly at a bucket
edge stays in that bucket, and responses come back in submission order
no matter which buckets served them.
"""

import numpy as np
import pytest

from repro.core import HAFusionConfig
from repro.data.features import ViewSet
from repro.serving import (
    EmbedRequest,
    EmbeddingService,
    FlushPolicy,
    ShapeBucketScheduler,
    default_bucket_edges,
)
from repro.serving.api import EmbedTicket
from serving_utils import TINY, make_views


@pytest.fixture(scope="module")
def service():
    """n_max=16 service with explicit edges (4, 8, 16) and manual flushes
    (max_wait high enough that only size/flush() trigger)."""
    policy = FlushPolicy(max_batch=3, max_wait=60.0, bucket_edges=(4, 8, 16))
    return EmbeddingService.build([make_views(16)], HAFusionConfig(**TINY),
                                  seed=5, policy=policy)


def ticket(n_regions: int, dtype=None, seed: int = 0) -> EmbedTicket:
    return EmbedTicket(EmbedRequest(make_views(n_regions, seed=seed),
                                    dtype=dtype), "", 0.0)


class TestBucketEdges:
    def test_default_edges_are_a_halving_grid(self):
        assert default_bucket_edges(64) == (8, 16, 32, 64)
        assert default_bucket_edges(360) == (5, 11, 22, 45, 90, 180, 360)
        assert default_bucket_edges(6) == (6,)

    def test_exact_edge_is_not_promoted(self):
        sched = ShapeBucketScheduler(16, FlushPolicy(bucket_edges=(4, 8, 16)))
        # The off-by-one trap: n exactly at an edge belongs to that edge.
        assert sched.bucket_edge(4) == 4
        assert sched.bucket_edge(8) == 8
        assert sched.bucket_edge(16) == 16
        assert sched.bucket_edge(5) == 8
        assert sched.bucket_edge(9) == 16
        assert sched.bucket_edge(1) == 4

    def test_out_of_range_rejected(self):
        sched = ShapeBucketScheduler(16, FlushPolicy(bucket_edges=(4, 8, 16)))
        with pytest.raises(ValueError):
            sched.bucket_edge(17)
        with pytest.raises(ValueError):
            sched.bucket_edge(0)

    def test_edges_must_cover_n_max(self):
        with pytest.raises(ValueError):
            ShapeBucketScheduler(32, FlushPolicy(bucket_edges=(4, 8, 16)))


class TestQueues:
    def make_scheduler(self):
        return ShapeBucketScheduler(
            16, FlushPolicy(max_batch=3, max_wait=10.0,
                            bucket_edges=(4, 8, 16)))

    def test_same_shape_requests_share_a_bucket(self):
        sched = self.make_scheduler()
        k1 = sched.enqueue(ticket(7))
        k2 = sched.enqueue(ticket(8))
        assert k1 == k2
        assert sched.pending == 2

    def test_dtype_mixed_requests_never_share_a_bucket(self):
        sched = self.make_scheduler()
        k64 = sched.enqueue(ticket(8, dtype=np.float64))
        k32 = sched.enqueue(ticket(8, dtype=np.float32))
        kdefault = sched.enqueue(ticket(8))
        assert len({k64, k32, kdefault}) == 3

    def test_view_dims_separate_buckets(self):
        sched = self.make_scheduler()
        a = EmbedTicket(EmbedRequest(make_views(8, dims=(12, 6))), "", 0.0)
        b = EmbedTicket(EmbedRequest(make_views(8, dims=(10, 6))), "", 0.0)
        assert sched.enqueue(a) != sched.enqueue(b)

    def test_take_is_fifo_and_caps_at_max_batch(self):
        sched = self.make_scheduler()
        tickets = [ticket(8, seed=i) for i in range(5)]
        key = None
        for t in tickets:
            key = sched.enqueue(t)
        first = sched.take(key)
        assert first == tickets[:3]          # max_batch
        assert sched.take(key, limit=10) == tickets[3:]
        assert sched.take(key) == []         # emptied queue is dropped

    def test_full_and_overdue_buckets(self):
        sched = self.make_scheduler()
        key = sched.enqueue(EmbedTicket(EmbedRequest(make_views(8)), "", 100.0))
        assert sched.full_buckets() == []
        assert sched.overdue_buckets(now=105.0) == []
        assert sched.overdue_buckets(now=110.0) == [key]
        for i in range(2):
            sched.enqueue(EmbedTicket(EmbedRequest(make_views(8)), "", 101.0))
        assert sched.full_buckets() == [key]


class TestServiceScheduling:
    def test_empty_queue_flush_is_a_noop(self, service):
        assert service.flush() == []
        assert service.poll() == []
        assert service.pending() == 0

    def test_single_ragged_request(self, service):
        views = make_views(5, seed=3)
        [response] = service.run([EmbedRequest(views, name="solo")])
        assert response.name == "solo"
        assert response.embeddings.shape == (5, 16)
        assert response.batch_size == 1
        assert response.padded
        # 5 real regions in a (1, 16) padded batch.
        assert response.padding_waste == pytest.approx(1 - 5 / 16)
        # Parity against the direct (shim) path on the same model and
        # padded layout.
        from repro.core import batched_embed, make_batch
        batch = make_batch([views], n_max=service.n_max,
                           view_dims=service.view_dims)
        direct = batched_embed(batch, model=service.model)
        assert np.abs(response.embeddings
                      - direct.embeddings[0]).max() <= 1e-8

    def test_dtype_mixed_queue_never_co_batched(self, service):
        views = make_views(8, seed=4)
        responses = service.run([
            EmbedRequest(views, dtype=np.float32, name="f32"),
            EmbedRequest(views, dtype=np.float64, name="f64"),
            EmbedRequest(views, name="default"),
        ])
        f32, f64, default = responses
        assert f32.embeddings.dtype == np.float32
        assert f64.embeddings.dtype == np.float64
        assert f32.bucket_id != f64.bucket_id
        assert f32.batch_size == 1          # nothing co-batched with it
        # An explicit request for the model dtype co-batches with the
        # default bucket (float64 model).
        assert f64.bucket_id == default.bucket_id
        assert f64.batch_size == 2

    def test_bucket_edge_request_stays_in_its_bucket(self, service):
        for n, expected in ((4, "n4/"), (8, "n8/"), (9, "n16/"), (16, "n16/")):
            [r] = service.run([EmbedRequest(make_views(n, seed=n))])
            assert r.bucket_id.startswith(expected), (n, r.bucket_id)

    def test_full_size_flush_is_unpadded(self, service):
        responses = service.run(
            [EmbedRequest(make_views(16, seed=i)) for i in range(3)])
        assert all(not r.padded for r in responses)
        assert all(r.padding_waste == 0.0 for r in responses)
        assert all(r.batch_size == 3 for r in responses)

    def test_responses_in_submission_order(self, service):
        # Interleave three buckets; every flush is out of submission
        # order internally, but run() must hand responses back aligned.
        requests = [EmbedRequest(make_views(n, seed=i), name=f"r{i}")
                    for i, n in enumerate([3, 16, 7, 16, 3, 7, 16, 3])]
        responses = service.run(requests)
        assert [r.request_id for r in responses] \
            == [q.request_id for q in requests]
        assert [r.name for r in responses] == [q.name for q in requests]
        buckets = {r.bucket_id for r in responses}
        assert len(buckets) == 3

    def test_max_batch_triggers_flush_on_submit(self, service):
        tickets = [service.submit(EmbedRequest(make_views(6, seed=i)))
                   for i in range(3)]   # max_batch = 3
        assert all(t.done for t in tickets)
        assert tickets[0].response.batch_size == 3

    def test_max_wait_flush_via_poll(self):
        policy = FlushPolicy(max_batch=8, max_wait=0.0,
                             bucket_edges=(4, 8, 16))
        service = EmbeddingService.build([make_views(16)],
                                         HAFusionConfig(**TINY), seed=5,
                                         policy=policy)
        # max_wait=0: the submit itself polls the just-queued request out.
        ticket = service.submit(EmbedRequest(make_views(6)))
        assert ticket.done
        assert ticket.response.batch_size == 1

    def test_oversized_request_rejected(self, service):
        with pytest.raises(ValueError, match="n_max"):
            service.submit(EmbedRequest(make_views(17)))

    def test_wrong_views_rejected(self, service):
        wide = ViewSet(names=("mobility", "poi"),
                       matrices=[np.zeros((4, 20)), np.zeros((4, 6))])
        with pytest.raises(ValueError, match="view widths"):
            service.submit(EmbedRequest(wide))

    def test_view_names_become_sticky_on_first_request(self):
        """A service built straight from a model learns its view names
        from the first request; a later request with different names is
        rejected at submit instead of poisoning a co-batch flush."""
        built = EmbeddingService.build([make_views(8)],
                                       HAFusionConfig(**TINY), seed=5)
        bare = EmbeddingService(built.model,
                                policy=FlushPolicy(max_batch=4,
                                                   max_wait=60.0))
        assert bare.view_names is None
        bare.submit(EmbedRequest(make_views(8, seed=1)))
        assert bare.view_names == ("mobility", "poi")
        renamed = ViewSet(names=("foo", "bar"),
                          matrices=[np.zeros((8, 12)), np.zeros((8, 6))])
        with pytest.raises(ValueError, match="service views"):
            bare.submit(EmbedRequest(renamed))
        assert len(bare.flush()) == 1   # the first request still serves
