"""Integration tests for the network serving frontend + worker fleet.

The tentpole contract under test: a trace replayed through the NDJSON
socket against a 2-worker :class:`ServingFleet` warmed from a shared
:class:`WarmupPack` must come back **bit-identical** to the in-process
:meth:`EmbeddingService.run` on the same requests, with **zero record
epochs** across the fleet — plus the admission-control/backpressure and
graceful-restart behavior around it.

The suite is stdlib-only async: the frontend runs on a private event
loop in a background thread (:class:`FrontendThread` — no
pytest-asyncio), driven through the blocking :class:`FrontendClient`
exactly the way scripts and the smoke job drive it.
"""

import numpy as np
import pytest

from repro.core import HAFusionConfig
from repro.serving import (
    AdmissionError,
    EmbedRequest,
    EmbedResponse,
    EmbeddingService,
    FlushPolicy,
    FrontendThread,
    ServingFleet,
    ServingFrontend,
    WarmupPack,
    request_from_wire,
    request_to_wire,
    response_from_wire,
    response_to_wire,
)
from serving_utils import TINY, make_views

#: One policy for frontend and workers — equal policies are what make a
#: dispatched co-batch re-batch identically inside the worker.
#: ``max_wait`` is high so only explicit ``flush`` ops dispatch
#: stragglers (deterministic compositions, no timing dependence).
_POLICY = FlushPolicy(max_batch=3, max_wait=30.0, bucket_edges=(4, 8, 16))
_SEED = 11


def build_tiny_service() -> EmbeddingService:
    """Worker builder: module-level so it pickles under any start
    method; deterministic seed so every worker holds the same model as
    the in-process reference service."""
    return EmbeddingService.build([make_views(16)], HAFusionConfig(**TINY),
                                  seed=_SEED, policy=_POLICY)


def make_trace() -> list[EmbedRequest]:
    """Mixed replay trace: ragged sizes, dtype-mixed, region subsets.

    No explicit float64 requests: the frontend labels default-dtype
    buckets ``"model"`` while a service labels them with the concrete
    model dtype, so an explicit ``float64`` would co-batch with defaults
    in-process but not at the frontend — a composition (not a
    correctness) difference the bit-identity comparison must not trip
    over.
    """
    specs = [
        (6, None, None),
        (3, "float32", None),
        (16, None, None),
        (7, None, [0, 3, 5]),
        (4, "float32", None),
        (12, None, None),
        (6, "float32", [1, 2]),
        (8, None, None),
        (5, None, None),
        (16, "float32", None),
    ]
    return [EmbedRequest(make_views(n, seed=100 + i), dtype=dtype,
                         region_subset=subset, name=f"city{i}")
            for i, (n, dtype, subset) in enumerate(specs)]


def make_frontend(fleet: ServingFleet, **kwargs) -> ServingFrontend:
    kwargs.setdefault("n_max", 16)
    kwargs.setdefault("view_dims", (12, 6))
    kwargs.setdefault("view_names", ("mobility", "poi"))
    kwargs.setdefault("policy", _POLICY)
    return ServingFrontend(fleet, **kwargs)


# ----------------------------------------------------------------------
# Wire codecs (no fleet needed)
# ----------------------------------------------------------------------

class TestWireCodecs:

    def test_request_roundtrip_is_bit_identical(self):
        import json
        request = EmbedRequest(make_views(7, seed=3), dtype="float32",
                               region_subset=[2, 0], name="chi")
        wire = json.loads(json.dumps(request_to_wire(request)))
        decoded = request_from_wire(wire)
        assert decoded.name == "chi"
        assert decoded.dtype == np.float32
        assert decoded.region_subset == [2, 0]
        assert decoded.views.names == request.views.names
        for a, b in zip(decoded.views.matrices, request.views.matrices):
            assert a.dtype == np.float64
            assert np.array_equal(a, b)   # exact: repr round-trip

    def test_response_roundtrip_preserves_dtype_and_shape(self):
        import json
        embeddings = np.random.default_rng(0).standard_normal(
            (4, 8)).astype(np.float32)
        response = EmbedResponse(
            request_id=9, name="nyc", embeddings=embeddings,
            bucket_id="n8/d12x6/float32", n_regions=4, batch_size=2,
            padded=True, padding_waste=0.25, plan_event="disk",
            wait_seconds=0.5, compute_seconds=0.1)
        wire = json.loads(json.dumps(response_to_wire(response)))
        assert wire["ok"] is True
        decoded = response_from_wire(wire)
        assert decoded.embeddings.dtype == np.float32
        assert decoded.embeddings.shape == (4, 8)
        assert np.array_equal(decoded.embeddings, embeddings)
        assert decoded.plan_event == "disk"
        assert decoded.batch_size == 2

    def test_empty_subset_keeps_embedding_width(self):
        response = EmbedResponse(
            request_id=1, name="", embeddings=np.zeros((0, 8)),
            bucket_id="n8/d12x6/model", n_regions=0, batch_size=1,
            padded=True, padding_waste=0.0, plan_event="hit",
            wait_seconds=0.0, compute_seconds=0.0)
        decoded = response_from_wire(response_to_wire(response))
        assert decoded.embeddings.shape == (0, 8)

    def test_malformed_payload_is_typed(self):
        with pytest.raises(AdmissionError) as excinfo:
            request_from_wire({"op": "embed", "views": {"names": ["m"]}})
        assert excinfo.value.reason == "bad_request"


# ----------------------------------------------------------------------
# Frontend + fleet integration
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def pack(tmp_path_factory):
    """Deploy-time warm-up: pack the shape grid, then play the replay
    trace through the pack-building service so every serve-time co-batch
    composition has an on-disk plan spec.  The same run doubles as the
    in-process reference for the bit-identity assertions."""
    pack_dir = tmp_path_factory.mktemp("warm_pack")
    service = build_tiny_service()
    WarmupPack.build(service, directory=pack_dir)
    reference = service.run(make_trace())
    # Warm the other compositions this suite serves (the dtype-mixed
    # [6, 6] co-batch and the single-n6 straggler flush), so the shared
    # stack's record-epoch counter stays provably zero end to end.
    service.run([EmbedRequest(make_views(6, seed=90)),
                 EmbedRequest(make_views(6, seed=91))])
    service.run([EmbedRequest(make_views(6, seed=92))])
    return {"dir": pack_dir, "reference": reference}


@pytest.fixture(scope="module")
def stack(pack):
    fleet = ServingFleet(build_tiny_service, n_workers=2,
                         pack_dir=pack["dir"])
    harness = FrontendThread(make_frontend(fleet)).start()
    yield harness
    harness.stop()


class TestFrontendServing:

    def test_trace_is_bit_identical_to_in_process(self, stack, pack):
        """The tentpole assertion: socket → frontend scheduler → fleet
        worker → socket reproduces EmbeddingService.run bit-for-bit,
        without a single record epoch."""
        with stack.client() as client:
            responses = client.embed_many(make_trace())
        reference = pack["reference"]
        assert len(responses) == len(reference)
        for got, want in zip(responses, reference):
            assert got.name == want.name
            assert got.embeddings.dtype == want.embeddings.dtype
            assert got.embeddings.shape == want.embeddings.shape
            assert np.array_equal(got.embeddings, want.embeddings)
            assert got.bucket_id == want.bucket_id
            assert got.batch_size == want.batch_size
            # Warm path end to end: specs relowered, never recorded.
            assert got.plan_event in ("hit", "spec", "disk")
        assert stack.frontend.fleet.total_record_epochs() == 0

    def test_dtype_mixed_burst_never_fuses_across_dtypes(self, stack):
        """Satellite: dtype-mixed bursts through the socket protocol.
        Same-sized requests of different dtypes land in different
        buckets (and batches); each response honors its wire dtype."""
        requests = [
            EmbedRequest(make_views(6, seed=20), name="f64-a"),
            EmbedRequest(make_views(6, seed=21), dtype="float32",
                         name="f32-a"),
            EmbedRequest(make_views(6, seed=22), name="f64-b"),
            EmbedRequest(make_views(6, seed=23), dtype="float32",
                         name="f32-b"),
        ]
        with stack.client() as client:
            responses = client.embed_many(requests)
        f64_a, f32_a, f64_b, f32_b = responses
        for r in (f32_a, f32_b):
            assert r.embeddings.dtype == np.float32
            assert "float32" in r.bucket_id
            assert r.batch_size == 2
        for r in (f64_a, f64_b):
            assert r.embeddings.dtype == np.float64
            assert "float32" not in r.bucket_id
            assert r.batch_size == 2

    def test_oversize_rejected_over_the_wire(self, stack):
        with stack.client() as client:
            with pytest.raises(AdmissionError) as excinfo:
                client.embed(EmbedRequest(make_views(17), name="toobig"))
            assert excinfo.value.reason == "oversize"
            # The connection survives a rejection.
            assert client.ping()

    def test_view_mismatch_rejected_over_the_wire(self, stack):
        wide = EmbedRequest(make_views(6, dims=(20, 6), seed=4))
        with stack.client() as client:
            with pytest.raises(AdmissionError) as excinfo:
                client.embed(wide)
        assert excinfo.value.reason == "view_mismatch"

    def test_undecodable_line_gets_typed_reply(self, stack):
        with stack.client() as client:
            client._sock.sendall(b"this is not json\n")
            reply = client._recv()
            assert reply["ok"] is False
            assert reply["error"] == "bad_request"
            assert client.ping()

    def test_unknown_op_is_bad_request(self, stack):
        with stack.client() as client:
            reply = client.call({"op": "teapot"})
        assert reply["ok"] is False
        assert reply["error"] == "bad_request"

    def test_stats_over_the_socket(self, stack):
        with stack.client() as client:
            client.embed_many([EmbedRequest(make_views(6, seed=30))])
            stats = client.stats()
        assert stats["served"] >= 1
        assert stats["pending"] == 0
        latency = stats["latency"]
        assert latency["count"] >= 1
        assert 0.0 <= latency["p50_latency"] <= latency["p99_latency"]
        assert stats["regions"] >= 6
        assert stats["regions_per_sec"] > 0.0
        fleet = stats["fleet"]
        assert fleet["n_workers"] == 2
        assert fleet["record_epochs"] == 0
        assert all(fleet["alive"])
        # The rejection tests above were counted, not crashed on.
        assert stats["rejected"] >= 1


class TestBackpressure:

    def test_overload_sheds_with_retry_after(self, pack):
        """Per-bucket queue-depth admission: beyond ``max_queue_depth``
        the frontend sheds with reason ``overload`` and a
        ``retry_after`` hint; already-queued requests still serve."""
        fleet = ServingFleet(build_tiny_service, n_workers=1,
                             pack_dir=pack["dir"])
        harness = FrontendThread(
            make_frontend(fleet, max_queue_depth=2)).start()
        try:
            requests = [EmbedRequest(make_views(6, seed=40 + i),
                                     name=f"burst{i}") for i in range(5)]
            with harness.client() as client:
                out = client.embed_many(requests, on_error="return")
                stats = client.stats()
        finally:
            harness.stop()
        served = [r for r in out if isinstance(r, EmbedResponse)]
        shed = [r for r in out if isinstance(r, dict)]
        # max_queue_depth=2 < max_batch=3: the first two queue, the rest
        # of the pipelined burst hits a full bucket and is shed.
        assert len(served) == 2
        assert [r.name for r in served] == ["burst0", "burst1"]
        assert len(shed) == 3
        for reply in shed:
            assert reply["error"] == "overload"
            assert reply["retry_after"] == pytest.approx(_POLICY.max_wait)
        assert stats["shed"] == 3
        assert stats["served"] == 2

    def test_shed_request_succeeds_on_retry(self, pack):
        fleet = ServingFleet(build_tiny_service, n_workers=1,
                             pack_dir=pack["dir"])
        harness = FrontendThread(
            make_frontend(fleet, max_queue_depth=1)).start()
        try:
            with harness.client() as client:
                out = client.embed_many(
                    [EmbedRequest(make_views(6, seed=50), name="first"),
                     EmbedRequest(make_views(6, seed=51), name="second")],
                    on_error="return")
                assert isinstance(out[0], EmbedResponse)
                assert isinstance(out[1], dict)   # shed
                # The flush drained the bucket — the retry is admitted.
                retried = client.embed(
                    EmbedRequest(make_views(6, seed=51), name="second"))
            assert retried.embeddings.shape == (6, TINY["d"])
        finally:
            harness.stop()


class TestLifecycle:

    def test_graceful_restart_preserves_warm_path(self, pack):
        """Stop the whole stack and bring it back on the same pack
        directory: the second generation serves the same trace with zero
        record epochs and bit-identical embeddings — the plan cache on
        disk survived the bounce."""
        fleet = ServingFleet(build_tiny_service, n_workers=2,
                             pack_dir=pack["dir"])
        reference = pack["reference"]

        harness = FrontendThread(make_frontend(fleet)).start()
        try:
            with harness.client() as client:
                first = client.embed_many(make_trace())
        finally:
            harness.stop()          # graceful: fleet stopped too
        assert not fleet.started
        assert fleet.total_record_epochs() == 0

        harness = FrontendThread(make_frontend(fleet)).start()
        try:
            with harness.client() as client:
                second = client.embed_many(make_trace())
                stats = client.stats()
        finally:
            harness.stop()
        assert stats["fleet"]["record_epochs"] == 0
        for got, want in zip(second, reference):
            assert np.array_equal(got.embeddings, want.embeddings)
        for got, want in zip(first, reference):
            assert np.array_equal(got.embeddings, want.embeddings)

    def test_port_closed_after_stop(self, pack):
        import socket as socket_mod
        fleet = ServingFleet(build_tiny_service, n_workers=1,
                             pack_dir=pack["dir"])
        harness = FrontendThread(make_frontend(fleet)).start()
        host, port = harness.frontend.host, harness.frontend.port
        harness.stop()
        with pytest.raises(OSError):
            socket_mod.create_connection((host, port), timeout=2).close()
