"""Tests for the shared graph layers."""

import numpy as np
import pytest

from repro.baselines import GCNLayer, GraphAttentionLayer, knn_graph, normalize_adjacency
from repro.nn import Tensor


class TestKnnGraph:
    def test_self_loops_present(self, rng):
        sim = rng.random((10, 10))
        adj = knn_graph(sim, k=3)
        assert np.allclose(np.diag(adj), 1.0)

    def test_symmetric(self, rng):
        adj = knn_graph(rng.random((10, 10)), k=3, symmetric=True)
        assert np.allclose(adj, adj.T)

    def test_min_degree(self, rng):
        adj = knn_graph(rng.random((12, 12)), k=4)
        assert ((adj.sum(axis=1) - 1) >= 4).all()  # k neighbours + self

    def test_k_clamped_to_n(self, rng):
        adj = knn_graph(rng.random((5, 5)), k=100)
        assert adj.shape == (5, 5)
        assert (adj == 1).all()  # fully connected when k >= n-1

    def test_keeps_most_similar(self):
        sim = np.array([
            [1.0, 0.9, 0.1, 0.1],
            [0.9, 1.0, 0.1, 0.1],
            [0.1, 0.1, 1.0, 0.9],
            [0.1, 0.1, 0.9, 1.0],
        ])
        adj = knn_graph(sim, k=1, symmetric=False)
        assert adj[0, 1] == 1 and adj[0, 2] == 0
        assert adj[2, 3] == 1 and adj[2, 0] == 0

    def test_non_square_rejected(self, rng):
        with pytest.raises(ValueError):
            knn_graph(rng.random((3, 4)))


class TestNormalizeAdjacency:
    def test_row_sums_bounded(self, rng):
        adj = knn_graph(rng.random((8, 8)), k=3)
        norm = normalize_adjacency(adj)
        assert norm.max() <= 1.0 + 1e-9
        assert (norm >= 0).all()

    def test_isolated_node_safe(self):
        adj = np.zeros((3, 3))
        adj[0, 1] = adj[1, 0] = 1.0
        norm = normalize_adjacency(adj)
        assert np.isfinite(norm).all()
        assert norm[2].sum() == 0.0

    def test_symmetric_normalization_formula(self):
        adj = np.array([[1.0, 1.0], [1.0, 1.0]])
        norm = normalize_adjacency(adj)
        assert np.allclose(norm, 0.5)


class TestGraphLayers:
    def test_gat_output_shape(self, rng):
        adj = knn_graph(rng.random((10, 10)), k=3)
        layer = GraphAttentionLayer(6, 4, adj, rng=rng)
        out = layer(Tensor(rng.standard_normal((10, 6))))
        assert out.shape == (10, 4)

    def test_gat_respects_mask(self, rng):
        # With a two-block diagonal graph, node 0's output must not
        # depend on features of the other block.
        adj = np.zeros((6, 6))
        adj[:3, :3] = 1.0
        adj[3:, 3:] = 1.0
        layer = GraphAttentionLayer(4, 4, adj, rng=rng)
        x = rng.standard_normal((6, 4))
        base = layer(Tensor(x)).data[0].copy()
        x2 = x.copy()
        x2[4] += 100.0
        moved = layer(Tensor(x2)).data[0]
        assert np.allclose(base, moved, atol=1e-8)

    def test_gat_gradients_flow(self, rng):
        adj = knn_graph(rng.random((6, 6)), k=2)
        layer = GraphAttentionLayer(4, 4, adj, rng=rng)
        x = Tensor(rng.standard_normal((6, 4)), requires_grad=True)
        (layer(x) ** 2.0).sum().backward()
        assert x.grad is not None
        assert layer.transform.weight.grad is not None

    def test_gcn_output_shape(self, rng):
        adj = knn_graph(rng.random((10, 10)), k=3)
        layer = GCNLayer(6, 4, adj, rng=rng)
        assert layer(Tensor(rng.standard_normal((10, 6)))).shape == (10, 4)

    def test_gcn_propagates_neighbors(self, rng):
        adj = np.eye(4)
        adj[0, 1] = adj[1, 0] = 1.0
        layer = GCNLayer(3, 3, adj, rng=rng)
        x = rng.standard_normal((4, 3))
        base = layer(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[1] += 5.0
        moved = layer(Tensor(x2)).data
        assert np.abs(moved[0] - base[0]).max() > 1e-8   # neighbour moved
        assert np.allclose(moved[3], base[3], atol=1e-9)  # non-neighbour did not
