"""Tests for the four baseline models and the DAFusion adapter."""

import numpy as np
import pytest

from repro.baselines import (
    HREP,
    MGFN,
    MVURE,
    DAFusionAdapter,
    PromptedLasso,
    RegionDCL,
    available_baselines,
    cluster_hourly_graphs,
    fit_baseline,
    make_baseline,
    train_baseline,
)
from repro.data import CityConfig, generate_city


@pytest.fixture(scope="module")
def city():
    config = CityConfig(name="tiny", n_regions=24, total_trips=60000, poi_total=2000)
    return generate_city(config, seed=4)


class TestRegistry:
    def test_available_names(self):
        names = available_baselines()
        assert names == ["hrep", "mgfn", "mvure", "region_dcl"]
        with_adapters = available_baselines(with_adapters=True)
        assert "mvure-dafusion" in with_adapters

    def test_make_each_baseline(self, city):
        for name in available_baselines():
            model = make_baseline(name, city, seed=1, d=16)
            assert model.d == 16

    def test_make_dafusion_variant(self, city):
        model = make_baseline("mvure-dafusion", city, seed=1, d=16)
        assert model.name == "mvure-dafusion"

    def test_unknown_name_rejected(self, city):
        with pytest.raises(KeyError):
            make_baseline("node2vec", city)
        with pytest.raises(KeyError):
            make_baseline("mvure-extra", city)

    def test_default_dims_match_paper(self, city):
        assert MVURE.default_dim == 96
        assert MGFN.default_dim == 96
        assert RegionDCL.default_dim == 64
        assert HREP.default_dim == 144


class TestMVURE:
    def test_four_views(self, city):
        model = MVURE(city, d=16, seed=1)
        views = model.view_embeddings()
        assert len(views) == 4
        assert all(v.shape == (24, 16) for v in views)

    def test_embed_shape(self, city):
        assert MVURE(city, d=16, seed=1).embed().shape == (24, 16)

    def test_training_reduces_loss(self, city):
        model = MVURE(city, d=16, seed=1)
        result = fit_baseline(model, epochs=15, lr=3e-3)
        assert result.improved()

    def test_fusion_is_convex(self, city):
        model = MVURE(city, d=16, seed=1)
        views = model.view_embeddings()
        from repro.nn import functional as F
        weights = F.softmax(model.fusion_logits, axis=0).data
        fused = model.fuse(views).data
        expected = sum(w * v.data for w, v in zip(weights, views))
        assert np.allclose(fused, expected)


class TestMGFN:
    def test_cluster_assignment_shape(self, city):
        assignment = cluster_hourly_graphs(city.mobility.hourly, n_patterns=5, seed=1)
        assert assignment.shape == (24,)
        assert set(assignment) <= set(range(5))

    def test_clustering_groups_similar_hours(self, city):
        # Deep-night hours should rarely share a pattern with AM peak.
        assignment = cluster_hourly_graphs(city.mobility.hourly, n_patterns=5, seed=1)
        assert len(set(assignment)) >= 2

    def test_bad_hourly_shape_rejected(self, rng):
        with pytest.raises(ValueError):
            cluster_hourly_graphs(rng.random((24, 5, 6)))

    def test_embed_shape(self, city):
        assert MGFN(city, d=16, seed=1).embed().shape == (24, 16)

    def test_training_reduces_loss(self, city):
        model = MGFN(city, d=16, num_layers=1, seed=1)
        result = fit_baseline(model, epochs=15, lr=3e-3)
        assert result.improved()

    def test_mobility_only_diet(self, city):
        # MGFN never touches POI or land-use data: constructing it from a
        # city with zeroed POIs must give identical embeddings.
        import copy
        city2 = copy.copy(city)
        city2.poi_counts = np.zeros_like(city.poi_counts)
        a = MGFN(city, d=16, seed=1).embed()
        b = MGFN(city2, d=16, seed=1).embed()
        assert np.allclose(a, b)


class TestRegionDCL:
    def test_embed_shape(self, city):
        assert RegionDCL(city, d=16, seed=1).embed().shape == (24, 16)

    def test_training_reduces_loss(self, city):
        model = RegionDCL(city, d=16, seed=1)
        result = fit_baseline(model, epochs=25, lr=3e-3)
        assert result.improved()

    def test_contrastive_pulls_same_region_groups(self, city):
        model = RegionDCL(city, d=16, seed=1)
        fit_baseline(model, epochs=60, lr=3e-3)
        from repro.nn import no_grad
        model.eval()
        with no_grad():
            z = model.group_embeddings().data
        model.train()
        same = model._region_index[:, None] == model._region_index[None, :]
        np.fill_diagonal(same, False)
        diff = ~same
        np.fill_diagonal(diff, False)
        sims = z @ z.T
        assert sims[same].mean() > sims[diff].mean()

    def test_unit_norm_group_embeddings(self, city):
        model = RegionDCL(city, d=16, seed=1)
        from repro.nn import no_grad
        with no_grad():
            z = model.group_embeddings().data
        assert np.allclose(np.linalg.norm(z, axis=1), 1.0, atol=1e-6)


class TestHREP:
    def test_views_are_relations(self, city):
        model = HREP(city, d=16, seed=1)
        views = model.view_embeddings()
        assert len(views) == 3  # mobility, POI, neighbour relations

    def test_embed_shape(self, city):
        assert HREP(city, d=16, seed=1).embed().shape == (24, 16)

    def test_training_reduces_loss(self, city):
        model = HREP(city, d=16, seed=1)
        result = fit_baseline(model, epochs=15, lr=3e-3)
        assert result.improved()

    def test_prompted_lasso_runs(self, city, rng):
        features = rng.standard_normal((24, 16))
        y = features[:, 0] * 10 + rng.normal(0, 0.1, 24)
        model = PromptedLasso(prompt_steps=20)
        model.fit(features[:20], y[:20])
        predictions = model.predict(features[20:])
        assert predictions.shape == (4,)

    def test_prompted_lasso_guard(self, rng):
        with pytest.raises(RuntimeError):
            PromptedLasso().predict(rng.standard_normal((3, 4)))


class TestDAFusionAdapter:
    def test_wraps_mvure(self, city):
        adapter = DAFusionAdapter(MVURE(city, d=16, seed=1))
        assert adapter.name == "mvure-dafusion"
        assert adapter.embed().shape == (24, 16)

    def test_single_view_model_supported(self, city):
        adapter = DAFusionAdapter(RegionDCL(city, d=16, seed=1))
        assert adapter.embed().shape == (24, 16)

    def test_training_reduces_loss(self, city):
        adapter = DAFusionAdapter(MVURE(city, d=16, seed=1))
        result = fit_baseline(adapter, epochs=15, lr=3e-3)
        assert result.improved()

    def test_adapter_changes_embeddings(self, city):
        vanilla = MVURE(city, d=16, seed=1)
        adapter = DAFusionAdapter(MVURE(city, d=16, seed=1))
        assert not np.allclose(vanilla.embed(), adapter.embed())

    def test_adapter_has_more_parameters(self, city):
        vanilla = MVURE(city, d=16, seed=1)
        adapter = DAFusionAdapter(MVURE(city, d=16, seed=1))
        assert adapter.num_parameters() > vanilla.num_parameters()

    def test_fuse_restored_after_loss(self, city):
        adapter = DAFusionAdapter(MVURE(city, d=16, seed=1))
        original = adapter.baseline.fuse
        adapter.loss()
        assert adapter.baseline.fuse == original


class TestTrainBaseline:
    def test_epoch_budget_scaling(self, city):
        model = RegionDCL(city, d=16, seed=1)
        result = train_baseline(model, epochs=20)
        assert len(result.losses) == max(10, int(20 * 0.6))
