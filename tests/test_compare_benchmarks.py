"""Unit tests for the nightly benchmark regression detector
(``scripts/compare_benchmarks.py``) — previously exercised only by the
CI job itself."""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = (Path(__file__).resolve().parent.parent
           / "scripts" / "compare_benchmarks.py")
_spec = importlib.util.spec_from_file_location("compare_benchmarks", _SCRIPT)
compare_benchmarks = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_benchmarks)


def payload(mean: float, extra_info: dict | None = None,
            name: str = "bench::one") -> dict:
    return {"benchmarks": [{
        "fullname": name,
        "stats": {"mean": mean},
        "extra_info": extra_info or {},
    }]}


def write(tmp_path: Path, name: str, data: dict) -> Path:
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return path


class TestIterGauges:
    def test_finds_nested_speedups_and_throughputs(self):
        extra = {
            "engine": {"speedup": 3.1, "max_abs_diff": 0.0},
            "scheduler": {
                "ragged": {"speedup": 1.7,
                           "scheduler_regions_per_sec": 1700.0,
                           "sequential_regions_per_sec": 1000.0},
                "stats": {"buckets": {"n30/d360/float64":
                                      {"regions_per_sec": 950.0,
                                       "requests": 29}}},
            },
        }
        gauges = dict(compare_benchmarks.iter_gauges(extra))
        assert gauges == {
            "engine.speedup": 3.1,
            "scheduler.ragged.speedup": 1.7,
            "scheduler.ragged.scheduler_regions_per_sec": 1700.0,
            "scheduler.ragged.sequential_regions_per_sec": 1000.0,
            "scheduler.stats.buckets.n30/d360/float64.regions_per_sec": 950.0,
        }

    def test_ignores_non_gauge_numbers_and_bools(self):
        assert dict(compare_benchmarks.iter_gauges(
            {"padded": True, "seconds": 1.0, "speedup_note": 3.0})) == {}

    def test_latency_suffixes_are_a_separate_family(self):
        extra = {"frontend": {"latency": {"p50_latency": 0.002,
                                          "p99_latency": 0.009,
                                          "mean_seconds": 0.003},
                              "regions_per_sec": 5000.0}}
        lower = dict(compare_benchmarks.iter_gauges(
            extra, suffixes=compare_benchmarks.LOWER_GAUGE_SUFFIXES))
        assert lower == {"frontend.latency.p50_latency": 0.002,
                         "frontend.latency.p99_latency": 0.009}
        # The default (higher-is-better) walk must not pick them up.
        assert dict(compare_benchmarks.iter_gauges(extra)) == {
            "frontend.regions_per_sec": 5000.0}


class TestRegressionDetector:
    def test_wall_clock_regression_beyond_20_percent_flagged(self):
        rows, regressions = compare_benchmarks.compare(
            {"b": payload(1.0)["benchmarks"][0]},
            {"b": payload(1.25)["benchmarks"][0]},
            threshold=0.2)
        assert len(regressions) == 1
        assert "1.0000s -> 1.2500s" in regressions[0]

    def test_wall_clock_within_threshold_not_flagged(self):
        _, regressions = compare_benchmarks.compare(
            {"b": payload(1.0)["benchmarks"][0]},
            {"b": payload(1.19)["benchmarks"][0]}, threshold=0.2)
        assert regressions == []

    def test_gauge_drop_beyond_threshold_flagged(self):
        old = payload(1.0, {"serving": {"speedup": 2.9}})["benchmarks"][0]
        new = payload(1.0, {"serving": {"speedup": 2.0}})["benchmarks"][0]
        _, regressions = compare_benchmarks.compare({"b": old}, {"b": new},
                                                    threshold=0.2)
        assert len(regressions) == 1
        assert "serving.speedup" in regressions[0]

    def test_per_bucket_throughput_drop_flagged(self):
        bucket = "buckets.n30/d12x6/float64.regions_per_sec"
        old = payload(1.0, {"scheduler": {"buckets": {
            "n30/d12x6/float64": {"regions_per_sec": 1000.0}}}})
        new = payload(1.0, {"scheduler": {"buckets": {
            "n30/d12x6/float64": {"regions_per_sec": 700.0}}}})
        _, regressions = compare_benchmarks.compare(
            {"b": old["benchmarks"][0]}, {"b": new["benchmarks"][0]},
            threshold=0.2)
        assert len(regressions) == 1
        assert bucket in regressions[0]

    def test_latency_increase_beyond_threshold_flagged(self):
        old = payload(1.0, {"latency": {"p99_latency": 0.010}})
        new = payload(1.0, {"latency": {"p99_latency": 0.015}})
        rows, regressions = compare_benchmarks.compare(
            {"b": old["benchmarks"][0]}, {"b": new["benchmarks"][0]},
            threshold=0.2)
        assert len(regressions) == 1
        assert "latency.p99_latency" in regressions[0]
        assert "10.00ms -> 15.00ms" in regressions[0]

    def test_latency_decrease_is_an_improvement(self):
        old = payload(1.0, {"latency": {"p50_latency": 0.010,
                                        "p99_latency": 0.020}})
        new = payload(1.0, {"latency": {"p50_latency": 0.004,
                                        "p99_latency": 0.008}})
        rows, regressions = compare_benchmarks.compare(
            {"b": old["benchmarks"][0]}, {"b": new["benchmarks"][0]},
            threshold=0.2)
        assert regressions == []
        assert any("p50_latency" in r for r in rows)

    def test_zero_latency_baseline_skipped(self):
        old = payload(1.0, {"latency": {"p99_latency": 0.0}})
        new = payload(1.0, {"latency": {"p99_latency": 0.5}})
        rows, regressions = compare_benchmarks.compare(
            {"b": old["benchmarks"][0]}, {"b": new["benchmarks"][0]},
            threshold=0.2)
        assert regressions == []

    def test_gauge_improvement_not_flagged(self):
        old = payload(1.0, {"speedup": 2.0})["benchmarks"][0]
        new = payload(1.0, {"speedup": 3.0})["benchmarks"][0]
        rows, regressions = compare_benchmarks.compare({"b": old}, {"b": new},
                                                       threshold=0.2)
        assert regressions == []
        assert any("speedup" in r for r in rows)


class TestMain:
    def test_exit_codes_and_summary(self, tmp_path, capsys):
        baseline = write(tmp_path, "base.json",
                         payload(1.0, {"speedup": 2.0}))
        current = write(tmp_path, "cur.json",
                        payload(1.5, {"speedup": 1.0}))
        # Default: regressions are surfaced, exit 0 (nightly must not
        # fail on shared-runner noise).
        assert compare_benchmarks.main([str(baseline), str(current)]) == 0
        out = capsys.readouterr().out
        assert "2 regression(s) beyond 20%" in out
        assert ":warning:" in out
        # --fail-on-regression flips the exit code.
        assert compare_benchmarks.main(
            [str(baseline), str(current), "--fail-on-regression"]) == 1

    def test_clean_run(self, tmp_path, capsys):
        baseline = write(tmp_path, "base.json", payload(1.0))
        current = write(tmp_path, "cur.json", payload(1.0))
        assert compare_benchmarks.main([str(baseline), str(current)]) == 0
        assert "No regressions beyond 20%" in capsys.readouterr().out

    def test_disjoint_benchmarks(self, tmp_path, capsys):
        baseline = write(tmp_path, "base.json", payload(1.0, name="a"))
        current = write(tmp_path, "cur.json", payload(1.0, name="b"))
        assert compare_benchmarks.main([str(baseline), str(current)]) == 0
        assert "No overlapping benchmarks" in capsys.readouterr().out


class TestMissingBaseline:
    def test_falls_back_to_seed_baseline(self, tmp_path, capsys):
        seed = write(tmp_path, "seed.json", payload(1.0, {"speedup": 2.0}))
        current = write(tmp_path, "cur.json", payload(1.0, {"speedup": 2.1}))
        assert compare_benchmarks.main(
            [str(tmp_path / "missing.json"), str(current),
             "--seed-baseline", str(seed)]) == 0
        out = capsys.readouterr().out
        assert "committed seed baseline" in out
        assert "speedup" in out

    def test_no_baseline_at_all_is_explicit(self, tmp_path, capsys):
        current = write(tmp_path, "cur.json",
                        payload(1.0, {"serving": {"speedup": 2.9},
                                      "latency": {"p99_latency": 0.010}}))
        assert compare_benchmarks.main(
            [str(tmp_path / "missing.json"), str(current),
             "--seed-baseline", str(tmp_path / "also-missing.json")]) == 0
        out = capsys.readouterr().out
        assert "**No baseline**" in out
        assert "serving.speedup" in out       # gauges still surfaced
        assert "latency.p99_latency" in out
        assert "10.00ms" in out

    def test_committed_seed_baseline_exists_and_loads(self):
        assert compare_benchmarks.SEED_BASELINE.is_file(), (
            "benchmarks/baselines/benchmark-seed.json must be committed "
            "so a fresh clone's first nightly has a diff target")
        baseline = compare_benchmarks.load_benchmarks(
            compare_benchmarks.SEED_BASELINE)
        assert baseline, "seed baseline holds no benchmarks"
        gauges = [g for bench in baseline.values()
                  for g in compare_benchmarks.iter_gauges(
                      bench.get("extra_info", {}))]
        assert gauges, "seed baseline carries no speedup/throughput gauges"


class TestTopKernels:
    EXTRA = {"backend": {
        "speedup": 1.4,
        "top_kernels": [
            {"kernel": "F:matmul#12", "seconds": 0.0123, "bytes": 1048576},
            {"kernel": "B:fused_gate#3", "seconds": 0.0088, "bytes": 524288},
        ]}}

    def test_top_kernels_rendered_in_summary(self, tmp_path, capsys):
        baseline = write(tmp_path, "base.json", payload(1.0, self.EXTRA))
        current = write(tmp_path, "cur.json", payload(1.0, self.EXTRA))
        assert compare_benchmarks.main([str(baseline), str(current)]) == 0
        out = capsys.readouterr().out
        assert "Hottest replay kernels" in out
        assert "F:matmul#12" in out
        assert "0.0123s" in out

    def test_top_kernels_limited_to_five(self, capsys):
        many = {"profile": {"top_kernels": [
            {"kernel": f"F:op#{i}", "seconds": 0.01 - i * 1e-3, "bytes": 0}
            for i in range(8)]}}
        compare_benchmarks.print_top_kernels(
            {"b": {"extra_info": many}})
        out = capsys.readouterr().out
        assert "F:op#4" in out
        assert "F:op#5" not in out

    def test_no_top_kernels_no_section(self, capsys):
        compare_benchmarks.print_top_kernels({"b": {"extra_info": {}}})
        assert "Hottest" not in capsys.readouterr().out
