"""Tests for the experiment harness: profiles, caching, registry,
formatters. Heavy paper-scale runs live in benchmarks/, not here."""

import numpy as np
import pytest

from repro.data import CityConfig, generate_city
from repro.eval.crossval import FoldedMetrics
from repro.eval.tasks import TaskResult
from repro.experiments import (
    EXPERIMENTS,
    MODEL_ORDER,
    PROFILES,
    available_experiments,
    compute_embeddings,
    evaluate_model,
    get_profile,
    run_experiment,
)
from repro.experiments.common import ExperimentProfile


@pytest.fixture(scope="module")
def tiny_city():
    return generate_city(CityConfig(name="tiny", n_regions=20,
                                    total_trips=40000, poi_total=1500), seed=9)


@pytest.fixture
def tiny_profile():
    return ExperimentProfile("test", hafusion_epochs=3, baseline_epochs=3,
                             seed=9, n_splits=4)


class TestProfiles:
    def test_known_tiers(self):
        assert set(PROFILES) == {"smoke", "quick", "full"}
        assert PROFILES["full"].hafusion_epochs == 2500  # the paper's schedule

    def test_get_profile_passthrough(self, tiny_profile):
        assert get_profile(tiny_profile) is tiny_profile
        assert get_profile("smoke").name == "smoke"

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError):
            get_profile("turbo")


class TestComputeEmbeddings:
    def test_hafusion_tiny(self, tiny_city, tiny_profile):
        result = compute_embeddings(
            "hafusion", tiny_city, profile=tiny_profile, use_cache=False,
            config_overrides={"d": 16, "d_prime": 8, "conv_channels": 2,
                              "memory_size": 4, "num_heads": 2,
                              "intra_layers": 1, "inter_layers": 1,
                              "fusion_layers": 1})
        assert result.embeddings.shape == (20, 16)
        assert result.train_seconds > 0
        assert not result.from_cache

    def test_baseline_tiny(self, tiny_city, tiny_profile):
        result = compute_embeddings("mvure", tiny_city, profile=tiny_profile,
                                    use_cache=False, config_overrides={"d": 8})
        assert result.embeddings.shape == (20, 8)

    def test_view_subset_override(self, tiny_city, tiny_profile):
        result = compute_embeddings(
            "hafusion", tiny_city, profile=tiny_profile, use_cache=False,
            config_overrides={"d": 16, "d_prime": 8, "conv_channels": 2,
                              "memory_size": 4, "num_heads": 2,
                              "intra_layers": 1, "inter_layers": 1,
                              "fusion_layers": 1,
                              "view_names": ["poi", "landuse"]})
        assert result.embeddings.shape == (20, 16)

    def test_cache_roundtrip(self, tiny_city, tiny_profile, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        overrides = {"d": 8}
        first = compute_embeddings("mvure", tiny_city, profile=tiny_profile,
                                   use_cache=True, config_overrides=overrides)
        second = compute_embeddings("mvure", tiny_city, profile=tiny_profile,
                                    use_cache=True, config_overrides=overrides)
        assert not first.from_cache
        assert second.from_cache
        assert np.allclose(first.embeddings, second.embeddings)
        assert second.train_seconds == pytest.approx(first.train_seconds)

    def test_cache_key_distinguishes_overrides(self, tiny_city, tiny_profile,
                                               tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        a = compute_embeddings("mvure", tiny_city, profile=tiny_profile,
                               use_cache=True, config_overrides={"d": 8})
        b = compute_embeddings("mvure", tiny_city, profile=tiny_profile,
                               use_cache=True, config_overrides={"d": 16})
        assert not b.from_cache
        assert a.embeddings.shape != b.embeddings.shape

    def test_embeddings_are_float32_trained(self, tiny_city, tiny_profile):
        result = compute_embeddings("mvure", tiny_city, profile=tiny_profile,
                                    use_cache=False, config_overrides={"d": 8})
        assert result.embeddings.dtype == np.float32


class TestEvaluateModel:
    def test_standard_model_uses_plain_lasso(self, tiny_city, tiny_profile):
        from repro.experiments.common import EmbeddingResult
        rng = np.random.default_rng(0)
        emb = EmbeddingResult("mvure", "tiny", rng.standard_normal((20, 8)), 1.0, 3)
        result = evaluate_model(emb, tiny_city, "crime", profile=tiny_profile)
        assert result.task == "crime"

    def test_hrep_uses_prompted_regressor(self, tiny_city, tiny_profile):
        from repro.experiments.common import EmbeddingResult
        rng = np.random.default_rng(0)
        emb_h = EmbeddingResult("hrep", "tiny", rng.standard_normal((20, 8)), 1.0, 3)
        emb_p = EmbeddingResult("mvure", "tiny", rng.standard_normal((20, 8)), 1.0, 3)
        slow = evaluate_model(emb_h, tiny_city, "crime", profile=tiny_profile)
        fast = evaluate_model(emb_p, tiny_city, "crime", profile=tiny_profile)
        assert slow.seconds > fast.seconds  # prompt learning overhead


class TestRegistry:
    def test_every_paper_artifact_present(self):
        assert set(available_experiments()) == {
            "table3", "table4", "table5", "table6", "table7",
            "fig6", "fig7", "fig8", "fig9",
        }

    def test_specs_have_runner_and_formatter(self):
        for spec in EXPERIMENTS.values():
            assert callable(spec.runner)
            assert callable(spec.formatter)
            assert spec.paper_artifact

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("table99")

    def test_model_order_matches_paper(self):
        assert MODEL_ORDER == ("mvure", "mgfn", "region_dcl", "hrep", "hafusion")


def _fake_task_result(task, mae=10.0, rmse=12.0, r2=0.5):
    metrics = FoldedMetrics(mean={"mae": mae, "rmse": rmse, "r2": r2},
                            std={"mae": 1.0, "rmse": 1.0, "r2": 0.01},
                            per_fold=[])
    return TaskResult(task=task, metrics=metrics, seconds=0.01)


class TestFormatters:
    def test_format_table3(self):
        from repro.experiments.overall import TASKS, format_table3
        models = ("mvure", "hafusion")
        cities = ("nyc",)
        results = {t: {"nyc": {"mvure": _fake_task_result(t, 20, 25, 0.4),
                               "hafusion": _fake_task_result(t, 10, 12, 0.6)}}
                   for t in TASKS}
        text = format_table3({"results": results, "cities": cities,
                              "models": models, "profile": "test"})
        assert "HAFusion" in text and "Improvement" in text
        assert "Table III" in text

    def test_improvement_computation(self):
        from repro.experiments.overall import improvement_over_best_baseline
        per_model = {"mvure": _fake_task_result("crime", 20, 25, 0.4),
                     "hafusion": _fake_task_result("crime", 10, 12, 0.6)}
        assert improvement_over_best_baseline(per_model, "mae") == pytest.approx(50.0)
        assert improvement_over_best_baseline(per_model, "r2") == pytest.approx(50.0)

    def test_format_table6(self):
        from repro.experiments.ablation import format_table6
        results = {"HAFusion": {t: _fake_task_result(t)
                                for t in ("checkin", "crime", "service_call")}}
        text = format_table6({"results": results, "profile": "t", "city": "nyc"})
        assert "Table VI" in text

    def test_format_fig8(self):
        from repro.experiments.density import format_fig8
        results = {m: {"manhattan": 0.8, "staten_island": 0.3}
                   for m in MODEL_ORDER}
        text = format_fig8({"results": results, "profile": "t",
                            "areas": ("manhattan", "staten_island"),
                            "models": MODEL_ORDER})
        assert "+0.500" in text  # the drop column

    def test_cli_list(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "fig9" in out
