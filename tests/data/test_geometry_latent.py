"""Tests for region geometry and the latent functionality model."""

import networkx as nx
import numpy as np
import pytest

from repro.data import ARCHETYPES, generate_geometry, generate_latent


class TestGeometry:
    def test_centroid_count(self, rng):
        geo = generate_geometry(50, rng)
        assert geo.centroids.shape == (50, 2)
        assert geo.n_regions == 50

    def test_positive_areas(self, rng):
        geo = generate_geometry(30, rng)
        assert (geo.areas > 0).all()

    def test_distance_matrix_properties(self, rng):
        geo = generate_geometry(20, rng)
        assert np.allclose(np.diag(geo.distances), 0.0)
        assert np.allclose(geo.distances, geo.distances.T)
        assert (geo.distances >= 0).all()

    def test_triangle_inequality_sampled(self, rng):
        geo = generate_geometry(15, rng)
        d = geo.distances
        for _ in range(30):
            i, j, k = rng.integers(0, 15, 3)
            assert d[i, k] <= d[i, j] + d[j, k] + 1e-9

    def test_adjacency_is_connected(self, rng):
        geo = generate_geometry(64, rng)
        assert nx.is_connected(geo.adjacency)

    def test_adjacency_matrix_symmetric_no_self_loops(self, rng):
        geo = generate_geometry(25, rng)
        adj = geo.adjacency_matrix()
        assert np.allclose(adj, adj.T)
        assert np.allclose(np.diag(adj), 0.0)

    def test_neighbors_sorted(self, rng):
        geo = generate_geometry(25, rng)
        nbrs = geo.neighbors(0)
        assert nbrs == sorted(nbrs)
        assert len(nbrs) >= 1

    def test_tiny_city_fallback(self, rng):
        geo = generate_geometry(3, rng)
        assert nx.is_connected(geo.adjacency)

    def test_invalid_region_count(self, rng):
        with pytest.raises(ValueError):
            generate_geometry(0, rng)


class TestLatent:
    def test_mixtures_are_distributions(self, rng):
        geo = generate_geometry(40, rng)
        latent = generate_latent(geo, rng)
        assert latent.functionality.shape == (40, len(ARCHETYPES))
        assert (latent.functionality >= 0).all()
        assert np.allclose(latent.functionality.sum(axis=1), 1.0)

    def test_population_positive(self, rng):
        geo = generate_geometry(40, rng)
        latent = generate_latent(geo, rng)
        assert (latent.population > 0).all()

    def test_suburban_less_dense(self, rng):
        geo = generate_geometry(60, rng)
        dense = generate_latent(geo, np.random.default_rng(1), density_profile="dense")
        sub = generate_latent(geo, np.random.default_rng(1), density_profile="suburban")
        assert sub.population.mean() < 0.5 * dense.population.mean()

    def test_suburban_is_residential_heavy(self, rng):
        geo = generate_geometry(60, rng)
        sub = generate_latent(geo, rng, density_profile="suburban")
        shares = sub.functionality.mean(axis=0)
        assert shares[ARCHETYPES.index("residential")] > shares[ARCHETYPES.index("entertainment")]

    def test_unknown_profile_rejected(self, rng):
        geo = generate_geometry(10, rng)
        with pytest.raises(ValueError):
            generate_latent(geo, rng, density_profile="rural")

    def test_spatial_autocorrelation(self, rng):
        # Nearby regions should have more similar functionality than
        # distant ones (smooth archetype fields).
        geo = generate_geometry(100, rng)
        latent = generate_latent(geo, rng)
        f = latent.functionality
        d = geo.distances
        sim = f @ f.T
        near = d < np.quantile(d[d > 0], 0.1)
        far = d > np.quantile(d, 0.9)
        np.fill_diagonal(near, False)
        assert sim[near].mean() > sim[far].mean()

    def test_archetype_share_lookup(self, rng):
        geo = generate_geometry(10, rng)
        latent = generate_latent(geo, rng)
        share = latent.archetype_share("residential")
        assert share.shape == (10,)
        with pytest.raises(ValueError):
            latent.archetype_share("nonexistent")
