"""Tests for POI / land-use / mobility / building / target generators."""

import numpy as np
import pytest

from repro.data import (
    ARCHETYPES,
    POI_CATEGORIES,
    compatibility_matrix,
    generate_buildings,
    generate_geometry,
    generate_landuse_counts,
    generate_latent,
    generate_mobility,
    generate_poi_counts,
    generate_targets,
    landuse_loading_matrix,
    poi_affinity_matrix,
)


@pytest.fixture
def small_city(rng):
    geo = generate_geometry(40, rng)
    latent = generate_latent(geo, rng)
    return geo, latent


class TestPOIs:
    def test_shape_and_nonnegative(self, small_city, rng):
        _, latent = small_city
        pois = generate_poi_counts(latent, rng)
        assert pois.shape == (40, 26)
        assert (pois >= 0).all()

    def test_total_close_to_target(self, small_city, rng):
        _, latent = small_city
        pois = generate_poi_counts(latent, rng, target_total=10000)
        assert abs(pois.sum() - 10000) < 500

    def test_affinity_matrix_shape(self):
        affinity = poi_affinity_matrix()
        assert affinity.shape == (len(POI_CATEGORIES), len(ARCHETYPES))
        assert (affinity >= 0).all()

    def test_nightlife_tracks_entertainment(self):
        # Large sample so category/archetype correlations are stable.
        rng = np.random.default_rng(99)
        geo = generate_geometry(200, rng)
        latent = generate_latent(geo, rng)
        pois = generate_poi_counts(latent, np.random.default_rng(100), target_total=200000)
        bars = pois[:, POI_CATEGORIES.index("bar")] + pois[:, POI_CATEGORIES.index("nightclub")]
        ent = latent.archetype_share("entertainment")
        res = latent.archetype_share("residential")
        # Entertainment share explains nightlife POIs better than
        # residential share does (affinity 1.2-1.4 vs 0.0-0.1).
        assert np.corrcoef(bars, ent)[0, 1] > np.corrcoef(bars, res)[0, 1] + 0.2

    def test_invalid_total_rejected(self, small_city, rng):
        _, latent = small_city
        with pytest.raises(ValueError):
            generate_poi_counts(latent, rng, target_total=0)


class TestLandUse:
    def test_shape(self, small_city, rng):
        _, latent = small_city
        landuse = generate_landuse_counts(latent, rng, n_categories=11)
        assert landuse.shape == (40, 11)
        assert (landuse >= 0).all()

    def test_category_count_respected(self, small_city, rng):
        _, latent = small_city
        for n_cats in (11, 12, 23):
            assert generate_landuse_counts(latent, rng, n_categories=n_cats).shape[1] == n_cats

    def test_loading_matrix_covers_archetypes(self, rng):
        loading = landuse_loading_matrix(23, rng)
        # Every archetype must be the primary of at least one category.
        primary = loading.argmax(axis=0)
        assert loading.shape == (23, len(ARCHETYPES))
        assert (loading.max(axis=0) > 0.5).all()

    def test_too_few_categories_rejected(self, small_city, rng):
        _, latent = small_city
        with pytest.raises(ValueError):
            generate_landuse_counts(latent, rng, n_categories=2)


class TestMobility:
    def test_matrix_shape_and_scale(self, small_city, rng):
        geo, latent = small_city
        mob = generate_mobility(geo, latent, rng, total_trips=50000)
        assert mob.matrix.shape == (40, 40)
        assert (mob.matrix >= 0).all()
        assert abs(mob.total_trips - 50000) / 50000 < 0.2

    def test_hourly_sums_to_matrix(self, small_city, rng):
        geo, latent = small_city
        mob = generate_mobility(geo, latent, rng, total_trips=20000)
        assert mob.hourly.shape == (24, 40, 40)
        # Stochastic rounding keeps the totals within ~1 trip per cell.
        assert abs(mob.hourly.sum() - mob.matrix.sum()) < 0.05 * mob.matrix.sum() + 1600

    def test_distance_decay(self, small_city):
        geo, latent = small_city
        mob = generate_mobility(geo, latent, np.random.default_rng(3),
                                total_trips=1e6, noise_level=0.0)
        d = geo.distances
        near = (d > 0) & (d < np.quantile(d[d > 0], 0.2))
        far = d > np.quantile(d, 0.8)
        assert mob.matrix[near].mean() > mob.matrix[far].mean()

    def test_compatibility_matrix_positive(self):
        compat = compatibility_matrix()
        assert compat.shape == (len(ARCHETYPES), len(ARCHETYPES))
        assert (compat > 0).all()
        # Commuting residential -> office must be among the strongest.
        idx_r = ARCHETYPES.index("residential")
        idx_o = ARCHETYPES.index("office")
        assert compat[idx_r, idx_o] == compat.max()

    def test_inflow_outflow_consistency(self, small_city, rng):
        geo, latent = small_city
        mob = generate_mobility(geo, latent, rng, total_trips=10000)
        assert mob.outflow().sum() == pytest.approx(mob.matrix.sum())
        assert mob.inflow().sum() == pytest.approx(mob.matrix.sum())

    def test_invalid_trip_total(self, small_city, rng):
        geo, latent = small_city
        with pytest.raises(ValueError):
            generate_mobility(geo, latent, rng, total_trips=0)

    def test_large_volume_normal_approximation(self, small_city, rng):
        geo, latent = small_city
        mob = generate_mobility(geo, latent, rng, total_trips=5e9)
        assert np.isfinite(mob.matrix).all()
        assert (mob.matrix >= 0).all()


class TestBuildings:
    def test_groups_per_region(self, small_city, rng):
        _, latent = small_city
        buildings = generate_buildings(latent, rng)
        assert buildings.n_regions == 40
        assert all(len(g) >= 1 for g in buildings.group_features)

    def test_stacked_alignment(self, small_city, rng):
        _, latent = small_city
        buildings = generate_buildings(latent, rng)
        features, index = buildings.stacked()
        assert len(features) == len(index)
        assert set(index) == set(range(40))

    def test_weak_functional_signal(self, small_city, rng):
        # Building features must NOT separate functionality strongly:
        # correlation of any feature with any archetype stays modest.
        _, latent = small_city
        buildings = generate_buildings(latent, rng, functional_signal=0.25)
        features, index = buildings.stacked()
        region_means = np.stack([features[index == i].mean(axis=0) for i in range(40)])
        best = 0.0
        for a in range(latent.functionality.shape[1]):
            for f in range(region_means.shape[1]):
                best = max(best, abs(np.corrcoef(latent.functionality[:, a],
                                                 region_means[:, f])[0, 1]))
        assert best < 0.85


class TestTargets:
    def test_shapes_and_nonnegative(self, small_city, rng):
        geo, latent = small_city
        mob = generate_mobility(geo, latent, rng, total_trips=100000)
        targets = generate_targets(latent, mob, rng)
        for task in ("checkin", "crime", "service_call"):
            values = targets.task(task)
            assert values.shape == (40,)
            assert (values >= 0).all()

    def test_checkin_tracks_inflow(self, small_city, rng):
        geo, latent = small_city
        mob = generate_mobility(geo, latent, rng, total_trips=100000)
        targets = generate_targets(latent, mob, rng)
        assert np.corrcoef(targets.checkin, mob.inflow())[0, 1] > 0.5

    def test_service_tracks_population(self, small_city, rng):
        geo, latent = small_city
        mob = generate_mobility(geo, latent, rng, total_trips=100000)
        targets = generate_targets(latent, mob, rng)
        assert np.corrcoef(targets.service_call, latent.population)[0, 1] > 0.5

    def test_train_checkin_matrix_shape(self, small_city, rng):
        geo, latent = small_city
        mob = generate_mobility(geo, latent, rng, total_trips=100000)
        targets = generate_targets(latent, mob, rng)
        assert targets.checkin_categories_train.shape == (40, 10)

    def test_train_period_differs_from_eval(self, small_city, rng):
        geo, latent = small_city
        mob = generate_mobility(geo, latent, rng, total_trips=100000)
        targets = generate_targets(latent, mob, rng)
        train_total = targets.checkin_categories_train.sum(axis=1)
        assert not np.allclose(train_total, targets.checkin)

    def test_unknown_task_rejected(self, small_city, rng):
        geo, latent = small_city
        mob = generate_mobility(geo, latent, rng, total_trips=10000)
        targets = generate_targets(latent, mob, rng)
        with pytest.raises(KeyError):
            targets.task("population")
