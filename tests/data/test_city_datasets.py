"""Tests for city assembly, presets, and view feature matrices."""

import numpy as np
import pytest

from repro.data import (
    CITY_PRESETS,
    CityConfig,
    ViewSet,
    available_cities,
    generate_city,
    load_city,
    normalize_counts,
)


class TestNormalizeCounts:
    def test_columns_standardized(self, rng):
        counts = rng.poisson(20, size=(50, 8)).astype(float)
        normalized = normalize_counts(counts)
        assert np.allclose(normalized.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(normalized.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_zeroed(self):
        counts = np.ones((10, 3))
        normalized = normalize_counts(counts)
        assert np.allclose(normalized, 0.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            normalize_counts(np.array([[-1.0, 2.0]]))

    def test_1d_rejected(self):
        with pytest.raises(ValueError):
            normalize_counts(np.ones(5))


class TestViewSet:
    def _make(self, rng):
        return ViewSet(names=("a", "b"),
                       matrices=[rng.random((10, 4)), rng.random((10, 6))])

    def test_dims(self, rng):
        views = self._make(rng)
        assert views.dims() == [4, 6]
        assert views.n_regions == 10
        assert views.n_views == 2

    def test_subset(self, rng):
        views = self._make(rng)
        sub = views.subset(["b"])
        assert sub.names == ("b",)
        assert sub.dims() == [6]

    def test_subset_unknown_view(self, rng):
        with pytest.raises(KeyError):
            self._make(rng).subset(["c"])

    def test_mismatched_regions_rejected(self, rng):
        with pytest.raises(ValueError):
            ViewSet(names=("a", "b"),
                    matrices=[rng.random((10, 4)), rng.random((9, 6))])

    def test_name_count_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            ViewSet(names=("a",), matrices=[rng.random((10, 4)), rng.random((10, 6))])


class TestCityGeneration:
    def test_deterministic_per_seed(self):
        config = CityConfig(name="t", n_regions=30, total_trips=10000, poi_total=2000)
        a = generate_city(config, seed=5)
        b = generate_city(config, seed=5)
        assert np.allclose(a.mobility.matrix, b.mobility.matrix)
        assert np.allclose(a.targets.crime, b.targets.crime)

    def test_different_seeds_differ(self):
        config = CityConfig(name="t", n_regions=30, total_trips=10000, poi_total=2000)
        a = generate_city(config, seed=5)
        b = generate_city(config, seed=6)
        assert not np.allclose(a.poi_counts, b.poi_counts)

    def test_views_contract(self):
        config = CityConfig(name="t", n_regions=25, landuse_categories=12,
                            total_trips=5000, poi_total=1500)
        city = generate_city(config, seed=1)
        views = city.views()
        assert views.names == ("mobility", "poi", "landuse")
        # Mobility features concatenate outflow and inflow profiles (2n).
        assert views.dims() == [50, 26, 12]
        assert views.raw is not None
        assert (views.raw[0] == city.mobility.matrix).all()

    def test_summary_statistics(self):
        config = CityConfig(name="t", n_regions=25, total_trips=5000, poi_total=1500)
        summary = generate_city(config, seed=1).summary()
        assert summary["regions"] == 25
        assert summary["poi_categories"] == 26

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            CityConfig(name="bad", n_regions=2)
        with pytest.raises(ValueError):
            CityConfig(name="bad", n_regions=10, landuse_categories=1)


class TestPresets:
    def test_all_presets_listed(self):
        assert set(available_cities()) == set(CITY_PRESETS)
        for expected in ("nyc", "chi", "sf", "nyc_360", "manhattan", "staten_island"):
            assert expected in CITY_PRESETS

    def test_paper_table2_sizes(self):
        assert CITY_PRESETS["nyc"].n_regions == 180
        assert CITY_PRESETS["chi"].n_regions == 77
        assert CITY_PRESETS["sf"].n_regions == 175
        assert CITY_PRESETS["nyc"].landuse_categories == 11
        assert CITY_PRESETS["chi"].landuse_categories == 12
        assert CITY_PRESETS["sf"].landuse_categories == 23

    def test_unknown_city_rejected(self):
        with pytest.raises(KeyError):
            load_city("boston")

    def test_load_small_preset(self):
        city = load_city("chi", seed=3)
        assert city.n_regions == 77
        assert city.poi_counts.shape == (77, 26)

    def test_staten_island_sparser_than_manhattan(self):
        staten = load_city("staten_island", seed=3)
        manhattan = load_city("chi", seed=3)  # chi as a cheap dense reference
        per_region_staten = staten.mobility.total_trips / staten.n_regions
        per_region_dense = manhattan.mobility.total_trips / manhattan.n_regions
        assert per_region_staten < 0.01 * per_region_dense
