"""End-to-end integration tests: data → model → training → evaluation.

These exercise the full pipeline on a deliberately small city so they
stay fast, and assert *learning* behaviour (trained embeddings beat
noise, ablations construct and train) rather than absolute accuracy.
"""

import numpy as np
import pytest

from repro.baselines import make_baseline, train_baseline
from repro.core import HAFusion, HAFusionConfig, train_hafusion, train_model
from repro.data import CityConfig, generate_city
from repro.eval import evaluate_embeddings
from repro.nn.tensor import use_dtype


@pytest.fixture(scope="module")
def city():
    config = CityConfig(name="integration", n_regions=36,
                        total_trips=400000, poi_total=4000,
                        mobility_noise=0.2)
    return generate_city(config, seed=11)


@pytest.fixture(scope="module")
def small_config():
    return HAFusionConfig(d=32, d_prime=16, conv_channels=4, memory_size=8,
                          num_heads=2, intra_layers=1, inter_layers=1,
                          fusion_layers=1, epochs=120, dropout=0.1)


@pytest.fixture(scope="module")
def trained(city, small_config):
    with use_dtype(np.float32):
        model, history = train_hafusion(city, small_config, seed=11)
        embeddings = model.embed(city.views())
    return model, history, embeddings


class TestEndToEnd:
    def test_training_converges(self, trained):
        _, history, _ = trained
        assert history.final_loss < 0.6 * history.losses[0]

    def test_embeddings_beat_random_features(self, city, trained):
        _, _, embeddings = trained
        rng = np.random.default_rng(0)
        noise = rng.standard_normal(embeddings.shape)
        for task in ("checkin", "crime", "service_call"):
            learned = evaluate_embeddings(embeddings, city, task).r2
            random_r2 = evaluate_embeddings(noise, city, task).r2
            assert learned > random_r2, f"learned embeddings lost to noise on {task}"

    def test_embeddings_encode_mobility_volume(self, city, trained):
        # Linear probe: log inflow must be recoverable from the
        # embedding (the mobility view + KL loss should put it there).
        _, _, embeddings = trained
        inflow = np.log1p(city.mobility.inflow())
        design = np.column_stack([embeddings, np.ones(len(embeddings))])
        coef, *_ = np.linalg.lstsq(design, inflow, rcond=None)
        residual = inflow - design @ coef
        r2 = 1 - residual.var() / inflow.var()
        assert r2 > 0.5

    def test_float32_training_is_finite(self, trained):
        _, _, embeddings = trained
        assert np.isfinite(embeddings).all()

    def test_view_weights_are_distribution(self, trained):
        model, _, _ = trained
        weights = model.fusion.view_weights
        assert weights is not None
        assert weights.sum() == pytest.approx(1.0, abs=1e-5)


class TestAblationsTrain:
    @pytest.mark.parametrize("overrides", [
        {"fusion": "sum"},
        {"fusion": "concat"},
        {"intra_attention": "vanilla"},
        {"inter_attention": "vanilla"},
    ])
    def test_ablation_variant_trains(self, city, small_config, overrides):
        config = small_config.with_overrides(epochs=10, **overrides)
        with use_dtype(np.float32):
            model, history = train_hafusion(city, config, seed=11)
        assert history.improved()

    def test_view_ablation_trains(self, city, small_config):
        config = small_config.with_overrides(epochs=10)
        with use_dtype(np.float32):
            model, history = train_hafusion(city, config, seed=11,
                                            view_names=["poi", "landuse"])
        assert history.improved()
        assert model.n_views == 2


class TestBaselinesEndToEnd:
    @pytest.mark.parametrize("name", ["mvure", "mgfn", "region_dcl", "hrep"])
    def test_baseline_full_pipeline(self, city, name):
        with use_dtype(np.float32):
            model = make_baseline(name, city, seed=11, d=16)
            result = train_baseline(model, epochs=40)
            embeddings = model.embed()
        assert result.improved()
        outcome = evaluate_embeddings(embeddings, city, "checkin")
        assert np.isfinite(outcome.r2)

    def test_dafusion_adapter_full_pipeline(self, city):
        with use_dtype(np.float32):
            model = make_baseline("mvure-dafusion", city, seed=11, d=16)
            result = train_baseline(model, epochs=40)
            embeddings = model.embed()
        assert result.improved()
        assert embeddings.shape == (36, 16)


class TestDeterminism:
    def test_same_seed_same_pipeline(self, city, small_config):
        config = small_config.with_overrides(epochs=8)
        with use_dtype(np.float32):
            _, _ = train_hafusion(city, config, seed=3)
            a = train_hafusion(city, config, seed=3)[0].embed(city.views())
            b = train_hafusion(city, config, seed=3)[0].embed(city.views())
        assert np.allclose(a, b)

    def test_different_seed_differs(self, city, small_config):
        config = small_config.with_overrides(epochs=8)
        with use_dtype(np.float32):
            a = train_hafusion(city, config, seed=3)[0].embed(city.views())
            b = train_hafusion(city, config, seed=4)[0].embed(city.views())
        assert not np.allclose(a, b)
