"""Crash-safe resumable training: the bit-identical resume gate.

The acceptance criterion of the checkpoint subsystem: for eager and
compiled (serial + threaded backend) training alike, kill the run at
epoch k, resume from disk, and the final parameters and embeddings must
match an uninterrupted run **exactly** (``max|Δ| = 0``) — plus the
failure-mode matrix around it: crash mid-epoch, crash mid-checkpoint-
write (atomicity), corrupted newest checkpoint (fallback), SIGTERM
preemption, and non-finite numerics.  Every crash is scripted by the
deterministic :class:`repro.train.TrainFaultPlan`, not a racing shell.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import HAFusionConfig, train_hafusion
from repro.core.engine import BatchedTrainer
from repro.core.trainer import TrainingHistory, run_training_loop, train_model
from repro.data import CityConfig, generate_city
from repro.nn import SGD, Linear, Parameter
from repro.train import (
    Checkpointer,
    CheckpointError,
    CheckpointStore,
    InjectedTrainFault,
    NumericalError,
    TrainFaultPlan,
    TrainFaultSpec,
    TrainingPreempted,
    read_checkpoint,
    write_checkpoint,
)

#: One tiny-but-complete model family for every test in this file (and
#: for the subprocess twin, which must rebuild it identically).
CITY = dict(name="ckpt", n_regions=14, total_trips=4000, poi_total=900)
CITY_SEED = 3
CFG = dict(d=16, d_prime=8, conv_channels=4, memory_size=6, num_heads=2,
           intra_layers=1, inter_layers=1, fusion_layers=1, epochs=8,
           dropout=0.1, lr=5e-4)
SEED = 7


@pytest.fixture(scope="module")
def city():
    return generate_city(CityConfig(**CITY), seed=CITY_SEED)


@pytest.fixture(scope="module")
def config():
    return HAFusionConfig(**CFG)


def _reference(city, config, compiled):
    model, history = train_hafusion(city, config, seed=SEED,
                                    compiled=compiled)
    return model.embed(city.views()), history


# ======================================================================
# Fault plan semantics
# ======================================================================

class TestTrainFaultPlan:
    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            TrainFaultSpec("explode")
        with pytest.raises(ValueError, match="when"):
            TrainFaultSpec("fail", when="sometime")
        with pytest.raises(ValueError, match="seconds"):
            TrainFaultSpec("delay", seconds=-1.0)

    def test_selectors_are_conjunctive(self):
        spec = TrainFaultSpec("fail", epoch=3, attempt=2, when="after_step")
        assert spec.matches(3, 2, "after_step")
        assert not spec.matches(3, 2, "before_step")
        assert not spec.matches(4, 2, "after_step")
        assert not spec.matches(3, 1, "after_step")

    def test_attempt_defaults_to_first_run_only(self):
        plan = TrainFaultPlan().fail(epoch=2)
        with pytest.raises(InjectedTrainFault):
            plan.apply(2, 1, "before_step")
        plan.apply(2, 2, "before_step")     # resumed run: no refire

    def test_delay_sleeps(self):
        plan = TrainFaultPlan().delay(0.05, epoch=1)
        start = time.perf_counter()
        plan.apply(1, 1, "before_step")
        assert time.perf_counter() - start >= 0.05

    def test_plan_is_picklable(self):
        import pickle
        plan = TrainFaultPlan().kill(epoch=5).delay(0.1, epoch=2).fail()
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.specs == plan.specs


# ======================================================================
# Checkpoint file format and store
# ======================================================================

class TestCheckpointFiles:
    def test_write_read_roundtrip(self, tmp_path):
        payload = {"version": 1, "epoch": 4, "x": np.arange(5.0)}
        path = write_checkpoint(tmp_path / "c.ckpt", payload)
        loaded = read_checkpoint(path)
        assert loaded["epoch"] == 4
        np.testing.assert_array_equal(loaded["x"], payload["x"])

    def test_truncation_detected(self, tmp_path):
        path = write_checkpoint(tmp_path / "c.ckpt",
                                {"version": 1, "x": np.arange(100.0)})
        raw = path.read_bytes()
        path.write_bytes(raw[:len(raw) // 2])
        with pytest.raises(CheckpointError, match="checksum|truncated"):
            read_checkpoint(path)

    def test_bit_rot_detected(self, tmp_path):
        path = write_checkpoint(tmp_path / "c.ckpt",
                                {"version": 1, "x": np.arange(100.0)})
        raw = bytearray(path.read_bytes())
        raw[-10] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="checksum"):
            read_checkpoint(path)

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "c.ckpt"
        path.write_bytes(b"not a checkpoint at all")
        with pytest.raises(CheckpointError, match="not a checkpoint"):
            read_checkpoint(path)

    def test_version_skew_rejected(self, tmp_path):
        path = write_checkpoint(tmp_path / "c.ckpt", {"version": 999})
        with pytest.raises(CheckpointError, match="version"):
            read_checkpoint(path)


class TestCheckpointStore:
    @staticmethod
    def _payload(epoch):
        return {"version": 1, "epoch": epoch, "x": np.full(4, float(epoch))}

    def test_retention_keeps_newest_k(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        for epoch in range(1, 6):
            store.save(epoch, self._payload(epoch))
        assert store.epochs() == [4, 5]
        assert store.written == 5
        assert store.pruned == 3

    def test_corrupted_newest_falls_back(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=3)
        for epoch in (2, 4, 6):
            store.save(epoch, self._payload(epoch))
        newest = store.path_for(6)
        raw = newest.read_bytes()
        newest.write_bytes(raw[:len(raw) // 2])
        loaded = store.load_latest()
        assert loaded["epoch"] == 4
        assert store.corrupt_discarded == 1
        # The bad file is set aside for debugging, never re-read.
        assert not newest.exists()
        assert newest.with_name(newest.name + ".corrupt").exists()

    def test_empty_store_loads_nothing(self, tmp_path):
        assert CheckpointStore(tmp_path / "nowhere").load_latest() is None

    def test_mid_write_crash_preserves_previous(self, tmp_path):
        """Atomicity: a crash between fsync and rename must leave the
        previous checkpoint bytes untouched and no new checkpoint."""
        store = CheckpointStore(tmp_path, keep=3)
        store.save(2, self._payload(2))
        before = store.path_for(2).read_bytes()

        def crash():
            raise InjectedTrainFault("mid-checkpoint kill")

        with pytest.raises(InjectedTrainFault):
            store.save(4, self._payload(4), fault=crash)
        assert store.path_for(2).read_bytes() == before
        assert not store.path_for(4).exists()
        assert store.load_latest()["epoch"] == 2


# ======================================================================
# The bit-identical resume gate (eager, compiled serial, compiled
# threaded) — ISSUE 9's acceptance criterion
# ======================================================================

MODES = [
    pytest.param(False, None, id="eager"),
    pytest.param(True, "serial", id="compiled-serial"),
    pytest.param(True, "threaded", id="compiled-threaded"),
]


@pytest.mark.parametrize("compiled,backend", MODES)
def test_crash_resume_is_bit_identical(city, config, tmp_path, monkeypatch,
                                       compiled, backend):
    if backend is not None:
        monkeypatch.setenv("REPRO_PLAN_BACKEND", backend)
    ref_embeddings, ref_history = _reference(city, config, compiled)

    plan = TrainFaultPlan().fail(epoch=5, when="before_step")
    with pytest.raises(InjectedTrainFault):
        train_hafusion(city, config, seed=SEED, compiled=compiled,
                       checkpoint_dir=tmp_path, checkpoint_every=2,
                       fault_plan=plan)
    model, history = train_hafusion(city, config, seed=SEED,
                                    compiled=compiled,
                                    checkpoint_dir=tmp_path,
                                    checkpoint_every=2, resume=True,
                                    fault_plan=plan)

    assert history.losses == ref_history.losses
    embeddings = model.embed(city.views())
    assert np.abs(embeddings - ref_embeddings).max() == 0.0
    report = history.resume_report
    assert report["resume_epoch"] == 4          # newest checkpoint < crash
    assert report["attempt"] == 2
    assert report["loaded"] == 1
    assert report["wall_clock_saved_seconds"] > 0.0


@pytest.mark.parametrize("compiled", [False, True],
                         ids=["eager", "compiled"])
def test_corrupted_newest_checkpoint_falls_back_and_converges(
        city, config, tmp_path, compiled):
    """Corrupt the newest checkpoint after a crash: resume must fall
    back to the last intact one and still reach the exact reference."""
    ref_embeddings, ref_history = _reference(city, config, compiled)
    plan = TrainFaultPlan().fail(epoch=7, when="before_step")
    with pytest.raises(InjectedTrainFault):
        train_hafusion(city, config, seed=SEED, compiled=compiled,
                       checkpoint_dir=tmp_path, checkpoint_every=2,
                       fault_plan=plan)
    newest = CheckpointStore(tmp_path).path_for(6)
    raw = newest.read_bytes()
    newest.write_bytes(raw[:len(raw) // 2])

    model, history = train_hafusion(city, config, seed=SEED,
                                    compiled=compiled,
                                    checkpoint_dir=tmp_path,
                                    checkpoint_every=2, resume=True,
                                    fault_plan=plan)
    assert history.resume_report["resume_epoch"] == 4
    assert history.resume_report["corrupt_discarded"] == 1
    assert history.losses == ref_history.losses
    assert history.improved()
    assert np.abs(model.embed(city.views()) - ref_embeddings).max() == 0.0


def test_crash_mid_checkpoint_write_preserves_previous_and_resumes(
        city, config, tmp_path):
    """The ``mid_checkpoint`` fire point: die after the temp file is
    durable but before the atomic rename — epoch 2's checkpoint must
    survive byte-for-byte and carry the resume to the exact reference."""
    ref_embeddings, _ = _reference(city, config, True)
    plan = TrainFaultPlan().fail(epoch=4, when="mid_checkpoint")
    with pytest.raises(InjectedTrainFault):
        train_hafusion(city, config, seed=SEED, compiled=True,
                       checkpoint_dir=tmp_path, checkpoint_every=2,
                       fault_plan=plan)
    store = CheckpointStore(tmp_path)
    assert store.epochs() == [2]                # epoch-4 write never landed

    model, history = train_hafusion(city, config, seed=SEED, compiled=True,
                                    checkpoint_dir=tmp_path,
                                    checkpoint_every=2, resume=True,
                                    fault_plan=plan)
    assert history.resume_report["resume_epoch"] == 2
    assert np.abs(model.embed(city.views()) - ref_embeddings).max() == 0.0


def test_sigterm_preemption_checkpoints_and_resumes(city, config, tmp_path):
    """A ``preempt`` fault delivers a real SIGTERM to the process; the
    loop must finish the epoch, checkpoint, raise TrainingPreempted —
    and the resumed run must land exactly on the reference."""
    ref_embeddings, ref_history = _reference(city, config, False)
    plan = TrainFaultPlan().preempt(epoch=3, when="after_step")
    with pytest.raises(TrainingPreempted) as excinfo:
        train_hafusion(city, config, seed=SEED, checkpoint_dir=tmp_path,
                       checkpoint_every=0, fault_plan=plan)
    assert excinfo.value.epoch == 3
    assert excinfo.value.signum == signal.SIGTERM
    assert excinfo.value.checkpoint_path is not None
    assert read_checkpoint(excinfo.value.checkpoint_path)["meta"]["reason"] \
        == "preempt"

    model, history = train_hafusion(city, config, seed=SEED,
                                    checkpoint_dir=tmp_path, resume=True,
                                    fault_plan=plan)
    assert history.resume_report["resume_epoch"] == 3
    assert history.losses == ref_history.losses
    assert np.abs(model.embed(city.views()) - ref_embeddings).max() == 0.0


def test_kill_in_subprocess_then_resume(city, config, tmp_path):
    """The real thing: a ``kill`` fault SIGKILLs an actual training
    process mid-run; a fresh process resumes from disk and reaches the
    uninterrupted reference bit-for-bit, replaying zero epochs."""
    ref_embeddings, ref_history = _reference(city, config, True)
    src = Path(__file__).resolve().parents[2] / "src"
    code = f"""
import sys
from repro.core import HAFusionConfig, train_hafusion
from repro.data import CityConfig, generate_city
from repro.train import TrainFaultPlan
city = generate_city(CityConfig(**{CITY!r}), seed={CITY_SEED})
config = HAFusionConfig(**{CFG!r})
plan = TrainFaultPlan().kill(epoch=6, when="before_step")
train_hafusion(city, config, seed={SEED}, compiled=True,
               checkpoint_dir=sys.argv[1], checkpoint_every=2,
               fault_plan=plan)
"""
    env = dict(os.environ,
               PYTHONPATH=str(src) + os.pathsep + os.environ.get("PYTHONPATH", ""))
    proc = subprocess.run([sys.executable, "-c", code, str(tmp_path)],
                          env=env, capture_output=True, timeout=300)
    assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()
    assert CheckpointStore(tmp_path).epochs() == [2, 4]

    model, history = train_hafusion(city, config, seed=SEED, compiled=True,
                                    checkpoint_dir=tmp_path,
                                    checkpoint_every=2, resume=True)
    assert history.resume_report["resume_epoch"] == 4
    # Zero replayed epochs: only 5..8 ran in the resumed process.
    assert len(history.losses) - 4 == CFG["epochs"] - 4
    assert history.losses == ref_history.losses
    assert np.abs(model.embed(city.views()) - ref_embeddings).max() == 0.0


def test_batched_trainer_crash_resume_bit_identical(tmp_path):
    cities = [
        generate_city(CityConfig(name="bt10", n_regions=10, total_trips=3000,
                                 poi_total=700), seed=0),
        generate_city(CityConfig(name="bt12", n_regions=12, total_trips=3000,
                                 poi_total=700), seed=1),
    ]
    config = HAFusionConfig(**{**CFG, "epochs": 6})
    reference = BatchedTrainer(cities, config, seed=5, compiled=True)
    ref_history = reference.train(epochs=6)
    ref_embeddings = reference.embed()

    plan = TrainFaultPlan().fail(epoch=4, when="before_step")
    crashed = BatchedTrainer(cities, config, seed=5, compiled=True)
    with pytest.raises(InjectedTrainFault):
        crashed.train(epochs=6, checkpoint_dir=tmp_path, checkpoint_every=2,
                      fault_plan=plan)

    resumed = BatchedTrainer(cities, config, seed=5, compiled=True)
    history = resumed.train(epochs=6, checkpoint_dir=tmp_path,
                            checkpoint_every=2, resume=True, fault_plan=plan)
    assert history.losses == ref_history.losses
    for a, b in zip(resumed.embed(), ref_embeddings):
        assert np.abs(a - b).max() == 0.0


# ======================================================================
# Loop semantics: numerics, zero-replay, misuse
# ======================================================================

class TestLoopGuards:
    def test_non_finite_loss_checkpoints_before_abort(self, tmp_path):
        model = Linear(2, 1)
        checkpointer = Checkpointer(model, SGD(model.parameters(), lr=0.1),
                                    tmp_path)
        values = iter([1.0, 0.5, float("nan")])
        with pytest.raises(NumericalError) as excinfo:
            run_training_loop(lambda: next(values), 5,
                              checkpointer=checkpointer)
        assert excinfo.value.epoch == 3
        payload = read_checkpoint(checkpointer.store.path_for(3))
        assert payload["meta"]["reason"] == "numerical"
        assert np.isnan(payload["losses"][-1])

    def test_non_finite_gradient_names_the_parameter(self):
        p = Parameter(np.zeros(2))

        def poisoned_step():
            p.grad = np.array([np.inf, 0.0])
            return 1.0

        with pytest.raises(NumericalError) as excinfo:
            run_training_loop(poisoned_step, 3,
                              named_parameters=[("layer.weight", p)])
        assert excinfo.value.epoch == 1
        assert excinfo.value.bad_parameters == ["layer.weight"]

    def test_check_numerics_off_trains_through_nan(self):
        values = iter([1.0, float("nan"), 2.0])
        history = run_training_loop(lambda: next(values), 3,
                                    check_numerics=False)
        assert np.isnan(history.losses[1])

    def test_resume_at_completion_replays_zero_epochs(self, city, config,
                                                      tmp_path):
        model, history = train_hafusion(city, config, seed=SEED,
                                        checkpoint_dir=tmp_path,
                                        checkpoint_every=4)
        frozen = model.embed(city.views())
        resumed_model, resumed = train_hafusion(city, config, seed=SEED,
                                                checkpoint_dir=tmp_path,
                                                checkpoint_every=4,
                                                resume=True)
        assert resumed.losses == history.losses
        assert np.abs(resumed_model.embed(city.views()) - frozen).max() == 0.0

    def test_resume_requires_checkpoint_dir(self, city, config):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            train_hafusion(city, config, seed=SEED, resume=True)

    def test_resume_fresh_directory_trains_from_scratch(self, city, config,
                                                        tmp_path):
        ref_embeddings, _ = _reference(city, config, False)
        model, history = train_hafusion(city, config, seed=SEED,
                                        checkpoint_dir=tmp_path / "fresh",
                                        checkpoint_every=2, resume=True)
        assert len(history.losses) == CFG["epochs"]
        assert np.abs(model.embed(city.views()) - ref_embeddings).max() == 0.0

    def test_checkpoint_rejects_changed_hyperparameters(self, tmp_path):
        model = Linear(3, 2)
        optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9)
        checkpointer = Checkpointer(model, optimizer, tmp_path)
        checkpointer.save(1, TrainingHistory(losses=[1.0], seconds=0.1))

        other = Checkpointer(model, SGD(model.parameters(), lr=0.2,
                                        momentum=0.9), tmp_path)
        with pytest.raises(CheckpointError, match="does not fit"):
            other.resume()

    def test_rewind_without_resume_rejected(self, tmp_path):
        model = Linear(2, 2)
        checkpointer = Checkpointer(model, SGD(model.parameters(), lr=0.1),
                                    tmp_path)
        with pytest.raises(CheckpointError, match="rewind"):
            checkpointer.rewind()
