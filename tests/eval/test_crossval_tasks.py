"""Tests for cross-validation, task evaluation, and reporting."""

import numpy as np
import pytest

from repro.data import CityConfig, generate_city
from repro.eval import (
    KFold,
    cross_validated_regression,
    evaluate_all_tasks,
    evaluate_embeddings,
    format_metric_block,
    format_table,
    markdown_table,
)


class TestKFold:
    def test_partition_covers_everything_once(self):
        seen = []
        for train, test in KFold(5, seed=1).split(23):
            seen.extend(test.tolist())
            assert set(train) | set(test) == set(range(23))
            assert not set(train) & set(test)
        assert sorted(seen) == list(range(23))

    def test_fold_sizes_balanced(self):
        sizes = [len(test) for _, test in KFold(10, seed=0).split(77)]
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic_given_seed(self):
        a = [test.tolist() for _, test in KFold(4, seed=9).split(20)]
        b = [test.tolist() for _, test in KFold(4, seed=9).split(20)]
        assert a == b

    def test_different_seed_shuffles(self):
        a = [test.tolist() for _, test in KFold(4, seed=1).split(20)]
        b = [test.tolist() for _, test in KFold(4, seed=2).split(20)]
        assert a != b

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            list(KFold(10).split(5))

    def test_bad_n_splits_rejected(self):
        with pytest.raises(ValueError):
            KFold(1)


class TestCrossValidatedRegression:
    def test_strong_linear_signal(self, rng):
        x = rng.standard_normal((100, 5))
        y = x @ np.array([3.0, -1.0, 2.0, 0.0, 0.0]) * 50 + 500
        metrics = cross_validated_regression(x, y)
        assert metrics.mean["r2"] > 0.95

    def test_pure_noise_has_low_r2(self, rng):
        x = rng.standard_normal((100, 5))
        y = rng.standard_normal(100)
        metrics = cross_validated_regression(x, y)
        assert metrics.mean["r2"] < 0.3

    def test_format_string(self, rng):
        x = rng.standard_normal((50, 3))
        y = x[:, 0] * 10
        metrics = cross_validated_regression(x, y)
        formatted = metrics.format("r2")
        assert "±" in formatted

    def test_custom_model_factory(self, rng):
        class MeanModel:
            def fit(self, x, y):
                self.mean = y.mean()
                return self

            def predict(self, x):
                return np.full(len(x), self.mean)

        x = rng.standard_normal((60, 3))
        y = x[:, 0] * 10 + 5
        metrics = cross_validated_regression(x, y, model_factory=MeanModel)
        assert abs(metrics.mean["r2"]) < 0.3  # mean model ~ R2 0

    def test_row_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            cross_validated_regression(rng.standard_normal((10, 2)),
                                       rng.standard_normal(9))

    def test_per_fold_count(self, rng):
        x = rng.standard_normal((40, 3))
        y = x[:, 0]
        metrics = cross_validated_regression(x, y, n_splits=4)
        assert len(metrics.per_fold) == 4


class TestTaskEvaluation:
    @pytest.fixture(scope="class")
    def city(self):
        return generate_city(CityConfig(name="t", n_regions=30,
                                        total_trips=200000, poi_total=3000), seed=2)

    def test_evaluate_single_task(self, city, rng):
        emb = rng.standard_normal((30, 8))
        result = evaluate_embeddings(emb, city, "crime")
        assert result.task == "crime"
        assert result.seconds > 0
        assert np.isfinite(result.r2)
        assert result.mae > 0 and result.rmse > 0

    def test_informative_embedding_beats_noise(self, city, rng):
        noise = rng.standard_normal((30, 8))
        informative = np.column_stack([
            city.mobility.inflow(), city.latent.population,
            city.latent.functionality,
        ])
        r2_noise = evaluate_embeddings(noise, city, "checkin").r2
        r2_info = evaluate_embeddings(informative, city, "checkin").r2
        assert r2_info > r2_noise

    def test_all_tasks(self, city, rng):
        results = evaluate_all_tasks(rng.standard_normal((30, 8)), city)
        assert set(results) == {"checkin", "crime", "service_call"}

    def test_unknown_task_rejected(self, city, rng):
        with pytest.raises(KeyError):
            evaluate_embeddings(rng.standard_normal((30, 8)), city, "noise")

    def test_wrong_row_count_rejected(self, city, rng):
        with pytest.raises(ValueError):
            evaluate_embeddings(rng.standard_normal((29, 8)), city, "crime")


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", 1], ["yyy", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_markdown_table(self):
        text = markdown_table(["m", "r2"], [["hafusion", 0.84]])
        assert text.startswith("| m | r2 |")
        assert "| hafusion | 0.84 |" in text

    def test_format_metric_block_with_floats(self):
        text = format_metric_block({"model_a": {"mae": 1.0, "rmse": 2.0, "r2": 0.5}})
        assert "model_a" in text
        assert "MAE" in text and "R2" in text
