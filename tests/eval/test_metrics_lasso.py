"""Tests for metrics and the coordinate-descent Lasso."""

import numpy as np
import pytest

from repro.eval import Lasso, mae, r2_score, regression_report, rmse


class TestMetrics:
    def test_perfect_prediction(self, rng):
        y = rng.standard_normal(20)
        assert mae(y, y) == 0.0
        assert rmse(y, y) == 0.0
        assert r2_score(y, y) == 1.0

    def test_mae_known_value(self):
        assert mae([0.0, 0.0], [1.0, 3.0]) == 2.0

    def test_rmse_known_value(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_rmse_at_least_mae(self, rng):
        y, p = rng.standard_normal(50), rng.standard_normal(50)
        assert rmse(y, p) >= mae(y, p)

    def test_r2_of_mean_prediction_is_zero(self, rng):
        y = rng.standard_normal(30)
        assert r2_score(y, np.full(30, y.mean())) == pytest.approx(0.0)

    def test_r2_can_be_negative(self):
        assert r2_score([1.0, 2.0, 3.0], [10.0, 10.0, 10.0]) < 0.0

    def test_constant_target_edge_case(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [3.0, 3.0]) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mae([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rmse([], [])

    def test_report_contains_all(self, rng):
        y, p = rng.standard_normal(20), rng.standard_normal(20)
        report = regression_report(y, p)
        assert set(report) == {"mae", "rmse", "r2"}


class TestLasso:
    def test_recovers_sparse_signal(self, rng):
        x = rng.standard_normal((200, 20))
        true_w = np.zeros(20)
        true_w[:3] = [4.0, -2.0, 3.0]
        y = x @ true_w + rng.normal(0, 0.1, 200)
        model = Lasso(alpha=0.05, standardize=True).fit(x, y)
        assert np.allclose(model.coef_[:3], true_w[:3], atol=0.2)
        assert np.abs(model.coef_[3:]).max() < 0.1

    def test_intercept_recovered(self, rng):
        x = rng.standard_normal((100, 5))
        y = x[:, 0] * 2 + 7.5 + rng.normal(0, 0.01, 100)
        model = Lasso(alpha=0.01).fit(x, y)
        assert model.intercept_ == pytest.approx(7.5, abs=0.2)

    def test_huge_alpha_gives_zero_coefficients(self, rng):
        x = rng.standard_normal((50, 5))
        y = x[:, 0] + rng.normal(0, 0.1, 50)
        model = Lasso(alpha=1e6).fit(x, y)
        assert np.allclose(model.coef_, 0.0)
        assert model.intercept_ == pytest.approx(y.mean())

    def test_zero_alpha_matches_least_squares(self, rng):
        x = rng.standard_normal((80, 4))
        y = x @ np.array([1.0, -2.0, 0.5, 3.0]) + 2.0
        model = Lasso(alpha=0.0, max_iter=5000, tol=1e-12).fit(x, y)
        design = np.column_stack([x, np.ones(80)])
        ols = np.linalg.lstsq(design, y, rcond=None)[0]
        assert np.allclose(model.coef_, ols[:4], atol=1e-5)

    def test_standardization_invariance_of_predictions(self, rng):
        # Scaled features should not change predictions when standardizing.
        x = rng.standard_normal((60, 4))
        y = x[:, 0] * 3 + rng.normal(0, 0.1, 60)
        scaled = x * np.array([1.0, 10.0, 0.1, 100.0])
        a = Lasso(alpha=0.1, standardize=True).fit(x, y).predict(x)
        b = Lasso(alpha=0.1, standardize=True).fit(scaled, y).predict(scaled)
        assert np.allclose(a, b, atol=1e-6)

    def test_constant_feature_ignored(self, rng):
        x = rng.standard_normal((50, 3))
        x[:, 1] = 5.0
        y = x[:, 0] + rng.normal(0, 0.05, 50)
        model = Lasso(alpha=0.01).fit(x, y)
        assert model.coef_[1] == 0.0

    def test_default_is_sklearn_parity(self):
        # The paper uses sklearn's Lasso(alpha=1), which does not
        # standardize; our default must match.
        assert Lasso().standardize is False
        assert Lasso().alpha == 1.0

    def test_predict_before_fit_rejected(self, rng):
        with pytest.raises(RuntimeError):
            Lasso().predict(rng.standard_normal((5, 3)))

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            Lasso(alpha=-1.0)

    def test_dimension_checks(self, rng):
        with pytest.raises(ValueError):
            Lasso().fit(rng.standard_normal(10), rng.standard_normal(10))
        with pytest.raises(ValueError):
            Lasso().fit(rng.standard_normal((10, 2)), rng.standard_normal(9))
