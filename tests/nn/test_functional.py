"""Tests for composite functional ops."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.gradcheck import check_gradients


def _t(rng, *shape):
    return Tensor(rng.standard_normal(shape), requires_grad=True)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = _t(rng, 5, 7)
        out = F.softmax(x, axis=-1)
        assert np.allclose(out.data.sum(axis=-1), 1.0)

    def test_stability_with_large_logits(self):
        x = Tensor([[1000.0, 1000.0]])
        out = F.softmax(x)
        assert np.allclose(out.data, [[0.5, 0.5]])

    def test_gradient(self, rng):
        x = _t(rng, 3, 4)
        weights = rng.standard_normal((3, 4))
        check_gradients(lambda: (F.softmax(x, axis=-1) * weights).sum(), [x])

    def test_gradient_axis0(self, rng):
        x = _t(rng, 3, 4)
        weights = rng.standard_normal((3, 4))
        check_gradients(lambda: (F.softmax(x, axis=0) * weights).sum(), [x])

    def test_matches_log_softmax(self, rng):
        x = _t(rng, 4, 5)
        assert np.allclose(np.log(F.softmax(x).data), F.log_softmax(x).data)

    def test_log_softmax_gradient(self, rng):
        x = _t(rng, 3, 4)
        weights = rng.standard_normal((3, 4))
        check_gradients(lambda: (F.log_softmax(x, axis=-1) * weights).sum(), [x])


class TestNormalization:
    def test_l2_rows_unit_norm(self, rng):
        x = _t(rng, 4, 6)
        out = F.l2_normalize(x)
        assert np.allclose(np.linalg.norm(out.data, axis=-1), 1.0, atol=1e-5)

    def test_l2_gradient(self, rng):
        x = _t(rng, 3, 4)
        weights = rng.standard_normal((3, 4))
        check_gradients(lambda: (F.l2_normalize(x) * weights).sum(), [x])

    def test_l1_rows_sum_to_one_for_positive(self, rng):
        x = Tensor(rng.uniform(0.1, 1.0, (4, 6)), requires_grad=True)
        out = F.l1_normalize(x)
        assert np.allclose(out.data.sum(axis=-1), 1.0, atol=1e-5)

    def test_l1_gradient(self, rng):
        x = Tensor(rng.uniform(0.2, 1.0, (3, 4)), requires_grad=True)
        weights = rng.standard_normal((3, 4))
        check_gradients(lambda: (F.l1_normalize(x) * weights).sum(), [x])

    def test_l1_zero_row_safe(self):
        out = F.l1_normalize(Tensor([[0.0, 0.0]]))
        assert np.all(np.isfinite(out.data))


class TestCosineSimilarityMatrix:
    def test_diagonal_is_one(self, rng):
        x = rng.standard_normal((5, 8))
        sim = F.cosine_similarity_matrix(x)
        assert np.allclose(np.diag(sim), 1.0)

    def test_symmetric(self, rng):
        x = rng.standard_normal((5, 8))
        sim = F.cosine_similarity_matrix(x)
        assert np.allclose(sim, sim.T)

    def test_range(self, rng):
        x = rng.standard_normal((6, 4))
        sim = F.cosine_similarity_matrix(x)
        assert sim.min() >= -1.0 - 1e-9 and sim.max() <= 1.0 + 1e-9

    def test_zero_row_safe(self):
        x = np.array([[0.0, 0.0], [1.0, 0.0]])
        sim = F.cosine_similarity_matrix(x)
        assert np.all(np.isfinite(sim))

    def test_identical_rows(self):
        x = np.array([[1.0, 2.0], [2.0, 4.0]])
        sim = F.cosine_similarity_matrix(x)
        assert np.allclose(sim, 1.0)


class TestDropout:
    def test_eval_is_identity(self, rng):
        x = _t(rng, 10, 10)
        out = F.dropout(x, 0.5, training=False)
        assert out is x

    def test_zero_p_is_identity(self, rng):
        x = _t(rng, 10, 10)
        out = F.dropout(x, 0.0, training=True)
        assert out is x

    def test_expectation_preserved(self, rng):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, training=True, rng=rng)
        assert abs(out.data.mean() - 1.0) < 0.02

    def test_invalid_p_raises(self, rng):
        with pytest.raises(ValueError):
            F.dropout(_t(rng, 3), 1.0, training=True)


class TestLosses:
    def test_mse_zero_for_equal(self, rng):
        x = _t(rng, 4)
        assert F.mse_loss(x, Tensor(x.data.copy())).item() == 0.0

    def test_mse_gradient(self, rng):
        x, target = _t(rng, 5), Tensor(rng.standard_normal(5))
        check_gradients(lambda: F.mse_loss(x, target), [x])

    def test_l1_gradient(self, rng):
        x = Tensor(np.array([0.5, -1.5, 2.5]), requires_grad=True)
        target = Tensor(np.zeros(3))
        check_gradients(lambda: F.l1_loss(x, target), [x])


class TestScaledDotProductAttention:
    def test_output_shape(self, rng):
        q, k, v = _t(rng, 6, 8), _t(rng, 6, 8), _t(rng, 6, 8)
        out, weights = F.scaled_dot_product_attention(q, k, v)
        assert out.shape == (6, 8)
        assert weights.shape == (6, 6)

    def test_weights_rows_sum_to_one(self, rng):
        q, k, v = _t(rng, 6, 8), _t(rng, 6, 8), _t(rng, 6, 8)
        _, weights = F.scaled_dot_product_attention(q, k, v)
        assert np.allclose(weights.data.sum(axis=-1), 1.0)

    def test_batched_heads(self, rng):
        q, k, v = _t(rng, 4, 6, 8), _t(rng, 4, 6, 8), _t(rng, 4, 6, 8)
        out, weights = F.scaled_dot_product_attention(q, k, v)
        assert out.shape == (4, 6, 8)
        assert weights.shape == (4, 6, 6)

    def test_gradient(self, rng):
        q, k, v = _t(rng, 3, 4), _t(rng, 3, 4), _t(rng, 3, 4)

        def f():
            out, _ = F.scaled_dot_product_attention(q, k, v)
            return (out * out).sum()

        check_gradients(f, [q, k, v], atol=1e-4)

    def test_gelu_gradient(self, rng):
        x = _t(rng, 5)
        check_gradients(lambda: F.gelu(x).sum(), [x])
