"""Property-based tests (hypothesis) for the autograd engine.

These check algebraic invariants that must hold for *any* input, which is
where hand-written backward passes typically break.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import Tensor
from repro.nn import functional as F

_FLOATS = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False, width=64)


def _matrices(max_side=6):
    return arrays(np.float64, array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=max_side),
                  elements=_FLOATS)


@settings(max_examples=40, deadline=None)
@given(_matrices())
def test_softmax_rows_always_sum_to_one(x):
    out = F.softmax(Tensor(x), axis=-1)
    assert np.allclose(out.data.sum(axis=-1), 1.0, atol=1e-8)
    assert (out.data >= 0).all()


@settings(max_examples=40, deadline=None)
@given(_matrices())
def test_softmax_shift_invariance(x):
    a = F.softmax(Tensor(x), axis=-1).data
    b = F.softmax(Tensor(x + 3.21), axis=-1).data
    assert np.allclose(a, b, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(_matrices())
def test_addition_gradient_is_ones(x):
    t = Tensor(x, requires_grad=True)
    (t + 1.5).sum().backward()
    assert np.allclose(t.grad, 1.0)


@settings(max_examples=40, deadline=None)
@given(_matrices())
def test_sum_linear_in_scalar(x):
    t = Tensor(x, requires_grad=True)
    (3.0 * t).sum().backward()
    assert np.allclose(t.grad, 3.0)


@settings(max_examples=30, deadline=None)
@given(_matrices(max_side=5), st.integers(min_value=1, max_value=5))
def test_matmul_identity(x, k):
    t = Tensor(x)
    eye = Tensor(np.eye(x.shape[1]))
    assert np.allclose((t @ eye).data, x)


@settings(max_examples=30, deadline=None)
@given(_matrices(max_side=5))
def test_reshape_roundtrip_preserves_grad(x):
    t = Tensor(x, requires_grad=True)
    (t.reshape(-1).reshape(x.shape) * 2.0).sum().backward()
    assert np.allclose(t.grad, 2.0)


@settings(max_examples=30, deadline=None)
@given(_matrices(max_side=5))
def test_transpose_involution(x):
    t = Tensor(x)
    assert np.allclose(t.T.T.data, x)


@settings(max_examples=30, deadline=None)
@given(_matrices(max_side=5))
def test_l2_normalize_is_idempotent(x):
    row_norms = np.linalg.norm(x, axis=-1)
    if (row_norms < 1e-4).any():
        return  # near-zero rows are eps-clamped, not scale-invariant
    once = F.l2_normalize(Tensor(x)).data
    twice = F.l2_normalize(Tensor(once)).data
    assert np.allclose(once, twice, atol=1e-6)


@settings(max_examples=30, deadline=None)
@given(_matrices(max_side=5))
def test_layernorm_statistics(x):
    if x.shape[-1] < 2 or np.any(np.std(x, axis=-1) < 1e-8):
        return
    from repro.nn import LayerNorm
    out = LayerNorm(x.shape[-1])(Tensor(x)).data
    assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)


@settings(max_examples=30, deadline=None)
@given(_matrices(max_side=5))
def test_cosine_similarity_bounded(x):
    sim = F.cosine_similarity_matrix(x)
    assert (sim <= 1.0 + 1e-7).all() and (sim >= -1.0 - 1e-7).all()
