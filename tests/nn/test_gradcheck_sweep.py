"""Finite-difference gradcheck sweep over the whole nn substrate.

Every differentiable op in :mod:`repro.nn.functional` and every layer in
:mod:`repro.nn.layers` / :mod:`repro.nn.attention` / :mod:`repro.nn.conv`
is checked at both unbatched ``(n, d)`` and batched ``(b, n, d)`` shapes —
the property the multi-city execution engine depends on — plus the
broadcasting edge cases (1-D matmul operands, stretched singleton axes,
masked attention) that the batched paths exercise.
"""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    AvgPool2d,
    Conv2d,
    ExternalAttention,
    FeedForward,
    LayerNorm,
    Linear,
    MultiHeadSelfAttention,
    Tensor,
    TransformerEncoderBlock,
)
from repro.nn import functional as F
from repro.nn.gradcheck import check_gradients

#: (n, d) and (b, n, d) — the two shapes every op must support.
SHAPES = [(3, 4), (2, 3, 4)]

UNARY_OPS = {
    "softmax": lambda x: F.softmax(x, axis=-1),
    "softmax_axis0": lambda x: F.softmax(x, axis=0),
    "log_softmax": lambda x: F.log_softmax(x, axis=-1),
    "relu": F.relu,
    "leaky_relu": F.leaky_relu,
    "sigmoid": F.sigmoid,
    "tanh": F.tanh,
    "gelu": F.gelu,
    "l1_normalize": lambda x: F.l1_normalize(x, axis=-1),
    "l2_normalize": lambda x: F.l2_normalize(x, axis=-1),
    "exp": lambda x: x.exp(),
    "abs": lambda x: x.abs(),
    "sqrt_shifted": lambda x: (x * x + 1.0).sqrt(),
    "mean_lastaxis": lambda x: x.mean(axis=-1),
    "var": lambda x: x.var(axis=-1),
    "max_lastaxis": lambda x: x.max(axis=-1),
    "sum_multi_axis": lambda x: x.sum(axis=(-1, -2), keepdims=True),
}


@pytest.mark.parametrize("shape", SHAPES, ids=str)
@pytest.mark.parametrize("name", sorted(UNARY_OPS))
def test_unary_ops(name, shape, rng):
    op = UNARY_OPS[name]
    x = Tensor(rng.standard_normal(shape), requires_grad=True)
    check_gradients(lambda: (op(x) * op(x)).sum(), [x], atol=1e-4)


@pytest.mark.parametrize("shape", SHAPES, ids=str)
def test_scaled_dot_product_attention(shape, rng):
    tensors = [Tensor(rng.standard_normal(shape), requires_grad=True)
               for _ in range(3)]

    def func():
        out, _ = F.scaled_dot_product_attention(*tensors)
        return (out * out).sum()

    check_gradients(func, tensors, atol=1e-4)


def test_scaled_dot_product_attention_masked(rng):
    """Key-masked attention: gradients flow only through kept keys."""
    q, k, v = [Tensor(rng.standard_normal((2, 4, 3)), requires_grad=True)
               for _ in range(3)]
    keep = np.array([[1.0, 1.0, 1.0, 0.0], [1.0, 1.0, 0.0, 0.0]])
    additive = F.additive_mask(keep)[:, None, :]

    def func():
        out, _ = F.scaled_dot_product_attention(q, k, v, mask=additive)
        return (out * out).sum()

    check_gradients(func, [q, v], atol=1e-4)
    func()
    _, weights = F.scaled_dot_product_attention(q, k, v, mask=additive)
    assert np.all(weights.data[0, :, 3] == 0.0)
    assert np.all(weights.data[1, :, 2:] == 0.0)


class TestMatmulBroadcasting:
    """Edge cases of batched matmul the engine relies on."""

    def test_batched_matrix_times_vector(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        v = Tensor(rng.standard_normal(4), requires_grad=True)
        check_gradients(lambda: ((x @ v) ** 2.0).sum(), [x, v], atol=1e-4)

    def test_vector_times_batched_matrix(self, rng):
        v = Tensor(rng.standard_normal(3), requires_grad=True)
        x = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        check_gradients(lambda: ((v @ x) ** 2.0).sum(), [v, x], atol=1e-4)

    def test_broadcast_batch_dims(self, rng):
        a = Tensor(rng.standard_normal((1, 3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 4, 3)), requires_grad=True)
        check_gradients(lambda: ((a @ b) ** 2.0).sum(), [a, b], atol=1e-4)

    def test_stretched_elementwise_broadcast(self, rng):
        a = Tensor(rng.standard_normal((2, 1, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((1, 3, 1)), requires_grad=True)
        check_gradients(lambda: ((a * b) + (a + b)).sum(), [a, b], atol=1e-4)


LAYER_FACTORIES = {
    "linear": lambda rng: Linear(4, 5, rng=rng),
    "linear_nobias": lambda rng: Linear(4, 5, bias=False, rng=rng),
    "mlp": lambda rng: MLP(4, 5, hidden_features=6, rng=rng),
    "feedforward": lambda rng: FeedForward(4, 8, rng=rng),
    "layernorm": lambda rng: LayerNorm(4),
}


@pytest.mark.parametrize("shape", SHAPES, ids=str)
@pytest.mark.parametrize("name", sorted(LAYER_FACTORIES))
def test_layers(name, shape, rng):
    layer = LAYER_FACTORIES[name](rng)
    x = Tensor(rng.standard_normal(shape), requires_grad=True)
    check_gradients(lambda: (layer(x) * layer(x)).sum(),
                    [x] + layer.parameters(), atol=1e-4)


ATTENTION_SHAPES = [(3, 4), (2, 3, 4)]


@pytest.mark.parametrize("shape", ATTENTION_SHAPES, ids=str)
def test_multi_head_self_attention(shape, rng):
    attn = MultiHeadSelfAttention(4, num_heads=2, rng=rng)
    x = Tensor(rng.standard_normal(shape), requires_grad=True)
    check_gradients(lambda: (attn(x) ** 2.0).sum(),
                    [x] + attn.parameters(), atol=1e-4)


def test_multi_head_self_attention_masked(rng):
    attn = MultiHeadSelfAttention(4, num_heads=2, rng=rng)
    x = Tensor(rng.standard_normal((2, 4, 4)), requires_grad=True)
    keep = np.array([[1.0, 1.0, 1.0, 0.0], [1.0, 1.0, 0.0, 0.0]])
    check_gradients(lambda: (attn(x, mask=keep) ** 2.0).sum(),
                    [x] + attn.parameters(), atol=1e-4)


@pytest.mark.parametrize("shape", ATTENTION_SHAPES, ids=str)
def test_transformer_encoder_block(shape, rng):
    block = TransformerEncoderBlock(4, num_heads=2, dropout=0.0, rng=rng)
    x = Tensor(rng.standard_normal(shape), requires_grad=True)
    check_gradients(lambda: (block(x) ** 2.0).sum(), [x], atol=1e-4)


@pytest.mark.parametrize("shape", [(3, 2, 4), (2, 3, 2, 4)], ids=str)
def test_external_attention(shape, rng):
    ext = ExternalAttention(4, memory_size=3, rng=rng)
    x = Tensor(rng.standard_normal(shape), requires_grad=True)
    check_gradients(lambda: (ext(x) ** 2.0).sum(),
                    [x, ext.m_key, ext.m_value], atol=1e-4)


@pytest.mark.parametrize("shape", [(2, 4, 4), (2, 2, 4, 4)], ids=str)
def test_conv2d(shape, rng):
    conv = Conv2d(2, 3, kernel_size=3, rng=rng)
    x = Tensor(rng.standard_normal(shape), requires_grad=True)
    check_gradients(lambda: (conv(x) ** 2.0).sum(),
                    [x] + conv.parameters(), atol=1e-4)


@pytest.mark.parametrize("shape", [(2, 4, 4), (2, 2, 4, 4)], ids=str)
def test_avgpool2d(shape, rng):
    pool = AvgPool2d(kernel_size=3)
    x = Tensor(rng.standard_normal(shape), requires_grad=True)
    check_gradients(lambda: (pool(x) ** 2.0).sum(), [x], atol=1e-4)


# ----------------------------------------------------------------------
# Compiled-plan gradcheck: the replay kernels of repro.nn.compile must
# produce the same gradients finite differences do.  Each case compiles
# a small composite loss, replays it (record + one replay so the replay
# kernels — not just the recording backward — are what is checked), and
# compares every leaf gradient against central differences.
# ----------------------------------------------------------------------

from repro.nn import AvgPool2d as _AvgPool2d
from repro.nn import CompiledStep
from repro.nn.gradcheck import numeric_gradient


def _check_compiled_gradients(loss_fn, tensors, atol=1e-4, rtol=1e-4):
    step = CompiledStep(loss_fn)
    step.run()                      # record
    for t in tensors:
        t.zero_grad()
    step.run()                      # replay with preallocated buffers
    assert step.compile_count == 1
    for index, tensor in enumerate(tensors):
        expected = numeric_gradient(loss_fn, tensor)
        actual = (tensor.grad if tensor.grad is not None
                  else np.zeros_like(tensor.data))
        assert np.allclose(actual, expected, atol=atol, rtol=rtol), (
            f"compiled gradient mismatch for tensor #{index} "
            f"(shape {tensor.shape}): max abs err "
            f"{np.abs(actual - expected).max():.3e}")


COMPILED_CASES = {
    "mlp_chain": lambda x: (MLP(4, 5, hidden_features=6,
                                rng=np.random.default_rng(0))(x) ** 2.0).sum(),
    "softmax_logsoftmax": lambda x: (F.softmax(x, axis=-1)
                                     * F.log_softmax(x, axis=-1)).sum(),
    "reductions": lambda x: (x.max(axis=-1) * x.sum(axis=-1)
                             + x.mean(axis=-1)).abs().sum(),
    "shape_ops": lambda x: (x.swapaxes(-1, -2).reshape(x.size)[::2] ** 2.0).sum(),
    "stack_concat": lambda x: ((Tensor.stack([x, x * 2.0], axis=0) ** 2.0).sum()
                               + (Tensor.concat([x, x * 3.0], axis=-1)
                                  * Tensor.concat([x * 0.5, x], axis=-1)).sum()),
    "activations": lambda x: (x.tanh() + x.sigmoid() + x.relu()
                              + x.leaky_relu(0.2) + F.gelu(x)).sum(),
    "normalize": lambda x: (F.l1_normalize(x) * F.l2_normalize(x)).sum(),
}


@pytest.mark.parametrize("shape", SHAPES, ids=str)
@pytest.mark.parametrize("name", sorted(COMPILED_CASES))
def test_compiled_plan_gradcheck(name, shape, rng):
    case = COMPILED_CASES[name]
    x = Tensor(rng.standard_normal(shape), requires_grad=True)
    _check_compiled_gradients(lambda: case(x), [x])


def test_compiled_attention_block(rng):
    block = TransformerEncoderBlock(4, num_heads=2, dropout=0.0, rng=rng)
    x = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
    _check_compiled_gradients(lambda: (block(x) ** 2.0).sum(),
                              [x] + block.parameters())


def test_compiled_conv_pool_gate_chain(rng):
    """The RegionSA gate pattern — pool -> softmax -> ⊙ — exercises the
    fused channel-blocked kernels; gradcheck pins their backward."""
    conv = Conv2d(1, 3, kernel_size=3, rng=rng)
    pool = _AvgPool2d(kernel_size=3)
    x = Tensor(rng.standard_normal((1, 5, 5)), requires_grad=True)

    def loss_fn():
        corr = pool(conv(x))
        gate = F.softmax(corr, axis=-1)
        return (corr * gate).mean(axis=-3).sum()

    step = CompiledStep(loss_fn)
    step.run()
    assert step.plan.num_fused_chains == 1
    _check_compiled_gradients(loss_fn, [x] + conv.parameters())


def test_compiled_masked_gate_chain(rng):
    """The masked gate variant — pool -> +additive_key_mask -> softmax
    -> ⊙ — must also compile to the fused kernels (the padded-batch path
    of the execution engine); gradcheck pins the shared backward."""
    conv = Conv2d(1, 3, kernel_size=3, rng=rng)
    pool = _AvgPool2d(kernel_size=3)
    x = Tensor(rng.standard_normal((2, 1, 5, 5)), requires_grad=True)
    keep = np.ones((2, 5))
    keep[0, 3:] = 0.0
    keep[1, 4:] = 0.0
    additive = F.additive_key_mask(keep)     # (2, 1, 1, 5)

    def loss_fn():
        corr = pool(conv(x))
        gate = F.softmax(corr + Tensor(additive), axis=-1)
        return (corr * gate).mean(axis=-3).sum()

    step = CompiledStep(loss_fn)
    step.run()
    assert step.plan.num_fused_chains == 1
    _check_compiled_gradients(loss_fn, [x] + conv.parameters())


def test_compiled_external_attention(rng):
    ext = ExternalAttention(4, memory_size=3, rng=rng)
    x = Tensor(rng.standard_normal((3, 2, 4)), requires_grad=True)
    _check_compiled_gradients(lambda: (ext(x) ** 2.0).sum(),
                              [x, ext.m_key, ext.m_value])


def test_compiled_fused_layernorm_chain(rng):
    """LayerNorm lowers to a 16-node tape chain that the plan collapses
    into one fused forward/backward kernel pair; a stacked
    LN -> Linear -> LN loss must fuse both and gradcheck pins the fused
    backward (x, gamma, beta, and the interleaved Linear weights)."""
    from repro.nn import Linear as _Linear

    ln1, ln2 = LayerNorm(4), LayerNorm(4)
    lin = _Linear(4, 4, rng=rng)
    x = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)

    def loss_fn():
        return (ln2(lin(ln1(x))) ** 2.0).sum()

    step = CompiledStep(loss_fn)
    step.run()
    assert step.plan.num_fused_layernorms == 2
    _check_compiled_gradients(
        loss_fn, [x] + ln1.parameters() + lin.parameters()
        + ln2.parameters())


def test_compiled_folded_optimizer_gradcheck(rng):
    """A plan with the clip + Adam update folded in must still produce
    finite-difference-correct leaf gradients on replay.  A vanishing
    learning rate keeps the parameters at their record values (drift
    ~1e-12, far inside the 1e-4 tolerance) while the update kernels —
    including the never-scaling 1e9 clip — actually run each step."""
    from repro.nn import Adam

    mlp = MLP(4, 5, hidden_features=6, rng=rng)
    x = Tensor(rng.standard_normal((2, 3, 4)))
    params = mlp.parameters()
    optimizer = Adam(params, lr=1e-12)

    def loss_fn():
        return (mlp(x) ** 2.0).sum()

    step = CompiledStep(loss_fn, optimizer=optimizer, grad_clip=1e9)
    step.run()                      # record (+ folded update)
    for p in params:
        p.zero_grad()
    step.run()                      # replay_step: fwd+bwd+clip+Adam
    assert step.compile_count == 1
    assert step.plan.num_update_ops > 0
    assert step.plan.last_grad_norm > 0.0       # clip kernel executed
    for index, p in enumerate(params):
        expected = numeric_gradient(loss_fn, p)
        assert p.grad is not None
        assert np.allclose(p.grad, expected, atol=1e-4, rtol=1e-4), (
            f"folded-plan gradient mismatch for parameter #{index} "
            f"(shape {p.shape}): max abs err "
            f"{np.abs(p.grad - expected).max():.3e}")
