"""Tests for attention modules and convolution/pooling primitives."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    Conv2d,
    ExternalAttention,
    MultiHeadSelfAttention,
    Tensor,
    TransformerEncoderBlock,
)
from repro.nn.gradcheck import check_gradients


class TestMultiHeadSelfAttention:
    def test_output_shape(self, rng):
        attn = MultiHeadSelfAttention(8, num_heads=2, rng=rng)
        out = attn(Tensor(rng.standard_normal((5, 8))))
        assert out.shape == (5, 8)

    def test_divisibility_check(self, rng):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(7, num_heads=2, rng=rng)

    def test_records_attention_weights(self, rng):
        attn = MultiHeadSelfAttention(8, num_heads=2, rng=rng)
        attn(Tensor(rng.standard_normal((5, 8))))
        assert attn.last_attention.shape == (2, 5, 5)
        assert np.allclose(attn.last_attention.data.sum(axis=-1), 1.0)

    def test_gradients(self, rng):
        attn = MultiHeadSelfAttention(4, num_heads=2, rng=rng)
        x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        check_gradients(lambda: (attn(x) ** 2.0).sum(), [x] + attn.parameters(), atol=1e-4)

    def test_permutation_equivariance(self, rng):
        attn = MultiHeadSelfAttention(8, num_heads=2, rng=rng)
        x = rng.standard_normal((6, 8))
        perm = rng.permutation(6)
        out = attn(Tensor(x)).data
        out_perm = attn(Tensor(x[perm])).data
        assert np.allclose(out[perm], out_perm, atol=1e-8)

    def test_last_attention_detached_and_graph_freed(self, rng):
        # ``last_attention`` must be a detached copy: holding the live
        # autograd tensor would retain the whole backward graph (and its
        # activation buffers) across training steps.
        attn = MultiHeadSelfAttention(8, num_heads=2, rng=rng)
        x = Tensor(rng.standard_normal((5, 8)), requires_grad=True)
        out = (attn(x) ** 2.0).sum()
        stored = attn.last_attention
        assert not stored.requires_grad
        assert stored._prev == () and stored._backward is None
        out.backward()
        # backward() frees the tape eagerly; the detached copy must not
        # have resurrected any of it.
        assert out._prev == () and out._backward is None
        assert attn.last_attention._prev == ()
        assert x.grad is not None

    def test_batched_input(self, rng):
        attn = MultiHeadSelfAttention(8, num_heads=2, rng=rng)
        out = attn(Tensor(rng.standard_normal((3, 5, 8))))
        assert out.shape == (3, 5, 8)
        assert attn.last_attention.shape == (3, 2, 5, 5)


class TestTransformerEncoderBlock:
    def test_output_shape(self, rng):
        block = TransformerEncoderBlock(8, num_heads=2, dropout=0.0, rng=rng)
        out = block(Tensor(rng.standard_normal((5, 8))))
        assert out.shape == (5, 8)

    def test_gradients_no_dropout(self, rng):
        block = TransformerEncoderBlock(4, num_heads=2, dropout=0.0, rng=rng)
        x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        check_gradients(lambda: (block(x) ** 2.0).sum(), [x], atol=1e-4)

    def test_custom_attention_module(self, rng):
        from repro.nn import Identity
        block = TransformerEncoderBlock(8, dropout=0.0, attention=Identity(), rng=rng)
        out = block(Tensor(rng.standard_normal((5, 8))))
        assert out.shape == (5, 8)

    def test_eval_mode_is_deterministic(self, rng):
        block = TransformerEncoderBlock(8, num_heads=2, dropout=0.5, rng=rng)
        block.eval()
        x = Tensor(rng.standard_normal((5, 8)))
        assert np.allclose(block(x).data, block(x).data)


class TestExternalAttention:
    def test_output_shape(self, rng):
        ext = ExternalAttention(8, memory_size=6, rng=rng)
        out = ext(Tensor(rng.standard_normal((5, 3, 8))))
        assert out.shape == (5, 3, 8)

    def test_gradients(self, rng):
        ext = ExternalAttention(4, memory_size=3, rng=rng)
        x = Tensor(rng.standard_normal((3, 2, 4)), requires_grad=True)
        check_gradients(lambda: (ext(x) ** 2.0).sum(), [x, ext.m_key, ext.m_value], atol=1e-4)

    def test_linear_cost_in_regions(self, rng):
        # External attention never materialises an n×n matrix; indirectly
        # verified by handling a large n quickly and exactly.
        ext = ExternalAttention(8, memory_size=4, rng=rng)
        out = ext(Tensor(rng.standard_normal((2000, 2, 8))))
        assert out.shape == (2000, 2, 8)


class TestConv2d:
    def test_shape_preserved(self, rng):
        conv = Conv2d(1, 4, kernel_size=3, rng=rng)
        out = conv(Tensor(rng.standard_normal((1, 7, 7))))
        assert out.shape == (4, 7, 7)

    def test_even_kernel_rejected(self, rng):
        with pytest.raises(ValueError):
            Conv2d(1, 4, kernel_size=4, rng=rng)

    def test_wrong_input_channels_rejected(self, rng):
        conv = Conv2d(2, 4, rng=rng)
        with pytest.raises(ValueError):
            conv(Tensor(rng.standard_normal((1, 5, 5))))

    def test_matches_direct_convolution(self, rng):
        conv = Conv2d(1, 1, kernel_size=3, bias=False, rng=rng)
        x = rng.standard_normal((1, 5, 5))
        out = conv(Tensor(x)).data[0]
        kernel = conv.weight.data[0, 0]
        padded = np.pad(x[0], 1)
        expected = np.zeros((5, 5))
        for i in range(5):
            for j in range(5):
                expected[i, j] = (padded[i:i + 3, j:j + 3] * kernel).sum()
        assert np.allclose(out, expected)

    def test_gradients(self, rng):
        conv = Conv2d(2, 3, kernel_size=3, rng=rng)
        x = Tensor(rng.standard_normal((2, 4, 4)), requires_grad=True)
        check_gradients(lambda: (conv(x) ** 2.0).sum(), [x] + conv.parameters(), atol=1e-4)

    def test_bias_contributes(self, rng):
        conv = Conv2d(1, 2, rng=rng)
        x = Tensor(np.zeros((1, 3, 3)))
        out = conv(x)
        assert np.allclose(out.data[0], conv.bias.data[0])


class TestAvgPool2d:
    def test_shape_preserved(self, rng):
        pool = AvgPool2d(kernel_size=3)
        out = pool(Tensor(rng.standard_normal((4, 6, 6))))
        assert out.shape == (4, 6, 6)

    def test_constant_input_invariant_interior(self):
        pool = AvgPool2d(kernel_size=3)
        out = pool(Tensor(np.ones((1, 5, 5))))
        # Interior cells average nine ones; border cells see zero padding.
        assert np.allclose(out.data[0, 1:-1, 1:-1], 1.0)
        assert out.data[0, 0, 0] == pytest.approx(4.0 / 9.0)

    def test_even_kernel_rejected(self):
        with pytest.raises(ValueError):
            AvgPool2d(kernel_size=2)

    def test_gradients(self, rng):
        pool = AvgPool2d(kernel_size=3)
        x = Tensor(rng.standard_normal((2, 4, 4)), requires_grad=True)
        check_gradients(lambda: (pool(x) ** 2.0).sum(), [x], atol=1e-4)

    def test_2d_input_rejected(self, rng):
        pool = AvgPool2d()
        with pytest.raises(ValueError):
            pool(Tensor(rng.standard_normal((4, 4))))
