"""Tests for weight initializers."""

import numpy as np
import pytest

from repro.nn import init


class TestXavier:
    def test_uniform_bounds(self, rng):
        w = init.xavier_uniform((64, 32), rng)
        bound = np.sqrt(6.0 / (64 + 32))
        assert w.shape == (64, 32)
        assert np.abs(w).max() <= bound

    def test_uniform_variance(self, rng):
        w = init.xavier_uniform((400, 300), rng)
        expected_var = 2.0 / (400 + 300)
        assert w.var() == pytest.approx(expected_var, rel=0.1)

    def test_normal_std(self, rng):
        w = init.xavier_normal((400, 300), rng)
        expected_std = np.sqrt(2.0 / (400 + 300))
        assert w.std() == pytest.approx(expected_std, rel=0.1)

    def test_conv_fan_includes_receptive_field(self, rng):
        w = init.xavier_uniform((16, 8, 3, 3), rng)
        bound = np.sqrt(6.0 / (8 * 9 + 16 * 9))
        assert np.abs(w).max() <= bound

    def test_1d_shape_rejected(self, rng):
        with pytest.raises(ValueError):
            init.xavier_uniform((10,), rng)


class TestOthers:
    def test_kaiming_uniform_bounds(self, rng):
        w = init.kaiming_uniform((64, 32), rng)
        assert w.shape == (64, 32)
        assert np.isfinite(w).all()

    def test_zeros_ones(self):
        assert (init.zeros((3, 2)) == 0).all()
        assert (init.ones((4,)) == 1).all()

    def test_normal_scale(self, rng):
        w = init.normal((500, 20), rng, std=0.05)
        assert w.std() == pytest.approx(0.05, rel=0.15)

    def test_determinism(self):
        a = init.xavier_uniform((8, 8), np.random.default_rng(3))
        b = init.xavier_uniform((8, 8), np.random.default_rng(3))
        assert np.allclose(a, b)
