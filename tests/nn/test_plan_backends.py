"""Lockdown for the PR 7 replay machinery: the folded optimizer (clip +
Adam/SGD update as plan kernels) and the threaded batch-parallel replay
backend.

The contract under test is *bitwise*: folding the optimizer into the
plan and partitioning batch-parallel-safe kernels across a worker pool
must not change a single ULP relative to the serial unfused compiled
path — the threaded slices compute the same elements with the same
reduction orders, and the update kernels replicate
:mod:`repro.nn.optim` expression for expression.  Every comparison here
asserts exact array equality, not a tolerance.

The partition builders skip kernels below
``compile._PARTITION_MIN_ELEMENTS`` (splitting tiny arrays buys
nothing); tests that need partitions on toy shapes lower the threshold
via monkeypatch, while the shard tests run at batch shapes large enough
to partition naturally.
"""

import numpy as np
import pytest

import repro.nn.compile as compile_mod
from repro.core import (
    BatchedTrainer,
    HAFusionConfig,
    make_batch,
    shard_viewset,
)
from repro.data import CityConfig, generate_city, load_city
from repro.nn import Adam, CompiledStep, SGD, Tensor, clip_grad_norm
from repro.nn.compile import (
    RECORD_STATS,
    resolve_backend,
    resolve_lowering,
    resolve_workers,
)
from repro.nn.optim import Optimizer


@pytest.fixture(scope="module")
def city():
    return generate_city(CityConfig(name="backends", n_regions=16,
                                    total_trips=4000, poi_total=900), seed=11)


@pytest.fixture(scope="module")
def tiny_config():
    return HAFusionConfig(d=16, d_prime=8, conv_channels=4, memory_size=6,
                          num_heads=2, intra_layers=1, inter_layers=1,
                          fusion_layers=1, epochs=5, dropout=0.1, lr=5e-4)


def _build_model(city, config, seed=7):
    from repro.core.model import HAFusion
    views = city.views()
    mobility = (views.names.index("mobility")
                if "mobility" in views.names else None)
    return HAFusion(views.dims(), views.n_regions, config,
                    mobility_view=mobility,
                    rng=np.random.default_rng(seed)), views


def _assert_params_bitwise(model_a, model_b):
    for pa, pb in zip(model_a.parameters(), model_b.parameters()):
        assert (pa.data == pb.data).all(), (
            f"parameter drifted: shape {pa.data.shape}, max diff "
            f"{np.abs(pa.data - pb.data).max():.3e}")


# ----------------------------------------------------------------------
# Folded optimizer: clip + update as plan kernels
# ----------------------------------------------------------------------

class TestFoldedOptimizer:
    def _train_unfused(self, city, config, optimizer_cls, epochs, **opt_kw):
        from repro.core.trainer import compiled_optimizer_step
        model, views = _build_model(city, config)
        params = model.parameters()
        opt = optimizer_cls(params, **opt_kw)
        step = CompiledStep(lambda: model.loss(views))
        losses = [compiled_optimizer_step(opt, step, params,
                                          config.grad_clip)
                  for _ in range(epochs)]
        return model, opt, losses

    def _train_folded(self, city, config, optimizer_cls, epochs, **opt_kw):
        model, views = _build_model(city, config)
        opt = optimizer_cls(model.parameters(), **opt_kw)
        step = CompiledStep(lambda: model.loss(views), optimizer=opt,
                            grad_clip=config.grad_clip)
        losses = [step.run() for _ in range(epochs)]
        return model, opt, losses, step

    def test_folded_adam_bitwise_vs_unfused(self, city, tiny_config):
        epochs = 5
        m_u, opt_u, losses_u = self._train_unfused(
            city, tiny_config, Adam, epochs, lr=tiny_config.lr)
        m_f, opt_f, losses_f, step = self._train_folded(
            city, tiny_config, Adam, epochs, lr=tiny_config.lr)
        assert losses_f == losses_u          # exact float equality
        _assert_params_bitwise(m_f, m_u)
        assert opt_f._step_count == opt_u._step_count == epochs
        assert step.plan.num_update_ops > 0
        assert step.compile_count == 1       # no re-records across epochs

    def test_folded_adam_with_weight_decay(self, city, tiny_config):
        m_u, _, losses_u = self._train_unfused(
            city, tiny_config, Adam, 4, lr=tiny_config.lr, weight_decay=0.01)
        m_f, _, losses_f, _ = self._train_folded(
            city, tiny_config, Adam, 4, lr=tiny_config.lr, weight_decay=0.01)
        assert losses_f == losses_u
        _assert_params_bitwise(m_f, m_u)

    def test_folded_sgd_momentum_bitwise(self, city, tiny_config):
        kw = dict(lr=0.01, momentum=0.9, weight_decay=0.005)
        m_u, _, losses_u = self._train_unfused(city, tiny_config, SGD, 4, **kw)
        m_f, _, losses_f, _ = self._train_folded(city, tiny_config, SGD, 4,
                                                 **kw)
        assert losses_f == losses_u
        _assert_params_bitwise(m_f, m_u)

    def test_last_grad_norm_matches_eager_clip(self, city, tiny_config):
        # Twin steps: the folded clip kernel must report exactly the norm
        # the eager clip_grad_norm computes on identical gradients.
        model_a, views = _build_model(city, tiny_config)
        opt_a = Adam(model_a.parameters(), lr=tiny_config.lr)
        step_a = CompiledStep(lambda: model_a.loss(views), optimizer=opt_a,
                              grad_clip=tiny_config.grad_clip)
        step_a.run()

        model_b, views_b = _build_model(city, tiny_config)
        step_b = CompiledStep(lambda: model_b.loss(views_b))
        step_b.run()
        eager_norm = clip_grad_norm(model_b.parameters(),
                                    tiny_config.grad_clip)
        assert step_a.plan.last_grad_norm == eager_norm

    def test_unsupported_optimizer_rejected(self, city, tiny_config):
        class Adagrad(Optimizer):
            def step(self):
                pass

        model, views = _build_model(city, tiny_config)
        step = CompiledStep(lambda: model.loss(views),
                            optimizer=Adagrad(model.parameters()),
                            grad_clip=0.0)
        with pytest.raises(ValueError, match="cannot fold optimizer"):
            step.run()

    def test_update_without_fuse_raises(self, city, tiny_config):
        model, views = _build_model(city, tiny_config)
        step = CompiledStep(lambda: model.loss(views))
        step.run()
        with pytest.raises(RuntimeError, match="no optimizer"):
            step.plan.update()

    def test_profile_includes_update_kernels(self, city, tiny_config):
        _, _, _, step = self._train_folded(city, tiny_config, Adam, 2,
                                           lr=tiny_config.lr)
        prof = step.plan.profile(replays=1, include_update=True)
        assert any(tag.startswith("U:") for tag in prof["ops"])
        assert len(prof["top_kernels"]) == 5
        assert prof["seconds_per_replay"] > 0.0
        # Without include_update the U: kernels must not be timed (and
        # crucially, not applied).
        prof_fb = step.plan.profile(replays=1)
        assert not any(tag.startswith("U:") for tag in prof_fb["ops"])


# ----------------------------------------------------------------------
# Threaded batch-parallel replay backend
# ----------------------------------------------------------------------

class TestThreadedBackend:
    def test_resolvers(self, monkeypatch):
        monkeypatch.delenv("REPRO_PLAN_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_PLAN_WORKERS", raising=False)
        assert resolve_backend() == "serial"
        assert resolve_backend("threaded") == "threaded"
        monkeypatch.setenv("REPRO_PLAN_BACKEND", "threaded")
        assert resolve_backend() == "threaded"
        monkeypatch.setenv("REPRO_PLAN_WORKERS", "6")
        assert resolve_workers() == 6
        assert resolve_workers(2) == 2
        with pytest.raises(ValueError, match="unknown plan backend"):
            resolve_backend("fibers")
        with pytest.raises(ValueError, match="unknown plan lowering"):
            resolve_lowering("v3")

    def test_threaded_training_bitwise(self, city, tiny_config, monkeypatch):
        # Toy shapes partition only with the size floor lowered; the
        # nyc_360 shard test below exercises the natural threshold.
        monkeypatch.setattr(compile_mod, "_PARTITION_MIN_ELEMENTS", 64)
        epochs = 4

        def train(backend, workers):
            model, views = _build_model(city, tiny_config)
            opt = Adam(model.parameters(), lr=tiny_config.lr)
            step = CompiledStep(lambda: model.loss(views), optimizer=opt,
                                grad_clip=tiny_config.grad_clip,
                                backend=backend, num_workers=workers)
            losses = [step.run() for _ in range(epochs)]
            return model, losses, step.plan

        m_s, losses_s, plan_s = train("serial", None)
        m_t, losses_t, plan_t = train("threaded", 4)
        assert plan_s.num_threaded_ops == 0
        assert plan_t.num_threaded_ops > 0
        assert plan_t.backend == "threaded" and plan_t.num_workers == 4
        assert losses_t == losses_s
        _assert_params_bitwise(m_t, m_s)

    def test_threaded_gradients_bitwise(self, city, tiny_config, monkeypatch):
        # Leaf gradients after a replay — not just the loss — must match
        # the serial backend exactly (store/accumulate slice protocol).
        monkeypatch.setattr(compile_mod, "_PARTITION_MIN_ELEMENTS", 64)

        def grads(backend, workers):
            model, views = _build_model(city, tiny_config)
            step = CompiledStep(lambda: model.loss(views),
                                backend=backend, num_workers=workers)
            step.run()
            step.run()   # replay: the partitioned kernels, not the tape
            return {id_: g.copy() for id_, g in
                    ((i, t.grad) for i, t in
                     enumerate(model.parameters()) if t.grad is not None)}

        serial = grads("serial", None)
        threaded = grads("threaded", 4)
        assert serial.keys() == threaded.keys()
        for key in serial:
            assert (serial[key] == threaded[key]).all()

    def test_both_lowerings_threaded_bitwise(self, city, tiny_config,
                                             monkeypatch):
        # The v1 kernels must partition (or serialize) just as exactly:
        # flattened-GEMM splits are v2-only, elementwise splits are not.
        monkeypatch.setattr(compile_mod, "_PARTITION_MIN_ELEMENTS", 64)
        for lowering in ("v1", "v2"):
            model_s, views_s = _build_model(city, tiny_config)
            step_s = CompiledStep(lambda: model_s.loss(views_s),
                                  lowering=lowering)
            model_t, views_t = _build_model(city, tiny_config)
            step_t = CompiledStep(lambda: model_t.loss(views_t),
                                  lowering=lowering, backend="threaded",
                                  num_workers=4)
            for _ in range(3):
                assert step_t.run() == step_s.run()


class TestThreadedNycShards:
    """Golden/parity lockdown at real batch shapes: nyc_360 region shards
    through the batched trainer and the serving facade, threaded vs
    serial, partitioned at the natural size threshold."""

    @pytest.fixture(scope="class")
    def shard_batch(self):
        city = load_city("nyc_360", seed=7)
        return make_batch(shard_viewset(city.views(), 4))

    @pytest.fixture(scope="class")
    def shard_config(self):
        return HAFusionConfig(d=16, d_prime=8, conv_channels=4,
                              memory_size=6, num_heads=2, intra_layers=1,
                              inter_layers=1, fusion_layers=1, epochs=3,
                              dropout=0.1, lr=5e-4)

    def test_trainer_golden_bitwise(self, shard_batch, shard_config,
                                    monkeypatch):
        def train(backend):
            if backend is not None:
                monkeypatch.setenv("REPRO_PLAN_BACKEND", backend)
                monkeypatch.setenv("REPRO_PLAN_WORKERS", "4")
            else:
                monkeypatch.delenv("REPRO_PLAN_BACKEND", raising=False)
                monkeypatch.delenv("REPRO_PLAN_WORKERS", raising=False)
            trainer = BatchedTrainer(shard_batch, shard_config, seed=7,
                                     compiled=True)
            history = trainer.train(epochs=3)
            return trainer, history

        trainer_s, hist_s = train(None)
        trainer_t, hist_t = train("threaded")
        plan = trainer_t._compiled_step.plan
        assert plan.backend == "threaded"
        assert plan.num_threaded_ops > 0, (
            "no kernels partitioned at nyc_360 shard shapes")
        assert hist_t.losses == hist_s.losses
        _assert_params_bitwise(trainer_t.model, trainer_s.model)
        for e_s, e_t in zip(trainer_s.embed(), trainer_t.embed()):
            assert (e_s == e_t).all()

    def test_serving_parity(self, shard_batch, shard_config):
        from repro.core.engine import build_batched_model
        from repro.nn.plancache import PlanCache
        from repro.serving import EmbeddingService

        model = build_batched_model(shard_batch, shard_config, seed=7)
        cache = PlanCache()
        serial = EmbeddingService(
            model, n_max=shard_batch.n_max,
            view_dims=shard_batch.view_dims,
            view_names=shard_batch.view_names, plan_cache=cache)
        threaded = EmbeddingService(
            model, n_max=shard_batch.n_max,
            view_dims=shard_batch.view_dims,
            view_names=shard_batch.view_names, plan_cache=cache,
            backend="threaded", num_workers=4)
        out_s = serial.embed_batch(shard_batch)
        out_t = threaded.embed_batch(shard_batch)
        plan = threaded.plan_for(shard_batch)
        assert plan.backend == "threaded" and plan.num_threaded_ops > 0
        for a, b in zip(out_s, out_t):
            # The acceptance bound is ≤1e-8; the implementation actually
            # delivers bitwise identity.
            assert (a == b).all()

    def test_threaded_plan_from_cached_spec_zero_records(
            self, shard_batch, shard_config, tmp_path):
        """A threaded plan warm-starts from a *serially* recorded spec:
        one record epoch total, never one per backend."""
        from repro.core.engine import build_batched_model
        from repro.nn.plancache import PlanCache
        from repro.serving import EmbeddingService

        model = build_batched_model(shard_batch, shard_config, seed=7)
        common = dict(n_max=shard_batch.n_max,
                      view_dims=shard_batch.view_dims,
                      view_names=shard_batch.view_names)
        cache_a = PlanCache(directory=tmp_path)
        out_s = EmbeddingService(model, plan_cache=cache_a,
                                 **common).embed_batch(shard_batch)
        assert cache_a.stats()["misses"] == 1

        # "Restarted process": a fresh cache sees only the disk spec.
        cache_b = PlanCache(directory=tmp_path)
        threaded = EmbeddingService(model, plan_cache=cache_b,
                                    backend="threaded", num_workers=4,
                                    **common)
        before = RECORD_STATS.inference_records
        out_t = threaded.embed_batch(shard_batch)
        assert RECORD_STATS.inference_records == before
        stats = cache_b.stats()
        assert stats["misses"] == 0
        assert stats["disk_hits"] == 1 and stats["spec_hits"] == 1
        for a, b in zip(out_s, out_t):
            assert (a == b).all()
        report = cache_b.resident_report()
        assert report[0]["backend"] == "threaded"
        assert report[0]["workers"] == 4
