"""Tests for Linear / MLP / LayerNorm / Dropout / module system."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    Dropout,
    Identity,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    Sequential,
    Tensor,
)
from repro.nn.gradcheck import check_gradients


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(4, 3, rng=rng)
        out = layer(Tensor(rng.standard_normal((5, 4))))
        assert out.shape == (5, 3)

    def test_batched_input(self, rng):
        layer = Linear(4, 3, rng=rng)
        out = layer(Tensor(rng.standard_normal((2, 5, 4))))
        assert out.shape == (2, 5, 3)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        check_gradients(lambda: (layer(x) ** 2.0).sum(), [x, layer.weight, layer.bias])

    def test_deterministic_given_rng(self):
        a = Linear(4, 3, rng=np.random.default_rng(0))
        b = Linear(4, 3, rng=np.random.default_rng(0))
        assert np.allclose(a.weight.data, b.weight.data)


class TestMLP:
    def test_single_layer_when_no_hidden(self, rng):
        mlp = MLP(4, 3, rng=rng)
        assert mlp.fc2 is None
        assert mlp(Tensor(rng.standard_normal((2, 4)))).shape == (2, 3)

    def test_two_layer(self, rng):
        mlp = MLP(4, 3, hidden_features=8, rng=rng)
        assert mlp(Tensor(rng.standard_normal((2, 4)))).shape == (2, 3)

    def test_unknown_activation_raises(self, rng):
        with pytest.raises(ValueError):
            MLP(4, 3, activation="swishy", rng=rng)

    def test_gradients(self, rng):
        mlp = MLP(3, 2, hidden_features=5, activation="tanh", rng=rng)
        x = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        check_gradients(lambda: (mlp(x) ** 2.0).sum(), [x] + mlp.parameters())


class TestLayerNorm:
    def test_normalizes_rows(self, rng):
        ln = LayerNorm(6)
        out = ln(Tensor(rng.standard_normal((4, 6)) * 10 + 5))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-3)

    def test_gradients(self, rng):
        ln = LayerNorm(4)
        x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        weights = rng.standard_normal((3, 4))
        check_gradients(lambda: (ln(x) * weights).sum(), [x, ln.gamma, ln.beta])

    def test_3d_input(self, rng):
        ln = LayerNorm(4)
        out = ln(Tensor(rng.standard_normal((2, 3, 4))))
        assert out.shape == (2, 3, 4)
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)


class TestDropout:
    def test_train_vs_eval(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = Tensor(np.ones((50, 50)))
        train_out = layer(x)
        layer.eval()
        eval_out = layer(x)
        assert (train_out.data == 0).any()
        assert np.allclose(eval_out.data, 1.0)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.5)


class TestModuleSystem:
    def test_parameter_collection_nested(self, rng):
        model = Sequential(Linear(4, 8, rng=rng), Identity(), Linear(8, 2, rng=rng))
        assert len(model.parameters()) == 4
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_named_parameters_unique_names(self, rng):
        model = Sequential(Linear(4, 4, rng=rng), Linear(4, 4, rng=rng))
        names = [name for name, _ in model.named_parameters()]
        assert len(names) == len(set(names)) == 4

    def test_train_eval_propagates(self, rng):
        model = Sequential(Dropout(0.5), Linear(4, 2, rng=rng))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self, rng):
        layer = Linear(3, 2, rng=rng)
        out = layer(Tensor(rng.standard_normal((2, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self, rng):
        a = Linear(3, 2, rng=np.random.default_rng(1))
        b = Linear(3, 2, rng=np.random.default_rng(2))
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.weight.data, b.weight.data)

    def test_load_state_dict_rejects_mismatch(self, rng):
        a = Linear(3, 2, rng=rng)
        with pytest.raises(KeyError):
            a.load_state_dict({"weight": a.weight.data})
        state = a.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)

    def test_parameter_is_tensor_with_grad(self):
        p = Parameter(np.zeros(3))
        assert p.requires_grad
