"""Unit tests for the autograd tensor engine."""

import numpy as np
import pytest

from repro.nn import Tensor, no_grad
from repro.nn.gradcheck import check_gradients


def _t(rng, *shape):
    return Tensor(rng.standard_normal(shape), requires_grad=True)


class TestBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float64

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_item_scalar(self):
        assert Tensor([[3.5]]).item() == 3.5

    def test_detach_cuts_graph(self, rng):
        x = _t(rng, 3)
        y = x.detach()
        assert not y.requires_grad
        assert np.shares_memory(x.data, y.data)

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_backward_requires_scalar(self, rng):
        x = _t(rng, 3)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_grad_shape_mismatch(self, rng):
        x = _t(rng, 3)
        y = x * 2
        with pytest.raises(ValueError):
            y.backward(np.ones((4,)))

    def test_no_grad_blocks_graph(self, rng):
        x = _t(rng, 3)
        with no_grad():
            y = x * 2
        assert not y.requires_grad


class TestArithmeticGradients:
    def test_add(self, rng):
        a, b = _t(rng, 2, 3), _t(rng, 2, 3)
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_add_broadcast_row(self, rng):
        a, b = _t(rng, 4, 3), _t(rng, 3)
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_add_broadcast_col(self, rng):
        a, b = _t(rng, 4, 3), _t(rng, 4, 1)
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_mul(self, rng):
        a, b = _t(rng, 2, 3), _t(rng, 2, 3)
        check_gradients(lambda: (a * b).sum(), [a, b])

    def test_mul_broadcast_scalar_tensor(self, rng):
        a, b = _t(rng, 2, 3), _t(rng, 1)
        check_gradients(lambda: (a * b).sum(), [a, b])

    def test_sub(self, rng):
        a, b = _t(rng, 5), _t(rng, 5)
        check_gradients(lambda: (a - b).sum(), [a, b])

    def test_div(self, rng):
        a = _t(rng, 4)
        b = Tensor(rng.uniform(0.5, 2.0, 4), requires_grad=True)
        check_gradients(lambda: (a / b).sum(), [a, b])

    def test_pow(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, 6), requires_grad=True)
        check_gradients(lambda: (a ** 3.0).sum(), [a])

    def test_neg(self, rng):
        a = _t(rng, 3)
        check_gradients(lambda: (-a).sum(), [a])

    def test_radd_rmul_scalars(self, rng):
        a = _t(rng, 3)
        check_gradients(lambda: (2.0 + 3.0 * a).sum(), [a])

    def test_rsub_rdiv(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, 3), requires_grad=True)
        check_gradients(lambda: (1.0 - a).sum() + (2.0 / a).sum(), [a])

    def test_tensor_exponent_rejected(self, rng):
        a, b = _t(rng, 3), _t(rng, 3)
        with pytest.raises(TypeError):
            a ** b

    def test_grad_accumulates_over_reuse(self, rng):
        a = _t(rng, 3)
        y = (a * a + a).sum()
        y.backward()
        assert np.allclose(a.grad, 2 * a.data + 1)


class TestMatmulGradients:
    def test_matmul_2d(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 4, 2)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matmul_batched(self, rng):
        a, b = _t(rng, 2, 3, 4), _t(rng, 2, 4, 5)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matmul_broadcast_batch(self, rng):
        a, b = _t(rng, 2, 3, 4), _t(rng, 4, 5)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matmul_vector_right(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 4)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matmul_vector_left(self, rng):
        a, b = _t(rng, 4), _t(rng, 4, 3)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_rmatmul_array(self, rng):
        a = _t(rng, 3, 2)
        fixed = rng.standard_normal((4, 3))
        check_gradients(lambda: (fixed @ a).sum(), [a])


class TestUnaryGradients:
    def test_exp(self, rng):
        a = _t(rng, 4)
        check_gradients(lambda: a.exp().sum(), [a])

    def test_log(self, rng):
        a = Tensor(rng.uniform(0.5, 3.0, 4), requires_grad=True)
        check_gradients(lambda: a.log().sum(), [a])

    def test_tanh(self, rng):
        a = _t(rng, 4)
        check_gradients(lambda: a.tanh().sum(), [a])

    def test_sigmoid(self, rng):
        a = _t(rng, 4)
        check_gradients(lambda: a.sigmoid().sum(), [a])

    def test_relu(self, rng):
        a = Tensor(rng.uniform(0.1, 2.0, 5) * np.array([1, -1, 1, -1, 1]), requires_grad=True)
        check_gradients(lambda: a.relu().sum(), [a])

    def test_leaky_relu(self, rng):
        a = Tensor(np.array([0.5, -0.5, 1.5, -1.5]), requires_grad=True)
        check_gradients(lambda: a.leaky_relu(0.2).sum(), [a])

    def test_abs(self, rng):
        a = Tensor(np.array([0.5, -0.5, 1.5, -1.5]), requires_grad=True)
        check_gradients(lambda: a.abs().sum(), [a])

    def test_sqrt(self, rng):
        a = Tensor(rng.uniform(0.5, 3.0, 4), requires_grad=True)
        check_gradients(lambda: a.sqrt().sum(), [a])


class TestReductionGradients:
    def test_sum_all(self, rng):
        a = _t(rng, 3, 4)
        check_gradients(lambda: a.sum(), [a])

    def test_sum_axis_keepdims(self, rng):
        a = _t(rng, 3, 4)
        check_gradients(lambda: (a.sum(axis=0, keepdims=True) ** 2.0).sum(), [a])

    def test_sum_axis_no_keepdims(self, rng):
        a = _t(rng, 3, 4)
        check_gradients(lambda: (a.sum(axis=1) ** 2.0).sum(), [a])

    def test_sum_negative_axis(self, rng):
        a = _t(rng, 2, 3, 4)
        check_gradients(lambda: (a.sum(axis=-1) ** 2.0).sum(), [a])

    def test_mean(self, rng):
        a = _t(rng, 3, 4)
        check_gradients(lambda: (a.mean(axis=1) ** 2.0).sum(), [a])

    def test_mean_all(self, rng):
        a = _t(rng, 6)
        check_gradients(lambda: a.mean() * 3.0, [a])

    def test_var(self, rng):
        a = _t(rng, 3, 4)
        check_gradients(lambda: a.var(axis=-1).sum(), [a])

    def test_max_axis(self, rng):
        a = Tensor(rng.permutation(12).reshape(3, 4).astype(float), requires_grad=True)
        check_gradients(lambda: a.max(axis=1).sum(), [a])

    def test_max_values(self, rng):
        a = Tensor([[1.0, 5.0], [7.0, 2.0]])
        assert a.max(axis=1).data.tolist() == [5.0, 7.0]


class TestShapeGradients:
    def test_reshape(self, rng):
        a = _t(rng, 3, 4)
        check_gradients(lambda: (a.reshape(4, 3) ** 2.0).sum(), [a])

    def test_reshape_tuple_arg(self, rng):
        a = _t(rng, 6)
        assert a.reshape((2, 3)).shape == (2, 3)

    def test_swapaxes(self, rng):
        a = _t(rng, 3, 4)
        check_gradients(lambda: (a.swapaxes(0, 1) ** 2.0).sum(), [a])

    def test_T_property(self, rng):
        a = _t(rng, 3, 4)
        assert a.T.shape == (4, 3)

    def test_T_on_3d_swaps_last_two(self, rng):
        a = _t(rng, 2, 3, 4)
        assert a.T.shape == (2, 4, 3)

    def test_transpose_axes(self, rng):
        a = _t(rng, 2, 3, 4)
        check_gradients(lambda: (a.transpose(2, 0, 1) ** 2.0).sum(), [a])

    def test_getitem_slice(self, rng):
        a = _t(rng, 4, 4)
        check_gradients(lambda: (a[1:3] ** 2.0).sum(), [a])

    def test_getitem_int_row(self, rng):
        a = _t(rng, 4, 4)
        check_gradients(lambda: (a[2] ** 2.0).sum(), [a])

    def test_expand_squeeze(self, rng):
        a = _t(rng, 3, 4)
        check_gradients(lambda: (a.expand_dims(1).squeeze(1) ** 2.0).sum(), [a])

    def test_concat(self, rng):
        a, b = _t(rng, 2, 3), _t(rng, 4, 3)
        check_gradients(lambda: (Tensor.concat([a, b], axis=0) ** 2.0).sum(), [a, b])

    def test_concat_axis1(self, rng):
        a, b = _t(rng, 2, 3), _t(rng, 2, 5)
        check_gradients(lambda: (Tensor.concat([a, b], axis=1) ** 2.0).sum(), [a, b])

    def test_stack(self, rng):
        a, b = _t(rng, 2, 3), _t(rng, 2, 3)
        check_gradients(lambda: (Tensor.stack([a, b], axis=0) ** 2.0).sum(), [a, b])

    def test_stack_middle_axis(self, rng):
        a, b = _t(rng, 2, 3), _t(rng, 2, 3)
        out = Tensor.stack([a, b], axis=1)
        assert out.shape == (2, 2, 3)


class TestGraphMechanics:
    def test_diamond_graph(self, rng):
        a = _t(rng, 3)
        check_gradients(lambda: ((a * 2) + (a * 3)).sum(), [a])

    def test_deep_chain(self, rng):
        a = _t(rng, 3)

        def f():
            x = a
            for _ in range(20):
                x = x * 1.01 + 0.001
            return x.sum()

        check_gradients(f, [a])

    def test_zero_grad(self, rng):
        a = _t(rng, 3)
        (a * 2).sum().backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None

    def test_backward_twice_accumulates(self, rng):
        a = _t(rng, 3)
        y = (a * 2.0).sum()
        y.backward()
        first = a.grad.copy()
        y2 = (a * 2.0).sum()
        y2.backward()
        assert np.allclose(a.grad, 2 * first)
