"""Tests for optimizers and gradient clipping."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Linear, Parameter, Tensor, clip_grad_norm


def _quadratic_param():
    return Parameter(np.array([5.0, -3.0]))


class TestSGD:
    def test_converges_on_quadratic(self):
        p = _quadratic_param()
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss = (p * p).sum()
            loss.backward()
            opt.step()
        assert np.allclose(p.data, 0.0, atol=1e-6)

    def test_momentum_accelerates(self):
        plain, momentum = _quadratic_param(), _quadratic_param()
        opt_plain = SGD([plain], lr=0.01)
        opt_momentum = SGD([momentum], lr=0.01, momentum=0.9)
        for _ in range(50):
            for p, opt in ((plain, opt_plain), (momentum, opt_momentum)):
                opt.zero_grad()
                (p * p).sum().backward()
                opt.step()
        assert np.abs(momentum.data).sum() < np.abs(plain.data).sum()

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        assert p.data[0] < 1.0

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([_quadratic_param()], lr=0.0)

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_skips_params_without_grad(self):
        p = _quadratic_param()
        opt = SGD([p], lr=0.1)
        before = p.data.copy()
        opt.step()
        assert np.allclose(p.data, before)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = _quadratic_param()
        opt = Adam([p], lr=0.1)
        for _ in range(500):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert np.allclose(p.data, 0.0, atol=1e-4)

    def test_bias_correction_first_step(self):
        # After one step with bias correction the update is ≈ lr * sign(grad).
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.01)
        opt.zero_grad()
        (2.0 * p).sum().backward()
        opt.step()
        assert p.data[0] == pytest.approx(1.0 - 0.01, abs=1e-6)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([_quadratic_param()], betas=(1.0, 0.999))

    def test_trains_linear_regression(self, rng):
        true_w = np.array([[2.0, -1.0, 0.5]])
        x = rng.standard_normal((64, 3))
        y = x @ true_w.T
        layer = Linear(3, 1, rng=rng)
        opt = Adam(layer.parameters(), lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            pred = layer(Tensor(x))
            loss = ((pred - Tensor(y)) ** 2.0).mean()
            loss.backward()
            opt.step()
        assert np.allclose(layer.weight.data, true_w, atol=0.05)


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_leaves_small_gradients(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 0.01)
        clip_grad_norm([p], max_norm=1.0)
        assert np.allclose(p.grad, 0.01)

    def test_handles_missing_grads(self):
        p = Parameter(np.zeros(4))
        assert clip_grad_norm([p], max_norm=1.0) == 0.0
