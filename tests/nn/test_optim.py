"""Tests for optimizers and gradient clipping."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Linear, Parameter, Tensor, clip_grad_norm


def _quadratic_param():
    return Parameter(np.array([5.0, -3.0]))


class TestSGD:
    def test_converges_on_quadratic(self):
        p = _quadratic_param()
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss = (p * p).sum()
            loss.backward()
            opt.step()
        assert np.allclose(p.data, 0.0, atol=1e-6)

    def test_momentum_accelerates(self):
        plain, momentum = _quadratic_param(), _quadratic_param()
        opt_plain = SGD([plain], lr=0.01)
        opt_momentum = SGD([momentum], lr=0.01, momentum=0.9)
        for _ in range(50):
            for p, opt in ((plain, opt_plain), (momentum, opt_momentum)):
                opt.zero_grad()
                (p * p).sum().backward()
                opt.step()
        assert np.abs(momentum.data).sum() < np.abs(plain.data).sum()

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        assert p.data[0] < 1.0

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([_quadratic_param()], lr=0.0)

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_skips_params_without_grad(self):
        p = _quadratic_param()
        opt = SGD([p], lr=0.1)
        before = p.data.copy()
        opt.step()
        assert np.allclose(p.data, before)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = _quadratic_param()
        opt = Adam([p], lr=0.1)
        for _ in range(500):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert np.allclose(p.data, 0.0, atol=1e-4)

    def test_bias_correction_first_step(self):
        # After one step with bias correction the update is ≈ lr * sign(grad).
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.01)
        opt.zero_grad()
        (2.0 * p).sum().backward()
        opt.step()
        assert p.data[0] == pytest.approx(1.0 - 0.01, abs=1e-6)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([_quadratic_param()], betas=(1.0, 0.999))

    def test_trains_linear_regression(self, rng):
        true_w = np.array([[2.0, -1.0, 0.5]])
        x = rng.standard_normal((64, 3))
        y = x @ true_w.T
        layer = Linear(3, 1, rng=rng)
        opt = Adam(layer.parameters(), lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            pred = layer(Tensor(x))
            loss = ((pred - Tensor(y)) ** 2.0).mean()
            loss.backward()
            opt.step()
        assert np.allclose(layer.weight.data, true_w, atol=0.05)


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_leaves_small_gradients(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 0.01)
        clip_grad_norm([p], max_norm=1.0)
        assert np.allclose(p.grad, 0.01)

    def test_handles_missing_grads(self):
        p = Parameter(np.zeros(4))
        assert clip_grad_norm([p], max_norm=1.0) == 0.0


class TestOptimizerState:
    """Round-trip lockdown for resumable training (PR 9): Adam and SGD
    ``state_dict`` → pickle → ``load_state_dict`` → continue must be
    **bitwise** identical to never having saved — including under the
    folded-optimizer compiled step, whose update kernels captured the
    moment buffers by reference at fold time."""

    START = np.array([5.0, -3.0, 2.0, 0.5])

    def _uninterrupted(self, make_opt, steps):
        p = Parameter(self.START.copy())
        opt = make_opt(p)
        for _ in range(steps):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        return p.data.copy()

    def _with_roundtrip(self, make_opt, steps, snapshot_at):
        import pickle
        p = Parameter(self.START.copy())
        opt = make_opt(p)
        for _ in range(snapshot_at):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        # Serialize through pickle (what the checkpoint file does), then
        # restore into a FRESH optimizer over a fresh parameter.
        blob = pickle.dumps((p.data.copy(), opt.state_dict()))
        param_state, opt_state = pickle.loads(blob)
        p2 = Parameter(param_state)
        opt2 = make_opt(p2)
        opt2.load_state_dict(opt_state)
        for _ in range(steps - snapshot_at):
            opt2.zero_grad()
            (p2 * p2).sum().backward()
            opt2.step()
        return p2.data.copy()

    @pytest.mark.parametrize("make_opt", [
        pytest.param(lambda p: SGD([p], lr=0.05, momentum=0.9,
                                   weight_decay=0.01), id="sgd"),
        pytest.param(lambda p: Adam([p], lr=0.05, weight_decay=0.01),
                     id="adam"),
    ])
    def test_save_load_continue_is_bitwise_identical(self, make_opt):
        reference = self._uninterrupted(make_opt, steps=12)
        resumed = self._with_roundtrip(make_opt, steps=12, snapshot_at=5)
        assert (resumed == reference).all()

    def test_adam_state_dict_carries_step_count_not_scratch(self):
        p = _quadratic_param()
        opt = Adam([p], lr=0.1)
        opt.zero_grad()
        (p * p).sum().backward()
        opt.step()
        state = opt.state_dict()
        assert state["step_count"] == 1
        assert set(state["buffers"]) == {"m", "v"}   # s1/s2 are scratch

    def test_state_dict_buffers_are_copies(self):
        p = _quadratic_param()
        opt = Adam([p], lr=0.1)
        state = opt.state_dict()
        state["buffers"]["m"][0][:] = 123.0
        assert not (opt._m[0] == 123.0).any()

    def test_load_rejects_wrong_optimizer_type(self):
        p = _quadratic_param()
        state = SGD([p], lr=0.1).state_dict()
        with pytest.raises(ValueError, match="SGD"):
            Adam([p], lr=0.1).load_state_dict(state)

    def test_load_rejects_changed_hyperparameters(self):
        p = _quadratic_param()
        state = Adam([p], lr=0.1).state_dict()
        with pytest.raises(ValueError, match="hyper"):
            Adam([p], lr=0.2).load_state_dict(state)

    def test_load_rejects_shape_mismatch(self):
        state = Adam([_quadratic_param()], lr=0.1).state_dict()
        other = Adam([Parameter(np.zeros(5))], lr=0.1)
        with pytest.raises(ValueError, match="buffer"):
            other.load_state_dict(state)

    def test_load_restores_in_place(self):
        """The compiled executor's folded update kernels captured the
        moment arrays by reference — a restore must never rebind them."""
        p = _quadratic_param()
        opt = Adam([p], lr=0.1)
        opt.zero_grad()
        (p * p).sum().backward()
        opt.step()
        state = opt.state_dict()
        m_before, v_before = opt._m[0], opt._v[0]
        opt.load_state_dict(state)
        assert opt._m[0] is m_before
        assert opt._v[0] is v_before

    def test_roundtrip_under_folded_compiled_step(self):
        """Snapshot mid-run, keep training, restore the snapshot into
        the SAME live objects, retrain — the folded plan (which holds
        param/moment arrays by reference) must replay the identical
        continuation, bitwise."""
        from repro.nn import CompiledStep
        p = Parameter(self.START.copy())
        opt = Adam([p], lr=0.05)
        step = CompiledStep(lambda: (p * p).sum(), optimizer=opt,
                            grad_clip=1.0)
        for _ in range(3):
            step.run()
        snapshot_param = p.data.copy()
        snapshot_state = opt.state_dict()
        step.run()
        step.run()
        first_continuation = p.data.copy()
        # In-place restore: the recorded plan must stay valid.
        np.copyto(p.data, snapshot_param)
        opt.load_state_dict(snapshot_state)
        step.run()
        step.run()
        assert (p.data == first_continuation).all()
