"""Parity lockdown for the compiled training-step executor.

The record-once/replay-many executor (:mod:`repro.nn.compile`) is only
safe if a replayed step reproduces the eager tape: same losses, same
gradients, same final embeddings.  Every test here trains twin models
from identical seeds — one eager, one compiled — and compares
trajectories at ≤1e-8 in float64 (replay kernels are
operation-for-operation identical to the eager ops; only fan-out
gradient accumulation *order* may differ) and ≈1e-4 in float32 (the
relaxed serving/training dtype of the ROADMAP float32 item).
"""

import numpy as np
import pytest

from repro.core import (
    BatchedTrainer,
    HAFusionConfig,
    train_hafusion,
)
from repro.data import CityConfig, generate_city
from repro.nn import CompiledStep, Linear, Tensor, use_dtype

ATOL64 = 1e-8
ATOL32 = 1e-4


@pytest.fixture(scope="module")
def city():
    return generate_city(CityConfig(name="compiled", n_regions=18,
                                    total_trips=5000, poi_total=1200), seed=3)


@pytest.fixture(scope="module")
def tiny_config():
    return HAFusionConfig(d=16, d_prime=8, conv_channels=4, memory_size=6,
                          num_heads=2, intra_layers=1, inter_layers=1,
                          fusion_layers=1, epochs=6, dropout=0.1, lr=5e-4)


@pytest.fixture(scope="module")
def ragged_cities():
    return [
        generate_city(CityConfig(name=f"compiled{n}", n_regions=n,
                                 total_trips=5000, poi_total=1200), seed=seed)
        for n, seed in ((12, 0), (9, 1), (14, 2))
    ]


def _twin_train(city, config, **kwargs):
    """Train eager and compiled twins from the same seed; return both
    (model, history) pairs."""
    eager = train_hafusion(city, config, seed=7, **kwargs)
    compiled = train_hafusion(city, config, seed=7, compiled=True, **kwargs)
    return eager, compiled


def _assert_twin_parity(city, config, atol, view_names=None):
    (m_e, h_e), (m_c, h_c) = _twin_train(city, config, view_names=view_names)
    np.testing.assert_allclose(h_c.losses, h_e.losses, rtol=0.0,
                               atol=atol * max(1.0, abs(h_e.losses[0])))
    views = city.views()
    if view_names is not None:
        views = views.subset(view_names)
    np.testing.assert_allclose(m_c.embed(views), m_e.embed(views),
                               rtol=0.0, atol=atol)


class TestCompiledVsEagerFloat64:
    def test_full_model_trajectory(self, city, tiny_config):
        """Losses and final embeddings match the eager run, with dropout
        active (the replay redraws masks from the same rng stream)."""
        _assert_twin_parity(city, tiny_config, ATOL64)

    @pytest.mark.parametrize("overrides", [
        dict(intra_attention="vanilla"),
        dict(inter_attention="vanilla"),
        dict(fusion="sum"),
        dict(fusion="concat"),
        dict(dropout=0.0),
    ], ids=lambda o: "-".join(f"{k}={v}" for k, v in o.items()))
    def test_ablation_variants(self, city, tiny_config, overrides):
        """Every architecture variant replays exactly, including the
        paths without the RegionSA gate-fusion pattern."""
        _assert_twin_parity(city, tiny_config.with_overrides(**overrides),
                            ATOL64)

    def test_without_mobility_view(self, city, tiny_config):
        """The w/o-M ablation drops the KL heads from the graph; unused
        parameters keep grad=None in both modes."""
        _assert_twin_parity(city, tiny_config, ATOL64,
                            view_names=["poi", "landuse"])

    def test_gate_chain_fusion_active(self, city, tiny_config):
        """The RegionSA correlation chain compiles to fused kernels (one
        per RegionSA block); the vanilla ablation has none to fuse."""
        views = city.views()
        from repro.core.model import HAFusion

        def plan_for(config):
            model = HAFusion(views.dims(), views.n_regions, config,
                             mobility_view=0, rng=np.random.default_rng(0))
            step = CompiledStep(lambda: model.loss(views))
            step.run()
            return step.plan

        assert plan_for(tiny_config).num_fused_chains == tiny_config.intra_layers * 3
        vanilla = tiny_config.with_overrides(intra_attention="vanilla")
        assert plan_for(vanilla).num_fused_chains == 0

    def test_parameter_gradients_match(self, city, tiny_config):
        """Per-parameter gradient parity after several replay steps."""
        views = city.views()
        from repro.core.model import HAFusion
        from repro.nn import Adam
        from repro.core.trainer import compiled_optimizer_step, optimizer_step

        def build():
            return HAFusion(views.dims(), views.n_regions, tiny_config,
                            mobility_view=0, rng=np.random.default_rng(5))

        m_e = build()
        opt_e = Adam(m_e.parameters(), lr=tiny_config.lr)
        m_c = build()
        opt_c = Adam(m_c.parameters(), lr=tiny_config.lr)
        step = CompiledStep(lambda: m_c.loss(views))
        for _ in range(3):
            optimizer_step(opt_e, lambda: m_e.loss(views), m_e.parameters(),
                           tiny_config.grad_clip)
            compiled_optimizer_step(opt_c, step, m_c.parameters(),
                                    tiny_config.grad_clip)
        for (name, p_e), (_, p_c) in zip(m_e.named_parameters(),
                                         m_c.named_parameters()):
            assert (p_e.grad is None) == (p_c.grad is None), name
            if p_e.grad is not None:
                np.testing.assert_allclose(p_c.grad, p_e.grad, rtol=0.0,
                                           atol=ATOL64, err_msg=name)


class TestBatchedTrainerCompiled:
    def test_ragged_batch_trajectory(self, ragged_cities, tiny_config):
        eager = BatchedTrainer(ragged_cities, tiny_config, seed=0)
        compiled = BatchedTrainer(ragged_cities, tiny_config, seed=0,
                                  compiled=True)
        h_e = eager.train(epochs=5)
        h_c = compiled.train(epochs=5)
        # The *masked* RegionSA gate chain (softmax(A' + mask)) fuses
        # too, so padded batches no longer replay un-fused.
        plan = compiled._compiled_step.plan
        assert plan.num_fused_chains == tiny_config.intra_layers * 3
        np.testing.assert_allclose(h_c.losses, h_e.losses, rtol=0.0,
                                   atol=ATOL64 * abs(h_e.losses[0]))
        for b, s in zip(compiled.embed(), eager.embed()):
            np.testing.assert_allclose(b, s, rtol=0.0, atol=ATOL64)

    def test_gradient_pool_shrinks_buffers(self, ragged_cities, tiny_config):
        """The liveness pool allocates far less than one gradient buffer
        per slot, and disabling it reproduces the PR 2 layout."""
        from repro.nn.compile import Plan
        from repro.nn.tensor import record_tape

        trainer = BatchedTrainer(ragged_cities, tiny_config, seed=0)
        with record_tape() as nodes:
            loss = trainer.loss()
        pooled = Plan(loss, nodes)
        report = pooled.buffer_report()
        assert report["pooled"]
        assert report["grad_buffer_bytes"] < report["grad_buffer_bytes_unpooled"]
        assert report["grad_buffer_reduction"] >= 0.4

        trainer2 = BatchedTrainer(ragged_cities, tiny_config, seed=0)
        with record_tape() as nodes2:
            loss2 = trainer2.loss()
        flat = Plan(loss2, nodes2, pool_gradients=False)
        flat_report = flat.buffer_report()
        assert not flat_report["pooled"]
        assert (flat_report["grad_buffer_bytes"]
                == flat_report["grad_buffer_bytes_unpooled"]
                == report["grad_buffer_bytes_unpooled"])

    def test_gradient_pool_replay_parity(self, ragged_cities, tiny_config):
        """Pooled and unpooled plans replay identical gradients (buffer
        recycling must be arithmetic-neutral)."""
        from repro.nn.compile import Plan
        from repro.nn.tensor import record_tape

        plans = []
        for pool_gradients in (True, False):
            trainer = BatchedTrainer(ragged_cities, tiny_config, seed=0)
            with record_tape() as nodes:
                loss = trainer.loss()
            plan = Plan(loss, nodes, pool_gradients=pool_gradients)
            for _ in range(2):
                plan.replay()
            grads = {id(t): g.copy() for t, g in plan.leaves}
            plans.append((plan, grads))
        (p_pool, g_pool), (p_flat, g_flat) = plans
        assert len(p_pool.leaves) == len(p_flat.leaves)
        for (t_a, _), (t_b, _) in zip(p_pool.leaves, p_flat.leaves):
            np.testing.assert_array_equal(g_pool[id(t_a)], g_flat[id(t_b)])

    def test_unpadded_batch_uses_fusion(self, tiny_config):
        """Same-size cities skip masking, so the RegionSA gate chain is
        fused with a leading batch axis — and must still match eager."""
        cities = [generate_city(CityConfig(name=f"same{s}", n_regions=10,
                                           total_trips=5000, poi_total=1200),
                                seed=s) for s in range(3)]
        eager = BatchedTrainer(cities, tiny_config, seed=0)
        compiled = BatchedTrainer(cities, tiny_config, seed=0, compiled=True)
        h_e = eager.train(epochs=4)
        h_c = compiled.train(epochs=4)
        plan = compiled._compiled_step.plan
        assert plan.num_fused_chains == tiny_config.intra_layers * 3
        np.testing.assert_allclose(h_c.losses, h_e.losses, rtol=0.0,
                                   atol=ATOL64 * abs(h_e.losses[0]))
        for b, s in zip(compiled.embed(), eager.embed()):
            np.testing.assert_allclose(b, s, rtol=0.0, atol=ATOL64)

    def test_sharded_batch_without_kl(self, ragged_cities, tiny_config):
        from repro.core import shard_viewset
        shards = shard_viewset(ragged_cities[0].views(), 2)
        eager = BatchedTrainer(shards, tiny_config, seed=0)
        compiled = BatchedTrainer(shards, tiny_config, seed=0, compiled=True)
        assert not compiled._use_kl
        h_e = eager.train(epochs=4)
        h_c = compiled.train(epochs=4)
        np.testing.assert_allclose(h_c.losses, h_e.losses, rtol=0.0,
                                   atol=ATOL64 * abs(h_e.losses[0]))


class TestFallback:
    def test_shape_change_re_records(self):
        """Changing input shapes drops the stale plan: the step falls
        back to one eager (re-recording) execution and stays correct."""
        rng = np.random.default_rng(0)
        lin = Linear(4, 3, rng=rng)
        holder = {"x": rng.standard_normal((5, 4))}

        def loss_fn():
            out = lin(Tensor(holder["x"]))
            return (out * out).mean()

        step = CompiledStep(loss_fn,
                            signature_fn=lambda: holder["x"].shape)
        first = step.run()
        assert step.compile_count == 1
        assert step.run() == pytest.approx(first)      # replay, same input
        assert step.compile_count == 1

        holder["x"] = rng.standard_normal((8, 4))      # new shape
        changed = step.run()
        assert step.compile_count == 2

        lin.zero_grad()
        reference = loss_fn()
        reference.backward()
        assert changed == pytest.approx(reference.item())
        grads = [p.grad.copy() for p in lin.parameters()]
        lin.zero_grad()
        assert step.run() == pytest.approx(reference.item())  # replay again
        assert step.compile_count == 2
        for replayed, eager in zip([p.grad for p in lin.parameters()], grads):
            np.testing.assert_allclose(replayed, eager, rtol=0.0, atol=ATOL64)

    def test_parameter_swap_re_records(self):
        """load_state_dict replaces parameter arrays; the plan detects
        the stale buffers and re-records instead of training a ghost."""
        rng = np.random.default_rng(1)
        lin = Linear(3, 3, rng=rng)
        x = rng.standard_normal((4, 3))
        step = CompiledStep(lambda: (lin(Tensor(x)) ** 2.0).sum())
        step.run()
        assert step.compile_count == 1
        state = {k: v * 2.0 for k, v in lin.state_dict().items()}
        lin.load_state_dict(state)
        value = step.run()
        assert step.compile_count == 2
        reference = (lin(Tensor(x)) ** 2.0).sum().item()
        assert value == pytest.approx(reference)

    def test_rejects_off_tape_dropout(self):
        """Dropout on a constant input never reaches the tape, so its
        mask would freeze and the rng stream desync on replay — the
        recorder refuses it instead of training wrong."""
        from repro.nn import functional as F
        rng = np.random.default_rng(4)
        lin = Linear(3, 3, rng=rng)
        x = Tensor(rng.standard_normal((4, 3)))
        drop_rng = np.random.default_rng(5)

        def loss_fn():
            dropped = F.dropout(x, 0.5, training=True, rng=drop_rng)
            return (lin(dropped) ** 2.0).sum()

        step = CompiledStep(loss_fn)
        with pytest.raises(RuntimeError, match="cannot be compiled"):
            step.run()

    def test_rejects_loss_built_outside_recording(self):
        """Differentiable state created outside the recorded step (a
        pre-built graph fragment) cannot be replayed; fail loudly."""
        rng = np.random.default_rng(2)
        lin = Linear(3, 3, rng=rng)
        stale = lin(Tensor(rng.standard_normal((2, 3))))
        step = CompiledStep(lambda: (stale * stale).sum())
        with pytest.raises(RuntimeError, match="outside the recorded step"):
            step.run()


class TestFloat32:
    """The ROADMAP float32 item: PR-1 parity twins and the compiled
    executor under ``use_dtype(np.float32)`` with relaxed tolerances,
    plus dtype assertions that catch float64 upcast leaks."""

    def test_compiled_vs_eager_float32(self, city, tiny_config):
        with use_dtype(np.float32):
            (m_e, h_e), (m_c, h_c) = _twin_train(city, tiny_config)
            emb_e = m_e.embed(city.views())
            emb_c = m_c.embed(city.views())
        assert emb_e.dtype == np.float32 and emb_c.dtype == np.float32
        np.testing.assert_allclose(h_c.losses, h_e.losses, rtol=0.0,
                                   atol=ATOL32 * abs(h_e.losses[0]))
        np.testing.assert_allclose(emb_c, emb_e, rtol=0.0, atol=ATOL32)

    def test_no_float64_leaks_in_training(self, city, tiny_config):
        """Every parameter, gradient and Adam moment stays float32 —
        the leaky_relu scale upcast regression stays fixed."""
        with use_dtype(np.float32):
            model, _ = train_hafusion(city, tiny_config, seed=7)
        for name, param in model.named_parameters():
            assert param.dtype == np.float32, name
            if param.grad is not None:
                assert param.grad.dtype == np.float32, f"grad of {name}"

    def test_batched_engine_parity_float32(self, ragged_cities, tiny_config):
        """The PR-1 parity twins under float32: one shared model, fused
        (b, n, d) pass vs per-city loop, ≈1e-4."""
        from repro.core import (batched_embed, build_batched_model,
                                make_batch, sequential_embed)
        with use_dtype(np.float32):
            model = build_batched_model(make_batch(ragged_cities),
                                        tiny_config, seed=0)
            batched = batched_embed(ragged_cities, tiny_config, model=model)
            sequential = sequential_embed(ragged_cities, tiny_config,
                                          model=model)
        for b, s in zip(batched.embeddings, sequential.embeddings):
            assert b.dtype == np.float32
            np.testing.assert_allclose(b, s, rtol=0.0, atol=ATOL32)

    def test_batched_trainer_compiled_float32(self, ragged_cities, tiny_config):
        with use_dtype(np.float32):
            eager = BatchedTrainer(ragged_cities, tiny_config, seed=0)
            compiled = BatchedTrainer(ragged_cities, tiny_config, seed=0,
                                      compiled=True)
            h_e = eager.train(epochs=4)
            h_c = compiled.train(epochs=4)
            embeddings = compiled.embed()
        assert all(e.dtype == np.float32 for e in embeddings)
        np.testing.assert_allclose(h_c.losses, h_e.losses, rtol=0.0,
                                   atol=ATOL32 * abs(h_e.losses[0]))
