"""Tests for the HAFusion training objectives (paper Eq. 8-12)."""

import numpy as np
import pytest

from repro.core import (
    feature_similarity_loss,
    mobility_kl_loss,
    mobility_transition_probabilities,
)
from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.gradcheck import check_gradients


class TestFeatureSimilarityLoss:
    def test_zero_when_dot_products_match_cosine(self, rng):
        features = rng.standard_normal((6, 4))
        # Unit-normalized features: dot products equal cosine similarity.
        unit = features / np.linalg.norm(features, axis=1, keepdims=True)
        loss = feature_similarity_loss(Tensor(unit), features)
        assert loss.item() == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_mismatched(self, rng):
        embeddings = Tensor(rng.standard_normal((6, 4)) * 3.0)
        features = rng.standard_normal((6, 8))
        assert feature_similarity_loss(embeddings, features).item() > 0.0

    def test_gradient_flows(self, rng):
        emb = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        features = rng.standard_normal((4, 5))
        check_gradients(lambda: feature_similarity_loss(emb, features), [emb], atol=1e-4)

    def test_symmetric_in_regions(self, rng):
        emb_data = rng.standard_normal((5, 3))
        features = rng.standard_normal((5, 4))
        perm = rng.permutation(5)
        a = feature_similarity_loss(Tensor(emb_data), features).item()
        b = feature_similarity_loss(Tensor(emb_data[perm]), features[perm]).item()
        assert a == pytest.approx(b, abs=1e-9)


class TestTransitionProbabilities:
    def test_rows_and_columns_normalized(self, rng):
        mobility = rng.poisson(20, size=(8, 8)).astype(float)
        p_source, p_dest = mobility_transition_probabilities(mobility)
        assert np.allclose(p_source.sum(axis=1), 1.0)
        assert np.allclose(p_dest.sum(axis=0), 1.0)

    def test_zero_row_becomes_uniform(self):
        mobility = np.ones((4, 4))
        mobility[2, :] = 0.0
        p_source, _ = mobility_transition_probabilities(mobility)
        assert np.allclose(p_source[2], 0.25)

    def test_zero_column_becomes_uniform(self):
        mobility = np.ones((4, 4))
        mobility[:, 1] = 0.0
        _, p_dest = mobility_transition_probabilities(mobility)
        assert np.allclose(p_dest[:, 1], 0.25)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            mobility_transition_probabilities(np.ones((3, 4)))


class TestMobilityKLLoss:
    def test_lower_bound_is_entropy(self, rng):
        """Cross-entropy >= entropy of the empirical distributions."""
        mobility = rng.poisson(30, size=(6, 6)).astype(float) + 1.0
        p_source, p_dest = mobility_transition_probabilities(mobility)
        entropy = (-(p_source * np.log(p_source)).sum()
                   - (p_dest * np.log(p_dest)).sum())
        h = Tensor(rng.standard_normal((6, 4)))
        loss = mobility_kl_loss(h, h, mobility, scale="sum")
        assert loss.item() >= entropy - 1e-9

    def test_mean_is_sum_over_n(self, rng):
        mobility = rng.poisson(30, size=(6, 6)).astype(float) + 1.0
        h_s = Tensor(rng.standard_normal((6, 4)))
        h_d = Tensor(rng.standard_normal((6, 4)))
        loss_sum = mobility_kl_loss(h_s, h_d, mobility, scale="sum").item()
        loss_mean = mobility_kl_loss(h_s, h_d, mobility, scale="mean").item()
        assert loss_mean == pytest.approx(loss_sum / 6.0)

    def test_gradient_flows(self, rng):
        mobility = rng.poisson(10, size=(4, 4)).astype(float) + 1.0
        h_s = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        h_d = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        check_gradients(lambda: mobility_kl_loss(h_s, h_d, mobility),
                        [h_s, h_d], atol=1e-4)

    def test_training_decreases_kl(self, rng):
        """A few gradient steps must reduce the loss toward the entropy floor."""
        from repro.nn import Adam, Parameter
        mobility = rng.poisson(30, size=(8, 8)).astype(float) + 1.0
        h_s = Parameter(rng.standard_normal((8, 6)) * 0.1)
        h_d = Parameter(rng.standard_normal((8, 6)) * 0.1)
        optimizer = Adam([h_s, h_d], lr=0.05)
        first = None
        for _ in range(60):
            optimizer.zero_grad()
            loss = mobility_kl_loss(h_s, h_d, mobility)
            loss.backward()
            optimizer.step()
            first = loss.item() if first is None else first
        assert loss.item() < first

    def test_invalid_scale_rejected(self, rng):
        h = Tensor(rng.standard_normal((4, 3)))
        with pytest.raises(ValueError):
            mobility_kl_loss(h, h, np.ones((4, 4)), scale="median")
