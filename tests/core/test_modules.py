"""Tests for the HAFusion building blocks: IntraAFL, InterAFL,
HALearning, ViewFusion, RegionFusion, DAFusion."""

import numpy as np
import pytest

from repro.core import (
    ConcatFusion,
    DAFusion,
    HALearning,
    InterAFL,
    IntraAFL,
    RegionFusion,
    RegionSA,
    SumFusion,
    ViewFusion,
    build_fusion,
)
from repro.nn import Tensor


def _views(rng, n=10, dims=(12, 6, 4)):
    return [Tensor(rng.standard_normal((n, d))) for d in dims]


class TestRegionSA:
    def test_output_shape(self, rng):
        sa = RegionSA(d_model=8, n_regions=10, num_heads=2, conv_channels=4, rng=rng)
        out = sa(Tensor(rng.standard_normal((10, 8))))
        assert out.shape == (10, 8)

    def test_wrong_region_count_rejected(self, rng):
        sa = RegionSA(d_model=8, n_regions=10, num_heads=2, conv_channels=4, rng=rng)
        with pytest.raises(ValueError):
            sa(Tensor(rng.standard_normal((9, 8))))

    def test_indivisible_heads_rejected(self, rng):
        with pytest.raises(ValueError):
            RegionSA(d_model=9, n_regions=10, num_heads=2, rng=rng)

    def test_gradient_reaches_conv_path(self, rng):
        sa = RegionSA(d_model=4, n_regions=6, num_heads=2, conv_channels=2, rng=rng)
        x = Tensor(rng.standard_normal((6, 4)), requires_grad=True)
        (sa(x) ** 2.0).sum().backward()
        assert sa.conv.weight.grad is not None
        assert np.abs(sa.conv.weight.grad).sum() > 0
        assert sa.correlation_mlp.weight.grad is not None

    def test_differs_from_vanilla_attention(self, rng):
        # The correlation path must actually contribute: zeroing the
        # correlation MLP weight changes the output.
        sa = RegionSA(d_model=8, n_regions=10, num_heads=2, conv_channels=4, rng=rng)
        x = Tensor(rng.standard_normal((10, 8)))
        full = sa(x).data.copy()
        sa.correlation_mlp.weight.data[:] = 0.0
        sa.correlation_mlp.bias.data[:] = 0.0
        ablated = sa(x).data
        assert not np.allclose(full, ablated)


class TestIntraAFL:
    def test_projects_to_model_width(self, rng):
        enc = IntraAFL(input_dim=26, d_model=8, n_regions=10, num_layers=2,
                       num_heads=2, conv_channels=4, dropout=0.0, rng=rng)
        out = enc(Tensor(rng.standard_normal((10, 26))))
        assert out.shape == (10, 8)

    def test_vanilla_variant(self, rng):
        enc = IntraAFL(input_dim=6, d_model=8, n_regions=10, num_layers=1,
                       attention_kind="vanilla", dropout=0.0, rng=rng)
        assert enc(Tensor(rng.standard_normal((10, 6)))).shape == (10, 8)

    def test_unknown_kind_rejected(self, rng):
        with pytest.raises(ValueError):
            IntraAFL(6, 8, 10, attention_kind="linear", rng=rng)


class TestInterAFL:
    def test_shape_preserved(self, rng):
        inter = InterAFL(d_model=8, memory_size=5, num_layers=2, rng=rng)
        out = inter(Tensor(rng.standard_normal((10, 3, 8))))
        assert out.shape == (10, 3, 8)

    def test_vanilla_variant_shape(self, rng):
        inter = InterAFL(d_model=8, memory_size=5, num_layers=1,
                         attention_kind="vanilla", num_heads=2, rng=rng)
        out = inter(Tensor(rng.standard_normal((6, 3, 8))))
        assert out.shape == (6, 3, 8)

    def test_2d_input_rejected(self, rng):
        inter = InterAFL(d_model=8, memory_size=5, rng=rng)
        with pytest.raises(ValueError):
            inter(Tensor(rng.standard_normal((10, 8))))

    def test_unknown_kind_rejected(self, rng):
        with pytest.raises(ValueError):
            InterAFL(8, attention_kind="cosine", rng=rng)


class TestHALearning:
    def test_one_embedding_per_view(self, rng):
        hal = HALearning([12, 6, 4], n_regions=10, d_model=8, intra_layers=1,
                         inter_layers=1, num_heads=2, conv_channels=4,
                         memory_size=5, dropout=0.0, rng=rng)
        out = hal(_views(rng))
        assert len(out) == 3
        assert all(z.shape == (10, 8) for z in out)

    def test_beta_in_unit_interval(self, rng):
        hal = HALearning([4], n_regions=6, d_model=8, intra_layers=1,
                         inter_layers=1, num_heads=2, conv_channels=2,
                         memory_size=4, rng=rng)
        assert 0.0 <= hal.beta <= 1.0

    def test_view_count_mismatch_rejected(self, rng):
        hal = HALearning([12, 6], n_regions=10, d_model=8, intra_layers=1,
                         inter_layers=1, num_heads=2, conv_channels=2,
                         memory_size=4, rng=rng)
        with pytest.raises(ValueError):
            hal(_views(rng))  # 3 views

    def test_empty_views_rejected(self, rng):
        with pytest.raises(ValueError):
            HALearning([], n_regions=10, d_model=8, rng=rng)


class TestViewFusion:
    def test_weights_sum_to_one(self, rng):
        fusion = ViewFusion(d_model=8, d_prime=4, rng=rng)
        views = [Tensor(rng.standard_normal((10, 8))) for _ in range(3)]
        out = fusion(views)
        assert out.shape == (10, 8)
        assert fusion.last_weights.shape == (3,)
        assert fusion.last_weights.sum() == pytest.approx(1.0)

    def test_single_view_passthrough(self, rng):
        fusion = ViewFusion(d_model=8, rng=rng)
        view = Tensor(rng.standard_normal((10, 8)))
        assert np.allclose(fusion([view]).data, view.data)

    def test_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            ViewFusion(d_model=8, rng=rng)([])

    def test_output_is_convex_combination(self, rng):
        fusion = ViewFusion(d_model=4, d_prime=3, rng=rng)
        views = [Tensor(rng.standard_normal((5, 4))) for _ in range(2)]
        out = fusion(views).data
        alphas = fusion.last_weights
        expected = alphas[0] * views[0].data + alphas[1] * views[1].data
        assert np.allclose(out, expected)

    def test_gradient_to_views(self, rng):
        fusion = ViewFusion(d_model=4, d_prime=3, rng=rng)
        views = [Tensor(rng.standard_normal((5, 4)), requires_grad=True) for _ in range(2)]
        (fusion(views) ** 2.0).sum().backward()
        assert all(v.grad is not None for v in views)


class TestFusionVariants:
    def test_dafusion_shape(self, rng):
        fusion = DAFusion(d_model=8, d_prime=4, num_layers=2, num_heads=2,
                          dropout=0.0, rng=rng)
        views = [Tensor(rng.standard_normal((10, 8))) for _ in range(3)]
        assert fusion(views).shape == (10, 8)
        assert fusion.view_weights is not None

    def test_sum_fusion_is_sum(self, rng):
        fusion = SumFusion(8)
        views = [Tensor(rng.standard_normal((5, 8))) for _ in range(3)]
        expected = sum(v.data for v in views)
        assert np.allclose(fusion(views).data, expected)

    def test_concat_fusion_shape(self, rng):
        fusion = ConcatFusion(8, n_views=3, rng=rng)
        views = [Tensor(rng.standard_normal((5, 8))) for _ in range(3)]
        assert fusion(views).shape == (5, 8)

    def test_build_fusion_dispatch(self, rng):
        assert isinstance(build_fusion("dafusion", 8, 3, rng=rng), DAFusion)
        assert isinstance(build_fusion("sum", 8, 3, rng=rng), SumFusion)
        assert isinstance(build_fusion("concat", 8, 3, rng=rng), ConcatFusion)
        with pytest.raises(ValueError):
            build_fusion("mean", 8, 3, rng=rng)


class TestRegionFusion:
    def test_shape_preserved(self, rng):
        fusion = RegionFusion(d_model=8, num_layers=2, num_heads=2,
                              dropout=0.0, rng=rng)
        out = fusion(Tensor(rng.standard_normal((10, 8))))
        assert out.shape == (10, 8)

    def test_mixes_information_between_regions(self, rng):
        # Changing one region's input must change other regions' outputs
        # (that is RegionFusion's entire purpose).
        fusion = RegionFusion(d_model=8, num_layers=1, num_heads=2,
                              dropout=0.0, rng=rng)
        fusion.eval()
        x = rng.standard_normal((6, 8))
        base = fusion(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0] += 10.0
        moved = fusion(Tensor(x2)).data
        assert np.abs(moved[1:] - base[1:]).max() > 1e-6
