"""Parity lockdown for the batched multi-city execution engine.

The vectorization refactor is only safe if the batched ``(b, n, d)``
paths reproduce the per-city loop exactly. Every test here compares a
batched forward (and backward) against the same module applied item by
item, at ≤1e-8 (float64; unpadded batches are in fact bit-identical).
"""

import numpy as np
import pytest

from repro.core import (
    BatchedTrainer,
    DAFusion,
    HAFusion,
    HAFusionConfig,
    InterAFL,
    IntraAFL,
    RegionFusion,
    batched_embed,
    build_batched_model,
    make_batch,
    sequential_embed,
    shard_viewset,
)
from repro.data import CityConfig, generate_city
from repro.nn import Tensor

ATOL = 1e-8
BATCH = 3


def _loop(module, xb, *args, **kwargs):
    """Apply ``module`` per batch item and stack the outputs."""
    return np.stack([module(Tensor(xb[i]), *args, **kwargs).data
                     for i in range(xb.shape[0])])


def _param_grads(module):
    return [None if p.grad is None else p.grad.copy()
            for p in module.parameters()]


def _assert_forward_backward_parity(module, xb, rtol=0.0):
    """Batched forward matches the loop; batched parameter gradients match
    the sum of per-item gradients (the defining property of a batch)."""
    out_batched = module(Tensor(xb)).data
    out_loop = _loop(module, xb)
    np.testing.assert_allclose(out_batched, out_loop, rtol=rtol, atol=ATOL)

    module.zero_grad()
    x = Tensor(xb, requires_grad=True)
    (module(x) * module(x)).sum().backward()
    grads_batched = _param_grads(module)
    grad_x_batched = x.grad.copy()

    module.zero_grad()
    grad_x_loop = []
    for i in range(xb.shape[0]):
        xi = Tensor(xb[i], requires_grad=True)
        (module(xi) * module(xi)).sum().backward()
        grad_x_loop.append(xi.grad.copy())
    grads_loop = _param_grads(module)

    np.testing.assert_allclose(grad_x_batched, np.stack(grad_x_loop),
                               rtol=rtol, atol=ATOL)
    for batched, looped in zip(grads_batched, grads_loop):
        assert (batched is None) == (looped is None)
        if batched is not None:
            np.testing.assert_allclose(batched, looped, rtol=rtol, atol=ATOL)


class TestModuleParity:
    def test_intra_afl(self, rng):
        enc = IntraAFL(input_dim=7, d_model=8, n_regions=6, num_layers=2,
                       num_heads=2, conv_channels=4, dropout=0.0, rng=rng)
        _assert_forward_backward_parity(enc, rng.standard_normal((BATCH, 6, 7)))

    def test_intra_afl_vanilla(self, rng):
        enc = IntraAFL(input_dim=7, d_model=8, n_regions=6, num_layers=1,
                       attention_kind="vanilla", num_heads=2, dropout=0.0, rng=rng)
        _assert_forward_backward_parity(enc, rng.standard_normal((BATCH, 6, 7)))

    def test_inter_afl(self, rng):
        inter = InterAFL(d_model=8, memory_size=5, num_layers=2, rng=rng)
        _assert_forward_backward_parity(inter, rng.standard_normal((BATCH, 6, 3, 8)))

    def test_inter_afl_vanilla(self, rng):
        inter = InterAFL(d_model=8, memory_size=5, num_layers=1,
                         attention_kind="vanilla", num_heads=2, rng=rng)
        _assert_forward_backward_parity(inter, rng.standard_normal((BATCH, 4, 2, 8)))

    def test_region_fusion(self, rng):
        fusion = RegionFusion(d_model=8, num_layers=2, num_heads=2,
                              dropout=0.0, rng=rng)
        _assert_forward_backward_parity(fusion, rng.standard_normal((BATCH, 6, 8)))

    def test_dafusion(self, rng):
        fusion = DAFusion(d_model=8, d_prime=4, num_layers=2, num_heads=2,
                          dropout=0.0, rng=rng)
        views = [rng.standard_normal((BATCH, 6, 8)) for _ in range(3)]
        out_batched = fusion([Tensor(v) for v in views]).data
        out_loop = np.stack([
            fusion([Tensor(v[i]) for v in views]).data for i in range(BATCH)])
        np.testing.assert_allclose(out_batched, out_loop, rtol=0.0, atol=ATOL)

        fusion.zero_grad()
        inputs = [Tensor(v, requires_grad=True) for v in views]
        (fusion(inputs) ** 2.0).sum().backward()
        grads_batched = _param_grads(fusion)
        grad_views_batched = [v.grad.copy() for v in inputs]

        fusion.zero_grad()
        grad_views_loop = [[] for _ in views]
        for i in range(BATCH):
            items = [Tensor(v[i], requires_grad=True) for v in views]
            (fusion(items) ** 2.0).sum().backward()
            for j, item in enumerate(items):
                grad_views_loop[j].append(item.grad.copy())
        for batched, looped in zip(grads_batched, _param_grads(fusion)):
            if batched is not None:
                np.testing.assert_allclose(batched, looped, rtol=0.0, atol=ATOL)
        for batched, looped in zip(grad_views_batched, grad_views_loop):
            np.testing.assert_allclose(batched, np.stack(looped), rtol=0.0, atol=ATOL)


class TestFullModelParity:
    @pytest.fixture(scope="class")
    def model_and_views(self):
        rng = np.random.default_rng(11)
        config = HAFusionConfig(d=16, d_prime=8, conv_channels=4, memory_size=6,
                                num_heads=2, intra_layers=1, inter_layers=1,
                                fusion_layers=1, epochs=5, dropout=0.0)
        model = HAFusion([7, 5, 4], n_regions=6, config=config, rng=rng)
        views = [rng.standard_normal((BATCH, 6, d)) for d in (7, 5, 4)]
        return model, views

    def test_forward_parity(self, model_and_views):
        model, views = model_and_views
        out_batched = model([Tensor(v) for v in views]).data
        out_loop = np.stack([
            model([Tensor(v[i]) for v in views]).data for i in range(BATCH)])
        np.testing.assert_allclose(out_batched, out_loop, rtol=0.0, atol=ATOL)

    def test_backward_parity(self, model_and_views):
        model, views = model_and_views
        model.zero_grad()
        (model([Tensor(v) for v in views]) ** 2.0).sum().backward()
        grads_batched = [p.grad.copy() for p in model.parameters()
                         if p.grad is not None]
        model.zero_grad()
        for i in range(BATCH):
            (model([Tensor(v[i]) for v in views]) ** 2.0).sum().backward()
        grads_loop = [p.grad.copy() for p in model.parameters()
                      if p.grad is not None]
        assert len(grads_batched) == len(grads_loop)
        for batched, looped in zip(grads_batched, grads_loop):
            np.testing.assert_allclose(batched, looped, rtol=0.0, atol=ATOL)


@pytest.fixture(scope="module")
def ragged_cities():
    """Three small cities with different region counts (ragged batch)."""
    return [
        generate_city(CityConfig(name=f"parity{n}", n_regions=n,
                                 total_trips=5000, poi_total=1200), seed=seed)
        for n, seed in ((12, 0), (9, 1), (14, 2))
    ]


@pytest.fixture(scope="module")
def tiny_config():
    return HAFusionConfig(d=16, d_prime=8, conv_channels=4, memory_size=6,
                          num_heads=2, intra_layers=1, inter_layers=1,
                          fusion_layers=1, epochs=5, dropout=0.0)


class TestEngineParity:
    def test_ragged_batched_embed_matches_sequential(self, ragged_cities, tiny_config):
        model = build_batched_model(make_batch(ragged_cities), tiny_config, seed=0)
        batched = batched_embed(ragged_cities, tiny_config, model=model)
        sequential = sequential_embed(ragged_cities, tiny_config, model=model)
        assert batched.batch_size == 3
        for b, s, city in zip(batched.embeddings, sequential.embeddings,
                              ragged_cities):
            assert b.shape == (city.n_regions, tiny_config.d)
            np.testing.assert_allclose(b, s, rtol=0.0, atol=ATOL)

    def test_unpadded_batch_matches_original_forward(self, tiny_config):
        """Same-size cities skip masking entirely, and a single batched
        pass must equal the pre-refactor per-city forward."""
        cities = [generate_city(CityConfig(name=f"same{s}", n_regions=10,
                                           total_trips=5000, poi_total=1200),
                                seed=s) for s in range(3)]
        batch = make_batch(cities)
        assert not batch.is_padded
        model = build_batched_model(batch, tiny_config, seed=0)
        batched = batched_embed(cities, tiny_config, model=model)
        for embedding, city in zip(batched.embeddings, cities):
            direct = model.embed(city.views())
            np.testing.assert_allclose(embedding, direct, rtol=0.0, atol=ATOL)

    def test_shards_cover_all_regions(self, ragged_cities, tiny_config):
        city = ragged_cities[2]
        shards = shard_viewset(city.views(), 3)
        assert sum(s.n_regions for s in shards) == city.n_regions
        result = batched_embed(shards, tiny_config, seed=0)
        assert sum(e.shape[0] for e in result.embeddings) == city.n_regions

    def test_shard_bounds_validated(self, ragged_cities):
        views = ragged_cities[0].views()
        with pytest.raises(ValueError):
            shard_viewset(views, 0)
        with pytest.raises(ValueError):
            shard_viewset(views, views.n_regions + 1)

    def test_mismatched_views_rejected(self, ragged_cities):
        subset = ragged_cities[0].views().subset(["poi"])
        with pytest.raises(ValueError):
            make_batch([subset, ragged_cities[1].views()])

    @pytest.mark.parametrize("overrides", [
        dict(intra_attention="vanilla"),
        dict(inter_attention="vanilla"),
        dict(fusion="sum"),
        dict(fusion="concat"),
    ], ids=lambda o: "-".join(f"{k}={v}" for k, v in o.items()))
    def test_ragged_parity_across_ablations(self, ragged_cities, tiny_config,
                                            overrides):
        """Every architecture variant must keep the masked-batch contract,
        including the vanilla-attention and sum/concat ablation paths."""
        config = tiny_config.with_overrides(**overrides)
        model = build_batched_model(make_batch(ragged_cities), config, seed=0)
        batched = batched_embed(ragged_cities, config, model=model)
        sequential = sequential_embed(ragged_cities, config, model=model)
        for b, s in zip(batched.embeddings, sequential.embeddings):
            np.testing.assert_allclose(b, s, rtol=0.0, atol=ATOL)


class TestBatchedTrainer:
    def test_initial_loss_matches_per_city_mean(self, ragged_cities, tiny_config):
        """The batch objective is the mean of per-city objectives: a
        trainer over the batch and three single-city trainers sharing the
        same model must agree before the first step."""
        trainer = BatchedTrainer(ragged_cities, tiny_config, seed=0)
        batched_loss = trainer.loss().item()
        per_city = [
            BatchedTrainer(trainer.batch.select([i]), tiny_config,
                           model=trainer.model).loss().item()
            for i in range(len(ragged_cities))
        ]
        assert batched_loss == pytest.approx(np.mean(per_city), abs=1e-8)

    def test_training_reduces_loss(self, ragged_cities, tiny_config):
        trainer = BatchedTrainer(ragged_cities, tiny_config, seed=0)
        history = trainer.train(epochs=8)
        assert history.improved()
        embeddings = trainer.embed()
        assert [e.shape[0] for e in embeddings] == [12, 9, 14]

    def test_sharded_training_drops_kl(self, ragged_cities, tiny_config):
        shards = shard_viewset(ragged_cities[0].views(), 2)
        trainer = BatchedTrainer(shards, tiny_config, seed=0)
        assert not trainer._use_kl
        assert trainer.train(epochs=4).improved()

    def test_masked_gradients_average_per_city_gradients(self, ragged_cities,
                                                         tiny_config):
        """The batch loss is the mean over cities, so its parameter
        gradients must equal the mean of per-city loss gradients — the
        masked-backward counterpart of the forward parity tests."""
        trainer = BatchedTrainer(ragged_cities, tiny_config, seed=0)
        trainer.model.zero_grad()
        trainer.loss().backward()
        params = trainer.model.parameters()
        grads_batched = [None if p.grad is None else p.grad.copy()
                         for p in params]

        trainer.model.zero_grad()
        for i in range(len(ragged_cities)):
            single = BatchedTrainer(trainer.batch.select([i]), tiny_config,
                                    model=trainer.model)
            (single.loss() * (1.0 / len(ragged_cities))).backward()
        for batched, param in zip(grads_batched, params):
            if batched is None:
                assert param.grad is None
            else:
                np.testing.assert_allclose(batched, param.grad,
                                           rtol=0.0, atol=ATOL)
