"""Lockdown for the compiled serving path: forward-only inference plans,
the plan cache (memory LRU + on-disk specs), and the buffer-liveness
pool.

Contracts under test:

- ``batched_embed(..., compiled=True)`` / ``sequential_embed`` replay
  flat kernels and match the eager engine to ≤1e-8 (float64) / ≈1e-4
  (float32, with no dtype leaks);
- the cache keys on (config digest, shapes, dtype, mask signature):
  same-key requests replay a live plan, parameter swaps relower the
  cached spec (no record epoch), key changes record exactly once;
- a warm on-disk cache performs **zero** record epochs (asserted through
  the :data:`repro.nn.RECORD_STATS` counter) and round-trips to
  bit-identical replay output;
- corrupted / stale / wrong-architecture on-disk entries fall back to a
  fresh record;
- the activation liveness pool is arithmetic-neutral and strictly
  smaller than the one-buffer-per-slot layout.
"""

import pickle

import numpy as np
import pytest

from repro.core import (
    HAFusionConfig,
    batched_embed,
    make_batch,
    sequential_embed,
)
from repro.core.engine import build_batched_model, _serving_plan
from repro.data import CityConfig, generate_city
from repro.nn import (
    RECORD_STATS,
    PlanCache,
    Tensor,
    inference_plan_key,
    no_grad,
    record_forward,
    use_dtype,
)
from repro.nn.compile import InferencePlan

ATOL64 = 1e-8
ATOL32 = 1e-4


@pytest.fixture(scope="module")
def tiny_config():
    return HAFusionConfig(d=16, d_prime=8, conv_channels=4, memory_size=6,
                          num_heads=2, intra_layers=1, inter_layers=1,
                          fusion_layers=1, epochs=4, dropout=0.1, lr=5e-4)


@pytest.fixture(scope="module")
def ragged_cities():
    return [
        generate_city(CityConfig(name=f"serve{n}", n_regions=n,
                                 total_trips=5000, poi_total=1200), seed=seed)
        for n, seed in ((12, 0), (9, 1), (14, 2))
    ]


@pytest.fixture(scope="module")
def same_cities():
    return [
        generate_city(CityConfig(name=f"even{s}", n_regions=10,
                                 total_trips=5000, poi_total=1200), seed=s)
        for s in range(3)
    ]


def _assert_embed_parity(batch, model, cache, atol=ATOL64):
    eager = batched_embed(batch, model=model)
    compiled = batched_embed(batch, model=model, compiled=True,
                             plan_cache=cache)
    for e, c in zip(eager.embeddings, compiled.embeddings):
        np.testing.assert_allclose(c, e, rtol=0.0, atol=atol)
    return eager, compiled


class TestServingParity:
    def test_batched_embed_unpadded(self, same_cities, tiny_config):
        batch = make_batch(same_cities)
        model = build_batched_model(batch, tiny_config, seed=0)
        _assert_embed_parity(batch, model, PlanCache())

    def test_batched_embed_ragged_masked(self, ragged_cities, tiny_config):
        batch = make_batch(ragged_cities)
        model = build_batched_model(batch, tiny_config, seed=0)
        cache = PlanCache()
        _assert_embed_parity(batch, model, cache)
        # The masked gate chain fuses in the inference plan too.
        plan = _serving_plan(model, batch.matrices, batch.forward_mask(),
                             cache, "batched_embed")
        assert plan.num_fused_chains == tiny_config.intra_layers * 3

    def test_sequential_embed_compiled(self, ragged_cities, tiny_config):
        batch = make_batch(ragged_cities)
        model = build_batched_model(batch, tiny_config, seed=0)
        cache = PlanCache()
        eager = sequential_embed(batch, model=model)
        compiled = sequential_embed(batch, model=model, compiled=True,
                                    plan_cache=cache)
        for e, c in zip(eager.embeddings, compiled.embeddings):
            np.testing.assert_allclose(c, e, rtol=0.0, atol=ATOL64)
        # One plan per distinct mask pattern — three ragged cities.
        assert cache.misses == 3

    def test_replay_is_deterministic(self, same_cities, tiny_config):
        batch = make_batch(same_cities)
        model = build_batched_model(batch, tiny_config, seed=0)
        cache = PlanCache()
        first = batched_embed(batch, model=model, compiled=True,
                              plan_cache=cache)
        second = batched_embed(batch, model=model, compiled=True,
                               plan_cache=cache)
        assert cache.hits >= 1
        for a, b in zip(first.embeddings, second.embeddings):
            np.testing.assert_array_equal(a, b)

    def test_float32_serving(self, ragged_cities, tiny_config):
        """float32 parity ≈1e-4 with no float64 leak into the output."""
        with use_dtype(np.float32):
            batch = make_batch(ragged_cities)
            model = build_batched_model(batch, tiny_config, seed=0)
            eager, compiled = _assert_embed_parity(batch, model, PlanCache(),
                                                   atol=ATOL32)
        for e, c in zip(eager.embeddings, compiled.embeddings):
            assert e.dtype == np.float32
            assert c.dtype == np.float32

    def test_inputs_not_mutated(self, ragged_cities, tiny_config):
        """run() must never write through to the caller's batch arrays."""
        batch = make_batch(ragged_cities)
        before = [m.copy() for m in batch.matrices]
        model = build_batched_model(batch, tiny_config, seed=0)
        batched_embed(batch, model=model, compiled=True, plan_cache=PlanCache())
        for m, ref in zip(batch.matrices, before):
            np.testing.assert_array_equal(m, ref)


class TestPlanCacheKeys:
    def test_key_sensitivity(self, tiny_config):
        shapes = [(3, 10, 20), (3, 10, 8)]
        mask = np.ones((3, 10))
        base = inference_plan_key(tiny_config, shapes, np.float64, mask)
        assert base == inference_plan_key(tiny_config, shapes, np.float64,
                                          mask.copy())
        # shape change
        assert base != inference_plan_key(tiny_config, [(3, 11, 20), (3, 11, 8)],
                                          np.float64, mask)
        # dtype change
        assert base != inference_plan_key(tiny_config, shapes, np.float32, mask)
        # config-digest change
        other = tiny_config.with_overrides(conv_channels=8)
        assert base != inference_plan_key(other, shapes, np.float64, mask)
        # mask-signature change (same shape, different pattern) and no mask
        padded = mask.copy()
        padded[2, 8:] = 0.0
        assert base != inference_plan_key(tiny_config, shapes, np.float64, padded)
        assert base != inference_plan_key(tiny_config, shapes, np.float64, None)

    def test_miss_on_shape_and_mask_change(self, ragged_cities, same_cities,
                                           tiny_config):
        cache = PlanCache()
        ragged = make_batch(ragged_cities)       # masked, n_max=14
        even = make_batch(same_cities)           # unpadded, n_max=10
        model_r = build_batched_model(ragged, tiny_config, seed=0)
        model_e = build_batched_model(even, tiny_config, seed=0)
        batched_embed(ragged, model=model_r, compiled=True, plan_cache=cache)
        batched_embed(even, model=model_e, compiled=True, plan_cache=cache)
        assert cache.misses == 2                 # different shapes+mask
        batched_embed(ragged, model=model_r, compiled=True, plan_cache=cache)
        batched_embed(even, model=model_e, compiled=True, plan_cache=cache)
        assert cache.misses == 2 and cache.hits == 2
        # Same layout, different padding pattern -> different mask
        # signature -> third record.
        reordered = ragged.select([2, 0, 1])
        batched_embed(reordered, model=model_r, compiled=True, plan_cache=cache)
        assert cache.misses == 3

    def test_cross_model_spec_reuse(self, same_cities, tiny_config):
        """A second model of the same architecture relowers the cached
        spec — correct new outputs, zero record epochs."""
        batch = make_batch(same_cities)
        cache = PlanCache()
        model_a = build_batched_model(batch, tiny_config, seed=0)
        batched_embed(batch, model=model_a, compiled=True, plan_cache=cache)
        model_b = build_batched_model(batch, tiny_config, seed=99)
        RECORD_STATS.reset()
        eager_b = batched_embed(batch, model=model_b)
        compiled_b = batched_embed(batch, model=model_b, compiled=True,
                                   plan_cache=cache)
        assert RECORD_STATS.total == 0
        assert cache.spec_hits == 1
        for e, c in zip(eager_b.embeddings, compiled_b.embeddings):
            np.testing.assert_allclose(c, e, rtol=0.0, atol=ATOL64)

    def test_param_swap_invalidation(self, same_cities, tiny_config):
        """load_state_dict replaces parameter arrays: the bound plan is
        stale, the spec relowers against the new arrays (no record), and
        the output tracks the new weights."""
        batch = make_batch(same_cities)
        cache = PlanCache()
        model = build_batched_model(batch, tiny_config, seed=0)
        batched_embed(batch, model=model, compiled=True, plan_cache=cache)
        model.load_state_dict({k: v * 0.5 for k, v in model.state_dict().items()})
        RECORD_STATS.reset()
        eager = batched_embed(batch, model=model)
        compiled = batched_embed(batch, model=model, compiled=True,
                                 plan_cache=cache)
        assert RECORD_STATS.total == 0 and cache.spec_hits == 1
        for e, c in zip(eager.embeddings, compiled.embeddings):
            np.testing.assert_allclose(c, e, rtol=0.0, atol=ATOL64)

    def test_lru_eviction(self, ragged_cities, same_cities, tiny_config):
        """A capacity-1 memory-only cache re-records evicted keys."""
        cache = PlanCache(capacity=1)
        ragged = make_batch(ragged_cities)
        even = make_batch(same_cities)
        model_r = build_batched_model(ragged, tiny_config, seed=0)
        model_e = build_batched_model(even, tiny_config, seed=0)
        batched_embed(ragged, model=model_r, compiled=True, plan_cache=cache)
        batched_embed(even, model=model_e, compiled=True, plan_cache=cache)
        batched_embed(ragged, model=model_r, compiled=True, plan_cache=cache)
        assert cache.misses == 3
        assert cache.stats()["cached_specs"] == 1


class TestDiskCache:
    def test_warm_cache_zero_records_bit_identical(self, ragged_cities,
                                                   tiny_config, tmp_path):
        batch = make_batch(ragged_cities)
        cold = PlanCache(directory=tmp_path)
        model = build_batched_model(batch, tiny_config, seed=0)
        first = batched_embed(batch, model=model, compiled=True,
                              plan_cache=cold)
        assert cold.misses == 1

        # A fresh cache over the same directory simulates a new process:
        # the spec loads from disk, relowers, and replays bit-identically
        # with zero record epochs.
        warm = PlanCache(directory=tmp_path)
        model2 = build_batched_model(batch, tiny_config, seed=0)
        RECORD_STATS.reset()
        second = batched_embed(batch, model=model2, compiled=True,
                               plan_cache=warm)
        assert RECORD_STATS.total == 0
        assert warm.disk_hits == 1 and warm.misses == 0
        for a, b in zip(first.embeddings, second.embeddings):
            np.testing.assert_array_equal(a, b)

    def _cache_files(self, directory):
        return sorted(directory.glob("*.plan"))

    def test_corrupted_file_falls_back_to_record(self, same_cities,
                                                 tiny_config, tmp_path):
        batch = make_batch(same_cities)
        model = build_batched_model(batch, tiny_config, seed=0)
        cold = PlanCache(directory=tmp_path)
        reference = batched_embed(batch, model=model, compiled=True,
                                  plan_cache=cold)
        (path,) = self._cache_files(tmp_path)
        path.write_bytes(b"\x00not a pickle")

        warm = PlanCache(directory=tmp_path)
        RECORD_STATS.reset()
        recovered = batched_embed(batch, model=model, compiled=True,
                                  plan_cache=warm)
        assert warm.disk_errors == 1 and warm.misses == 1
        assert RECORD_STATS.total == 1          # fell back to a record
        for a, b in zip(reference.embeddings, recovered.embeddings):
            np.testing.assert_array_equal(a, b)
        # The re-record rewrote a good entry.
        fresh = PlanCache(directory=tmp_path)
        RECORD_STATS.reset()
        batched_embed(batch, model=model, compiled=True, plan_cache=fresh)
        assert RECORD_STATS.total == 0 and fresh.disk_hits == 1

    def test_stale_key_falls_back_to_record(self, same_cities, tiny_config,
                                            tmp_path):
        """An entry whose stored key disagrees with its filename (e.g. a
        hash collision or a hand-copied file) is discarded."""
        batch = make_batch(same_cities)
        model = build_batched_model(batch, tiny_config, seed=0)
        cold = PlanCache(directory=tmp_path)
        batched_embed(batch, model=model, compiled=True, plan_cache=cold)
        (path,) = self._cache_files(tmp_path)
        spec = pickle.loads(path.read_bytes())
        spec.key = ("infer", "tampered")
        path.write_bytes(pickle.dumps(spec))

        warm = PlanCache(directory=tmp_path)
        RECORD_STATS.reset()
        batched_embed(batch, model=model, compiled=True, plan_cache=warm)
        assert warm.disk_errors == 1 and warm.misses == 1
        assert RECORD_STATS.total == 1

    def test_wrong_architecture_spec_invalidates(self, same_cities,
                                                 tiny_config, tmp_path):
        """A stored spec whose parameter layout no longer matches the
        model (same filename, different architecture) re-records instead
        of binding garbage."""
        batch = make_batch(same_cities)
        model = build_batched_model(batch, tiny_config, seed=0)
        cache = PlanCache(directory=tmp_path)
        batched_embed(batch, model=model, compiled=True, plan_cache=cache)
        (path,) = self._cache_files(tmp_path)
        spec = pickle.loads(path.read_bytes())
        spec.param_count += 1                   # architecture drift
        path.write_bytes(pickle.dumps(spec))

        warm = PlanCache(directory=tmp_path)
        RECORD_STATS.reset()
        recovered = batched_embed(batch, model=model, compiled=True,
                                  plan_cache=warm)
        assert warm.invalidations == 1 and warm.misses == 1
        assert RECORD_STATS.total == 1
        eager = batched_embed(batch, model=model)
        for e, c in zip(eager.embeddings, recovered.embeddings):
            np.testing.assert_allclose(c, e, rtol=0.0, atol=ATOL64)


class TestInferencePlanInternals:
    def _record_plan(self, batch, model, pool_buffers=True):
        mask = batch.forward_mask()
        model.eval()
        slots = [Tensor(np.array(m)) for m in batch.matrices]
        with no_grad():
            output, nodes = record_forward(
                lambda: model.forward(slots, mask=mask))
        model.train()
        return InferencePlan(output, nodes, slots,
                             params=model.parameters(),
                             pool_buffers=pool_buffers)

    def test_liveness_pool_is_arithmetic_neutral(self, ragged_cities,
                                                 tiny_config):
        batch = make_batch(ragged_cities)
        model = build_batched_model(batch, tiny_config, seed=0)
        pooled = self._record_plan(batch, model, pool_buffers=True)
        flat = self._record_plan(batch, model, pool_buffers=False)
        out_pooled = pooled.run(batch.matrices).copy()
        out_flat = flat.run(batch.matrices)
        np.testing.assert_array_equal(out_pooled, out_flat)

        report = pooled.buffer_report()
        assert report["pooled"]
        assert report["slot_bytes"] < report["slot_bytes_unpooled"]
        assert report["slot_reduction"] >= 0.4
        flat_report = flat.buffer_report()
        assert flat_report["slot_bytes"] == flat_report["slot_bytes_unpooled"]

    def test_run_validates_inputs(self, same_cities, tiny_config):
        batch = make_batch(same_cities)
        model = build_batched_model(batch, tiny_config, seed=0)
        plan = self._record_plan(batch, model)
        with pytest.raises(ValueError, match="inputs"):
            plan.run(batch.matrices[:-1])
        bad = [np.zeros((1, 2, 3))] + list(batch.matrices[1:])
        with pytest.raises(ValueError, match="shape"):
            plan.run(bad)

    def test_rejects_train_mode_dropout(self, same_cities, tiny_config):
        """Recording an inference plan with active dropout (model left in
        train mode) fails loudly instead of freezing one mask."""
        batch = make_batch(same_cities)
        model = build_batched_model(batch, tiny_config, seed=0)
        inputs = [Tensor(m) for m in batch.matrices]
        with no_grad():
            with pytest.raises(RuntimeError, match="eval"):
                record_forward(lambda: model.forward(inputs))

    def test_rejects_graph_built_outside_recording(self, same_cities,
                                                   tiny_config):
        batch = make_batch(same_cities)
        model = build_batched_model(batch, tiny_config, seed=0)
        model.eval()
        inputs = [Tensor(m) for m in batch.matrices]
        stale = model.forward(inputs)       # grad-enabled: carries a graph
        with no_grad():
            output, nodes = record_forward(lambda: stale * 2.0)
        model.train()
        with pytest.raises(RuntimeError, match="outside the recorded"):
            InferencePlan(output, nodes, inputs)
