"""Tests for the assembled HAFusion model, config, and trainer."""

import numpy as np
import pytest

from repro.core import HAFusion, HAFusionConfig, train_hafusion, train_model
from repro.data import CityConfig, generate_city
from repro.nn import Tensor


def _tiny_config(**overrides) -> HAFusionConfig:
    defaults = dict(d=16, d_prime=8, conv_channels=4, memory_size=6,
                    num_heads=2, intra_layers=1, inter_layers=1,
                    fusion_layers=1, epochs=5, dropout=0.0)
    defaults.update(overrides)
    return HAFusionConfig(**defaults)


@pytest.fixture(scope="module")
def tiny_city():
    config = CityConfig(name="tiny", n_regions=20, total_trips=5000, poi_total=1200)
    return generate_city(config, seed=3)


class TestConfig:
    def test_defaults_match_paper(self):
        config = HAFusionConfig()
        assert config.d == 144
        assert config.d_prime == 64
        assert config.conv_channels == 32
        assert config.memory_size == 72
        assert config.epochs == 2500
        assert config.lr == 5e-4

    def test_per_city_layer_counts(self):
        assert HAFusionConfig.for_city("nyc").intra_layers == 3
        assert HAFusionConfig.for_city("chi").intra_layers == 1
        assert HAFusionConfig.for_city("chi").inter_layers == 2
        assert HAFusionConfig.for_city("sf").inter_layers == 2
        # Expanded NYC presets inherit NYC settings.
        assert HAFusionConfig.for_city("nyc_720").intra_layers == 3

    def test_overrides(self):
        config = HAFusionConfig().with_overrides(d=64, epochs=10)
        assert config.d == 64 and config.epochs == 10

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            HAFusionConfig(d=10, num_heads=4)
        with pytest.raises(ValueError):
            HAFusionConfig(fusion="average")
        with pytest.raises(ValueError):
            HAFusionConfig(epochs=0)
        with pytest.raises(ValueError):
            HAFusionConfig(mobility_loss_scale="max")


class TestHAFusionModel:
    def test_forward_shape(self, tiny_city, rng):
        views = tiny_city.views()
        model = HAFusion(views.dims(), views.n_regions, _tiny_config(), rng=rng)
        h = model([Tensor(m) for m in views.matrices])
        assert h.shape == (20, 16)

    def test_loss_is_finite_scalar(self, tiny_city, rng):
        views = tiny_city.views()
        model = HAFusion(views.dims(), views.n_regions, _tiny_config(), rng=rng)
        loss = model.loss(views)
        assert loss.size == 1
        assert np.isfinite(loss.item())

    def test_embed_is_deterministic(self, tiny_city, rng):
        views = tiny_city.views()
        model = HAFusion(views.dims(), views.n_regions, _tiny_config(dropout=0.2), rng=rng)
        a = model.embed(views)
        b = model.embed(views)
        assert np.allclose(a, b)

    def test_embed_restores_training_mode(self, tiny_city, rng):
        views = tiny_city.views()
        model = HAFusion(views.dims(), views.n_regions, _tiny_config(), rng=rng)
        model.embed(views)
        assert model.training

    def test_no_mobility_view(self, tiny_city, rng):
        views = tiny_city.views().subset(["poi", "landuse"])
        model = HAFusion(views.dims(), views.n_regions, _tiny_config(),
                         mobility_view=None, rng=rng)
        assert np.isfinite(model.loss(views).item())

    def test_ablation_variants_construct(self, tiny_city, rng):
        views = tiny_city.views()
        for overrides in (dict(fusion="sum"), dict(fusion="concat"),
                          dict(intra_attention="vanilla"),
                          dict(inter_attention="vanilla")):
            model = HAFusion(views.dims(), views.n_regions,
                             _tiny_config(**overrides), rng=rng)
            assert model.embed(views).shape == (20, 16)

    def test_seed_reproducibility(self, tiny_city):
        views = tiny_city.views()
        a = HAFusion(views.dims(), views.n_regions, _tiny_config(),
                     rng=np.random.default_rng(5)).embed(views)
        b = HAFusion(views.dims(), views.n_regions, _tiny_config(),
                     rng=np.random.default_rng(5)).embed(views)
        assert np.allclose(a, b)


class TestTrainer:
    def test_loss_decreases(self, tiny_city):
        config = _tiny_config(epochs=30)
        model, history = train_hafusion(tiny_city, config, seed=1)
        assert history.improved()
        assert len(history.losses) == 30
        assert history.seconds > 0

    def test_view_subset_training(self, tiny_city):
        config = _tiny_config(epochs=5)
        model, history = train_hafusion(tiny_city, config, seed=1,
                                        view_names=["poi", "landuse"])
        assert model.n_views == 2
        assert model.mobility_view is None

    def test_train_model_epoch_override(self, tiny_city, rng):
        views = tiny_city.views()
        model = HAFusion(views.dims(), views.n_regions, _tiny_config(), rng=rng)
        history = train_model(model, views, epochs=3)
        assert len(history.losses) == 3

    def test_history_final_loss_guard(self):
        from repro.core import TrainingHistory
        with pytest.raises(ValueError):
            TrainingHistory().final_loss
