"""ViewFusion implements Eq. 1 with a decomposition trick:
aᵀ[Wz_j ‖ Wz_k] = a_leftᵀWz_j + a_rightᵀWz_k. This test verifies the
optimized implementation against a brute-force evaluation of the paper's
formula.
"""

import numpy as np

from repro.core import ViewFusion
from repro.nn import Tensor


def brute_force_weights(fusion: ViewFusion, views: list[np.ndarray],
                        negative_slope: float = 0.2) -> np.ndarray:
    """Eq. 1-2 computed literally: scores for every (i, j, k)."""
    w = fusion.transform.weight.data          # (d', d)
    a = fusion.attention_vector.data[:, 0]    # (2d',)
    projected = [z @ w.T for z in views]      # v × (n, d')
    n = views[0].shape[0]
    v = len(views)
    view_scores = np.zeros(v)
    for j in range(v):
        total = 0.0
        for i in range(n):
            for k in range(v):
                pair = np.concatenate([projected[j][i], projected[k][i]])
                score = a @ pair
                score = score if score > 0 else negative_slope * score
                total += score
        view_scores[j] = total / n
    exp = np.exp(view_scores - view_scores.max())
    return exp / exp.sum()


def test_viewfusion_matches_brute_force(rng):
    fusion = ViewFusion(d_model=6, d_prime=4, rng=rng)
    views_data = [rng.standard_normal((8, 6)) for _ in range(3)]
    fusion([Tensor(z) for z in views_data])
    expected = brute_force_weights(fusion, views_data)
    assert np.allclose(fusion.last_weights, expected, atol=1e-10)


def test_viewfusion_matches_brute_force_two_views(rng):
    fusion = ViewFusion(d_model=5, d_prime=3, rng=rng)
    views_data = [rng.standard_normal((12, 5)) for _ in range(2)]
    fusion([Tensor(z) for z in views_data])
    expected = brute_force_weights(fusion, views_data)
    assert np.allclose(fusion.last_weights, expected, atol=1e-10)
