"""Golden-trajectory regression test.

A fixed-seed training run on a fixed synthetic city must reproduce a
committed loss curve and embedding checksum. This catches *silent
numerical drift* — refactors (like the batch-axis vectorization) that
keep every shape-level test green while changing the arithmetic.

The golden values were produced by the run below at the time the batched
execution engine landed; training is deterministic given (city seed,
model seed), so same-platform reruns match to near machine precision.
The tolerances leave room for BLAS reduction-order differences across
platforms while still flagging any real numerical change.
"""

import numpy as np
import pytest

from repro.core import HAFusionConfig, train_hafusion
from repro.data import CityConfig, generate_city

GOLDEN_LOSSES = [
    19.5215642348, 17.4159131739, 18.8982352121, 16.9561222575,
    15.7635399097, 16.3161709464, 15.7797882485, 14.7633220030,
    14.3475670731, 14.3816528432,
]
GOLDEN_ABS_SUM = 255.12900001
GOLDEN_MEAN = 0.000817469390419
GOLDEN_COL0_SUM = 13.7518495889

LOSS_RTOL = 1e-6
CHECKSUM_RTOL = 1e-5


def golden_city():
    """The fixed synthetic city of the golden recipe."""
    return generate_city(CityConfig(name="golden", n_regions=20,
                                    total_trips=5000, poi_total=1200), seed=42)


def golden_config(**overrides):
    """The fixed model/training config of the golden recipe."""
    base = dict(d=16, d_prime=8, conv_channels=4, memory_size=6,
                num_heads=2, intra_layers=1, inter_layers=1,
                fusion_layers=1, epochs=10, dropout=0.1, lr=5e-4)
    base.update(overrides)
    return HAFusionConfig(**base)


def _golden_run(compiled: bool):
    city = golden_city()
    model, history = train_hafusion(city, golden_config(), seed=7,
                                    compiled=compiled)
    return model, history, model.embed(city.views())


@pytest.fixture(scope="module")
def trained():
    return _golden_run(compiled=False)


def test_loss_curve_matches_golden(trained):
    _, history, _ = trained
    assert len(history.losses) == len(GOLDEN_LOSSES)
    np.testing.assert_allclose(history.losses, GOLDEN_LOSSES,
                               rtol=LOSS_RTOL, atol=0.0)


def test_embedding_checksums_match_golden(trained):
    _, _, embeddings = trained
    assert embeddings.shape == (20, 16)
    assert np.abs(embeddings).sum() == pytest.approx(GOLDEN_ABS_SUM,
                                                     rel=CHECKSUM_RTOL)
    assert embeddings.mean() == pytest.approx(GOLDEN_MEAN, rel=CHECKSUM_RTOL)
    assert embeddings[:, 0].sum() == pytest.approx(GOLDEN_COL0_SUM,
                                                   rel=CHECKSUM_RTOL)


@pytest.fixture(scope="module")
def trained_compiled():
    """The identical run through the compiled record/replay executor."""
    return _golden_run(compiled=True)


def test_compiled_loss_curve_matches_golden(trained_compiled):
    """The compiled executor replays the exact golden trajectory: same
    rng draws (dropout masks are redrawn from the same stream), same
    arithmetic, same losses — no separate compiled golden constants."""
    _, history, _ = trained_compiled
    np.testing.assert_allclose(history.losses, GOLDEN_LOSSES,
                               rtol=LOSS_RTOL, atol=0.0)


def test_compiled_embedding_checksums_match_golden(trained_compiled):
    _, _, embeddings = trained_compiled
    assert embeddings.shape == (20, 16)
    assert np.abs(embeddings).sum() == pytest.approx(GOLDEN_ABS_SUM,
                                                     rel=CHECKSUM_RTOL)
    assert embeddings.mean() == pytest.approx(GOLDEN_MEAN, rel=CHECKSUM_RTOL)
    assert embeddings[:, 0].sum() == pytest.approx(GOLDEN_COL0_SUM,
                                                   rel=CHECKSUM_RTOL)


def test_compiled_final_embeddings_match_eager(trained, trained_compiled):
    """The acceptance bound: compiled-vs-eager final-embedding max abs
    difference ≤ 1e-8 in float64 over the full golden run."""
    _, _, eager_embeddings = trained
    _, _, compiled_embeddings = trained_compiled
    assert np.abs(eager_embeddings - compiled_embeddings).max() <= 1e-8


def test_trajectory_is_deterministic(trained):
    """Guards the premise of the golden values: two identical runs agree
    bit-for-bit, so any golden mismatch is a real numerical change."""
    city = golden_city()
    config = golden_config(epochs=3)
    _, first = train_hafusion(city, config, seed=7)
    _, second = train_hafusion(city, config, seed=7)
    assert first.losses == second.losses
