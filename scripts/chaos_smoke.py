#!/usr/bin/env python3
"""Chaos smoke: a real ``kill -9`` mid-trace must not change one bit.

Run by the ``chaos-smoke`` CI job after the fault-injection test suite:

    python scripts/chaos_smoke.py --pack-dir .chaos-pack

Unlike ``tests/serving/test_faults.py`` (where workers kill *themselves*
at deterministic points), this smoke delivers the signal from outside
the fleet, exactly as an OOM killer or an operator would:

1. **build** — construct the deterministic smoke service, build a
   :class:`WarmupPack`, and replay the trace in-process (the reference);
2. **serve under fire** — replay the same trace through the NDJSON
   frontend over a **3-worker** fleet whose fault plan only *delays* one
   batch; the moment the supervisor reports that batch claimed, the
   parent ``SIGKILL``\\ s the claiming worker's pid from outside.  The
   delay pins the victim mid-batch, so the kill provably loses an
   in-flight batch (and never lands while the victim holds a queue
   lock, which a kill aimed at an *idle* worker could).

Asserted:

- the trace **completes** — no hung client — and every embedding is
  **bit-identical** to the in-process reference;
- exactly one crash and one respawn, at least one batch retry, zero
  typed batch failures;
- **zero record epochs**, respawned worker included (it re-attached the
  same warm-up pack);
- the fleet ends at full strength (3 live workers);
- after shutdown the port is closed (connections are refused).

Exit code 0 on success; any assertion failure raises.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import sys
import threading
import time
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core import HAFusionConfig, shard_viewset  # noqa: E402
from repro.data import load_city  # noqa: E402
from repro.nn import PlanCache  # noqa: E402
from repro.serving import (  # noqa: E402
    EmbedRequest,
    EmbeddingService,
    FaultPlan,
    FlushPolicy,
    FrontendThread,
    ServingFleet,
    ServingFrontend,
    WarmupPack,
)

_SEED = 7
_CITY = "chi"
_POLICY = FlushPolicy(max_batch=4, max_wait=30.0)
#: The batch the fault plan delays — and the external kill therefore
#: provably catches mid-serve.  The 14-request trace dispatches as >= 4
#: batches under ``_POLICY``, so batch 3 always exists.
_VICTIM_BATCH = 3
_DELAY_SECONDS = 3.0


def smoke_service(plan_cache: PlanCache | None = None) -> EmbeddingService:
    views = load_city(_CITY, seed=_SEED).views()
    config = HAFusionConfig.for_city(_CITY, conv_channels=4, dropout=0.0)
    kwargs = {} if plan_cache is None else {"plan_cache": plan_cache}
    return EmbeddingService.build([views], config, seed=_SEED,
                                  policy=_POLICY, **kwargs)


def smoke_trace() -> list[EmbedRequest]:
    """Same mixed chi trace as the frontend smoke: the full city plus
    two shard granularities, dtype-mixed, one region subset."""
    views = load_city(_CITY, seed=_SEED).views()
    requests = [EmbedRequest(views, name=_CITY)]
    for i, shard in enumerate(shard_viewset(views, 5)):
        requests.append(EmbedRequest(
            shard, dtype="float32" if i % 2 else None,
            region_subset=[0, 3] if i == 4 else None,
            name=f"{_CITY}5/{i}"))
    for i, shard in enumerate(shard_viewset(views, 8)):
        requests.append(EmbedRequest(shard, name=f"{_CITY}8/{i}"))
    return requests


def kill_claimer(fleet: ServingFleet, batch_id: int, report: dict,
                 timeout: float = 60.0) -> None:
    """Wait until ``batch_id`` is claimed, then SIGKILL the claiming
    worker from outside — while the fault-plan delay holds it mid-batch."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        worker_id = fleet.claims().get(batch_id)
        if worker_id is not None:
            pid = fleet.pids()[worker_id]
            os.kill(pid, signal.SIGKILL)
            report["killed"] = (worker_id, pid)
            return
        time.sleep(0.01)
    report["killed"] = None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pack-dir", type=Path,
                        default=REPO / ".chaos-pack")
    parser.add_argument("--workers", type=int, default=3)
    args = parser.parse_args(argv)
    args.pack_dir.mkdir(parents=True, exist_ok=True)

    # Generation 0: pack + fault-free in-process reference (the replay
    # also persists every co-batch composition's plan spec on disk).
    service = smoke_service(PlanCache(directory=args.pack_dir))
    WarmupPack.build(service)
    reference = service.run(smoke_trace())
    print(f"[build] pack at {args.pack_dir}, "
          f"{len(reference)} reference responses")

    plan = FaultPlan().delay(_DELAY_SECONDS, batch_id=_VICTIM_BATCH)
    fleet = ServingFleet(smoke_service, n_workers=args.workers,
                         pack_dir=args.pack_dir, fault_plan=plan)
    frontend = ServingFrontend(
        fleet, n_max=service.n_max, view_dims=service.view_dims,
        view_names=service.view_names, policy=_POLICY)
    harness = FrontendThread(frontend).start()
    host, port = frontend.host, frontend.port
    report: dict = {}
    killer = threading.Thread(
        target=kill_claimer, args=(fleet, _VICTIM_BATCH, report),
        daemon=True)
    try:
        killer.start()
        with harness.client() as client:
            responses = client.embed_many(smoke_trace())
            stats = client.stats()
        killer.join(timeout=60)
    finally:
        harness.stop()

    assert report.get("killed") is not None, (
        f"batch {_VICTIM_BATCH} was never claimed; nothing was killed")
    worker_id, pid = report["killed"]
    print(f"[chaos] killed worker {worker_id} (pid {pid}) "
          f"mid-batch {_VICTIM_BATCH}")

    assert len(responses) == len(reference)
    for got, want in zip(responses, reference):
        assert got.embeddings.dtype == want.embeddings.dtype, (
            f"{got.name}: dtype {got.embeddings.dtype} "
            f"!= {want.embeddings.dtype}")
        assert np.array_equal(got.embeddings, want.embeddings), (
            f"{got.name}: embeddings drifted from the fault-free "
            f"reference after the kill")
    fleet_stats = stats["fleet"]
    assert fleet_stats["crashes"] == 1, fleet_stats
    assert fleet_stats["respawns"] == 1, fleet_stats
    assert fleet_stats["retries"] >= 1, fleet_stats
    assert fleet_stats["failed_batches"] == 0, fleet_stats
    assert fleet_stats["record_epochs"] == 0, (
        f"respawned worker paid {fleet_stats['record_epochs']} record "
        f"epochs despite the shared pack")
    assert fleet_stats["live"] == args.workers, fleet_stats
    assert stats["served"] == len(reference)
    assert stats["errors"] == 0
    print(f"[chaos] {stats['served']} responses bit-identical through "
          f"1 crash / {fleet_stats['retries']} retry(ies) / 1 respawn, "
          f"0 record epochs, {fleet_stats['live']} workers live")

    # Clean shutdown: the port must refuse connections.
    try:
        socket.create_connection((host, port), timeout=2).close()
    except OSError:
        pass
    else:
        raise AssertionError(f"port {port} still accepts connections "
                             f"after shutdown")
    print("chaos smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
