#!/usr/bin/env python3
"""Serving warm-path smoke: build a warm-up pack, restart, serve cold.

Run by the ``serving-smoke`` CI job as two separate *processes* — the
restart is real, nothing survives but the pack directory:

    python scripts/serving_smoke.py build --pack-dir .warmup-pack
    python scripts/serving_smoke.py serve --pack-dir .warmup-pack

``build`` trains nothing (serving needs only an initialized model —
plan specs are value-free), constructs the deterministic smoke service,
builds a :class:`repro.serving.WarmupPack` over the scheduler grid plus
the smoke traffic, and records the responses' checksums in the pack
directory.  ``serve`` reconstructs the same service in a fresh process,
attaches the pack, replays the same traffic and asserts:

- **zero record epochs** (``RECORD_STATS.total == 0``) and zero plan
  cache misses — the warm path never falls back to recording;
- embeddings bit-identical to the build phase's checksums.

Exit code 0 on success; any assertion failure raises.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core import HAFusionConfig, shard_viewset  # noqa: E402
from repro.data import load_city  # noqa: E402
from repro.nn import RECORD_STATS, PlanCache  # noqa: E402
from repro.serving import (  # noqa: E402
    EmbedRequest,
    EmbeddingService,
    FlushPolicy,
    WarmupPack,
)

_SEED = 7
_CITY = "chi"
_CHECKSUMS = "smoke_checksums.json"


def smoke_traffic():
    views = load_city(_CITY, seed=_SEED).views()
    return shard_viewset(views, 5) + shard_viewset(views, 8)


def smoke_service(traffic,
                  plan_cache: PlanCache | None = None) -> EmbeddingService:
    """The deterministic service both phases reconstruct independently."""
    config = HAFusionConfig.for_city(_CITY, conv_channels=4, dropout=0.0)
    policy = FlushPolicy(max_batch=4, max_wait=60.0)
    kwargs = {} if plan_cache is None else {"plan_cache": plan_cache}
    return EmbeddingService.build(traffic, config, seed=_SEED,
                                  policy=policy, **kwargs)


def checksums(responses) -> list[float]:
    return [float(np.float64(r.embeddings).sum()) for r in responses]


def build(pack_dir: Path) -> None:
    traffic = smoke_traffic()
    service = smoke_service(traffic, PlanCache(directory=pack_dir))
    pack = WarmupPack.build(service, traffic=traffic)
    responses = service.run([EmbedRequest(vs) for vs in traffic])
    (pack_dir / _CHECKSUMS).write_text(json.dumps(checksums(responses)))
    print(f"built warm-up pack: {len(pack.shapes)} shapes, "
          f"{service.plan_cache.stats()['misses']} plans recorded, "
          f"{len(responses)} traffic responses checksummed")


def serve(pack_dir: Path) -> None:
    expected = json.loads((pack_dir / _CHECKSUMS).read_text())
    traffic = smoke_traffic()
    service = smoke_service(traffic)
    WarmupPack.load(pack_dir).attach(service)
    RECORD_STATS.reset()
    responses = service.run([EmbedRequest(vs) for vs in traffic])
    stats = service.plan_cache.stats()
    assert RECORD_STATS.total == 0, (
        f"warm path paid {RECORD_STATS.total} record epochs")
    assert stats["misses"] == 0, f"warm path missed the plan cache: {stats}"
    got = checksums(responses)
    assert got == expected, (
        f"embeddings drifted across the restart:\n  {expected}\n  {got}")
    report = service.stats()
    print(f"warm serve ok: {len(responses)} responses, 0 record epochs, "
          f"cache {stats}, padding {report['padding_overhead']:.0%}, "
          f"{report['regions_per_sec']:.0f} regions/s")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("phase", choices=("build", "serve"))
    parser.add_argument("--pack-dir", type=Path, default=REPO / ".warmup-pack")
    args = parser.parse_args(argv)
    args.pack_dir.mkdir(parents=True, exist_ok=True)
    if args.phase == "build":
        build(args.pack_dir)
    else:
        serve(args.pack_dir)
    return 0


if __name__ == "__main__":
    sys.exit(main())
