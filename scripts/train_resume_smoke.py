#!/usr/bin/env python3
"""Train-resume smoke: a real ``kill -9`` mid-training must cost nothing.

Run by the ``train-resume-smoke`` CI job after the checkpoint test suite:

    python scripts/train_resume_smoke.py --dir .train-resume-smoke

Unlike ``tests/train/test_checkpoint.py`` (where the training process
kills *itself* at deterministic fault points), this smoke delivers the
signal from outside, exactly as an OOM killer or a preempting scheduler
would:

1. **reference** — train the smoke model uninterrupted, in-process;
2. **crash** — spawn a child process training the *same* run with
   checkpointing every ``CHECKPOINT_EVERY`` epochs and a fault-plan
   *delay* pinning it at epoch ``STALL_EPOCH``; the moment the last
   pre-stall checkpoint is durable on disk, the parent ``SIGKILL``\\ s
   the child — provably mid-training, past the checkpoint;
3. **resume** — train again with ``resume=True`` from the same
   directory.

Asserted:

- the child died by SIGKILL with a partial loss curve on disk;
- the resumed run starts at the checkpoint epoch and **replays zero
  already-completed epochs**;
- the combined loss curve equals the uninterrupted reference exactly;
- final embeddings are **bit-identical** to the reference
  (``max|Δ| = 0``), through the compiled executor.

Exit code 0 on success; any assertion failure raises.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core import HAFusionConfig, train_hafusion  # noqa: E402
from repro.data import CityConfig, generate_city  # noqa: E402
from repro.train import CheckpointStore, TrainFaultPlan  # noqa: E402

_SEED = 7
_CITY = dict(name="resume-smoke", n_regions=24, total_trips=8000,
             poi_total=1500)
_CITY_SEED = 3
_CFG = dict(d=32, d_prime=16, conv_channels=4, memory_size=8, num_heads=4,
            intra_layers=1, inter_layers=1, fusion_layers=1, epochs=12,
            dropout=0.1, lr=5e-4)
CHECKPOINT_EVERY = 4
#: The child stalls here (a fault-plan delay), safely past the last
#: checkpoint at epoch 8 — so the external kill provably lands
#: mid-training with durable progress behind it.
STALL_EPOCH = 9
STALL_SECONDS = 120.0


def _build():
    city = generate_city(CityConfig(**_CITY), seed=_CITY_SEED)
    return city, HAFusionConfig(**_CFG)


def train_child(directory: Path) -> None:
    """Child-process body: train with checkpoints, stalling at
    STALL_EPOCH so the parent's kill lands mid-training."""
    city, config = _build()
    plan = TrainFaultPlan().delay(STALL_SECONDS, epoch=STALL_EPOCH,
                                  when="before_step")
    train_hafusion(city, config, seed=_SEED, compiled=True,
                   checkpoint_dir=directory,
                   checkpoint_every=CHECKPOINT_EVERY, fault_plan=plan)
    raise SystemExit("child was never killed — the smoke is broken")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dir", type=Path,
                        default=REPO / ".train-resume-smoke")
    parser.add_argument("--phase", choices=["all", "train"], default="all")
    args = parser.parse_args(argv)

    if args.phase == "train":
        train_child(args.dir)
        return 0

    # Phase 1: the uninterrupted in-process reference.
    city, config = _build()
    reference_model, reference = train_hafusion(city, config, seed=_SEED,
                                                compiled=True)
    reference_embeddings = reference_model.embed(city.views())
    print(f"[reference] {len(reference.losses)} epochs, "
          f"final loss {reference.final_loss:.6f}")

    # Phase 2: crash a real training process from outside.
    args.dir.mkdir(parents=True, exist_ok=True)
    store = CheckpointStore(args.dir)
    for stale in store.epochs():        # a previous smoke run's leftovers
        store.path_for(stale).unlink()
    last_checkpoint = STALL_EPOCH - 1 - (STALL_EPOCH - 1) % CHECKPOINT_EVERY
    child = subprocess.Popen(
        [sys.executable, __file__, "--phase", "train", "--dir",
         str(args.dir)],
        env=dict(os.environ,
                 PYTHONPATH=str(REPO / "src") + os.pathsep
                 + os.environ.get("PYTHONPATH", "")))
    deadline = time.monotonic() + 300.0
    while time.monotonic() < deadline:
        if child.poll() is not None:
            raise AssertionError(
                f"child exited on its own (rc={child.returncode}) before "
                f"the kill")
        if store.path_for(last_checkpoint).exists():
            break
        time.sleep(0.05)
    else:
        child.kill()
        raise AssertionError(
            f"checkpoint {last_checkpoint} never appeared in {args.dir}")
    os.kill(child.pid, signal.SIGKILL)
    rc = child.wait(timeout=60)
    assert rc == -signal.SIGKILL, f"child exit {rc}, expected SIGKILL"
    on_disk = store.epochs()
    assert on_disk and max(on_disk) == last_checkpoint, on_disk
    print(f"[crash] killed pid {child.pid} mid-training; "
          f"checkpoints on disk: {on_disk}")

    # Phase 3: resume from disk and hold it to the reference, bit-for-bit.
    model, history = train_hafusion(city, config, seed=_SEED, compiled=True,
                                    checkpoint_dir=args.dir,
                                    checkpoint_every=CHECKPOINT_EVERY,
                                    resume=True)
    report = history.resume_report
    assert report["resume_epoch"] == last_checkpoint, report
    replayed = len(history.losses) - (_CFG["epochs"] - last_checkpoint) \
        - last_checkpoint
    assert replayed == 0, f"resume replayed {replayed} completed epochs"
    assert history.losses == reference.losses, (
        "resumed loss curve diverged from the uninterrupted reference")
    embeddings = model.embed(city.views())
    max_diff = float(np.abs(embeddings - reference_embeddings).max())
    assert max_diff == 0.0, (
        f"final embeddings drifted from the reference: max|d|={max_diff}")
    print(f"[resume] resumed at epoch {report['resume_epoch']}, replayed 0 "
          f"epochs, saved {report['wall_clock_saved_seconds']:.3f}s of "
          f"training; embeddings bit-identical (max|d|=0.0)")
    print("train resume smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
