#!/usr/bin/env python3
"""Compare two pytest-benchmark JSON files and emit a markdown summary.

Used by the nightly CI job to diff the fresh benchmark run against the
previous night's archived artifact and surface regressions in the job
summary:

    python scripts/compare_benchmarks.py baseline.json current.json \
        [--threshold 0.2] [--fail-on-regression]

Two kinds of series are compared:

- **wall-clock means** per benchmark (``stats.mean``; higher is worse) —
  flagged when the current mean exceeds the baseline by more than the
  threshold;
- **throughput gauges** recorded in ``extra_info`` (higher is better)
  — every nested ``speedup`` key (the engine, compiled training-step,
  compiled serving and scheduler reports) and every nested
  ``*regions_per_sec`` key (the serving scheduler's per-bucket and
  per-traffic-shape throughput) — flagged when the current value falls
  below the baseline by more than the threshold;
- **latency gauges** recorded in ``extra_info`` (lower is better) —
  every nested ``p50_latency`` / ``p99_latency`` key (the serving
  frontend's per-request percentiles) — flagged when the current value
  *exceeds* the baseline by more than the threshold.

The default exit code is 0 even with regressions (the nightly job
*surfaces* them; shared-runner noise should not fail the build) —
``--fail-on-regression`` flips that for stricter environments.

A missing baseline file is handled explicitly instead of silently
skipping the comparison: the script falls back to the in-repo seed
baseline (``benchmarks/baselines/benchmark-seed.json``, committed so a
fresh clone's first nightly has something to diff against) and says so
in the summary; with no seed baseline either, it emits a "no baseline"
summary that still lists the current run's gauges.  Either way the
summary ends with the top-5 hottest kernels recorded by
``Plan.profile()`` in the current run's ``extra_info``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_THRESHOLD = 0.2

#: Committed seed baseline a fresh clone's first nightly diffs against
#: (relative to the repository root, i.e. this script's parent's parent).
SEED_BASELINE = Path(__file__).resolve().parent.parent / "benchmarks" \
    / "baselines" / "benchmark-seed.json"

#: extra_info keys treated as higher-is-better gauges. ``speedup`` are
#: the engine/compiled/serving ratios; ``regions_per_sec`` covers the
#: serving scheduler's per-bucket and per-traffic-shape throughput
#: (matched by suffix: ``scheduler_regions_per_sec`` etc. count too).
GAUGE_SUFFIXES = ("speedup", "regions_per_sec")

#: extra_info keys treated as lower-is-better gauges: the frontend's
#: request-latency percentiles (``latency.p50_latency`` etc. in the
#: serving-frontend trace benchmark).  A current value *above* baseline
#: by more than the threshold is the regression.
LOWER_GAUGE_SUFFIXES = ("p50_latency", "p99_latency")


def load_benchmarks(path: Path) -> dict[str, dict]:
    payload = json.loads(path.read_text())
    out = {}
    for bench in payload.get("benchmarks", []):
        name = bench.get("fullname") or bench.get("name")
        if name:
            out[name] = bench
    return out


def iter_gauges(extra_info: dict, prefix: str = "", suffixes=GAUGE_SUFFIXES):
    """Yield (dotted_path, value) for every numeric gauge nested anywhere
    inside ``extra_info`` whose key matches ``suffixes`` (default: the
    higher-is-better GAUGE_SUFFIXES; pass LOWER_GAUGE_SUFFIXES for the
    latency percentiles)."""
    for key, value in sorted(extra_info.items()):
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            yield from iter_gauges(value, prefix=f"{path}.",
                                   suffixes=suffixes)
        elif (isinstance(value, (int, float)) and not isinstance(value, bool)
                and any(key == s or key.endswith(f"_{s}")
                        for s in suffixes)):
            yield path, float(value)


def compare(baseline: dict[str, dict], current: dict[str, dict],
            threshold: float) -> tuple[list[str], list[str]]:
    """Returns (table_rows, regression_notes)."""
    rows, regressions = [], []
    for name in sorted(set(baseline) & set(current)):
        old = baseline[name]
        new = current[name]
        old_mean = old.get("stats", {}).get("mean")
        new_mean = new.get("stats", {}).get("mean")
        if old_mean and new_mean:
            ratio = new_mean / old_mean
            flag = ""
            if ratio > 1.0 + threshold:
                flag = " :warning:"
                regressions.append(
                    f"`{name}` mean {old_mean:.4f}s -> {new_mean:.4f}s "
                    f"({ratio - 1.0:+.0%})")
            rows.append(f"| `{name}` | mean | {old_mean:.4f}s | "
                        f"{new_mean:.4f}s | {ratio - 1.0:+.1%}{flag} |")
        old_gauges = dict(iter_gauges(old.get("extra_info", {})))
        new_gauges = dict(iter_gauges(new.get("extra_info", {})))
        for path in sorted(set(old_gauges) & set(new_gauges)):
            old_v, new_v = old_gauges[path], new_gauges[path]
            if old_v <= 0:
                continue
            ratio = new_v / old_v
            flag = ""
            if ratio < 1.0 - threshold:
                flag = " :warning:"
                regressions.append(
                    f"`{name}` {path} {old_v:.2f}x -> {new_v:.2f}x "
                    f"({ratio - 1.0:+.0%})")
            rows.append(f"| `{name}` | {path} | {old_v:.2f}x | "
                        f"{new_v:.2f}x | {ratio - 1.0:+.1%}{flag} |")
        old_lat = dict(iter_gauges(old.get("extra_info", {}),
                                   suffixes=LOWER_GAUGE_SUFFIXES))
        new_lat = dict(iter_gauges(new.get("extra_info", {}),
                                   suffixes=LOWER_GAUGE_SUFFIXES))
        for path in sorted(set(old_lat) & set(new_lat)):
            old_v, new_v = old_lat[path], new_lat[path]
            if old_v <= 0:   # empty latency window reports 0.0
                continue
            ratio = new_v / old_v
            flag = ""
            if ratio > 1.0 + threshold:
                flag = " :warning:"
                regressions.append(
                    f"`{name}` {path} {old_v * 1e3:.2f}ms -> "
                    f"{new_v * 1e3:.2f}ms ({ratio - 1.0:+.0%})")
            rows.append(f"| `{name}` | {path} | {old_v * 1e3:.2f}ms | "
                        f"{new_v * 1e3:.2f}ms | {ratio - 1.0:+.1%}{flag} |")
    return rows, regressions


def iter_top_kernels(extra_info: dict, prefix: str = ""):
    """Yield (dotted_path, top_kernels_list) for every ``top_kernels``
    entry nested inside ``extra_info`` (recorded by ``Plan.profile()``)."""
    for key, value in sorted(extra_info.items()):
        path = f"{prefix}{key}"
        if key == "top_kernels" and isinstance(value, list):
            yield path, value
        elif isinstance(value, dict):
            yield from iter_top_kernels(value, prefix=f"{path}.")


def print_top_kernels(current: dict[str, dict]) -> None:
    """Append the current run's hottest replay kernels to the summary."""
    sections = []
    for name in sorted(current):
        for path, kernels in iter_top_kernels(
                current[name].get("extra_info", {})):
            rows = [k for k in kernels
                    if isinstance(k, dict) and "kernel" in k and "seconds" in k]
            if rows:
                sections.append((name, path, rows[:5]))
    if not sections:
        return
    print()
    print("### Hottest replay kernels (current run)")
    print()
    print("| benchmark | kernel | seconds/replay | bytes |")
    print("| --- | --- | --- | --- |")
    for name, path, rows in sections:
        for k in rows:
            print(f"| `{name}` | `{k['kernel']}` | {k['seconds']:.4f}s | "
                  f"{int(k.get('bytes', 0)):,} |")


def print_no_baseline_summary(current: dict[str, dict],
                              reason: str) -> None:
    """Explicit summary for a run with nothing to diff against — the
    current gauges are still surfaced so the night is not silent."""
    print("## Nightly benchmark comparison")
    print()
    print(f"**No baseline** — {reason}. Current-run gauges:")
    print()
    print("| benchmark | metric | current |")
    print("| --- | --- | --- |")
    for name in sorted(current):
        extra = current[name].get("extra_info", {})
        for path, value in iter_gauges(extra):
            print(f"| `{name}` | {path} | {value:.2f}x |")
        for path, value in iter_gauges(extra,
                                       suffixes=LOWER_GAUGE_SUFFIXES):
            print(f"| `{name}` | {path} | {value * 1e3:.2f}ms |")
    print_top_kernels(current)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="relative change that counts as a regression "
                             f"(default {DEFAULT_THRESHOLD:.0%})")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 when any regression is detected")
    parser.add_argument("--seed-baseline", type=Path, default=SEED_BASELINE,
                        help="fallback baseline when the primary one is "
                             "missing (default: the committed seed baseline)")
    args = parser.parse_args(argv)

    current = load_benchmarks(args.current)
    baseline_path, fallback = args.baseline, False
    if not baseline_path.is_file() and args.seed_baseline.is_file():
        baseline_path, fallback = args.seed_baseline, True
    if not baseline_path.is_file():
        print_no_baseline_summary(
            current, "no previous nightly artifact and no committed seed "
            f"baseline at `{args.seed_baseline}`")
        return 0

    baseline = load_benchmarks(baseline_path)
    rows, regressions = compare(baseline, current, args.threshold)

    print("## Nightly benchmark comparison")
    print()
    if fallback:
        print(f"No previous nightly artifact — comparing against the "
              f"committed seed baseline (`{baseline_path.name}`). Seed "
              f"numbers come from a different machine, so treat deltas "
              f"as orientation, not regressions.")
        print()
    if not rows:
        print("No overlapping benchmarks between baseline and current run.")
        print_top_kernels(current)
        return 0
    if regressions:
        print(f"**{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}:**")
        print()
        for note in regressions:
            print(f"- {note}")
    else:
        print(f"No regressions beyond {args.threshold:.0%}.")
    print()
    print("| benchmark | metric | baseline | current | change |")
    print("| --- | --- | --- | --- | --- |")
    for row in rows:
        print(row)
    print_top_kernels(current)
    if regressions and args.fail_on_regression:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
