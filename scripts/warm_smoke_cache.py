"""Pre-compute the smoke-profile experiment caches and print all tables.

Runs the exact experiment invocations the benchmark suite uses, so that
``pytest benchmarks/ --benchmark-only`` afterwards reads embeddings from
``.cache/`` instead of retraining. The printed tables are the source for
EXPERIMENTS.md's smoke-profile sections.
"""

import sys
import time

from repro.experiments import run_experiment

RUNS = [
    ("table3", {}),
    ("table5", {}),
    ("table4", {}),
    ("table6", {}),
    ("table7", {"layer_counts": (1, 3, 5)}),
    ("fig6", {}),
    ("fig8", {}),
    ("fig9", {"dims": (36, 144)}),
    ("fig7", {"sizes": ("nyc", "nyc_360")}),
]


def main() -> int:
    for experiment_id, kwargs in RUNS:
        start = time.perf_counter()
        _, table = run_experiment(experiment_id, profile="smoke", **kwargs)
        print(f"\n===== {experiment_id} ({time.perf_counter() - start:.0f}s) =====",
              flush=True)
        print(table, flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
