#!/usr/bin/env python3
"""Frontend/fleet cross-process smoke: socket serving vs in-process.

Run by the ``serving-smoke`` CI job after ``serving_smoke.py``:

    python scripts/frontend_smoke.py --pack-dir .frontend-pack

One command, three generations of real processes:

1. **build** — construct the deterministic smoke service in this
   process, build a :class:`WarmupPack`, and replay the smoke trace
   in-process (the reference responses; the replay also persists every
   co-batch composition's plan spec into the pack directory);
2. **serve** — launch the NDJSON :class:`ServingFrontend` over a
   2-worker :class:`ServingFleet` (separate OS processes, each building
   its own model and attaching the pack) and replay the same trace
   through a blocking socket client;
3. **restart** — bounce the fleet (graceful stop + fresh start on the
   same pack directory) and replay again through a new frontend.

Asserted every generation:

- **zero record epochs** across the fleet — the warm path never falls
  back to recording, even across the restart (the on-disk plan cache
  survived);
- embeddings **bit-identical** to the in-process reference (dtype
  included) — the JSON wire codec and the dispatch→worker re-batching
  are lossless;
- p50/p99 latency and aggregate regions/sec are present and sane in the
  frontend's stats report.

Exit code 0 on success; any assertion failure raises.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core import HAFusionConfig, shard_viewset  # noqa: E402
from repro.data import load_city  # noqa: E402
from repro.nn import PlanCache  # noqa: E402
from repro.serving import (  # noqa: E402
    EmbedRequest,
    EmbeddingService,
    FlushPolicy,
    FrontendThread,
    ServingFleet,
    ServingFrontend,
    WarmupPack,
)

_SEED = 7
_CITY = "chi"
#: High max_wait: the client's trailing ``flush`` op dispatches
#: stragglers deterministically, so frontend co-batch compositions match
#: the in-process reference exactly (no timing dependence).
_POLICY = FlushPolicy(max_batch=4, max_wait=30.0)


def smoke_service(plan_cache: PlanCache | None = None) -> EmbeddingService:
    """The deterministic service every process reconstructs
    independently — module-level so fleet workers can build it."""
    views = load_city(_CITY, seed=_SEED).views()
    config = HAFusionConfig.for_city(_CITY, conv_channels=4, dropout=0.0)
    kwargs = {} if plan_cache is None else {"plan_cache": plan_cache}
    return EmbeddingService.build([views], config, seed=_SEED,
                                  policy=_POLICY, **kwargs)


def smoke_trace() -> list[EmbedRequest]:
    """Mixed smoke traffic: the full city plus two shard granularities,
    dtype-mixed with a region subset.  Default and float32 dtypes only —
    an explicit float64 would co-batch with defaults in-process but not
    at the frontend (which labels the default bucket ``"model"``)."""
    views = load_city(_CITY, seed=_SEED).views()
    requests = [EmbedRequest(views, name=_CITY)]
    for i, shard in enumerate(shard_viewset(views, 5)):
        requests.append(EmbedRequest(
            shard, dtype="float32" if i % 2 else None,
            region_subset=[0, 3] if i == 4 else None,
            name=f"{_CITY}5/{i}"))
    for i, shard in enumerate(shard_viewset(views, 8)):
        requests.append(EmbedRequest(shard, name=f"{_CITY}8/{i}"))
    return requests


def replay_through_socket(fleet: ServingFleet, reference,
                          generation: str) -> None:
    service_caps = reference["service"]
    frontend = ServingFrontend(
        fleet, n_max=service_caps["n_max"],
        view_dims=service_caps["view_dims"],
        view_names=service_caps["view_names"], policy=_POLICY)
    thread = FrontendThread(frontend).start()
    try:
        with thread.client() as client:
            responses = client.embed_many(smoke_trace())
            stats = client.stats()
    finally:
        # Keep the fleet running: its lifecycle belongs to main() (the
        # restart generation bounces it explicitly).
        thread.stop(stop_fleet=False)

    record_epochs = stats["fleet"]["record_epochs"]
    assert record_epochs == 0, (
        f"[{generation}] fleet paid {record_epochs} record epochs "
        f"on a warmed trace")
    expected = reference["responses"]
    assert len(responses) == len(expected)
    for got, want in zip(responses, expected):
        assert got.embeddings.dtype == want.embeddings.dtype, (
            f"[{generation}] {got.name}: dtype {got.embeddings.dtype} "
            f"!= {want.embeddings.dtype}")
        assert np.array_equal(got.embeddings, want.embeddings), (
            f"[{generation}] {got.name}: socket embeddings drifted "
            f"from the in-process reference")
    latency = stats["latency"]
    assert latency["count"] == len(expected)
    assert 0.0 <= latency["p50_latency"] <= latency["p99_latency"]
    assert stats["regions_per_sec"] > 0.0
    print(f"[{generation}] {stats['served']} responses bit-identical, "
          f"0 record epochs, p50 {latency['p50_latency'] * 1e3:.1f}ms, "
          f"p99 {latency['p99_latency'] * 1e3:.1f}ms, "
          f"{stats['regions_per_sec']:.0f} regions/s")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pack-dir", type=Path,
                        default=REPO / ".frontend-pack")
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)
    args.pack_dir.mkdir(parents=True, exist_ok=True)

    # Generation 0: pack + in-process reference.  The reference replay
    # records every serve-time co-batch composition into the pack
    # directory, which is what makes the fleet's path record-free.
    service = smoke_service(PlanCache(directory=args.pack_dir))
    WarmupPack.build(service)
    responses = service.run(smoke_trace())
    reference = {
        "responses": responses,
        "service": {"n_max": service.n_max,
                    "view_dims": service.view_dims,
                    "view_names": service.view_names},
    }
    print(f"[build] pack at {args.pack_dir}, "
          f"{len(responses)} reference responses")

    fleet = ServingFleet(smoke_service, n_workers=args.workers,
                         pack_dir=args.pack_dir)
    try:
        replay_through_socket(fleet, reference, "serve")
        # Generation 2: a real bounce — new worker processes, same disk.
        fleet.restart()
        replay_through_socket(fleet, reference, "restart")
    finally:
        fleet.stop(graceful=True)
    print("frontend smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
