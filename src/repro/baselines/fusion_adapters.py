"""DAFusion plug-in adapters (Table IV).

The paper shows DAFusion is generic: bolted onto MVURE / MGFN / HREP in
place of their simple fusion (weighted sum / mean / sum), it improves
every model. :class:`DAFusionAdapter` wraps any
:class:`RegionEmbeddingBaseline`, intercepts ``fuse`` and routes the view
embeddings through a fresh DAFusion module instead; everything else —
encoders, objective, training loop — stays the baseline's own.
"""

from __future__ import annotations

import numpy as np

from ..core.dafusion import DAFusion
from ..nn import Linear, Tensor
from .base import RegionEmbeddingBaseline

__all__ = ["DAFusionAdapter"]


class DAFusionAdapter(RegionEmbeddingBaseline):
    """``<baseline>-DAFusion``: a baseline with its fusion replaced.

    Parameters
    ----------
    baseline:
        A constructed baseline model (its encoders are reused and trained
        jointly with the new fusion).
    fusion_layers, num_heads, dropout, d_prime:
        DAFusion hyper-parameters (paper defaults).
    """

    def __init__(self, baseline: RegionEmbeddingBaseline,
                 fusion_layers: int = 3, num_heads: int = 4,
                 dropout: float = 0.1, d_prime: int = 64,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        d = baseline.d
        if d % num_heads != 0:
            num_heads = 1
        self.name = f"{baseline.name}-dafusion"
        self.default_dim = baseline.default_dim
        self.d = d
        self.baseline = baseline
        self.dafusion = DAFusion(d, d_prime=d_prime, num_layers=fusion_layers,
                                 num_heads=num_heads, dropout=dropout, rng=rng)

    def view_embeddings(self) -> list[Tensor]:
        return self.baseline.view_embeddings()

    def fuse(self, views: list[Tensor]) -> Tensor:
        if len(views) == 1:
            # Single-view models still gain RegionFusion's higher-order
            # region correlations.
            return self.dafusion.region_fusion(views[0])
        return self.dafusion(views)

    def loss(self) -> Tensor:
        # The baseline's objective, evaluated through the new fusion: we
        # temporarily swap the bound fuse method.
        original = self.baseline.fuse
        self.baseline.fuse = self.fuse
        try:
            return self.baseline.loss()
        finally:
            self.baseline.fuse = original

    def embed(self) -> np.ndarray:
        self.eval()
        original = self.baseline.fuse
        self.baseline.fuse = self.fuse
        try:
            from ..nn import no_grad
            with no_grad():
                h = self.baseline.forward()
        finally:
            self.baseline.fuse = original
        self.train()
        return h.data.copy()
