"""Common interface and trainer for the baseline models.

Every baseline binds to one city at construction (each consumes different
parts of the dataset), exposes ``view_embeddings() -> list[Tensor]`` and a
``fusion`` module combining them, computes its own training ``loss()``,
and yields frozen ``embed()`` arrays for downstream evaluation.

The split between ``view_embeddings`` and ``fusion`` is what allows
Table IV's plug-in experiment: :mod:`repro.baselines.fusion_adapters`
swaps the simple fusion for DAFusion without touching the encoders.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..nn import Adam, Module, Tensor, clip_grad_norm, no_grad

__all__ = ["RegionEmbeddingBaseline", "FitResult", "fit_baseline"]


@dataclass
class FitResult:
    """Loss curve and wall-clock of one baseline training run."""

    losses: list[float] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("no epochs recorded")
        return self.losses[-1]

    def improved(self) -> bool:
        return len(self.losses) >= 2 and self.losses[-1] < self.losses[0]


class RegionEmbeddingBaseline(Module):
    """Base class for baseline region-embedding models.

    Subclasses must set ``name`` / ``default_dim`` and implement
    ``view_embeddings`` and ``loss``; ``forward`` runs the fusion over
    the view embeddings (simple aggregation by default, replaceable).
    """

    name: str = "baseline"
    default_dim: int = 96

    def view_embeddings(self) -> list[Tensor]:
        raise NotImplementedError

    def fuse(self, views: list[Tensor]) -> Tensor:
        raise NotImplementedError

    def forward(self) -> Tensor:
        return self.fuse(self.view_embeddings())

    def loss(self) -> Tensor:
        raise NotImplementedError

    def embed(self) -> np.ndarray:
        """Frozen embeddings for downstream evaluation."""
        self.eval()
        with no_grad():
            h = self.forward()
        self.train()
        return h.data.copy()


def fit_baseline(model: RegionEmbeddingBaseline, epochs: int = 300,
                 lr: float = 1e-3, grad_clip: float = 5.0,
                 log_every: int = 0) -> FitResult:
    """Full-batch Adam training loop shared by all baselines."""
    optimizer = Adam(model.parameters(), lr=lr)
    result = FitResult()
    start = time.perf_counter()
    for epoch in range(epochs):
        optimizer.zero_grad()
        loss = model.loss()
        loss.backward()
        if grad_clip > 0:
            clip_grad_norm(model.parameters(), grad_clip)
        optimizer.step()
        result.losses.append(loss.item())
        if log_every and (epoch + 1) % log_every == 0:
            print(f"[{model.name}] epoch {epoch + 1:>4}/{epochs}  loss {loss.item():.4f}")
    result.seconds = time.perf_counter() - start
    return result
