"""RegionDCL baseline (Li et al., KDD 2023), reimplemented.

RegionDCL learns region embeddings from *building footprints only*: an
encoder embeds each road-bounded building group, contrastive learning at
the group level pulls together groups of the same region and pushes apart
groups of different regions, and the region embedding is the mean of its
group embeddings.

Faithfulness notes:
- same data diet (building-group shape descriptors — deliberately weak
  evidence of region function, see :mod:`repro.data.buildings`), same
  group-level InfoNCE contrastive objective with region identity as the
  positive criterion, mean-pooled region embeddings, d = 64;
- the footprint CNN is replaced by an MLP on shape statistics (we
  generate descriptors, not raster images); the distance-weighted
  negative sampling is replaced by uniform in-batch negatives.
- its training cost scales with the number of building *groups*, not
  regions — mirroring the paper's note that CHI (many buildings) is the
  slowest dataset for RegionDCL in Table V.
"""

from __future__ import annotations

import numpy as np

from ..data.city import SyntheticCity
from ..nn import MLP, Tensor
from ..nn import functional as F
from .base import RegionEmbeddingBaseline

__all__ = ["RegionDCL"]


class RegionDCL(RegionEmbeddingBaseline):
    """Contrastive building-footprint model."""

    name = "region_dcl"
    default_dim = 64

    #: Above this many building groups, the contrastive loss works on a
    #: random anchor batch per step (the O(g²) similarity matrix would
    #: not fit in memory for the 1440-region expansion otherwise).
    MAX_CONTRASTIVE_BATCH = 1536

    def __init__(self, city: SyntheticCity, d: int | None = None,
                 temperature: float = 0.2, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.d = d if d is not None else self.default_dim
        self.temperature = temperature
        features, region_index = city.buildings.stacked()
        self._group_features = features                 # (g, 8)
        self._region_index = region_index               # (g,)
        self._n_regions = city.n_regions
        self._batch_rng = np.random.default_rng(seed + 1)
        self.encoder = MLP(features.shape[1], self.d,
                           hidden_features=2 * self.d, activation="relu", rng=rng)

    # ------------------------------------------------------------------
    def group_embeddings(self) -> Tensor:
        return F.l2_normalize(self.encoder(Tensor(self._group_features)))

    def view_embeddings(self) -> list[Tensor]:
        """Single 'view': mean of group embeddings per region."""
        groups = self.group_embeddings()
        # Mean-pool groups into regions with a constant averaging matrix.
        pool = np.zeros((self._n_regions, len(self._region_index)))
        pool[self._region_index, np.arange(len(self._region_index))] = 1.0
        pool /= np.maximum(pool.sum(axis=1, keepdims=True), 1.0)
        return [Tensor(pool) @ groups]

    def fuse(self, views: list[Tensor]) -> Tensor:
        return views[0]

    def loss(self) -> Tensor:
        """Group-level InfoNCE: same-region groups are positives.

        For cities with many building groups, a random anchor batch is
        drawn per step (standard contrastive minibatching).
        """
        n_groups = len(self._group_features)
        if n_groups > self.MAX_CONTRASTIVE_BATCH:
            batch = np.sort(self._batch_rng.choice(
                n_groups, size=self.MAX_CONTRASTIVE_BATCH, replace=False))
            features = self._group_features[batch]
            region_index = self._region_index[batch]
        else:
            features = self._group_features
            region_index = self._region_index
        z = F.l2_normalize(self.encoder(Tensor(features)))
        logits = (z @ z.T) * (1.0 / self.temperature)
        same = region_index[:, None] == region_index[None, :]
        np.fill_diagonal(same, False)
        positive_mask = same.astype(np.float64)
        has_positive = positive_mask.sum(axis=1) > 0
        # Mask the diagonal (self-similarity) out of the partition sum.
        eye_penalty = Tensor(np.eye(len(features)) * 1e9)
        log_probs = F.log_softmax(logits - eye_penalty, axis=1)
        per_anchor = (log_probs * Tensor(positive_mask)).sum(axis=1)
        counts = np.maximum(positive_mask.sum(axis=1), 1.0)
        per_anchor = per_anchor * Tensor(1.0 / counts)
        usable = Tensor(has_positive.astype(np.float64))
        return -(per_anchor * usable).sum() * (1.0 / max(has_positive.sum(), 1))
