"""HREP baseline (Zhou et al., AAAI 2023), reimplemented.

HREP learns region embeddings with a *relation-aware* GCN over
heterogeneous relation graphs — human mobility, POI similarity and
geographic neighbourhood — then adapts the frozen embeddings to each
downstream task with *prompt learning*: a small task-specific module
trained per task before the regressor runs (which is why HREP's
downstream column in Table V is orders of magnitude slower than the
other models).

Faithfulness notes:
- same three relations; relation-specific GCN transforms summed per layer
  (the relation-aware aggregation), 2–3 layers, d = 144;
- same objective family (mobility KL + similarity reconstruction);
- prompt learning is implemented as a per-task learned feature
  recalibration (elementwise softplus gate) trained by Adam on the
  training folds; :meth:`prompted_regressor_factory` wires it into the
  shared CV protocol.
"""

from __future__ import annotations

import numpy as np

from ..data.city import SyntheticCity
from ..data.features import normalize_counts
from ..nn import Adam, Linear, Parameter, Tensor
from ..nn import functional as F
from ..core.losses import feature_similarity_loss, mobility_kl_loss
from ..eval.lasso import Lasso
from .base import RegionEmbeddingBaseline
from .graph import GCNLayer, knn_graph

__all__ = ["HREP", "PromptedLasso"]


class HREP(RegionEmbeddingBaseline):
    """Heterogeneous region embedding with prompt learning."""

    name = "hrep"
    default_dim = 144

    def __init__(self, city: SyntheticCity, d: int | None = None,
                 num_layers: int = 2, k_neighbors: int = 10, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.d = d if d is not None else self.default_dim
        mobility_feat = np.concatenate([normalize_counts(city.mobility.matrix),
                                        normalize_counts(city.mobility.matrix.T)], axis=1)
        poi_feat = normalize_counts(city.poi_counts)
        self._features = np.concatenate([mobility_feat, poi_feat], axis=1)
        self._mobility = city.mobility.matrix
        self._poi_feat = poi_feat

        flow = city.mobility.matrix + city.mobility.matrix.T
        relations = [
            knn_graph(np.log1p(flow), k_neighbors),                      # mobility relation
            knn_graph(F.cosine_similarity_matrix(poi_feat), k_neighbors),  # POI relation
            city.geometry.adjacency_matrix() + np.eye(city.n_regions),   # neighbour relation
        ]
        dims = [self._features.shape[1]] + [self.d] * (num_layers - 1)
        self.layers = []
        for layer_index in range(num_layers):
            self.layers.append([
                GCNLayer(dims[layer_index], self.d, rel, rng=rng) for rel in relations
            ])
        self._flat_layers = [g for layer in self.layers for g in layer]
        self.source_head = Linear(self.d, self.d, rng=rng)
        self.dest_head = Linear(self.d, self.d, rng=rng)

    # ------------------------------------------------------------------
    def view_embeddings(self) -> list[Tensor]:
        """One embedding per relation from the last GCN layer."""
        h = Tensor(self._features)
        per_relation: list[Tensor] = []
        for layer_index, relation_layers in enumerate(self.layers):
            per_relation = [gcn(h) for gcn in relation_layers]
            summed = per_relation[0]
            for other in per_relation[1:]:
                summed = summed + other
            h = summed.relu() if layer_index < len(self.layers) - 1 else summed
        return per_relation

    def fuse(self, views: list[Tensor]) -> Tensor:
        out = views[0]
        for view in views[1:]:
            out = out + view
        return out

    def loss(self) -> Tensor:
        h = self.forward()
        total = mobility_kl_loss(self.source_head(h), self.dest_head(h),
                                 self._mobility, scale="mean")
        return total + feature_similarity_loss(F.l2_normalize(h), self._poi_feat)

    # ------------------------------------------------------------------
    def prompted_regressor_factory(self, prompt_steps: int = 150,
                                   prompt_lr: float = 0.05, seed: int = 0):
        """Factory for the CV protocol: Lasso with per-task prompt tuning."""
        return lambda: PromptedLasso(prompt_steps=prompt_steps,
                                     prompt_lr=prompt_lr, seed=seed)


class PromptedLasso:
    """Lasso preceded by HREP-style prompt learning.

    A learnable elementwise gate (softplus of a prompt vector) recalibrates
    the frozen embedding for the task at hand; the gate is trained with
    Adam on the training fold against a least-squares probe, then the
    standard Lasso runs on the recalibrated features. This reproduces both
    the accuracy benefit and the downstream-latency cost of HREP's prompt
    stage.
    """

    def __init__(self, alpha: float = 1.0, prompt_steps: int = 150,
                 prompt_lr: float = 0.05, seed: int = 0):
        self.alpha = alpha
        self.prompt_steps = prompt_steps
        self.prompt_lr = prompt_lr
        self.seed = seed
        self._gate: np.ndarray | None = None
        self._lasso: Lasso | None = None

    def _fit_prompt(self, features: np.ndarray, targets: np.ndarray) -> np.ndarray:
        d = features.shape[1]
        prompt = Parameter(np.zeros(d))
        probe = Parameter(np.random.default_rng(self.seed).normal(0.0, 0.01, d))
        y = Tensor(targets / max(targets.std(), 1e-9))
        x = Tensor(features)
        optimizer = Adam([prompt, probe], lr=self.prompt_lr)
        for _ in range(self.prompt_steps):
            optimizer.zero_grad()
            gate = F.sigmoid(prompt) * 2.0        # gate in (0, 2), starts at 1
            predicted = (x * gate) @ probe
            loss = ((predicted - y) ** 2.0).mean()
            loss.backward()
            optimizer.step()
        return 2.0 / (1.0 + np.exp(-prompt.data))

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "PromptedLasso":
        self._gate = self._fit_prompt(np.asarray(features), np.asarray(targets))
        self._lasso = Lasso(alpha=self.alpha).fit(features * self._gate, targets)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._lasso is None:
            raise RuntimeError("predict() called before fit()")
        return self._lasso.predict(features * self._gate)
