"""MVURE baseline (Zhang et al., IJCAI 2020), reimplemented.

MVURE builds four region graphs — mobility-source, mobility-destination,
POI-similarity and check-in-similarity — runs graph attention on each to
produce view-based embeddings, and fuses them with a *weighted sum*
(simple aggregation — exactly the fusion style HAFusion improves on).

Faithfulness notes (vs. the original release):
- same four views, same GAT encoder family, same weighted-sum fusion,
  same mobility-KL + similarity reconstruction objectives, d = 96;
- check-in input comes from a *training-period* category matrix disjoint
  from the evaluation counts, matching the paper's protocol (Sec. VI-A);
- single-head GAT per graph instead of multi-head, full-batch Adam.
"""

from __future__ import annotations

import numpy as np

from ..data.city import SyntheticCity
from ..data.features import normalize_counts
from ..nn import Linear, Parameter, Tensor, init
from ..nn import functional as F
from ..core.losses import feature_similarity_loss, mobility_kl_loss
from .base import RegionEmbeddingBaseline
from .graph import GraphAttentionLayer, knn_graph

__all__ = ["MVURE"]


class MVURE(RegionEmbeddingBaseline):
    """Multi-view joint graph representation learning."""

    name = "mvure"
    default_dim = 96

    def __init__(self, city: SyntheticCity, d: int | None = None,
                 num_layers: int = 2, k_neighbors: int = 10, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.d = d if d is not None else self.default_dim
        mobility = city.mobility.matrix
        source_feat = normalize_counts(mobility)          # outgoing rows
        dest_feat = normalize_counts(mobility.T)          # incoming columns
        poi_feat = normalize_counts(city.poi_counts)
        checkin_feat = normalize_counts(city.targets.checkin_categories_train)

        self._features = [source_feat, dest_feat, poi_feat, checkin_feat]
        self._mobility = mobility
        graphs = [
            knn_graph(F.cosine_similarity_matrix(source_feat), k_neighbors),
            knn_graph(F.cosine_similarity_matrix(dest_feat), k_neighbors),
            knn_graph(F.cosine_similarity_matrix(poi_feat), k_neighbors),
            knn_graph(F.cosine_similarity_matrix(checkin_feat), k_neighbors),
        ]
        self.encoders = []
        for feature, graph in zip(self._features, graphs):
            layers = [GraphAttentionLayer(feature.shape[1], self.d, graph, rng=rng)]
            for _ in range(num_layers - 1):
                layers.append(GraphAttentionLayer(self.d, self.d, graph, rng=rng))
            self.encoders.append(layers)
        # flatten for parameter discovery
        self._all_layers = [layer for enc in self.encoders for layer in enc]
        self.fusion_logits = Parameter(np.zeros(len(self.encoders)))
        self.source_head = Linear(self.d, self.d, rng=rng)
        self.dest_head = Linear(self.d, self.d, rng=rng)

    # ------------------------------------------------------------------
    def view_embeddings(self) -> list[Tensor]:
        views = []
        for feature, layers in zip(self._features, self.encoders):
            h = Tensor(feature)
            for i, layer in enumerate(layers):
                h = layer(h)
                if i < len(layers) - 1:
                    h = h.relu()
            views.append(h)
        return views

    def fuse(self, views: list[Tensor]) -> Tensor:
        weights = F.softmax(self.fusion_logits, axis=0)
        stacked = Tensor.stack(views, axis=0)             # (v, n, d)
        return (stacked * weights.reshape(-1, 1, 1)).sum(axis=0)

    def loss(self) -> Tensor:
        h = self.forward()
        total = mobility_kl_loss(self.source_head(h), self.dest_head(h),
                                 self._mobility, scale="mean")
        # Reconstruction of POI and check-in similarity structure (Eq. 8
        # family), on the fused embedding as in the original model.
        total = total + feature_similarity_loss(F.l2_normalize(h), self._features[2])
        total = total + feature_similarity_loss(F.l2_normalize(h), self._features[3])
        return total
