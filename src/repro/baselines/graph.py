"""Graph neural network layers shared by the baseline models.

MVURE uses graph attention (GAT) over region-similarity graphs; HREP uses
a relation-aware GCN over heterogeneous relation graphs. Both operate on
dense n×n adjacency/similarity matrices (the paper's cities have at most
1440 regions, so dense is simpler and faster than sparse here).
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, Module, Parameter, Tensor, init
from ..nn import functional as F

__all__ = [
    "knn_graph",
    "normalize_adjacency",
    "GraphAttentionLayer",
    "GCNLayer",
]


def knn_graph(similarity: np.ndarray, k: int = 10, symmetric: bool = True) -> np.ndarray:
    """0/1 adjacency keeping each row's top-k similarity entries.

    Self-loops are always included (standard for GAT/GCN aggregation).
    """
    similarity = np.asarray(similarity, dtype=np.float64)
    n = similarity.shape[0]
    if similarity.shape != (n, n):
        raise ValueError(f"similarity must be square, got {similarity.shape}")
    k = min(k, n - 1)
    masked = similarity.copy()
    np.fill_diagonal(masked, -np.inf)
    adjacency = np.zeros((n, n))
    if k > 0:
        top = np.argpartition(-masked, kth=k - 1, axis=1)[:, :k]
        rows = np.repeat(np.arange(n), k)
        adjacency[rows, top.ravel()] = 1.0
    if symmetric:
        adjacency = np.maximum(adjacency, adjacency.T)
    np.fill_diagonal(adjacency, 1.0)
    return adjacency


def normalize_adjacency(adjacency: np.ndarray) -> np.ndarray:
    """Symmetric GCN normalization D^{-1/2} (A) D^{-1/2}."""
    adjacency = np.asarray(adjacency, dtype=np.float64)
    degree = adjacency.sum(axis=1)
    safe_degree = np.where(degree > 0, degree, 1.0)
    inv_sqrt = np.where(degree > 0, safe_degree ** -0.5, 0.0)
    return adjacency * inv_sqrt[:, None] * inv_sqrt[None, :]


class GraphAttentionLayer(Module):
    """Single-head GAT layer (Veličković et al., 2018) with a fixed mask.

    Attention coefficients e_ij = LeakyReLU(aᵀ[Wx_i ‖ Wx_j]) are computed
    only where ``adjacency`` is non-zero, then softmax-normalized per row.
    """

    def __init__(self, in_features: int, out_features: int, adjacency: np.ndarray,
                 negative_slope: float = 0.2, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.transform = Linear(in_features, out_features, bias=False, rng=rng)
        self.attn_left = Parameter(init.xavier_uniform((out_features, 1), rng))
        self.attn_right = Parameter(init.xavier_uniform((out_features, 1), rng))
        self.negative_slope = negative_slope
        mask = (np.asarray(adjacency) > 0).astype(np.float64)
        # Additive -inf mask outside the graph support.
        self._bias = np.where(mask > 0, 0.0, -1e9)

    def forward(self, x: Tensor) -> Tensor:
        h = self.transform(x)                                 # (n, d_out)
        left = h @ self.attn_left                             # (n, 1)
        right = h @ self.attn_right                           # (n, 1)
        scores = (left + right.T).leaky_relu(self.negative_slope) + Tensor(self._bias)
        weights = F.softmax(scores, axis=-1)
        return weights @ h


class GCNLayer(Module):
    """GCN layer with a fixed pre-normalized propagation matrix."""

    def __init__(self, in_features: int, out_features: int, adjacency: np.ndarray,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.transform = Linear(in_features, out_features, rng=rng)
        self._propagate = normalize_adjacency(adjacency)

    def forward(self, x: Tensor) -> Tensor:
        return Tensor(self._propagate) @ self.transform(x)
