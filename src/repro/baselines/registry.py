"""Uniform construction and training of baseline models.

``make_baseline(name, city)`` builds any baseline (or its -dafusion
variant); ``train_baseline`` runs the shared full-batch loop with each
model's paper-recommended epoch budget scaled by a profile factor.
"""

from __future__ import annotations

import numpy as np

from ..data.city import SyntheticCity
from .base import FitResult, RegionEmbeddingBaseline, fit_baseline
from .fusion_adapters import DAFusionAdapter
from .hrep import HREP
from .mgfn import MGFN
from .mvure import MVURE
from .region_dcl import RegionDCL

__all__ = ["BASELINES", "make_baseline", "train_baseline", "available_baselines"]

BASELINES = {
    "mvure": MVURE,
    "mgfn": MGFN,
    "region_dcl": RegionDCL,
    "hrep": HREP,
}

#: Relative training-epoch budgets (RegionDCL's contrastive objective
#: converges faster per epoch but each epoch covers all building groups).
_EPOCH_BUDGET = {
    "mvure": 1.0,
    "mgfn": 1.0,
    "region_dcl": 0.6,
    "hrep": 1.0,
}


def available_baselines(with_adapters: bool = False) -> list[str]:
    names = sorted(BASELINES)
    if with_adapters:
        names += [f"{n}-dafusion" for n in ("mvure", "mgfn", "hrep")]
    return names


def make_baseline(name: str, city: SyntheticCity, seed: int = 0,
                  d: int | None = None, **kwargs) -> RegionEmbeddingBaseline:
    """Construct a baseline by name; ``<name>-dafusion`` wraps it in the
    Table IV adapter."""
    base_name, _, suffix = name.partition("-")
    if base_name not in BASELINES:
        raise KeyError(f"unknown baseline {name!r}; available: {available_baselines(True)}")
    model = BASELINES[base_name](city, d=d, seed=seed, **kwargs)
    if suffix == "dafusion":
        model = DAFusionAdapter(model, rng=np.random.default_rng(seed + 1))
    elif suffix:
        raise KeyError(f"unknown baseline variant {name!r}")
    return model


def train_baseline(model: RegionEmbeddingBaseline, epochs: int = 300,
                   lr: float = 1e-3, log_every: int = 0) -> FitResult:
    """Train with the shared loop, scaling epochs by the model's budget."""
    base_name = model.name.partition("-")[0]
    scaled = max(10, int(epochs * _EPOCH_BUDGET.get(base_name, 1.0)))
    return fit_baseline(model, epochs=scaled, lr=lr, log_every=log_every)
