"""MGFN baseline (Wu et al., IJCAI 2022), reimplemented.

MGFN is *mobility-only*: it builds 24 hourly mobility graphs, clusters
them into 7 mobility-pattern groups by time-weighted graph distance, sums
each group into a mobility-pattern graph, and learns region embeddings
with intra-pattern and inter-pattern ("multi-graph") attention.

Faithfulness notes:
- same pipeline: hourly graphs → k-means-style clustering into
  ``n_patterns`` groups (distances on log-scaled edge-weight vectors) →
  pattern graphs → per-pattern encoder + cross-pattern attention →
  aggregated region embedding, d = 96;
- trained with the mobility-KL objective only (it sees no POI/land-use
  data — exactly why it trails on crime/service-call tasks and on cities
  with noisy mobility, per Table III).
"""

from __future__ import annotations

import numpy as np

from ..data.city import SyntheticCity
from ..data.features import normalize_counts
from ..nn import Linear, MultiHeadSelfAttention, Tensor
from ..nn import functional as F
from ..core.losses import mobility_kl_loss
from .base import RegionEmbeddingBaseline

__all__ = ["MGFN", "cluster_hourly_graphs"]


def cluster_hourly_graphs(hourly: np.ndarray, n_patterns: int = 7,
                          seed: int = 0, n_iter: int = 20) -> np.ndarray:
    """Group 24 hourly OD graphs into mobility patterns.

    Plain k-means (Lloyd's algorithm) on the log-scaled flattened edge
    weights — the spirit of MGFN's time-weighted graph distance: hours
    with similar flow structure share a pattern (e.g. AM-peak hours).

    Returns
    -------
    (24,) integer pattern assignment per hour.
    """
    if hourly.ndim != 3 or hourly.shape[1] != hourly.shape[2]:
        raise ValueError(f"expected (24, n, n) hourly stack, got {hourly.shape}")
    n_hours = hourly.shape[0]
    n_patterns = min(n_patterns, n_hours)
    flat = np.log1p(hourly.reshape(n_hours, -1))
    rng = np.random.default_rng(seed)
    centers = flat[rng.choice(n_hours, size=n_patterns, replace=False)]
    assignment = np.zeros(n_hours, dtype=int)
    for _ in range(n_iter):
        distances = ((flat[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        new_assignment = distances.argmin(axis=1)
        if (new_assignment == assignment).all():
            break
        assignment = new_assignment
        for c in range(n_patterns):
            members = flat[assignment == c]
            if len(members):
                centers[c] = members.mean(axis=0)
    return assignment


class MGFN(RegionEmbeddingBaseline):
    """Multi-graph fusion network over mobility-pattern graphs."""

    name = "mgfn"
    default_dim = 96

    def __init__(self, city: SyntheticCity, d: int | None = None,
                 n_patterns: int = 7, num_layers: int = 3, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.d = d if d is not None else self.default_dim
        self.num_layers = num_layers
        assignment = cluster_hourly_graphs(city.mobility.hourly,
                                           n_patterns=n_patterns, seed=seed)
        patterns = []
        for c in sorted(set(assignment)):
            pattern_graph = city.mobility.hourly[assignment == c].sum(axis=0)
            patterns.append(np.concatenate([normalize_counts(pattern_graph),
                                            normalize_counts(pattern_graph.T)], axis=1))
        self._patterns = patterns                     # list of (n, 2n) features
        self._mobility = city.mobility.matrix
        n = city.n_regions
        self.projections = [Linear(2 * n, self.d, rng=rng) for _ in patterns]
        # Intra-pattern message passing: self-attention over regions,
        # shared across patterns, stacked num_layers deep.
        self.intra_attention = [MultiHeadSelfAttention(self.d, num_heads=4, rng=rng)
                                for _ in range(num_layers)]
        # Inter-pattern message passing: attention over the pattern axis
        # (batched per region, so cost is O(n·p²) not O((n·p)²)).
        self.inter_query = Linear(self.d, self.d, bias=False, rng=rng)
        self.inter_key = Linear(self.d, self.d, bias=False, rng=rng)
        self.inter_value = Linear(self.d, self.d, bias=False, rng=rng)
        self.source_head = Linear(self.d, self.d, rng=rng)
        self.dest_head = Linear(self.d, self.d, rng=rng)

    # ------------------------------------------------------------------
    def view_embeddings(self) -> list[Tensor]:
        """One embedding matrix per mobility pattern (the 'views')."""
        views = []
        for projection, pattern in zip(self.projections, self._patterns):
            h = projection(Tensor(pattern))
            for attention in self.intra_attention:
                h = h + attention(h)
            views.append(h)
        return views

    def fuse(self, views: list[Tensor]) -> Tensor:
        # Cross-pattern attention per region, then mean over patterns —
        # MGFN's "mobility pattern joint learning" aggregation.
        stacked = Tensor.stack(views, axis=1)          # (n, p, d)
        query = self.inter_query(stacked)
        key = self.inter_key(stacked)
        value = self.inter_value(stacked)
        attended, _ = F.scaled_dot_product_attention(query, key, value)
        return (stacked + attended).mean(axis=1)

    def loss(self) -> Tensor:
        h = self.forward()
        return mobility_kl_loss(self.source_head(h), self.dest_head(h),
                                self._mobility, scale="mean")
