"""``repro.baselines`` — reimplementations of the paper's competitors.

Four baselines (Sec. VI-A) with faithful data diets, encoder families,
fusion styles and objectives:

- :class:`MVURE` — multi-view GAT, weighted-sum fusion (d = 96);
- :class:`MGFN` — mobility-pattern graphs, mobility-only (d = 96);
- :class:`RegionDCL` — building-footprint contrastive learning (d = 64);
- :class:`HREP` — relation-aware GCN + per-task prompt learning (d = 144).

:class:`DAFusionAdapter` produces the ``<model>-DAFusion`` variants of
Table IV.
"""

from .base import FitResult, RegionEmbeddingBaseline, fit_baseline
from .fusion_adapters import DAFusionAdapter
from .graph import GCNLayer, GraphAttentionLayer, knn_graph, normalize_adjacency
from .hrep import HREP, PromptedLasso
from .mgfn import MGFN, cluster_hourly_graphs
from .mvure import MVURE
from .region_dcl import RegionDCL
from .registry import BASELINES, available_baselines, make_baseline, train_baseline

__all__ = [
    "BASELINES",
    "DAFusionAdapter",
    "FitResult",
    "GCNLayer",
    "GraphAttentionLayer",
    "HREP",
    "MGFN",
    "MVURE",
    "PromptedLasso",
    "RegionDCL",
    "RegionEmbeddingBaseline",
    "available_baselines",
    "cluster_hourly_graphs",
    "fit_baseline",
    "knn_graph",
    "make_baseline",
    "normalize_adjacency",
    "train_baseline",
]
