"""Crash-safe resumable training: atomic checksummed checkpoints.

The paper trains HAFusion for 2,500 full-batch epochs per city; losing a
run to a crash, an OOM kill or a preemption means losing hours of CPU.
This module makes training state durable with the same determinism bar
the serving fleet already meets: resume must be **bit-identical** to an
uninterrupted run (``max|Δ| = 0`` on final parameters and embeddings,
gated by ``tests/train/test_checkpoint.py``).

A checkpoint captures everything the next epoch depends on:

- **model parameters** (full precision, exact dtype);
- **optimizer scratch** — Adam ``m``/``v``/``t``, SGD momentum — via the
  new :meth:`repro.nn.optim.Optimizer.state_dict`;
- **dropout RNG bit-generator state**, so the compiled plan's mask
  redraw (and an eager run's draws) continue the exact stream;
- the **epoch counter** and the loss curve / wall-clock of the
  :class:`~repro.core.trainer.TrainingHistory`.

Durability follows the ``plancache`` recipe: serialize to a temp file,
``fsync``, then ``os.replace`` — a reader never sees a partial
checkpoint, and a crash mid-write leaves the previous checkpoint intact.
Every file carries a SHA-256 checksum; :meth:`CheckpointStore.load_latest`
validates it and falls back to the newest *intact* checkpoint when the
newest file is truncated or corrupted (the bad file is set aside as
``*.corrupt`` for debugging, never silently reloaded).

Restores are **in place**: parameter arrays, optimizer moment buffers
and RNG streams are overwritten without rebinding, so a live compiled
plan (whose kernels captured those arrays by reference) stays valid
across a restore — which is also what makes the record-epoch *rewind*
trick in :func:`repro.core.trainer.train_model` possible.
"""

from __future__ import annotations

import copy
import hashlib
import os
import pickle
import time
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..nn.module import Module
from ..nn.optim import Optimizer

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "NumericalError",
    "TrainingPreempted",
    "capture_rng_states",
    "restore_rng_states",
    "write_checkpoint",
    "read_checkpoint",
    "CheckpointStore",
    "Checkpointer",
]

#: Bumping this invalidates every serialized checkpoint.
CHECKPOINT_VERSION = 1

#: File preamble: magic line, then the payload checksum, then the pickle.
_MAGIC = b"RPROCKPT1\n"


class CheckpointError(RuntimeError):
    """A checkpoint file cannot be used (truncated, corrupted, version
    skew, or captured from an incompatible model/optimizer)."""


class NumericalError(ArithmeticError):
    """Training produced a non-finite loss or gradient.

    Carries the 1-based ``epoch`` it surfaced at, the offending ``loss``
    value, and the names of parameters whose gradients went non-finite —
    and, when a checkpointer is active, is raised only *after* the
    diverged state was checkpointed (reason ``"numerical"``), so the run
    is debuggable instead of vanished.
    """

    def __init__(self, message: str, epoch: int, loss: float | None = None,
                 bad_parameters: Sequence[str] = ()):
        super().__init__(message)
        self.epoch = epoch
        self.loss = loss
        self.bad_parameters = list(bad_parameters)


class TrainingPreempted(RuntimeError):
    """SIGTERM/SIGINT arrived mid-training; the loop finished the
    current epoch, checkpointed (when a checkpointer is active) and
    exited cleanly.  Resume with ``resume=True`` to continue
    bit-identically from ``epoch``."""

    def __init__(self, message: str, epoch: int, signum: int | None = None,
                 checkpoint_path: "Path | None" = None):
        super().__init__(message)
        self.epoch = epoch
        self.signum = signum
        self.checkpoint_path = checkpoint_path


# ----------------------------------------------------------------------
# RNG stream capture
# ----------------------------------------------------------------------

def _stateful_rngs(model: Module) -> list[np.random.Generator]:
    """Distinct ``np.random.Generator`` objects reachable as module
    attributes (today: the shared Dropout generator), in stable
    depth-first traversal order.  Distinct by identity: sub-modules
    usually share one generator, whose stream must be captured once."""
    rngs: list[np.random.Generator] = []
    seen: set[int] = set()
    for module in model.modules():
        rng = getattr(module, "rng", None)
        if isinstance(rng, np.random.Generator) and id(rng) not in seen:
            seen.add(id(rng))
            rngs.append(rng)
    return rngs


def capture_rng_states(model: Module) -> list[dict]:
    """Bit-generator states of every stateful RNG in ``model`` — the
    dropout streams a compiled plan redraws masks from on each replay."""
    return [copy.deepcopy(rng.bit_generator.state)
            for rng in _stateful_rngs(model)]


def restore_rng_states(model: Module, states: Sequence[dict]) -> None:
    """Restore :func:`capture_rng_states` output, in place: the same
    Generator objects the model's modules (and any recorded plan's
    dropout kernels) hold continue the checkpointed stream."""
    rngs = _stateful_rngs(model)
    if len(rngs) != len(states):
        raise CheckpointError(
            f"checkpoint holds {len(states)} rng streams, model has "
            f"{len(rngs)} — architecture drift?")
    for rng, state in zip(rngs, states):
        rng.bit_generator.state = copy.deepcopy(state)


# ----------------------------------------------------------------------
# Checkpoint file IO
# ----------------------------------------------------------------------

def write_checkpoint(path: "str | os.PathLike", payload: dict,
                     fault: Callable[[], None] | None = None) -> Path:
    """Atomically persist ``payload``: temp file + checksum + ``fsync``
    + ``os.replace``, the :mod:`repro.nn.plancache` durability recipe.

    ``fault`` (tests only) fires after the temp file is durable but
    before the rename — a kill there must leave any previous checkpoint
    at ``path`` untouched.
    """
    path = Path(path)
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(blob).hexdigest().encode("ascii")
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    with open(tmp, "wb") as f:
        f.write(_MAGIC)
        f.write(digest)
        f.write(b"\n")
        f.write(blob)
        f.flush()
        os.fsync(f.fileno())
    if fault is not None:
        fault()
    os.replace(tmp, path)
    # Make the rename itself durable (best-effort: not all platforms
    # support fsync on a directory fd).
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:
        pass
    return path


def read_checkpoint(path: "str | os.PathLike") -> dict:
    """Load and validate one checkpoint file.

    Raises :class:`CheckpointError` on a missing magic, checksum
    mismatch (truncation, bit rot), unpicklable body, or version skew —
    the conditions :meth:`CheckpointStore.load_latest` falls back on.
    """
    path = Path(path)
    raw = path.read_bytes()
    if not raw.startswith(_MAGIC):
        raise CheckpointError(f"{path.name}: not a checkpoint file")
    header_end = len(_MAGIC) + 64 + 1
    if len(raw) < header_end or raw[header_end - 1:header_end] != b"\n":
        raise CheckpointError(f"{path.name}: truncated header")
    digest = raw[len(_MAGIC):header_end - 1]
    blob = raw[header_end:]
    if hashlib.sha256(blob).hexdigest().encode("ascii") != digest:
        raise CheckpointError(
            f"{path.name}: checksum mismatch (truncated or corrupted)")
    try:
        payload = pickle.loads(blob)
    except Exception as exc:
        raise CheckpointError(f"{path.name}: cannot unpickle ({exc})")
    if not isinstance(payload, dict) or \
            payload.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path.name}: checkpoint version "
            f"{payload.get('version') if isinstance(payload, dict) else '?'}"
            f" != {CHECKPOINT_VERSION}")
    return payload


class CheckpointStore:
    """A directory of epoch-numbered checkpoints with last-K retention.

    Files are named ``ckpt-<epoch>.ckpt``; :meth:`save` prunes beyond
    ``keep`` newest after every write, and :meth:`load_latest` walks
    newest → oldest, setting aside anything :func:`read_checkpoint`
    rejects, until an intact checkpoint (or nothing) remains.
    """

    def __init__(self, directory: "str | os.PathLike", keep: int = 3):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.keep = keep
        self.written = 0
        self.pruned = 0
        self.corrupt_discarded = 0

    # ------------------------------------------------------------------
    def path_for(self, epoch: int) -> Path:
        return self.directory / f"ckpt-{epoch:08d}.ckpt"

    def epochs(self) -> list[int]:
        """Epoch numbers of the checkpoints on disk, ascending."""
        if not self.directory.is_dir():
            return []
        found = []
        for p in self.directory.glob("ckpt-*.ckpt"):
            try:
                found.append(int(p.stem.split("-", 1)[1]))
            except (IndexError, ValueError):
                continue
        return sorted(found)

    # ------------------------------------------------------------------
    def save(self, epoch: int, payload: dict,
             fault: Callable[[], None] | None = None) -> Path:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = write_checkpoint(self.path_for(epoch), payload, fault=fault)
        self.written += 1
        for old in self.epochs()[:-self.keep]:
            try:
                self.path_for(old).unlink()
                self.pruned += 1
            except OSError:
                pass
        return path

    def load_latest(self) -> dict | None:
        """The newest intact checkpoint payload, or None.

        A truncated/corrupted/version-skewed file is renamed to
        ``<name>.corrupt`` (kept for debugging, never re-read) and the
        walk falls back to the next-newest file.
        """
        for epoch in reversed(self.epochs()):
            path = self.path_for(epoch)
            try:
                return read_checkpoint(path)
            except (OSError, CheckpointError):
                self.corrupt_discarded += 1
                try:
                    path.rename(path.with_name(path.name + ".corrupt"))
                except OSError:
                    pass
        return None


# ----------------------------------------------------------------------
# Checkpointer: the model/optimizer binding the training loop drives
# ----------------------------------------------------------------------

class Checkpointer:
    """Binds a (model, optimizer) pair to a :class:`CheckpointStore`.

    Construct it *before* the first training step, call :meth:`resume`
    to restore the newest intact checkpoint (in place — a recorded plan
    stays valid), then hand it to
    :func:`repro.core.trainer.run_training_loop`, which calls
    :meth:`maybe_save` each epoch and :meth:`save` on preemption or
    numerical abort.

    ``every=0`` disables interval checkpoints (preemption/abort saves
    still fire).  ``fault_plan`` threads a
    :class:`~repro.train.faults.TrainFaultPlan` into the
    ``mid_checkpoint`` fire point.
    """

    def __init__(self, model: Module, optimizer: Optimizer,
                 directory: "str | os.PathLike", every: int = 0,
                 keep: int = 3, fault_plan=None):
        if every < 0:
            raise ValueError(f"every must be >= 0, got {every}")
        self.model = model
        self.optimizer = optimizer
        self.store = CheckpointStore(directory, keep=keep)
        self.every = every
        self.fault_plan = fault_plan
        self.attempt = 1
        self.loaded = 0
        self.resume_epoch: int | None = None
        self.wall_clock_saved = 0.0
        self._resumed_payload: dict | None = None
        self.last_saved_path: Path | None = None

    # ------------------------------------------------------------------
    def capture(self, epoch: int, history, reason: str = "interval") -> dict:
        """Snapshot everything epoch ``epoch + 1`` depends on."""
        params = self.model.parameters()
        return {
            "version": CHECKPOINT_VERSION,
            "epoch": int(epoch),
            "attempt": int(self.attempt),
            "model_state": self.model.state_dict(),
            "optimizer_state": self.optimizer.state_dict(),
            "rng_states": capture_rng_states(self.model),
            "losses": list(history.losses),
            "seconds": float(history.seconds),
            "meta": {
                "reason": reason,
                "param_dtype": str(params[0].dtype) if params else "none",
                "num_parameters": int(self.model.num_parameters()),
                "saved_at": time.time(),
            },
        }

    def restore(self, payload: dict) -> None:
        """Load ``payload`` into the bound model/optimizer, in place."""
        try:
            self.model.load_state_dict(payload["model_state"], in_place=True)
            self.optimizer.load_state_dict(payload["optimizer_state"])
        except (KeyError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint does not fit this model/optimizer: {exc}")
        restore_rng_states(self.model, payload["rng_states"])

    # ------------------------------------------------------------------
    def resume(self):
        """Restore the newest intact checkpoint.

        Returns the restored :class:`~repro.core.trainer.TrainingHistory`
        (its ``len(losses)`` is the epoch to continue from), or ``None``
        when the store holds no checkpoint — a fresh run.  Bumps
        ``attempt`` past the checkpointed run's, so attempt-selected
        faults from the crashed run do not re-fire.
        """
        payload = self.store.load_latest()
        if payload is None:
            return None
        self.restore(payload)
        self.loaded += 1
        self.attempt = int(payload["attempt"]) + 1
        self.resume_epoch = int(payload["epoch"])
        self.wall_clock_saved = float(payload["seconds"])
        self._resumed_payload = payload
        from ..core.trainer import TrainingHistory   # deferred: no cycle
        return TrainingHistory(losses=list(payload["losses"]),
                               seconds=float(payload["seconds"]))

    def rewind(self) -> None:
        """Re-restore the checkpoint :meth:`resume` loaded.

        The compiled-resume trick: recording a fresh plan costs one real
        step (it consumes the RNG stream and applies an update), so the
        trainer records, then rewinds state to the checkpoint — the
        resumed epoch then runs as a plan *replay*, exactly as it would
        have in the uninterrupted run, keeping resume bit-identical even
        if an eager step and a replayed step ever differed in round-off.
        """
        if self._resumed_payload is None:
            raise CheckpointError("rewind() without a prior resume()")
        self.restore(self._resumed_payload)

    # ------------------------------------------------------------------
    def _fault_hook(self, epoch: int):
        if self.fault_plan is None:
            return None
        return lambda: self.fault_plan.apply(epoch, self.attempt,
                                             "mid_checkpoint")

    def save(self, epoch: int, history, reason: str = "interval") -> Path:
        payload = self.capture(epoch, history, reason=reason)
        path = self.store.save(epoch, payload, fault=self._fault_hook(epoch))
        self.last_saved_path = path
        return path

    def maybe_save(self, epoch: int, history) -> "Path | None":
        """Interval policy: checkpoint every ``every`` completed epochs."""
        if self.every and epoch % self.every == 0:
            return self.save(epoch, history, reason="interval")
        return None

    # ------------------------------------------------------------------
    def resume_report(self) -> dict:
        """Observability: what checkpointing did for this run."""
        return {
            "directory": str(self.store.directory),
            "written": self.store.written,
            "loaded": self.loaded,
            "pruned": self.store.pruned,
            "corrupt_discarded": self.store.corrupt_discarded,
            "retained_epochs": self.store.epochs(),
            "resume_epoch": self.resume_epoch,
            "attempt": self.attempt,
            "wall_clock_saved_seconds": self.wall_clock_saved,
        }
