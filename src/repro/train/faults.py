"""Deterministic fault injection for the training loop.

The training twin of :mod:`repro.serving.faults`: crash-safe training is
only provable if tests can script the *exact* crash they assert on, so a
:class:`TrainFaultPlan` threads a picklable list of :class:`TrainFaultSpec`
triggers into :func:`repro.core.trainer.run_training_loop` (and into the
checkpoint writer), each firing at a replayable point in the epoch
schedule instead of at the whim of a racing ``kill`` from a shell.

Four fault kinds cover the training failure matrix:

- ``"kill"`` — the process dies abruptly (``SIGKILL`` to itself: no
  cleanup, no goodbye — the same observable as an OOM kill or a
  preemption without grace).  Everything since the last durable
  checkpoint is lost; resume must reconstruct it bit-for-bit.
- ``"preempt"`` — the process receives ``SIGTERM`` (itself, so the
  delivery point is deterministic): the graceful-preemption signal the
  loop's handler turns into checkpoint-and-exit
  (:class:`repro.train.checkpoint.TrainingPreempted`).
- ``"delay"`` — sleep ``seconds`` at the selected point: the
  deterministic straggler, used by the smoke script to pin a run
  mid-epoch so an *external* ``kill -9`` provably lands mid-training.
- ``"fail"`` — raise :class:`InjectedTrainFault`: the typed
  application-level crash, letting in-process tests lose un-checkpointed
  state without killing the test runner.

Selectors (``epoch`` / ``attempt``) are conjunctive; ``None`` matches
anything.  ``epoch`` is the 1-based epoch being executed.  ``attempt``
counts training runs over one checkpoint directory (first run = 1, each
resume increments) and defaults to ``1`` so a fault fires only on the
*first* attempt — the resumed run that replays the very epoch the fault
broke then runs clean, which is what makes crash/resume tests converge
instead of crash-looping.

Fire points (``when``): ``"before_step"`` — the epoch's step has not run
(everything since the last checkpoint is lost); ``"after_step"`` — the
step completed but nothing was persisted yet; ``"mid_checkpoint"`` —
inside :meth:`repro.train.checkpoint.CheckpointStore.save`, after the
temp file is written and fsynced but *before* the atomic ``os.replace``
— a kill there must leave the previous checkpoint intact (the atomicity
guarantee under test).
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field

__all__ = ["TrainFaultPlan", "TrainFaultSpec", "InjectedTrainFault"]

_KINDS = ("kill", "preempt", "delay", "fail")
_WHENS = ("before_step", "after_step", "mid_checkpoint")


class InjectedTrainFault(RuntimeError):
    """The exception a ``"fail"`` fault raises inside the training loop."""


@dataclass(frozen=True)
class TrainFaultSpec:
    """One deterministic trigger (see module docstring)."""

    kind: str
    epoch: int | None = None
    attempt: int | None = 1
    when: str = "before_step"
    seconds: float = 0.0
    message: str = "injected training fault"

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"fault kind must be one of {_KINDS}, "
                             f"got {self.kind!r}")
        if self.when not in _WHENS:
            raise ValueError(f"fault when must be one of {_WHENS}, "
                             f"got {self.when!r}")
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")

    def matches(self, epoch: int, attempt: int, when: str) -> bool:
        return (self.when == when
                and (self.epoch is None or self.epoch == epoch)
                and (self.attempt is None or self.attempt == attempt))


@dataclass
class TrainFaultPlan:
    """An ordered, picklable set of :class:`TrainFaultSpec` triggers.

    Built fluently (each helper returns the plan)::

        plan = (TrainFaultPlan()
                .delay(epoch=3, seconds=0.2)
                .kill(epoch=5))        # die before epoch 5's step runs

    Plain picklable data — no callables — so a plan can cross a process
    boundary into a subprocess training run unchanged.
    """

    specs: list[TrainFaultSpec] = field(default_factory=list)

    # ------------------------------------------------------------------
    def add(self, spec: TrainFaultSpec) -> "TrainFaultPlan":
        self.specs.append(spec)
        return self

    def kill(self, **selectors) -> "TrainFaultPlan":
        """Die abruptly (self-``SIGKILL``) at the selected point."""
        return self.add(TrainFaultSpec("kill", **selectors))

    def preempt(self, **selectors) -> "TrainFaultPlan":
        """Deliver ``SIGTERM`` to self: the graceful-preemption path."""
        return self.add(TrainFaultSpec("preempt", **selectors))

    def delay(self, seconds: float, **selectors) -> "TrainFaultPlan":
        """Sleep ``seconds`` at the selected point (the straggler)."""
        return self.add(TrainFaultSpec("delay", seconds=seconds, **selectors))

    def fail(self, message: str = "injected training fault",
             **selectors) -> "TrainFaultPlan":
        """Raise :class:`InjectedTrainFault` at the selected point."""
        return self.add(TrainFaultSpec("fail", message=message, **selectors))

    def __len__(self) -> int:
        return len(self.specs)

    # ------------------------------------------------------------------
    def apply(self, epoch: int, attempt: int, when: str) -> None:
        """Fire every matching spec, in plan order.

        Delays sleep, fails raise, preempts raise ``SIGTERM`` in-process
        (the loop's handler sees exactly what a real preemption would
        deliver), kills never return.
        """
        for spec in self.specs:
            if not spec.matches(epoch, attempt, when):
                continue
            if spec.kind == "delay":
                time.sleep(spec.seconds)
            elif spec.kind == "fail":
                raise InjectedTrainFault(
                    f"{spec.message} (epoch {epoch}, attempt {attempt}, "
                    f"{when})")
            elif spec.kind == "preempt":
                os.kill(os.getpid(), signal.SIGTERM)
            else:   # kill
                os.kill(os.getpid(), signal.SIGKILL)
