"""Durable training: crash-safe checkpoints, bit-identical resume, and
deterministic training-side fault injection.

The training twin of :mod:`repro.serving`'s robustness layer (PR 8):
:mod:`repro.train.checkpoint` makes training state survive ``kill -9``
with atomic checksummed snapshots, and :mod:`repro.train.faults` scripts
the exact crash a test asserts on.
"""

from .checkpoint import (
    CHECKPOINT_VERSION,
    Checkpointer,
    CheckpointError,
    CheckpointStore,
    NumericalError,
    TrainingPreempted,
    capture_rng_states,
    read_checkpoint,
    restore_rng_states,
    write_checkpoint,
)
from .faults import InjectedTrainFault, TrainFaultPlan, TrainFaultSpec

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpointer",
    "CheckpointError",
    "CheckpointStore",
    "NumericalError",
    "TrainingPreempted",
    "capture_rng_states",
    "read_checkpoint",
    "restore_rng_states",
    "write_checkpoint",
    "InjectedTrainFault",
    "TrainFaultPlan",
    "TrainFaultSpec",
]
