"""Gradient-descent optimizers.

The paper trains HAFusion with full-batch Adam (lr 5e-4); SGD is provided
for tests and baselines. Both operate in-place on :class:`Parameter`
arrays and never build autograd graphs.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total


class Optimizer:
    """Base optimizer: holds parameters and implements ``zero_grad``."""

    def __init__(self, parameters: Iterable[Parameter]):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction and optional weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 5e-4,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
