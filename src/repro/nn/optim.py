"""Gradient-descent optimizers.

The paper trains HAFusion with full-batch Adam (lr 5e-4); SGD is provided
for tests and baselines. Both operate in-place on :class:`Parameter`
arrays and never build autograd graphs.

Updates are written *into* ``param.data`` (never ``param.data = new``)
with preallocated moment/scratch buffers: the compiled training executor
(:mod:`repro.nn.compile`) adopts each parameter's array as a plan buffer,
so its identity must be stable across steps — and the in-place form also
removes two large allocations per parameter per step. The arithmetic is
expression-for-expression identical to the allocating form, keeping the
golden training trajectory bit-for-bit unchanged.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


#: Reusable squared-gradient scratch for :func:`clip_grad_norm`, keyed by
#: (shape, dtype).  Bounded by the set of distinct parameter shapes.
_norm_scratch: dict[tuple, np.ndarray] = {}


def _squared_sum(grad: np.ndarray) -> float:
    """``float((grad ** 2).sum())`` without the temporary allocation."""
    key = (grad.shape, grad.dtype.str)
    ws = _norm_scratch.get(key)
    if ws is None:
        ws = _norm_scratch[key] = np.empty(grad.shape, dtype=grad.dtype)
    np.power(grad, 2, out=ws)
    return float(ws.sum())


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.  Allocation-free on the steady path:
    squared gradients go through a preallocated per-shape scratch buffer
    (same python-float summation order as the allocating form, so the
    norm — and the golden trajectories — stay bit-identical), and owned
    gradient arrays are scaled in place.  Unowned gradients (a tensor
    sharing an upstream array, or a compiled plan's buffers bound by
    ``Plan.backward``) are rebound to a scaled copy instead — scaling a
    shared array in place would corrupt the other holder.
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(_squared_sum(p.grad) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            if p._grad_owned:
                np.multiply(p.grad, scale, out=p.grad)
            else:
                p.grad = p.grad * scale
    return total


class Optimizer:
    """Base optimizer: holds parameters and implements ``zero_grad``.

    Subclasses carry *scratch state* (Adam moments, SGD momentum) that a
    resumable training run must persist: :meth:`state_dict` /
    :meth:`load_state_dict` round-trip exactly that state.  Restoring is
    **in place** (``np.copyto`` into the existing moment buffers, never a
    rebind): the compiled executor's folded update kernels capture those
    arrays by reference at fold time (:func:`repro.nn.compile.Plan.fuse_optimizer`),
    so a live plan keeps replaying correctly after a restore.
    """

    def __init__(self, parameters: Iterable[Parameter]):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot of the optimizer's scratch state.

        Hyper-parameters are included so :meth:`load_state_dict` can
        refuse a checkpoint that was trained under different settings —
        a silently different ``lr`` would resume onto a *different*
        trajectory, defeating the bit-identical-resume contract.
        """
        return {"type": type(self).__name__,
                "hyper": self._hyper_state(),
                "buffers": {name: [b.copy() for b in bufs]
                            for name, bufs in self._state_buffers().items()},
                "step_count": getattr(self, "_step_count", 0)}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot, in place.

        Raises ``ValueError`` on optimizer-type, hyper-parameter, buffer
        count/shape or dtype mismatches instead of loading a state that
        cannot continue the original trajectory.
        """
        if state.get("type") != type(self).__name__:
            raise ValueError(f"optimizer state is for {state.get('type')!r}, "
                             f"this optimizer is {type(self).__name__}")
        if state.get("hyper") != self._hyper_state():
            raise ValueError(
                f"optimizer hyper-parameters changed: checkpoint has "
                f"{state.get('hyper')}, optimizer has {self._hyper_state()}")
        own = self._state_buffers()
        saved = state.get("buffers", {})
        if set(saved) != set(own):
            raise ValueError(f"optimizer state buffers mismatch: "
                             f"{sorted(saved)} vs {sorted(own)}")
        for name, bufs in own.items():
            values = saved[name]
            if len(values) != len(bufs):
                raise ValueError(
                    f"optimizer state {name!r} holds {len(values)} buffers, "
                    f"expected {len(bufs)}")
            for buf, value in zip(bufs, values):
                value = np.asarray(value)
                if value.shape != buf.shape or value.dtype != buf.dtype:
                    raise ValueError(
                        f"optimizer state {name!r} buffer is "
                        f"{value.dtype}{value.shape}, expected "
                        f"{buf.dtype}{buf.shape}")
                np.copyto(buf, value)
        if hasattr(self, "_step_count"):
            self._step_count = int(state.get("step_count", 0))

    def _hyper_state(self) -> dict:
        """Hyper-parameters baked into the update arithmetic."""
        return {}

    def _state_buffers(self) -> dict[str, list[np.ndarray]]:
        """Named lists of per-parameter scratch arrays to persist.
        Pure scratch (overwritten before every read, like Adam's s1/s2)
        is deliberately absent — it carries no cross-step state."""
        return {}


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def _hyper_state(self) -> dict:
        return {"lr": self.lr, "momentum": self.momentum,
                "weight_decay": self.weight_decay}

    def _state_buffers(self) -> dict[str, list[np.ndarray]]:
        return {"velocity": self._velocity}

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction and optional weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 5e-4,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        # Two scratch buffers per parameter so one step allocates nothing.
        self._s1 = [np.empty_like(p.data) for p in self.parameters]
        self._s2 = [np.empty_like(p.data) for p in self.parameters]

    def _hyper_state(self) -> dict:
        return {"lr": self.lr, "betas": (self.beta1, self.beta2),
                "eps": self.eps, "weight_decay": self.weight_decay}

    def _state_buffers(self) -> dict[str, list[np.ndarray]]:
        # s1/s2 are pure scratch: fully rewritten before every read.
        return {"m": self._m, "v": self._v}

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for param, m, v, s1, s2 in zip(self.parameters, self._m, self._v,
                                       self._s1, self._s2):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            # m = beta1·m + (1-beta1)·grad ; v = beta2·v + (1-beta2)·grad·grad
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=s1)
            m += s1
            v *= self.beta2
            np.multiply(grad, 1.0 - self.beta2, out=s1)
            s1 *= grad
            v += s1
            # param -= lr·(m/bias1) / (sqrt(v/bias2) + eps)
            np.divide(m, bias1, out=s1)
            s1 *= self.lr
            np.divide(v, bias2, out=s2)
            np.sqrt(s2, out=s2)
            s2 += self.eps
            s1 /= s2
            param.data -= s1
