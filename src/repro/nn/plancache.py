"""Plan cache: reuse compiled inference plans across requests, models and
processes.

A recorded :class:`~repro.nn.compile.InferencePlan` is expensive to
create (one eager forward under the tape recorder — the "record epoch")
but cheap to *rebuild*: the program is fully described by its graph
structure — per-node op, ctx, parent wiring, shape and dtype — plus the
constant leaf values.  Parameters and inputs are **not** part of that
description: a rebuilt plan binds parameter slots to the live model's
arrays (by ``model.parameters()`` order) and leaves input slots empty for
:meth:`~repro.nn.compile.InferencePlan.run` to fill per request.

Three reuse tiers, all keyed on
``(config digest, input shapes, dtype, mask signature)``:

1. **plan hit** — the same key with the same bound parameter arrays:
   return the live plan, zero work;
2. **spec hit** — the key is known (in-memory LRU or on-disk pickle) but
   the plan is unbound or bound to swapped-out/foreign parameters:
   relower the spec to kernels (`build_inference_plan`, no eager pass,
   no record epoch) and bind the given parameters;
3. **miss** — record eagerly once, then persist the spec in memory and
   (when a cache directory is configured) on disk, so later *processes*
   start at tier 2.

Specs are **backend-neutral**: the lowering level and replay backend
(serial vs. threaded) are properties of the *built* plan, not of the
stored program, so requesting a different backend for a cached shape
costs a tier-2 relower — zero record epochs — and each variant stays
resident independently.

Robustness: a corrupted, truncated, version-skewed or key-mismatched
on-disk entry — and a stored spec whose parameter shapes no longer match
the model — falls back to a fresh record (the bad file is removed).  The
on-disk format is a pickle of :class:`PlanSpec`; treat the cache
directory with the same trust as the code importing it.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from collections import OrderedDict
from dataclasses import asdict, dataclass, field, is_dataclass
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from .compile import (InferencePlan, resolve_backend, resolve_lowering,
                      resolve_workers)
from .tensor import Tensor

__all__ = [
    "SPEC_VERSION",
    "PlanCacheError",
    "PlanSpec",
    "build_inference_spec",
    "build_inference_plan",
    "PlanCache",
    "config_digest",
    "mask_signature",
    "inference_plan_key",
    "default_plan_cache",
    "reset_default_plan_cache",
]

#: Bumping this invalidates every serialized spec (baked into the key
#: and checked against the loaded payload).
SPEC_VERSION = 1


class PlanCacheError(RuntimeError):
    """A stored spec cannot serve this request (stale, corrupt, or bound
    to a different architecture); callers fall back to re-recording."""


# ----------------------------------------------------------------------
# Cache keys
# ----------------------------------------------------------------------

def config_digest(config) -> str:
    """Stable digest of a model configuration (any dataclass or dict)."""
    if is_dataclass(config) and not isinstance(config, type):
        payload = asdict(config)
    elif isinstance(config, dict):
        payload = config
    else:
        payload = {"repr": repr(config)}
    blob = json.dumps(payload, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def mask_signature(mask: np.ndarray | None) -> str | None:
    """Digest of a keep mask's shape, dtype and contents (None passes
    through: the unpadded fast path has no mask baked into the plan)."""
    if mask is None:
        return None
    m = np.ascontiguousarray(mask)
    h = hashlib.sha256()
    h.update(repr((m.shape, str(m.dtype))).encode())
    h.update(m.tobytes())
    return h.hexdigest()[:16]


def inference_plan_key(config, shapes: Sequence[Sequence[int]], dtype,
                       mask: np.ndarray | None = None,
                       extra: tuple = ()) -> tuple:
    """The canonical cache key: everything that changes the lowered
    program.  Parameter *values* are deliberately absent — specs rebind
    them — but the mask is baked into the plan as constants, hence its
    signature is part of the key."""
    return ("infer", SPEC_VERSION, config_digest(config),
            tuple(tuple(int(d) for d in s) for s in shapes),
            str(np.dtype(dtype)), mask_signature(mask), tuple(extra))


# ----------------------------------------------------------------------
# PlanSpec: the serializable program
# ----------------------------------------------------------------------

@dataclass
class PlanSpec:
    """A lowered forward program as plain data.

    One combined node list — declared inputs first, then the remaining
    leaves in first-reference order, then the op nodes in execution
    order; ``parents`` reference earlier indices only.  ``kinds[i]`` is
    ``"input"`` (a rebindable slot), ``"param"`` (bound at build time by
    position in the model's parameter list), ``"const"`` (value stored
    here, e.g. the additive masks) or ``"op"``.
    """

    version: int
    key: tuple
    kinds: list[str]
    ops: list[str]
    ctxs: list[tuple | None]
    parents: list[tuple[int, ...]]
    shapes: list[tuple[int, ...]]
    dtypes: list[str]
    param_index: dict[int, int] = field(default_factory=dict)
    input_index: dict[int, int] = field(default_factory=dict)
    const_values: dict[int, np.ndarray] = field(default_factory=dict)
    output: int = -1
    param_count: int = 0


def build_inference_spec(key: tuple, output: Tensor, nodes: list[Tensor],
                         inputs: Sequence[Tensor],
                         params: Sequence[Tensor]) -> PlanSpec:
    """Describe a recorded forward graph as a :class:`PlanSpec`.

    Must run on the freshly recorded graph **before**
    :class:`~repro.nn.compile.InferencePlan` construction rebinds node
    buffers (shapes/dtypes are read from ``node.data``).
    """
    recorded = {id(n) for n in nodes}
    reachable: set[int] = set()
    stack = [output]
    while stack:
        t = stack.pop()
        if id(t) in reachable:
            continue
        reachable.add(id(t))
        if t._prev and id(t) not in recorded:
            raise RuntimeError(
                "output depends on graph nodes created outside the "
                "recorded forward pass")
        stack.extend(t._prev)
    order = [n for n in nodes if id(n) in reachable]

    param_pos = {id(p): i for i, p in enumerate(params)}
    index: dict[int, int] = {}
    spec = PlanSpec(version=SPEC_VERSION, key=key, kinds=[], ops=[],
                    ctxs=[], parents=[], shapes=[], dtypes=[],
                    param_count=len(params))

    def add(t: Tensor, kind: str, op: str = "", ctx=None,
            parent_ids: tuple[int, ...] = ()) -> int:
        idx = len(spec.kinds)
        index[id(t)] = idx
        spec.kinds.append(kind)
        spec.ops.append(op)
        spec.ctxs.append(ctx)
        spec.parents.append(parent_ids)
        spec.shapes.append(tuple(t.data.shape))
        spec.dtypes.append(str(t.data.dtype))
        return idx

    # Every declared input gets a slot — even one the graph never reads —
    # so run() keeps the caller's input arity.
    for j, t in enumerate(inputs):
        spec.input_index[add(t, "input")] = j
    for n in order:
        for p in n._prev:
            if id(p) in index:
                continue
            if p._prev:
                raise RuntimeError("recorded graph parents out of order")
            if id(p) in param_pos:
                spec.param_index[add(p, "param")] = param_pos[id(p)]
            else:
                spec.const_values[add(p, "const")] = np.array(p.data,
                                                              copy=True)
        ctx = n._ctx
        if n._op == "conv2d":
            ctx = tuple(ctx[:3])   # drop the im2col scratch; rebuilt on load
        add(n, "op", n._op, ctx, tuple(index[id(p)] for p in n._prev))
    spec.output = index[id(output)]
    return spec


def _stub(data: np.ndarray, prev: tuple = (), op: str = "",
          ctx=None) -> Tensor:
    """A bare graph node (no autograd bookkeeping, no tape interplay)."""
    t = Tensor.__new__(Tensor)
    t.data = data
    t.grad = None
    t.requires_grad = False
    t._backward = None
    t._prev = tuple(prev)
    t._op = op
    t._ctx = ctx
    t._grad_owned = False
    return t


def build_inference_plan(spec: PlanSpec, params: Sequence[Tensor],
                         lowering: str | None = None,
                         backend: str | None = None,
                         num_workers: int | None = None) -> InferencePlan:
    """Relower a :class:`PlanSpec` to a live plan — no eager pass, no
    record epoch.  ``params`` must be the model's parameter list in the
    same order the spec was built with (the config digest in the key
    pins the architecture; shape/dtype mismatches raise
    :class:`PlanCacheError`).

    ``lowering``/``backend``/``num_workers`` select the kernel lowering
    level and replay backend of the *built* plan (defaults: the
    ``REPRO_PLAN_LOWERING`` / ``REPRO_PLAN_BACKEND`` environment).  A
    spec is backend-neutral — the same on-disk spec relowers to a serial
    or a threaded plan with no record epoch either way."""
    if spec.version != SPEC_VERSION:
        raise PlanCacheError(f"spec version {spec.version} != {SPEC_VERSION}")
    params = list(params)
    if spec.param_count != len(params):
        raise PlanCacheError(f"spec binds {spec.param_count} parameters, "
                             f"model has {len(params)}")
    tensors: list[Tensor] = []
    inputs: list[Tensor | None] = [None] * len(spec.input_index)
    for i, kind in enumerate(spec.kinds):
        shape = tuple(spec.shapes[i])
        dtype = np.dtype(spec.dtypes[i])
        if kind == "param":
            t = params[spec.param_index[i]]
            if tuple(t.data.shape) != shape or t.data.dtype != dtype:
                raise PlanCacheError(
                    f"parameter {spec.param_index[i]} is {t.data.dtype}"
                    f"{tuple(t.data.shape)}, spec expects {dtype}{shape}")
        elif kind == "input":
            t = _stub(np.empty(shape, dtype=dtype))
            inputs[spec.input_index[i]] = t
        elif kind == "const":
            value = spec.const_values[i]
            if tuple(value.shape) != shape:
                raise PlanCacheError("constant shape drifted from spec")
            t = _stub(value)
        else:
            prev = tuple(tensors[j] for j in spec.parents[i])
            ctx = spec.ctxs[i]
            if spec.ops[i] == "conv2d":
                kernel, pad, batched = ctx
                # The plan builder allocates its own patch buffer (layout
                # depends on the lowering level), so no cols are shipped.
                ctx = (kernel, pad, batched, None)
            # Placeholder buffer: the plan's liveness pass replaces it
            # (np.empty reserves without touching pages).
            t = _stub(np.empty(shape, dtype=dtype), prev, spec.ops[i], ctx)
        tensors.append(t)
    order = [t for t, kind in zip(tensors, spec.kinds) if kind == "op"]
    if any(t is None for t in inputs):
        raise PlanCacheError("spec input slots are not contiguous")
    return InferencePlan(tensors[spec.output], order, inputs, params=params,
                         lowering=lowering, backend=backend,
                         num_workers=num_workers)


# ----------------------------------------------------------------------
# PlanCache: in-memory LRU + on-disk persistence
# ----------------------------------------------------------------------

class PlanCache:
    """LRU cache of inference-plan specs with optional disk persistence.

    ``get(key, params, record)`` implements the three reuse tiers
    described in the module docstring; ``record`` is only invoked on a
    full miss and must return ``(output, nodes, inputs)`` from a
    forward-only recording (see
    :func:`repro.nn.compile.record_forward`).
    """

    def __init__(self, capacity: int = 32,
                 directory: str | os.PathLike | None = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        # Size the capacity above the working set of distinct keys: a
        # ragged sequential_embed holds one key per distinct mask
        # pattern, and an LRU smaller than that cycle re-records every
        # plan on every pass (cache.stats()["misses"] growing linearly
        # is the tell).
        self.capacity = capacity
        self.directory = Path(directory) if directory is not None else None
        self._specs: OrderedDict[tuple, PlanSpec] = OrderedDict()
        # Live plans are keyed by (spec key, lowering, backend, workers):
        # specs are backend-neutral, but a lowered plan is bound to one
        # replay variant, so each variant gets its own resident plan.
        self._plans: dict[tuple, InferencePlan] = {}
        self.hits = 0          # live plan, matching bound parameters
        self.spec_hits = 0     # relowered from a cached spec (no record)
        self.disk_hits = 0     # spec loaded from disk
        self.misses = 0        # full record epochs performed
        self.invalidations = 0  # spec present but unusable (param swap ...)
        self.disk_errors = 0   # corrupt/stale on-disk entries discarded

    # ------------------------------------------------------------------
    def _path(self, key: tuple) -> Path:
        name = hashlib.sha256(repr(key).encode()).hexdigest()[:32]
        return self.directory / f"{name}.plan"

    def _load_disk(self, key: tuple) -> PlanSpec | None:
        path = self._path(key)
        try:
            with open(path, "rb") as f:
                spec = pickle.load(f)
            if (not isinstance(spec, PlanSpec)
                    or spec.version != SPEC_VERSION or spec.key != key):
                raise PlanCacheError("stale or mismatched plan spec")
        except FileNotFoundError:
            return None
        except Exception:
            # Corrupted / truncated / stale: discard and re-record.
            self.disk_errors += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.disk_hits += 1
        return spec

    def _store_disk(self, key: tuple, spec: PlanSpec) -> None:
        if self.directory is None:
            return
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self._path(key)
            tmp = path.with_suffix(f".tmp{os.getpid()}")
            with open(tmp, "wb") as f:
                pickle.dump(spec, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)   # atomic: readers never see a partial file
        except OSError:
            self.disk_errors += 1

    def _store_memory(self, key: tuple, spec: PlanSpec) -> None:
        self._specs[key] = spec
        self._specs.move_to_end(key)
        while len(self._specs) > self.capacity:
            evicted, _ = self._specs.popitem(last=False)
            self._drop_plans(evicted)

    def _drop_plans(self, key: tuple) -> None:
        """Evict every live backend/lowering variant of ``key``."""
        for live in [lk for lk in self._plans if lk[0] == key]:
            del self._plans[live]

    # ------------------------------------------------------------------
    def get(self, key: tuple, params: Sequence[Tensor],
            record: Callable[[], tuple[Tensor, list[Tensor], Sequence[Tensor]]],
            lowering: str | None = None, backend: str | None = None,
            num_workers: int | None = None) -> InferencePlan:
        """Fetch a plan by the three reuse tiers (module docstring).

        ``lowering``/``backend``/``num_workers`` pick the replay variant
        of the *live* plan; the spec tiers (memory LRU and disk) are
        shared across variants, so switching backend costs one relower —
        never a record epoch — for a shape whose spec is already cached.
        """
        params = list(params)
        resolved_backend = resolve_backend(backend)
        workers = (resolve_workers(num_workers)
                   if resolved_backend == "threaded" else 1)
        live_key = (key, resolve_lowering(lowering), resolved_backend,
                    workers)
        plan = self._plans.get(live_key)
        if plan is not None and plan.matches(params):
            self.hits += 1
            if key in self._specs:
                self._specs.move_to_end(key)
            return plan

        spec = self._specs.get(key)
        if spec is not None:
            self._specs.move_to_end(key)
        elif self.directory is not None:
            spec = self._load_disk(key)
            if spec is not None:
                self._store_memory(key, spec)
        if spec is not None:
            try:
                plan = build_inference_plan(spec, params, lowering=lowering,
                                            backend=backend,
                                            num_workers=num_workers)
            except PlanCacheError:
                self.invalidations += 1
                self._specs.pop(key, None)
                self._drop_plans(key)
            else:
                self.spec_hits += 1
                self._plans[live_key] = plan
                return plan

        self.misses += 1
        output, nodes, inputs = record()
        spec = build_inference_spec(key, output, nodes, inputs, params)
        plan = InferencePlan(output, nodes, inputs, params=params,
                             lowering=lowering, backend=backend,
                             num_workers=num_workers)
        self._store_memory(key, spec)
        self._store_disk(key, spec)
        self._plans[live_key] = plan
        return plan

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "spec_hits": self.spec_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "disk_errors": self.disk_errors,
            "cached_specs": len(self._specs),
        }

    def resident_report(self) -> list[dict]:
        """One row per *live* plan (lowered kernels bound to parameter
        arrays and held in memory) — the residency view a long-lived
        serving process watches.  ``replays`` counts requests served by
        the resident program without any record or relower work."""
        rows = []
        for (key, lowering, backend, workers), plan in self._plans.items():
            rows.append({
                "key": hashlib.sha256(repr(key).encode()).hexdigest()[:12],
                "shapes": [list(s) for s in key[3]] if len(key) > 3 else [],
                "lowering": lowering,
                "backend": backend,
                "workers": workers,
                "replays": plan.replays,
                "forward_ops": plan.num_forward_ops,
                "slot_bytes": plan.buffer_report()["slot_bytes"],
            })
        return sorted(rows, key=lambda r: -r["replays"])


# ----------------------------------------------------------------------
# Process-wide default cache
# ----------------------------------------------------------------------

_DEFAULT_CACHE: PlanCache | None = None


def default_plan_cache() -> PlanCache:
    """The process-wide cache the engine falls back to.  Set
    ``REPRO_PLAN_CACHE_DIR`` to persist specs across runs; unset, it is
    in-memory only."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        directory = os.environ.get("REPRO_PLAN_CACHE_DIR") or None
        _DEFAULT_CACHE = PlanCache(directory=directory)
    return _DEFAULT_CACHE


def reset_default_plan_cache() -> None:
    """Drop the process-wide cache (tests; env-var changes)."""
    global _DEFAULT_CACHE
    _DEFAULT_CACHE = None
