"""2-D convolution and average pooling as autograd primitives.

IntraAFL's lightweight correlation module (paper Eq. 13) applies
``AvgPool(Conv2D(A))`` to the n×n attention-coefficient matrix, treating it
as a one-channel image and producing ``c`` channels of higher-order
(multi-region) correlation maps. Both ops keep the spatial size (same
padding, stride 1) so the result stays aligned with the region indices.

Inputs are ``(C, H, W)`` single images or ``(B, C, H, W)`` batches (one
image per city/shard in the batched execution engine); the batched path
folds the batch into the same single im2col matmul, so a batch costs one
GEMM instead of B.

The implementation uses im2col so that the heavy lifting is a single
matmul; forward and backward are hand-written numpy (registered on the
autograd tape directly) because expressing convolution through the
elementwise primitives would be prohibitively slow.
"""

from __future__ import annotations

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["Conv2d", "AvgPool2d"]


def _zero_pad(x: np.ndarray, pad: int) -> np.ndarray:
    """Zero-pad the two trailing axes (faster than the general np.pad)."""
    *lead, height, width = x.shape
    padded = np.zeros((*lead, height + 2 * pad, width + 2 * pad), dtype=x.dtype)
    padded[..., pad:pad + height, pad:pad + width] = x
    return padded


def _im2col(x: np.ndarray, kernel: int, pad: int) -> np.ndarray:
    """(B, C, H, W) -> (B*H*W, C*kernel*kernel) patch matrix, stride 1."""
    batch, channels, height, width = x.shape
    padded = _zero_pad(x, pad)
    strides = padded.strides
    patches = np.lib.stride_tricks.as_strided(
        padded,
        shape=(batch, channels, height, width, kernel, kernel),
        strides=(strides[0], strides[1], strides[2], strides[3],
                 strides[2], strides[3]),
        writeable=False,
    )
    return patches.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch * height * width, channels * kernel * kernel)


def _col2im(cols: np.ndarray, shape: tuple[int, int, int, int], kernel: int,
            pad: int) -> np.ndarray:
    """Adjoint of :func:`_im2col` — scatter-add patches back to images."""
    batch, channels, height, width = shape
    padded = np.zeros((batch, channels, height + 2 * pad, width + 2 * pad),
                      dtype=cols.dtype)
    cols = cols.reshape(batch, height, width, channels, kernel, kernel)
    for ky in range(kernel):
        for kx in range(kernel):
            padded[:, :, ky:ky + height, kx:kx + width] += \
                cols[:, :, :, :, ky, kx].transpose(0, 3, 1, 2)
    if pad == 0:
        return padded
    return padded[:, :, pad:-pad, pad:-pad]


class Conv2d(Module):
    """Same-padding, stride-1 2-D convolution.

    Input shape ``(in_channels, H, W)`` or ``(B, in_channels, H, W)``;
    output keeps the leading layout with ``out_channels`` channels.
    The kernel size must be odd so the padding keeps spatial size.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int = 3,
                 bias: bool = True, rng: np.random.Generator | None = None):
        super().__init__()
        if kernel_size % 2 == 0:
            raise ValueError(f"kernel_size must be odd for same padding, got {kernel_size}")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.pad = kernel_size // 2
        self.weight = Parameter(init.xavier_uniform(
            (out_channels, in_channels, kernel_size, kernel_size), rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim not in (3, 4) or x.shape[-3] != self.in_channels:
            raise ValueError(
                f"expected input of shape ({self.in_channels}, H, W) or "
                f"(B, {self.in_channels}, H, W), got {x.shape}")
        batched = x.ndim == 4
        data = x.data if batched else x.data[None]
        batch, channels, height, width = data.shape
        kernel, pad = self.kernel_size, self.pad
        cols = _im2col(data, kernel, pad)                         # (B*H*W, C*k*k)
        flat_w = self.weight.data.reshape(self.out_channels, -1)  # (O, C*k*k)
        out_data = (cols @ flat_w.T)                              # (B*H*W, O)
        if self.bias is not None:
            out_data = out_data + self.bias.data
        out_data = out_data.reshape(batch, height, width,
                                    self.out_channels).transpose(0, 3, 1, 2)
        if not batched:
            out_data = out_data[0]

        parents = [x, self.weight] + ([self.bias] if self.bias is not None else [])
        out = Tensor._make(out_data, parents, "conv2d")
        if out._op:
            # ``cols`` rides along so a compiled plan can adopt the im2col
            # buffer instead of reading one it never filled.
            out._ctx = (kernel, pad, batched, cols)
        if out.requires_grad:
            weight, bias = self.weight, self.bias

            def backward():
                grad4 = out.grad if batched else out.grad[None]
                grad = grad4.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
                if weight.requires_grad:
                    grad_w = (grad.T @ cols).reshape(weight.shape)
                    weight._accumulate(grad_w)
                if bias is not None and bias.requires_grad:
                    bias._accumulate(grad.sum(axis=0))
                if x.requires_grad:
                    grad_cols = grad @ flat_w                      # (B*H*W, C*k*k)
                    grad_x = _col2im(grad_cols, (batch, channels, height, width),
                                     kernel, pad)
                    x._accumulate(grad_x if batched else grad_x[0])
            out._backward = backward
        return out


class AvgPool2d(Module):
    """Same-padding, stride-1 average pooling (a fixed uniform convolution).

    Channel-preserving: input/output shape ``(C, H, W)`` or
    ``(B, C, H, W)``. Implemented as a depthwise convolution with a
    constant ``1/k²`` kernel, so its backward pass is the same scatter-add
    used by :class:`Conv2d`.
    """

    def __init__(self, kernel_size: int = 3):
        super().__init__()
        if kernel_size % 2 == 0:
            raise ValueError(f"kernel_size must be odd for same padding, got {kernel_size}")
        self.kernel_size = kernel_size
        self.pad = kernel_size // 2

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim not in (3, 4):
            raise ValueError(f"expected input of shape (C, H, W) or (B, C, H, W), got {x.shape}")
        height, width = x.shape[-2:]
        kernel, pad = self.kernel_size, self.pad
        scale = 1.0 / (kernel * kernel)
        padded = _zero_pad(x.data, pad)
        out_data = np.zeros_like(x.data)
        for ky in range(kernel):
            for kx in range(kernel):
                out_data += padded[..., ky:ky + height, kx:kx + width]
        out_data *= scale

        out = Tensor._make(out_data, [x], "avgpool2d")
        if out._op:
            out._ctx = (kernel, pad)
        if out.requires_grad:
            def backward():
                grad_padded = np.zeros(x.shape[:-2] + (height + 2 * pad, width + 2 * pad),
                                       dtype=out.grad.dtype)
                for ky in range(kernel):
                    for kx in range(kernel):
                        grad_padded[..., ky:ky + height, kx:kx + width] += out.grad
                grad_padded *= scale
                if pad:
                    grad_padded = grad_padded[..., pad:-pad, pad:-pad]
                x._accumulate(grad_padded)
            out._backward = backward
        return out
