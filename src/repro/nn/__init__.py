"""``repro.nn`` — a from-scratch numpy deep-learning substrate.

This package replaces PyTorch for the HAFusion reproduction. It provides a
reverse-mode autograd tensor (:class:`Tensor`), module system, layers
(linear, layer-norm, dropout, MLP), attention mechanisms (multi-head self
attention, Transformer encoder blocks, external attention), stride-1 2-D
convolution/pooling, Xavier initialization, and Adam/SGD optimizers.

Every op and layer accepts an optional leading batch axis — ``(b, n, d)``
alongside ``(n, d)``, ``(B, C, H, W)`` alongside ``(C, H, W)`` — and the
attention modules take an optional keep ``mask`` that excludes padded
positions exactly; this is what lets :mod:`repro.core.engine` run a batch
of cities through the model as one fused tensor program.

Every differentiable component is validated against finite-difference
gradient checks in ``tests/nn`` at both unbatched and batched shapes
(``tests/nn/test_gradcheck_sweep.py``).
"""

from . import functional, init
from .attention import ExternalAttention, MultiHeadSelfAttention, TransformerEncoderBlock
from .compile import (
    RECORD_STATS,
    CompiledStep,
    InferencePlan,
    Plan,
    compile_step,
    record_forward,
)
from .conv import AvgPool2d, Conv2d
from .gradcheck import check_gradients, numeric_gradient
from .layers import MLP, Dropout, FeedForward, Identity, LayerNorm, Linear
from .module import Module, ModuleList, Parameter, Sequential
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .plancache import (
    PlanCache,
    PlanSpec,
    default_plan_cache,
    inference_plan_key,
    reset_default_plan_cache,
)
from .tensor import (
    Tensor,
    get_default_dtype,
    is_grad_enabled,
    no_grad,
    record_tape,
    set_default_dtype,
    use_dtype,
)

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "record_tape",
    "use_dtype",
    "set_default_dtype",
    "get_default_dtype",
    "Plan",
    "InferencePlan",
    "CompiledStep",
    "compile_step",
    "record_forward",
    "RECORD_STATS",
    "PlanCache",
    "PlanSpec",
    "default_plan_cache",
    "inference_plan_key",
    "reset_default_plan_cache",
    "Parameter",
    "Module",
    "Sequential",
    "ModuleList",
    "Linear",
    "MLP",
    "FeedForward",
    "LayerNorm",
    "Dropout",
    "Identity",
    "MultiHeadSelfAttention",
    "TransformerEncoderBlock",
    "ExternalAttention",
    "Conv2d",
    "AvgPool2d",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "check_gradients",
    "numeric_gradient",
    "functional",
    "init",
]
