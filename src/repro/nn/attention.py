"""Attention mechanisms used throughout HAFusion.

Three flavours appear in the paper:

- **Multi-head self-attention** (Vaswani et al., 2017) — the core of
  RegionFusion (paper Eq. 4–5) and of the vanilla-attention ablations.
- **Transformer encoder block** — self-attention + residual/LayerNorm +
  MLP + residual/LayerNorm (paper Eq. 6–7); the stacked unit of both
  RegionFusion and IntraAFL.
- **External attention** (Guo et al., 2022) — two linear maps through a
  small learnable "memory unit" of ``dm`` representative embeddings, used
  by InterAFL (paper Eq. 16–17) for O(n·d·dm) cross-view correlation
  learning.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .layers import Dropout, FeedForward, LayerNorm, Linear
from .module import Module, Parameter
from .tensor import Tensor

__all__ = [
    "MultiHeadSelfAttention",
    "TransformerEncoderBlock",
    "ExternalAttention",
]


class MultiHeadSelfAttention(Module):
    """Multi-head scaled dot-product self-attention.

    Input shape ``(n, d_model)`` (a set of region embeddings) or
    ``(b, n, d_model)`` (a batch of cities/shards); output has the same
    shape. The attention weights of the last forward pass are exposed as
    ``last_attention`` (shape ``(..., heads, n, n)``) because IntraAFL's
    RegionSA consumes the coefficient matrix itself; the stored copy is
    detached so it never retains the backward graph across steps.
    """

    def __init__(self, d_model: int, num_heads: int = 4,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} must be divisible by num_heads={num_heads}")
        rng = rng if rng is not None else np.random.default_rng()
        self.d_model = d_model
        self.num_heads = num_heads
        self.d_head = d_model // num_heads
        self.w_query = Linear(d_model, d_model, bias=False, rng=rng)
        self.w_key = Linear(d_model, d_model, bias=False, rng=rng)
        self.w_value = Linear(d_model, d_model, bias=False, rng=rng)
        self.w_out = Linear(d_model, d_model, bias=False, rng=rng)
        self.last_attention: Tensor | None = None

    def _split_heads(self, x: Tensor) -> Tensor:
        # (..., n, d) -> (..., heads, n, d_head)
        shape = x.shape[:-1] + (self.num_heads, self.d_head)
        return x.reshape(shape).swapaxes(-3, -2)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        query = self._split_heads(self.w_query(x))
        key = self._split_heads(self.w_key(x))
        value = self._split_heads(self.w_value(x))
        additive = None if mask is None else F.additive_key_mask(mask)
        context, weights = F.scaled_dot_product_attention(query, key, value,
                                                          mask=additive)
        self.last_attention = weights.detach()
        merged = context.swapaxes(-3, -2).reshape(x.shape[:-1] + (self.d_model,))
        return self.w_out(merged)


class TransformerEncoderBlock(Module):
    """Post-norm Transformer encoder block (paper Eq. 4–7).

    ``attention`` may be swapped out (e.g. for RegionSA in IntraAFL); it
    must map ``(..., n, d) -> (..., n, d)`` and, to participate in masked
    batched execution, accept an optional ``mask`` keyword.
    """

    def __init__(self, d_model: int, num_heads: int = 4, d_hidden: int | None = None,
                 dropout: float = 0.1, attention: Module | None = None,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        d_hidden = d_hidden if d_hidden is not None else 2 * d_model
        self.attention = attention if attention is not None else MultiHeadSelfAttention(
            d_model, num_heads, rng=rng)
        self.norm1 = LayerNorm(d_model)
        self.norm2 = LayerNorm(d_model)
        self.dropout1 = Dropout(dropout, rng=rng)
        self.dropout2 = Dropout(dropout, rng=rng)
        self.mlp = FeedForward(d_model, d_hidden, rng=rng)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        attended = self.attention(x) if mask is None else self.attention(x, mask=mask)
        x = self.norm1(x + self.dropout1(attended))
        x = self.norm2(x + self.dropout2(self.mlp(x)))
        return x


class ExternalAttention(Module):
    """External attention through a learnable memory unit (paper Eq. 16–17).

    The memory unit is realised as two feed-forward maps: ``M_k ∈ R^{d×dm}``
    producing correlation coefficients between every input row and the
    ``dm`` representative embeddings, and ``M_v ∈ R^{dm×d}`` projecting the
    doubly-normalised coefficients back to the embedding space.

    Input shape ``(n, v, d)`` — all regions across all views — or
    ``(b, n, v, d)`` for a batch of cities. Softmax runs over the view
    axis and L1 normalisation over the memory axis, exactly as Sec. V
    prescribes; both are addressed from the trailing end so a leading
    batch axis passes through untouched. Every region's row is processed
    independently, so padded regions never contaminate real ones.
    """

    def __init__(self, d_model: int, memory_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.memory_size = memory_size
        self.m_key = Parameter(init.xavier_uniform((memory_size, d_model), rng))
        self.m_value = Parameter(init.xavier_uniform((d_model, memory_size), rng))

    def forward(self, x: Tensor) -> Tensor:
        coefficients = x @ self.m_key.T             # (..., v, dm) — Eq. 16
        weights = F.softmax(coefficients, axis=-2)  # over views
        weights = F.l1_normalize(weights, axis=-1)  # over memory slots
        return weights @ self.m_value.T             # (..., v, d)  — Eq. 17
