"""Weight initialization schemes.

All initializers take an explicit :class:`numpy.random.Generator` so that
model construction is fully reproducible from a single seed — important
because every experiment in the paper is re-run with fixed seeds.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "xavier_uniform",
    "xavier_normal",
    "kaiming_uniform",
    "zeros",
    "ones",
    "normal",
]


def _fan_in_fan_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 2:
        raise ValueError(f"fan in/out requires at least 2 dimensions, got shape {shape}")
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot & Bengio (2010) uniform initialization."""
    fan_in, fan_out = _fan_in_fan_out(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot & Bengio (2010) normal initialization."""
    fan_in, fan_out = _fan_in_fan_out(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator, a: float = np.sqrt(5.0)) -> np.ndarray:
    """He et al. (2015) uniform initialization (PyTorch Linear default)."""
    fan_in, _ = _fan_in_fan_out(shape)
    gain = np.sqrt(2.0 / (1.0 + a * a))
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    return rng.normal(0.0, std, size=shape)
