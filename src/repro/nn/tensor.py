"""Reverse-mode automatic differentiation on top of numpy arrays.

This module is the foundation of :mod:`repro.nn`, the from-scratch
deep-learning substrate used by the HAFusion reproduction (the original
paper uses PyTorch, which is not available in this environment).

The design follows the classic tape-based approach: every operation on a
:class:`Tensor` records a backward closure and its parent tensors; calling
:meth:`Tensor.backward` runs the closures in reverse topological order.
All operations are numpy-vectorised and support numpy-style broadcasting,
including batched matrix multiplication, which the attention modules rely
on.

Example
-------
>>> from repro.nn import Tensor
>>> x = Tensor([[1.0, 2.0]], requires_grad=True)
>>> y = (x * x).sum()
>>> y.backward()
>>> x.grad.tolist()
[[2.0, 4.0]]
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence, Union

import numpy as np

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "set_default_dtype",
    "get_default_dtype",
    "use_dtype",
    "record_tape",
    "is_recording",
    "is_forward_recording",
]

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

_GRAD_ENABLED = True
_DEFAULT_DTYPE = np.float64
#: Active tape recorder (a list collecting nodes in creation order), or
#: None. Creation order is execution order, which is what lets
#: :mod:`repro.nn.compile` replay stateful ops (dropout) with the same
#: rng draw sequence the eager step used.
_TAPE_RECORDER: list | None = None
#: Whether the active recorder is a *forward* tape: every op is captured
#: (constants included, since inference inputs are rebound between
#: replays) even with gradients disabled — the capture mode of
#: :class:`repro.nn.compile.InferencePlan`.
_TAPE_FORWARD = False


@contextlib.contextmanager
def record_tape(forward: bool = False):
    """Collect every graph node created in this context, in creation
    order. Used by :mod:`repro.nn.compile` to capture one eager step as a
    replayable plan. Nested recording is not supported.

    Parameters
    ----------
    forward:
        Record a forward-only tape: every op is captured regardless of
        gradient mode (use under :func:`no_grad` to capture an inference
        pass without building backward closures). The default records
        only gradient-tracked nodes, as a training step needs.
    """
    global _TAPE_RECORDER, _TAPE_FORWARD
    if _TAPE_RECORDER is not None:
        raise RuntimeError("tape recording is already active")
    nodes: list[Tensor] = []
    _TAPE_RECORDER = nodes
    _TAPE_FORWARD = bool(forward)
    try:
        yield nodes
    finally:
        _TAPE_RECORDER = None
        _TAPE_FORWARD = False


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient recording.

    Used for evaluation passes and optimizer updates, mirroring
    ``torch.no_grad``.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""
    return _GRAD_ENABLED


def is_recording() -> bool:
    """Whether a :func:`record_tape` context is active."""
    return _TAPE_RECORDER is not None


def is_forward_recording() -> bool:
    """Whether a forward-only :func:`record_tape` context is active."""
    return _TAPE_FORWARD


def set_default_dtype(dtype) -> None:
    """Set the dtype new leaf tensors are created with.

    float64 (default) gives finite-difference-checkable gradients;
    float32 roughly halves training time and memory (PyTorch's default).
    Intermediate results inherit their inputs' dtype.
    """
    global _DEFAULT_DTYPE
    dtype = np.dtype(dtype)
    if dtype not in (np.float32, np.float64):
        raise ValueError(f"unsupported dtype {dtype}; use float32 or float64")
    _DEFAULT_DTYPE = dtype.type


def get_default_dtype():
    """Return the current default leaf dtype."""
    return _DEFAULT_DTYPE


@contextlib.contextmanager
def use_dtype(dtype):
    """Temporarily switch the default leaf dtype (training entry points
    wrap model construction + training in ``use_dtype(np.float32)``)."""
    previous = get_default_dtype()
    set_default_dtype(dtype)
    try:
        yield
    finally:
        set_default_dtype(previous)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting either prepends dimensions or stretches size-1 axes; the
    gradient of a broadcast is the sum over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Remove prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched size-1 axes.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


def _is_basic_index(index) -> bool:
    """Whether ``index`` is numpy *basic* indexing (ints/slices/None/...),
    which selects each element at most once — so a gradient scatter can be
    a plain slice assignment instead of ``np.add.at``."""
    items = index if isinstance(index, tuple) else (index,)
    return all(item is None or item is Ellipsis or isinstance(item, (int, np.integer, slice))
               for item in items)


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    # asarray is a no-op when the dtype already matches, so intermediates
    # created under a consistent default dtype are never copied.
    return np.asarray(value, dtype=_DEFAULT_DTYPE)


class Tensor:
    """A numpy array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything convertible to a numpy float array.
    requires_grad:
        If True, the tensor participates in the autograd graph and will
        accumulate a ``.grad`` array after ``backward()``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "_op",
                 "_ctx", "_grad_owned")

    __array_priority__ = 100  # ensure Tensor.__rmul__ wins over np.ndarray.__mul__

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward: Callable[[], None] | None = None
        self._prev: tuple[Tensor, ...] = ()
        self._op = ""
        # Structured op parameters (axis, index, exponent, …) that, with
        # ``_op`` and ``_prev``, make the node replayable by
        # :mod:`repro.nn.compile` without re-running its closure.
        self._ctx: tuple | None = None
        self._grad_owned = False

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        """Transpose of the last two dimensions (matrix transpose)."""
        return self.swapaxes(-1, -2) if self.ndim >= 2 else self

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=16)}{grad_note})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (a view, not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"], op: str) -> "Tensor":
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._prev = tuple(parents)
            out._op = op
            if _TAPE_RECORDER is not None:
                _TAPE_RECORDER.append(out)
        elif _TAPE_FORWARD:
            # Forward tape: capture every op, including ones on plain
            # constants — an inference plan rebinds its inputs between
            # replays, so nothing downstream of them may be folded away.
            out._prev = tuple(parents)
            out._op = op
            _TAPE_RECORDER.append(out)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            # Store the incoming array by reference when possible; it may
            # be shared with another node's gradient, so in-place updates
            # are only allowed once we own a private buffer.
            if grad.base is not None or grad is self.data:
                self.grad = grad.copy()
                self._grad_owned = True
            else:
                self.grad = grad
                self._grad_owned = False
        elif self._grad_owned:
            self.grad += grad
        else:
            self.grad = self.grad + grad
            self._grad_owned = True

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective w.r.t. this tensor. Defaults to
            ones (and must be omitted only for scalar tensors, mirroring
            PyTorch semantics).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("backward() without an explicit gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.shape:
                raise ValueError(f"gradient shape {grad.shape} does not match tensor shape {self.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()
            if node._prev:
                # Intermediate node: its gradient has been fully consumed
                # (children run before parents in reverse-topo order), so
                # free the buffer and the tape entry eagerly. This keeps
                # peak memory proportional to the live activations rather
                # than activations + all gradients, which matters for the
                # (c, n, n) convolution buffers. Leaf gradients persist.
                node.grad = None
                node._grad_owned = False
                node._backward = None
                node._prev = ()
                node._ctx = None

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = Tensor._make(self.data + other.data, (self, other), "add")
        if out.requires_grad:
            def backward():
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(out.grad, other.shape))
            out._backward = backward
        return out

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = Tensor._make(self.data * other.data, (self, other), "mul")
        if out.requires_grad:
            def backward():
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(out.grad * self.data, other.shape))
            out._backward = backward
        return out

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-(other if isinstance(other, Tensor) else Tensor(other)))

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self * other ** -1.0

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self + other

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self * other

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) + (-self)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) * self ** -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp(log(x) * y)")
        out = Tensor._make(self.data ** exponent, (self,), "pow")
        if out._op:
            out._ctx = (exponent,)
        if out.requires_grad:
            def backward():
                self._accumulate(_unbroadcast(out.grad * exponent * self.data ** (exponent - 1.0), self.shape))
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Matrix multiplication (supports numpy batched semantics)
    # ------------------------------------------------------------------
    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = Tensor._make(self.data @ other.data, (self, other), "matmul")
        if out.requires_grad:
            def backward():
                grad = out.grad
                if self.requires_grad:
                    if other.data.ndim == 1:
                        grad_self = np.expand_dims(grad, -1) * other.data
                    elif self.data.ndim == 1:
                        # y[..., j] = Σ_k self[k] · other[..., k, j]: reduce
                        # the product over every axis but k (a batched
                        # matmul would misread the 1-D gradient as a matrix).
                        grad_self = (np.expand_dims(grad, -2) * other.data).sum(
                            axis=tuple(range(other.data.ndim - 2)) + (-1,))
                    else:
                        grad_self = grad @ other.data.swapaxes(-1, -2)
                    self._accumulate(_unbroadcast(grad_self, self.shape))
                if other.requires_grad:
                    if self.data.ndim == 1:
                        grad_other = np.expand_dims(self.data, -1) * np.expand_dims(grad, -2)
                        if other.data.ndim == 1:
                            grad_other = grad_other.sum(axis=tuple(range(grad_other.ndim - 1)))
                    elif other.data.ndim == 1:
                        # y[..., i] = Σ_k self[..., i, k] · other[k]
                        grad_other = (np.expand_dims(grad, -1) * self.data).sum(
                            axis=tuple(range(self.data.ndim - 1)))
                    else:
                        grad_other = self.data.swapaxes(-1, -2) @ grad
                    other._accumulate(_unbroadcast(grad_other, other.shape))
            out._backward = backward
        return out

    def __rmatmul__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) @ self

    # ------------------------------------------------------------------
    # Unary math
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out = Tensor._make(np.exp(self.data), (self,), "exp")
        if out.requires_grad:
            def backward():
                self._accumulate(out.grad * out.data)
            out._backward = backward
        return out

    def log(self) -> "Tensor":
        out = Tensor._make(np.log(self.data), (self,), "log")
        if out.requires_grad:
            def backward():
                self._accumulate(out.grad / self.data)
            out._backward = backward
        return out

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        out = Tensor._make(np.tanh(self.data), (self,), "tanh")
        if out.requires_grad:
            def backward():
                self._accumulate(out.grad * (1.0 - out.data ** 2))
            out._backward = backward
        return out

    def sigmoid(self) -> "Tensor":
        out = Tensor._make(1.0 / (1.0 + np.exp(-self.data)), (self,), "sigmoid")
        if out.requires_grad:
            def backward():
                self._accumulate(out.grad * out.data * (1.0 - out.data))
            out._backward = backward
        return out

    def relu(self) -> "Tensor":
        out = Tensor._make(np.maximum(self.data, 0.0), (self,), "relu")
        if out.requires_grad:
            def backward():
                self._accumulate(out.grad * (self.data > 0.0))
            out._backward = backward
        return out

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        # astype keeps the scale in this tensor's dtype: np.where with
        # python-float branches yields float64, which would otherwise
        # upcast the float32 backward product (copy=False makes this a
        # no-op in the float64 default).
        scale = np.where(self.data > 0.0, 1.0, negative_slope).astype(
            self.data.dtype, copy=False)
        out = Tensor._make(self.data * scale, (self,), "leaky_relu")
        if out._op:
            out._ctx = (negative_slope,)
        if out.requires_grad:
            def backward():
                self._accumulate(out.grad * scale)
            out._backward = backward
        return out

    def abs(self) -> "Tensor":
        out = Tensor._make(np.abs(self.data), (self,), "abs")
        if out.requires_grad:
            def backward():
                self._accumulate(out.grad * np.sign(self.data))
            out._backward = backward
        return out

    def softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable softmax as a fused primitive.

        Registered as a single tape node (dx = y ⊙ (g − Σ g⊙y)) instead of
        a chain of exp/sum/div ops — the attention modules call this on
        large (c, n, n) arrays, where the fused backward matters.
        """
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        np.exp(shifted, out=shifted)
        shifted /= shifted.sum(axis=axis, keepdims=True)
        out = Tensor._make(shifted, (self,), "softmax")
        if out._op:
            out._ctx = (axis,)
        if out.requires_grad:
            def backward():
                g = out.grad
                dot = (g * out.data).sum(axis=axis, keepdims=True)
                self._accumulate(out.data * (g - dot))
            out._backward = backward
        return out

    def log_softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable log-softmax as a fused primitive.

        Backward: dx = g − softmax(x) ⊙ Σ g.
        """
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out = Tensor._make(shifted - log_norm, (self,), "log_softmax")
        if out._op:
            out._ctx = (axis,)
        if out.requires_grad:
            def backward():
                g = out.grad
                total = g.sum(axis=axis, keepdims=True)
                self._accumulate(g - np.exp(out.data) * total)
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out = Tensor._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), "sum")
        if out._op:
            out._ctx = (axis, keepdims)
        if out.requires_grad:
            def backward():
                grad = out.grad
                if axis is not None and not keepdims:
                    axes = (axis,) if isinstance(axis, int) else axis
                    grad = np.expand_dims(grad, tuple(a % self.ndim for a in axes))
                # A read-only broadcast view suffices: _accumulate either
                # copies it (first, unowned contribution) or adds it into
                # a buffer it already owns — never stores it raw.
                self._accumulate(np.broadcast_to(grad, self.shape))
            out._backward = backward
        return out

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Population variance (ddof=0), as used by layer normalization."""
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = Tensor._make(out_data, (self,), "max")
        if out._op:
            out._ctx = (axis, keepdims)
        if out.requires_grad:
            def backward():
                # The argmax mask is built lazily, here rather than at
                # forward time, so ``no_grad`` inference and forward-only
                # passes never pay for it.
                expanded = self.data.max(axis=axis, keepdims=True)
                mask = (self.data == expanded).astype(self.data.dtype)
                mask /= mask.sum(axis=axis, keepdims=True)
                grad = out.grad
                if axis is not None and not keepdims:
                    grad = np.expand_dims(grad, axis)
                self._accumulate(mask * grad)
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = Tensor._make(self.data.reshape(shape), (self,), "reshape")
        if out.requires_grad:
            def backward():
                self._accumulate(out.grad.reshape(self.shape))
            out._backward = backward
        return out

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        out = Tensor._make(self.data.swapaxes(axis1, axis2), (self,), "swapaxes")
        if out._op:
            out._ctx = (axis1, axis2)
        if out.requires_grad:
            def backward():
                self._accumulate(out.grad.swapaxes(axis1, axis2))
            out._backward = backward
        return out

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out = Tensor._make(self.data.transpose(axes), (self,), "transpose")
        if out._op:
            out._ctx = (axes,)
        if out.requires_grad:
            inverse = np.argsort(axes)

            def backward():
                self._accumulate(out.grad.transpose(inverse))
            out._backward = backward
        return out

    def __getitem__(self, index) -> "Tensor":
        out = Tensor._make(self.data[index], (self,), "getitem")
        if out._op:
            out._ctx = (index,)
        if out.requires_grad:
            def backward():
                grad = np.zeros_like(self.data)
                if _is_basic_index(index):
                    # Basic indices select each element at most once, so
                    # plain (fast) slice assignment replaces the slow
                    # general scatter-add.
                    grad[index] = out.grad
                else:
                    np.add.at(grad, index, out.grad)
                self._accumulate(grad)
            out._backward = backward
        return out

    def expand_dims(self, axis: int) -> "Tensor":
        out = Tensor._make(np.expand_dims(self.data, axis), (self,), "expand_dims")
        if out._op:
            out._ctx = (axis,)
        if out.requires_grad:
            def backward():
                self._accumulate(out.grad.squeeze(axis))
            out._backward = backward
        return out

    def squeeze(self, axis: int) -> "Tensor":
        out = Tensor._make(np.squeeze(self.data, axis), (self,), "squeeze")
        if out._op:
            out._ctx = (axis,)
        if out.requires_grad:
            def backward():
                self._accumulate(np.expand_dims(out.grad, axis))
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Joining
    # ------------------------------------------------------------------
    @staticmethod
    def concat(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        out = Tensor._make(np.concatenate([t.data for t in tensors], axis=axis), tensors, "concat")
        if out._op:
            out._ctx = (axis,)
        if out.requires_grad:
            sizes = [t.shape[axis] for t in tensors]
            offsets = np.cumsum([0] + sizes)

            def backward():
                for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                    if tensor.requires_grad:
                        index = [slice(None)] * out.ndim
                        index[axis] = slice(start, stop)
                        tensor._accumulate(out.grad[tuple(index)])
            out._backward = backward
        return out

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        out = Tensor._make(np.stack([t.data for t in tensors], axis=axis), tensors, "stack")
        if out._op:
            out._ctx = (axis,)
        if out.requires_grad:
            def backward():
                grads = np.split(out.grad, len(tensors), axis=axis)
                for tensor, grad in zip(tensors, grads):
                    if tensor.requires_grad:
                        tensor._accumulate(np.squeeze(grad, axis=axis))
            out._backward = backward
        return out
