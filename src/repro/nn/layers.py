"""Basic neural network layers: Linear, MLP, LayerNorm, Dropout.

These are the building blocks the paper's equations compose: linear
transformations (Eq. 1, 4), MLPs with residual connections (Eq. 7),
layer normalization with dropout (Eq. 6–7).
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["Linear", "MLP", "FeedForward", "LayerNorm", "Dropout", "Identity"]


class Identity(Module):
    """Pass-through layer; handy for ablations that remove a component."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Linear(Module):
    """Affine map ``y = x Wᵀ + b`` over the last dimension.

    Parameters
    ----------
    in_features, out_features:
        Input/output widths.
    bias:
        Whether to add a learnable bias.
    rng:
        Generator used for Xavier-uniform weight init.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"


class MLP(Module):
    """Multi-layer perceptron with a configurable hidden activation.

    ``hidden_features=None`` gives a single linear layer followed by the
    activation — the exact "MLP (a linear layer and a ReLU)" the paper uses
    to map embeddings to feature-oriented spaces (Sec. IV-C).
    """

    _ACTIVATIONS = {
        "relu": F.relu,
        "leaky_relu": F.leaky_relu,
        "tanh": F.tanh,
        "gelu": F.gelu,
        "sigmoid": F.sigmoid,
        "none": lambda x: x,
    }

    def __init__(self, in_features: int, out_features: int,
                 hidden_features: int | None = None, activation: str = "relu",
                 rng: np.random.Generator | None = None):
        super().__init__()
        if activation not in self._ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}; choose from {sorted(self._ACTIVATIONS)}")
        rng = rng if rng is not None else np.random.default_rng()
        self.activation = activation
        self._act = self._ACTIVATIONS[activation]
        if hidden_features is None:
            self.fc1 = Linear(in_features, out_features, rng=rng)
            self.fc2 = None
        else:
            self.fc1 = Linear(in_features, hidden_features, rng=rng)
            self.fc2 = Linear(hidden_features, out_features, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self._act(self.fc1(x))
        if self.fc2 is not None:
            out = self.fc2(out)
        return out


class FeedForward(Module):
    """Transformer position-wise feed-forward block: Linear→act→Linear."""

    def __init__(self, d_model: int, d_hidden: int, activation: str = "relu",
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.inner = MLP(d_model, d_model, hidden_features=d_hidden,
                         activation=activation, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.inner(x)


class LayerNorm(Module):
    """Layer normalization over the last dimension with learnable affine."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(init.ones((normalized_shape,)))
        self.beta = Parameter(init.zeros((normalized_shape,)))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normalized = (x - mean) * ((var + self.eps) ** -0.5)
        return normalized * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self.rng)
