"""Compiled training-step executor: record the autograd tape once, replay
it with preallocated buffers.

HAFusion trains full-batch for thousands of epochs, so every step has
identical shapes: the same ops, on the same buffers, with only the
parameter values changing between steps.  The eager engine nevertheless
rebuilds the whole Python tape each step — thousands of
:class:`~repro.nn.Tensor` objects, backward closures, and fresh numpy
allocations per epoch.  This module removes that cost:

- :func:`repro.nn.tensor.record_tape` captures one eager step's graph in
  creation order (creation order *is* execution order, which is what
  keeps stateful ops like dropout replayable);
- :class:`Plan` lowers the captured graph to a flat list of forward and
  backward kernels over preallocated slot buffers — no ``Tensor``
  construction, no closure allocation, in-place numpy kernels
  (``np.matmul(..., out=)``, ``np.exp(x, out=buf)``, fused
  softmax/log-softmax backward), and gradient buffers reused across
  epochs.  Pure view ops (reshape/swapaxes/slice of a fixed buffer)
  replay as no-ops;
- :class:`CompiledStep` wraps record + replay with an automatic eager
  fallback: when the step signature (e.g. input shapes) changes or a
  parameter array is replaced (``load_state_dict``), the step re-records
  by running eagerly once and continues compiled.

Replay arithmetic is operation-for-operation equivalent to the eager
tape's (locked down by ``tests/core/test_compiled_parity.py`` and the
compiled golden-trajectory test); the admissible differences are the
*order* in which fan-out gradients are accumulated and the separable
re-association inside the fused RegionSA gate kernels — pure
float-rounding effects, which is why parity is ≤1e-8 in float64 rather
than bit-exact.

Contract: a compiled step assumes a *static* step — constant inputs and
loss targets, with parameters the only state changing between replays
(exactly full-batch training).  Dropout stays exact: each ``dropout``
node redraws its mask from the same ``Generator`` in recorded order, so
the stream of draws matches what the eager step would have consumed
(dropout on a constant input is off-tape and therefore rejected at
record time rather than silently frozen).

Memory: a buffer-liveness pass pools gradient buffers by last-consumer
position — an interior slot's gradient buffer is recycled as soon as the
slot's own backward kernel has consumed it, so the resident set is the
live gradient window plus the leaf gradients rather than one buffer per
slot (the PR 2 layout, still available via ``pool_gradients=False`` and
reported by :meth:`Plan.buffer_report`).  The forward-only
:class:`InferencePlan` applies the same pass to activation slots, with
rebindable input buffers so one plan serves every same-shaped request;
:mod:`repro.nn.plancache` serializes those plans so repeated runs skip
the record epoch entirely.
"""

from __future__ import annotations

import os
import threading
import time
from queue import SimpleQueue
from typing import Callable, Hashable, NamedTuple, Sequence

import numpy as np

from .module import Parameter
from .tensor import Tensor, _is_basic_index, _unbroadcast, record_tape

__all__ = ["Plan", "InferencePlan", "CompiledStep", "compile_step",
           "record_forward", "RECORD_STATS", "RecordStats",
           "DEFAULT_LOWERING", "DEFAULT_BACKEND",
           "resolve_lowering", "resolve_backend", "resolve_workers"]


class RecordStats:
    """Global counter of tape-record events (the expensive eager epochs).

    Every plan (re-)recording — a training step captured by
    :class:`CompiledStep` or an inference pass captured by
    :func:`record_forward` — bumps a counter here, so tests and benchmark
    harnesses can assert that a warm plan cache performs **zero** record
    epochs (`RECORD_STATS.reset(); ...; assert RECORD_STATS.total == 0`).
    """

    def __init__(self):
        self.training_records = 0
        self.inference_records = 0

    @property
    def total(self) -> int:
        return self.training_records + self.inference_records

    def reset(self) -> None:
        self.training_records = 0
        self.inference_records = 0


RECORD_STATS = RecordStats()


# ----------------------------------------------------------------------
# Lowering levels and replay backends
# ----------------------------------------------------------------------
#
# ``lowering`` selects how aggressively the kernel builders rewrite the
# recorded graph:
#
# - ``"v1"`` — the PR 2/4 kernels, preserved verbatim.  This is the
#   honest baseline the lowering benchmark compares against.
# - ``"v2"`` (default) — the fused/flattened kernels: batched GEMMs
#   flattened to single BLAS calls, transposed im2col layout with
#   vectorized tap copies, two-pass separable pooling, the fused
#   LayerNorm chain, preallocated sink temporaries, and kernel scratch
#   leased from a per-plan pool instead of private per-kernel arrays.
#
# ``backend`` selects how the flat kernel list is replayed:
#
# - ``"serial"`` (default) — one kernel after another on the caller's
#   thread.
# - ``"threaded"`` — batch-parallel-safe kernels are partitioned into
#   contiguous slices of their leading axis and executed on a persistent
#   worker pool; kernels with cross-slice dependencies (rng draws,
#   cross-batch reductions, scatter-accumulates) stay serial.  Slices
#   compute the *same* elements with the same reduction orders, so the
#   result is bit-identical to the serial backend.
#
# Both knobs resolve from the environment when not passed explicitly:
# ``REPRO_PLAN_LOWERING``, ``REPRO_PLAN_BACKEND``, ``REPRO_PLAN_WORKERS``.

DEFAULT_LOWERING = "v2"
LOWERINGS = ("v1", "v2")
DEFAULT_BACKEND = "serial"
BACKENDS = ("serial", "threaded")


def resolve_lowering(lowering: str | None = None) -> str:
    value = lowering or os.environ.get("REPRO_PLAN_LOWERING") or DEFAULT_LOWERING
    if value not in LOWERINGS:
        raise ValueError(f"unknown plan lowering {value!r}; "
                         f"expected one of {LOWERINGS}")
    return value


def resolve_backend(backend: str | None = None) -> str:
    value = backend or os.environ.get("REPRO_PLAN_BACKEND") or DEFAULT_BACKEND
    if value not in BACKENDS:
        raise ValueError(f"unknown plan backend {value!r}; "
                         f"expected one of {BACKENDS}")
    return value


def resolve_workers(num_workers: int | None = None) -> int:
    if num_workers is None:
        env = os.environ.get("REPRO_PLAN_WORKERS")
        num_workers = int(env) if env else min(4, os.cpu_count() or 1)
    return max(1, int(num_workers))


class _WorkerPool:
    """Persistent daemon-thread pool for the threaded replay backend.

    ``run(thunks)`` executes the thunks concurrently and returns when all
    have finished: the caller's thread runs the first thunk while the
    helper threads drain the rest, so a pool sized for ``n`` slices keeps
    ``n - 1`` helper threads.  Pools are shared module-wide by size —
    every threaded plan with the same worker count replays on the same
    threads (plans replay one kernel at a time, and ``run`` itself is
    serialized, so partitions from different plans never interleave).
    """

    _shared: dict[int, "_WorkerPool"] = {}
    _shared_lock = threading.Lock()

    def __init__(self, helpers: int):
        self._queue: SimpleQueue = SimpleQueue()
        self._done = threading.Condition()
        self._pending = 0
        self._errors: list[BaseException] = []
        self._run_lock = threading.Lock()
        for i in range(helpers):
            threading.Thread(target=self._loop, daemon=True,
                             name=f"repro-plan-worker-{i}").start()

    @classmethod
    def shared(cls, workers: int) -> "_WorkerPool":
        helpers = max(0, workers - 1)
        with cls._shared_lock:
            pool = cls._shared.get(helpers)
            if pool is None:
                pool = cls._shared[helpers] = cls(helpers)
            return pool

    def _loop(self) -> None:
        while True:
            fn = self._queue.get()
            try:
                fn()
            except BaseException as exc:   # surfaced by run()
                with self._done:
                    self._errors.append(exc)
            finally:
                with self._done:
                    self._pending -= 1
                    if self._pending == 0:
                        self._done.notify_all()

    def run(self, thunks: Sequence[Callable[[], None]]) -> None:
        with self._run_lock:
            rest = thunks[1:]
            if rest:
                with self._done:
                    self._pending += len(rest)
                for fn in rest:
                    self._queue.put(fn)
            thunks[0]()
            if rest:
                with self._done:
                    while self._pending:
                        self._done.wait()
                    if self._errors:
                        errors, self._errors = list(self._errors), []
                        raise errors[0]


def _slice_bounds(n: int, parts: int) -> list[tuple[int, int]]:
    """Contiguous, balanced partition of ``range(n)`` into ≤ ``parts``."""
    parts = max(1, min(parts, n))
    step, extra = divmod(n, parts)
    bounds, lo = [], 0
    for i in range(parts):
        hi = lo + step + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


class _BuildContext:
    """Per-plan build state the kernel builders read from ``scratch``.

    Carries the resolved lowering level and worker count, and owns the
    *kernel scratch lease pool*: v2 kernels that need private temporaries
    (conv backward's ``gcols``/``gpadded``, the fused chains' column
    buffers, accumulate-path products) lease them by (shape, dtype, tag)
    instead of allocating per kernel.  Kernel scratch is dead outside its
    own kernel and kernels replay one at a time, so every same-shaped
    lease shares one buffer; threaded slices that need disjoint scratch
    distinguish themselves with ``tag``.
    """

    KEY = "__build__"   # scratch-dict key (node keys are ints, no clash)

    def __init__(self, lowering: str, workers: int):
        self.lowering = lowering
        self.workers = workers
        self._leases: dict[tuple, np.ndarray] = {}

    @property
    def v2(self) -> bool:
        return self.lowering != "v1"

    def lease(self, shape, dtype, tag: Hashable = 0) -> np.ndarray:
        key = (tuple(shape), np.dtype(dtype).str, tag)
        buf = self._leases.get(key)
        if buf is None:
            buf = self._leases[key] = np.empty(key[0], dtype=dtype)
        return buf

    @property
    def scratch_bytes(self) -> int:
        return sum(buf.nbytes for buf in self._leases.values())


def _build_ctx(scratch: dict) -> _BuildContext | None:
    return scratch.get(_BuildContext.KEY)


def _lease(scratch: dict, shape, dtype, tag: Hashable = 0) -> np.ndarray:
    """Kernel scratch from the plan's lease pool (private when there is
    no build context, e.g. a builder exercised standalone in tests)."""
    ctx = _build_ctx(scratch)
    if ctx is None:
        return np.empty(shape, dtype)
    return ctx.lease(shape, dtype, tag)


def _is_v2(scratch: dict) -> bool:
    ctx = _build_ctx(scratch)
    return ctx is not None and ctx.v2


def record_forward(fn: Callable[[], Tensor]) -> tuple[Tensor, list[Tensor]]:
    """Run ``fn`` under a forward-only tape; returns (output, nodes).

    The standard capture step for :class:`InferencePlan`: call under
    ``no_grad`` with the model in ``eval()`` mode so no backward closures
    are built and dropout is elided.
    """
    with record_tape(forward=True) as nodes:
        output = fn()
    RECORD_STATS.inference_records += 1
    return output, nodes


def _mark(written: set[int], key: int) -> bool:
    """First write to a gradient buffer stores; later writes accumulate.

    Called at *build* time in exact edge-execution order, so the flag is
    static and replay never needs to zero gradient buffers.
    """
    if key in written:
        return False
    written.add(key)
    return True


def _contrib_sink(pg: np.ndarray, contrib_shape, store: bool) -> Callable:
    """Return ``fn(contribution)`` storing/accumulating into ``pg``,
    reducing broadcast axes first when the shapes differ."""
    if tuple(contrib_shape) == pg.shape:
        if store:
            return lambda c: np.copyto(pg, c)
        return lambda c: np.add(pg, c, out=pg)
    if store:
        return lambda c: np.copyto(pg, _unbroadcast(np.asarray(c), pg.shape))
    return lambda c: np.add(pg, _unbroadcast(np.asarray(c), pg.shape), out=pg)


# ----------------------------------------------------------------------
# Forward kernel builders: op tag -> fn(node, scratch) -> callable | None
# (None = no work at replay time, e.g. a pure view).  Every kernel is
# arithmetically identical to the eager op it replays.
# ----------------------------------------------------------------------

def _is_view(node: Tensor) -> bool:
    return (node.data.base is not None
            and np.may_share_memory(node.data, node._prev[0].data))


def _zeros_with_layout(shape, like: np.ndarray) -> np.ndarray:
    """Zeros of ``shape`` laid out in memory like ``like`` (same axis
    order by descending stride), so bulk copies between the two iterate
    both arrays contiguously.  Shapes may differ per axis."""
    order = sorted(range(len(shape)), key=lambda i: -like.strides[i])
    buf = np.zeros(tuple(shape[i] for i in order), dtype=like.dtype)
    return buf.transpose(np.argsort(order))


def _fwd_add(node, scratch):
    a, b = node._prev[0].data, node._prev[1].data
    out = node.data
    return lambda: np.add(a, b, out=out)


def _fwd_mul(node, scratch):
    a, b = node._prev[0].data, node._prev[1].data
    out = node.data
    return lambda: np.multiply(a, b, out=out)


def _fwd_pow(node, scratch):
    (exponent,) = node._ctx
    a, out = node._prev[0].data, node.data
    # ``a ** e`` (not np.power) so numpy's special-cased exponents
    # (2, 0.5, -1, -0.5) match the eager computation bit-for-bit.
    return lambda: np.copyto(out, a ** exponent)


def _fwd_matmul(node, scratch):
    a, b = node._prev[0].data, node._prev[1].data
    out = node.data
    if (_is_v2(scratch) and a.ndim >= 3 and b.ndim == 2
            and a.flags.c_contiguous and out.flags.c_contiguous):
        # A batch of row blocks times one shared right matrix is a single
        # GEMM on the flattened rows: every output element is the same
        # dot product over the same k-panel, so the result is bitwise
        # identical to the batched call — minus the per-block dispatch
        # of a loop of tiny GEMMs.
        a2 = a.reshape(-1, a.shape[-1])
        o2 = out.reshape(-1, out.shape[-1])
        return lambda: np.matmul(a2, b, out=o2)
    if a.ndim >= 2 and b.ndim >= 2:
        return lambda: np.matmul(a, b, out=out)
    return lambda: np.copyto(out, a @ b)


def _fwd_exp(node, scratch):
    a, out = node._prev[0].data, node.data
    return lambda: np.exp(a, out=out)


def _fwd_log(node, scratch):
    a, out = node._prev[0].data, node.data
    return lambda: np.log(a, out=out)


def _fwd_tanh(node, scratch):
    a, out = node._prev[0].data, node.data
    return lambda: np.tanh(a, out=out)


def _fwd_sigmoid(node, scratch):
    a, out = node._prev[0].data, node.data

    def run():
        np.negative(a, out=out)
        np.exp(out, out=out)
        np.add(out, 1.0, out=out)
        np.divide(1.0, out, out=out)
    return run


def _fwd_relu(node, scratch):
    a, out = node._prev[0].data, node.data
    return lambda: np.maximum(a, 0.0, out=out)


def _fwd_leaky_relu(node, scratch):
    (slope,) = node._ctx
    a, out = node._prev[0].data, node.data

    def run():
        # out = a * where(a > 0, 1, slope): a*1.0 is bitwise a, so the
        # positive branch is a plain masked copy.
        np.multiply(a, slope, out=out)
        np.copyto(out, a, where=a > 0.0)
    return run


def _fwd_abs(node, scratch):
    a, out = node._prev[0].data, node.data
    return lambda: np.abs(a, out=out)


def _fwd_softmax(node, scratch):
    (axis,) = node._ctx
    a, out = node._prev[0].data, node.data

    def run():
        np.subtract(a, a.max(axis=axis, keepdims=True), out=out)
        np.exp(out, out=out)
        np.divide(out, out.sum(axis=axis, keepdims=True), out=out)
    return run


def _fwd_log_softmax(node, scratch):
    (axis,) = node._ctx
    a, out = node._prev[0].data, node.data

    def run():
        np.subtract(a, a.max(axis=axis, keepdims=True), out=out)
        np.subtract(out, np.log(np.exp(out).sum(axis=axis, keepdims=True)),
                    out=out)
    return run


def _fwd_sum(node, scratch):
    axis, keepdims = node._ctx
    a, out = node._prev[0].data, node.data
    return lambda: np.sum(a, axis=axis, keepdims=keepdims, out=out)


def _fwd_max(node, scratch):
    axis, keepdims = node._ctx
    a, out = node._prev[0].data, node.data
    return lambda: np.amax(a, axis=axis, keepdims=keepdims, out=out)


def _fwd_reshape(node, scratch):
    if _is_view(node):
        return None
    a, out = node._prev[0].data, node.data
    return lambda: np.copyto(out, a.reshape(out.shape))


def _fwd_swapaxes(node, scratch):
    if _is_view(node):
        return None
    ax1, ax2 = node._ctx
    a, out = node._prev[0].data, node.data
    return lambda: np.copyto(out, a.swapaxes(ax1, ax2))


def _fwd_transpose(node, scratch):
    if _is_view(node):
        return None
    (axes,) = node._ctx
    a, out = node._prev[0].data, node.data
    return lambda: np.copyto(out, a.transpose(axes))


def _fwd_expand_dims(node, scratch):
    return None if _is_view(node) else _fwd_reshape(node, scratch)


def _fwd_squeeze(node, scratch):
    return None if _is_view(node) else _fwd_reshape(node, scratch)


def _fwd_getitem(node, scratch):
    if _is_view(node):
        return None
    (index,) = node._ctx
    a, out = node._prev[0].data, node.data
    return lambda: np.copyto(out, a[index])


def _fwd_concat(node, scratch):
    (axis,) = node._ctx
    arrays = [p.data for p in node._prev]
    out = node.data
    return lambda: np.concatenate(arrays, axis=axis, out=out)


def _fwd_stack(node, scratch):
    (axis,) = node._ctx
    out = node.data
    ax = axis % out.ndim
    pairs = [(out[(slice(None),) * ax + (i,)], p.data)
             for i, p in enumerate(node._prev)]

    def run():
        for view, src in pairs:
            np.copyto(view, src)
    return run


def _fwd_dropout(node, scratch):
    p, rng, mask = node._ctx
    a, out = node._prev[0].data, node.data
    rand = np.empty(a.shape, dtype=np.float64)
    kept = np.empty(a.shape, dtype=bool)
    # Adopt the eagerly drawn mask as the plan buffer: the recording
    # step's backward then reads the exact mask its forward used.
    scratch[id(node)] = mask

    def run():
        # Same draw, same comparison, same division as the eager op, so
        # the rng stream and the mask values match an eager step exactly.
        rng.random(out=rand)
        np.greater_equal(rand, p, out=kept)
        np.copyto(mask, kept)
        np.divide(mask, 1.0 - p, out=mask)
        np.multiply(a, mask, out=out)
    return run


def _fwd_conv2d_v2(node, scratch):
    # Lowered layout: the patch matrix is kept transposed and contiguous
    # as colsT (C·k·k, H·W), filled by k·k contiguous tap copies instead
    # of one big strided gather.  The forward GEMM flat_w @ colsT computes
    # the same dot products as the v1 transposed path bit-for-bit.
    kernel, pad, batched, eager_cols = node._ctx
    x = node._prev[0].data
    weight = node._prev[1].data
    bias = node._prev[2].data if len(node._prev) > 2 else None
    out = node.data
    data4 = x if batched else x[None]
    batch, channels, height, width = data4.shape
    out_channels = weight.shape[0]
    ckk = channels * kernel * kernel
    hw = height * width
    padded = np.zeros((batch, channels, height + 2 * pad, width + 2 * pad),
                      dtype=x.dtype)
    inner = padded[:, :, pad:pad + height, pad:pad + width]
    colsT = np.empty((ckk, hw), dtype=x.dtype)
    colsT5 = colsT.reshape(channels, kernel, kernel, height, width)
    if eager_cols is not None:
        # Seed from the eager im2col buffer so the recording step's
        # backward (which runs before any lowered forward) reads the
        # exact patch matrix the eager forward produced.
        colsT5[:] = eager_cols.reshape(
            height, width, channels, kernel, kernel).transpose(2, 3, 4, 0, 1)
    scratch[id(node)] = ("colsT", colsT)
    flat_w = weight.reshape(out_channels, -1)
    out4 = out if batched else out[None]
    out_flat = out4.reshape(out_channels, hw)

    def run():
        np.copyto(inner, data4)
        for ky in range(kernel):
            for kx in range(kernel):
                np.copyto(colsT5[:, ky, kx],
                          padded[0, :, ky:ky + height, kx:kx + width])
        np.matmul(flat_w, colsT, out=out_flat)
        if bias is not None:
            np.add(out_flat, bias[:, None], out=out_flat)
    return run


def _fwd_conv2d(node, scratch):
    kernel, pad, batched, eager_cols = node._ctx
    x = node._prev[0].data
    weight = node._prev[1].data
    bias = node._prev[2].data if len(node._prev) > 2 else None
    out = node.data
    data4 = x if batched else x[None]
    batch, channels, height, width = data4.shape
    out_channels = weight.shape[0]
    out4_probe = out if batched else out[None]
    if _is_v2(scratch) and batch == 1 and out4_probe.flags.c_contiguous:
        return _fwd_conv2d_v2(node, scratch)
    padded = np.zeros((batch, channels, height + 2 * pad, width + 2 * pad),
                      dtype=x.dtype)
    inner = padded[:, :, pad:pad + height, pad:pad + width]
    s = padded.strides
    # Patch view already laid out as (B, H, W, C, k, k) — one copy into a
    # preallocated buffer replaces _im2col's transpose+reshape copy.
    patches = np.lib.stride_tricks.as_strided(
        padded, shape=(batch, height, width, channels, kernel, kernel),
        strides=(s[0], s[2], s[3], s[1], s[2], s[3]), writeable=False)
    # Adopt the eager im2col buffer: the recording step's backward then
    # reads the exact patch matrix its forward produced.  Plan-cache
    # rebuilds pass cols=None; allocate a fresh buffer in that case.
    cols = eager_cols
    if cols is None:
        cols = np.empty((batch * height * width, channels * kernel * kernel),
                        dtype=x.dtype)
    cols6 = cols.reshape(batch, height, width, channels, kernel, kernel)
    flat_w = weight.reshape(out_channels, -1)
    out4 = out if batched else out[None]
    scratch[id(node)] = cols
    # The eager output is a transposed *view* of the GEMM result; adopt
    # that base array as the matmul target so the replay, like the eager
    # op, never materializes the (B, O, H, W) layout.
    mm = out.base
    adopted = (mm is not None
               and mm.shape == (batch * height * width, out_channels))
    # Channel-first contiguous output (the gate-fusion normalization):
    # run the GEMM transposed — flat_w @ colsᵀ lands directly in the
    # (O, H·W) layout, so no transposition pass is ever materialized.
    transposed = (not adopted and batch == 1 and out4.flags.c_contiguous)
    if not (adopted or transposed):
        mm = np.empty((batch * height * width, out_channels), dtype=x.dtype)
    out_flat = out4.reshape(out_channels, -1) if transposed else None

    def run():
        np.copyto(inner, data4)
        np.copyto(cols6, patches)
        if transposed:
            np.matmul(flat_w, cols.T, out=out_flat)
            if bias is not None:
                np.add(out_flat, bias[:, None], out=out_flat)
            return
        np.matmul(cols, flat_w.T, out=mm)
        if bias is not None:
            np.add(mm, bias, out=mm)
        if not adopted:
            np.copyto(out4, mm.reshape(batch, height, width,
                                       out_channels).transpose(0, 3, 1, 2))
    return run


def _fwd_avgpool2d(node, scratch):
    kernel, pad = node._ctx
    a, out = node._prev[0].data, node.data
    height, width = a.shape[-2:]
    scale = 1.0 / (kernel * kernel)
    padded = _zeros_with_layout(
        a.shape[:-2] + (height + 2 * pad, width + 2 * pad), a)
    inner = padded[..., pad:pad + height, pad:pad + width]

    def run():
        np.copyto(inner, a)
        out.fill(0.0)
        for ky in range(kernel):
            for kx in range(kernel):
                np.add(out, padded[..., ky:ky + height, kx:kx + width],
                       out=out)
        np.multiply(out, scale, out=out)
    return run


_FWD = {
    "add": _fwd_add,
    "mul": _fwd_mul,
    "pow": _fwd_pow,
    "matmul": _fwd_matmul,
    "exp": _fwd_exp,
    "log": _fwd_log,
    "tanh": _fwd_tanh,
    "sigmoid": _fwd_sigmoid,
    "relu": _fwd_relu,
    "leaky_relu": _fwd_leaky_relu,
    "abs": _fwd_abs,
    "softmax": _fwd_softmax,
    "log_softmax": _fwd_log_softmax,
    "sum": _fwd_sum,
    "max": _fwd_max,
    "reshape": _fwd_reshape,
    "swapaxes": _fwd_swapaxes,
    "transpose": _fwd_transpose,
    "expand_dims": _fwd_expand_dims,
    "squeeze": _fwd_squeeze,
    "getitem": _fwd_getitem,
    "concat": _fwd_concat,
    "stack": _fwd_stack,
    "dropout": _fwd_dropout,
    "conv2d": _fwd_conv2d,
    "avgpool2d": _fwd_avgpool2d,
}

# ----------------------------------------------------------------------
# Backward kernel builders:
#   op tag -> fn(node, grads, written, scratch) -> callable | None
# ``grads`` maps id(tensor) -> preallocated gradient buffer; ``written``
# is the static first-write analysis driven by _mark().
# ----------------------------------------------------------------------

def _bwd_add(node, grads, written, scratch):
    g = grads[id(node)]
    sinks = []
    for p in node._prev:
        if p.requires_grad:
            sinks.append(_contrib_sink(grads[id(p)], g.shape,
                                       _mark(written, id(p))))

    def run():
        for sink in sinks:
            sink(g)
    return run


def _bwd_mul(node, grads, written, scratch):
    g = grads[id(node)]
    a, b = node._prev
    runs = []
    for self_t, other_t in ((a, b), (b, a)):
        if not self_t.requires_grad:
            continue
        pg = grads[id(self_t)]
        other = other_t.data
        store = _mark(written, id(self_t))
        if pg.shape == g.shape:
            if store:
                runs.append(lambda pg=pg, other=other:
                            np.multiply(g, other, out=pg))
            else:
                tmp = (_lease(scratch, g.shape, g.dtype, "mul")
                       if _is_v2(scratch) else np.empty_like(g))

                def accumulate(pg=pg, other=other, tmp=tmp):
                    np.multiply(g, other, out=tmp)
                    np.add(pg, tmp, out=pg)
                runs.append(accumulate)
        else:
            sink = _contrib_sink(pg, g.shape, store)
            runs.append(lambda sink=sink, other=other: sink(g * other))

    def run():
        for fn in runs:
            fn()
    return run


def _bwd_pow(node, grads, written, scratch):
    (exponent,) = node._ctx
    g = grads[id(node)]
    parent = node._prev[0]
    a = parent.data
    sink = _contrib_sink(grads[id(parent)], g.shape, _mark(written, id(parent)))
    return lambda: sink(g * exponent * a ** (exponent - 1.0))


def _bwd_matmul(node, grads, written, scratch):
    g = grads[id(node)]
    a_t, b_t = node._prev
    a, b = a_t.data, b_t.data
    runs = []
    if a_t.requires_grad:
        pg = grads[id(a_t)]
        store = _mark(written, id(a_t))
        if b.ndim == 1:
            shape = g.shape + b.shape
            sink = _contrib_sink(pg, shape, store)
            runs.append(lambda sink=sink: sink(np.expand_dims(g, -1) * b))
        elif a.ndim == 1:
            axes = tuple(range(b.ndim - 2)) + (-1,)
            sink = _contrib_sink(pg, a.shape, store)
            runs.append(lambda sink=sink, axes=axes:
                        sink((np.expand_dims(g, -2) * b).sum(axis=axes)))
        else:
            b_T = b.swapaxes(-1, -2)
            shape = (np.broadcast_shapes(g.shape[:-2], b_T.shape[:-2])
                     + (g.shape[-2], b_T.shape[-1]))
            flat = (_is_v2(scratch) and b.ndim == 2 and g.ndim >= 3
                    and tuple(shape) == pg.shape
                    and g.flags.c_contiguous and pg.flags.c_contiguous)
            if flat:
                # Same flattened-GEMM rewrite as the v2 forward: dA rows
                # are independent dot products against b_T, so one flat
                # GEMM is bitwise the batched loop.
                g2 = g.reshape(-1, g.shape[-1])
                pg2 = pg.reshape(-1, pg.shape[-1])
                if store:
                    runs.append(lambda pg2=pg2, g2=g2, b_T=b_T:
                                np.matmul(g2, b_T, out=pg2))
                else:
                    tmp = _lease(scratch, pg2.shape, pg.dtype, "mm")

                    def acc_a(pg2=pg2, g2=g2, b_T=b_T, tmp=tmp):
                        np.matmul(g2, b_T, out=tmp)
                        np.add(pg2, tmp, out=pg2)
                    runs.append(acc_a)
            elif store and tuple(shape) == pg.shape:
                runs.append(lambda pg=pg, b_T=b_T: np.matmul(g, b_T, out=pg))
            elif _is_v2(scratch) and tuple(shape) == pg.shape:
                # Accumulate path without the per-replay allocation: GEMM
                # into leased scratch, then one in-place add.
                tmp = _lease(scratch, shape, pg.dtype, "mm")

                def acc_a2(pg=pg, b_T=b_T, tmp=tmp):
                    np.matmul(g, b_T, out=tmp)
                    np.add(pg, tmp, out=pg)
                runs.append(acc_a2)
            else:
                sink = _contrib_sink(pg, shape, store)
                runs.append(lambda sink=sink, b_T=b_T: sink(g @ b_T))
    if b_t.requires_grad:
        pg = grads[id(b_t)]
        store = _mark(written, id(b_t))
        if a.ndim == 1:
            if b.ndim == 1:
                sink = _contrib_sink(pg, b.shape, store)

                def run_b(sink=sink):
                    contrib = np.expand_dims(a, -1) * np.expand_dims(g, -2)
                    sink(contrib.sum(axis=tuple(range(contrib.ndim - 1))))
                runs.append(run_b)
            else:
                shape = np.broadcast_shapes(
                    (a.shape[0], 1), np.expand_dims(g, -2).shape)
                sink = _contrib_sink(pg, shape, store)
                runs.append(lambda sink=sink: sink(
                    np.expand_dims(a, -1) * np.expand_dims(g, -2)))
        elif b.ndim == 1:
            axes = tuple(range(a.ndim - 1))
            sink = _contrib_sink(pg, b.shape, store)
            runs.append(lambda sink=sink, axes=axes:
                        sink((np.expand_dims(g, -1) * a).sum(axis=axes)))
        else:
            a_T = a.swapaxes(-1, -2)
            shape = (np.broadcast_shapes(a_T.shape[:-2], g.shape[:-2])
                     + (a_T.shape[-2], g.shape[-1]))
            flat = (_is_v2(scratch) and b.ndim == 2 and a.ndim >= 3
                    and a.shape[:-2] == g.shape[:-2]
                    and a.flags.c_contiguous and g.flags.c_contiguous)
            if flat:
                # dB = Σ_batch a[i]ᵀ @ g[i]: flattening the batch rows
                # turns the materialize-then-unbroadcast reduction (a
                # (B, k, n) temporary per replay) into one GEMM whose
                # k-loop runs over the same products in a different
                # association — ≈1e-15 relative rounding, inside the
                # ≤1e-8 parity budget like the fused-gate re-association.
                a2_T = a.reshape(-1, a.shape[-1]).T
                g2 = g.reshape(-1, g.shape[-1])
                if store:
                    runs.append(lambda pg=pg, a2_T=a2_T, g2=g2:
                                np.matmul(a2_T, g2, out=pg))
                else:
                    tmp = _lease(scratch, pg.shape, pg.dtype, "mm")

                    def acc_b(pg=pg, a2_T=a2_T, g2=g2, tmp=tmp):
                        np.matmul(a2_T, g2, out=tmp)
                        np.add(pg, tmp, out=pg)
                    runs.append(acc_b)
            elif store and tuple(shape) == pg.shape:
                runs.append(lambda pg=pg, a_T=a_T: np.matmul(a_T, g, out=pg))
            elif _is_v2(scratch) and tuple(shape) == pg.shape:
                tmp = _lease(scratch, shape, pg.dtype, "mm")

                def acc_b2(pg=pg, a_T=a_T, tmp=tmp):
                    np.matmul(a_T, g, out=tmp)
                    np.add(pg, tmp, out=pg)
                runs.append(acc_b2)
            else:
                sink = _contrib_sink(pg, shape, store)
                runs.append(lambda sink=sink, a_T=a_T: sink(a_T @ g))

    def run():
        for fn in runs:
            fn()
    return run


def _bwd_exp(node, grads, written, scratch):
    g = grads[id(node)]
    parent = node._prev[0]
    out = node.data
    sink = _contrib_sink(grads[id(parent)], g.shape, _mark(written, id(parent)))
    return lambda: sink(g * out)


def _bwd_log(node, grads, written, scratch):
    g = grads[id(node)]
    parent = node._prev[0]
    a = parent.data
    sink = _contrib_sink(grads[id(parent)], g.shape, _mark(written, id(parent)))
    return lambda: sink(g / a)


def _bwd_tanh(node, grads, written, scratch):
    g = grads[id(node)]
    parent = node._prev[0]
    out = node.data
    sink = _contrib_sink(grads[id(parent)], g.shape, _mark(written, id(parent)))
    return lambda: sink(g * (1.0 - out ** 2))


def _bwd_sigmoid(node, grads, written, scratch):
    g = grads[id(node)]
    parent = node._prev[0]
    out = node.data
    sink = _contrib_sink(grads[id(parent)], g.shape, _mark(written, id(parent)))
    return lambda: sink(g * out * (1.0 - out))


def _bwd_relu(node, grads, written, scratch):
    g = grads[id(node)]
    parent = node._prev[0]
    a = parent.data
    sink = _contrib_sink(grads[id(parent)], g.shape, _mark(written, id(parent)))
    return lambda: sink(g * (a > 0.0))


def _bwd_leaky_relu(node, grads, written, scratch):
    (slope,) = node._ctx
    g = grads[id(node)]
    parent = node._prev[0]
    a = parent.data
    sink = _contrib_sink(grads[id(parent)], g.shape, _mark(written, id(parent)))
    # g * where(a > 0, 1, slope): the kept branch g*1.0 is bitwise g.
    return lambda: sink(np.where(a > 0.0, g, g * slope))


def _bwd_abs(node, grads, written, scratch):
    g = grads[id(node)]
    parent = node._prev[0]
    a = parent.data
    sink = _contrib_sink(grads[id(parent)], g.shape, _mark(written, id(parent)))
    return lambda: sink(g * np.sign(a))


def _bwd_softmax(node, grads, written, scratch):
    (axis,) = node._ctx
    g = grads[id(node)]
    parent = node._prev[0]
    out = node.data
    pg = grads[id(parent)]
    store = _mark(written, id(parent))
    # dx = out ⊙ (g − Σ g⊙out) staged through one buffer: the parent
    # grad itself when storing, a preallocated scratch when accumulating.
    if store and pg.shape == g.shape:
        tmp = pg
    elif _is_v2(scratch):
        tmp = _lease(scratch, g.shape, g.dtype, "softmax")
    else:
        tmp = np.empty_like(g)

    def run():
        np.multiply(g, out, out=tmp)
        dot = tmp.sum(axis=axis, keepdims=True)
        np.subtract(g, dot, out=tmp)
        np.multiply(out, tmp, out=tmp)
        if tmp is not pg:
            np.add(pg, tmp, out=pg)
    return run


def _bwd_log_softmax(node, grads, written, scratch):
    (axis,) = node._ctx
    g = grads[id(node)]
    parent = node._prev[0]
    out = node.data
    sink = _contrib_sink(grads[id(parent)], g.shape, _mark(written, id(parent)))

    def run():
        total = g.sum(axis=axis, keepdims=True)
        sink(g - np.exp(out) * total)
    return run


def _bwd_sum(node, grads, written, scratch):
    axis, keepdims = node._ctx
    g = grads[id(node)]
    parent = node._prev[0]
    pg = grads[id(parent)]
    store = _mark(written, id(parent))
    if axis is not None and not keepdims:
        axes = (axis,) if isinstance(axis, int) else axis
        expand = tuple(ax % parent.ndim for ax in axes)
    else:
        expand = None

    def run():
        ge = np.expand_dims(g, expand) if expand is not None else g
        if store:
            np.copyto(pg, ge)       # copyto broadcasts ge up to pg
        else:
            np.add(pg, ge, out=pg)
    return run


def _bwd_max(node, grads, written, scratch):
    axis, keepdims = node._ctx
    g = grads[id(node)]
    parent = node._prev[0]
    a = parent.data
    sink = _contrib_sink(grads[id(parent)], a.shape, _mark(written, id(parent)))

    def run():
        expanded = a.max(axis=axis, keepdims=True)
        mask = (a == expanded).astype(a.dtype)
        mask /= mask.sum(axis=axis, keepdims=True)
        ge = g
        if axis is not None and not keepdims:
            ge = np.expand_dims(g, axis)
        sink(mask * ge)
    return run


def _bwd_reshape(node, grads, written, scratch):
    g = grads[id(node)]
    parent = node._prev[0]
    shape = parent.shape
    sink = _contrib_sink(grads[id(parent)], shape, _mark(written, id(parent)))
    return lambda: sink(g.reshape(shape))


def _bwd_swapaxes(node, grads, written, scratch):
    ax1, ax2 = node._ctx
    g = grads[id(node)]
    parent = node._prev[0]
    sink = _contrib_sink(grads[id(parent)], parent.shape,
                         _mark(written, id(parent)))
    return lambda: sink(g.swapaxes(ax1, ax2))


def _bwd_transpose(node, grads, written, scratch):
    (axes,) = node._ctx
    inverse = np.argsort(axes)
    g = grads[id(node)]
    parent = node._prev[0]
    sink = _contrib_sink(grads[id(parent)], parent.shape,
                         _mark(written, id(parent)))
    return lambda: sink(g.transpose(inverse))


def _bwd_expand_dims(node, grads, written, scratch):
    (axis,) = node._ctx
    g = grads[id(node)]
    parent = node._prev[0]
    sink = _contrib_sink(grads[id(parent)], parent.shape,
                         _mark(written, id(parent)))
    return lambda: sink(g.squeeze(axis))


def _bwd_squeeze(node, grads, written, scratch):
    (axis,) = node._ctx
    g = grads[id(node)]
    parent = node._prev[0]
    sink = _contrib_sink(grads[id(parent)], parent.shape,
                         _mark(written, id(parent)))
    return lambda: sink(np.expand_dims(g, axis))


def _bwd_getitem(node, grads, written, scratch):
    (index,) = node._ctx
    g = grads[id(node)]
    parent = node._prev[0]
    pg = grads[id(parent)]
    store = _mark(written, id(parent))
    basic = _is_basic_index(index)

    def run():
        if store:
            pg.fill(0.0)            # a slice write covers pg only partially
        if basic:
            pg[index] += g
        else:
            np.add.at(pg, index, g)
    return run


def _bwd_concat(node, grads, written, scratch):
    (axis,) = node._ctx
    g = grads[id(node)]
    ax = axis % node.ndim
    runs = []
    offset = 0
    for p in node._prev:
        size = p.shape[ax]
        if p.requires_grad:
            idx = (slice(None),) * ax + (slice(offset, offset + size),)
            sink = _contrib_sink(grads[id(p)], p.shape, _mark(written, id(p)))
            runs.append(lambda sink=sink, idx=idx: sink(g[idx]))
        offset += size

    def run():
        for fn in runs:
            fn()
    return run


def _bwd_stack(node, grads, written, scratch):
    (axis,) = node._ctx
    g = grads[id(node)]
    ax = axis % node.ndim
    runs = []
    for i, p in enumerate(node._prev):
        if p.requires_grad:
            idx = (slice(None),) * ax + (i,)
            sink = _contrib_sink(grads[id(p)], p.shape, _mark(written, id(p)))
            runs.append(lambda sink=sink, idx=idx: sink(g[idx]))

    def run():
        for fn in runs:
            fn()
    return run


def _bwd_dropout(node, grads, written, scratch):
    g = grads[id(node)]
    parent = node._prev[0]
    mask = scratch[id(node)]
    pg = grads[id(parent)]
    store = _mark(written, id(parent))
    if store:
        return lambda: np.multiply(g, mask, out=pg)
    return lambda: np.add(pg, g * mask, out=pg)


def _bwd_conv2d_v2(node, grads, written, scratch, colsT):
    # Backward for the lowered colsT layout.  All three gradient GEMMs
    # read the transposed patch matrix directly; the col2im scatter and
    # the dX column buffer run through leased kernel scratch, so every
    # conv node in the plan shares one gcolsT/gpadded allocation.
    kernel, pad, batched, _ = node._ctx
    g = grads[id(node)]
    x_t, w_t = node._prev[0], node._prev[1]
    bias_t = node._prev[2] if len(node._prev) > 2 else None
    x, weight = x_t.data, w_t.data
    data4_shape = x.shape if batched else (1,) + x.shape
    batch, channels, height, width = data4_shape
    out_channels = weight.shape[0]
    ckk = channels * kernel * kernel
    hw = height * width
    flat_w = weight.reshape(out_channels, -1)
    g4 = g if batched else g[None]
    if g4.flags.c_contiguous:
        g_om = g4.reshape(out_channels, hw)
        pre = None
    else:
        g_om = _lease(scratch, (out_channels, hw), g.dtype, "conv_g")
        g_om4 = g_om.reshape(g4.shape)

        def pre():
            np.copyto(g_om4, g4)
    runs = []
    if w_t.requires_grad:
        wg = grads[id(w_t)]
        store = _mark(written, id(w_t))
        wg_flat = wg.reshape(out_channels, -1)
        colsT_T = colsT.T
        if store:
            runs.append(lambda: np.matmul(g_om, colsT_T, out=wg_flat))
        else:
            wg_tmp = _lease(scratch, wg_flat.shape, wg.dtype, "conv_wg")

            def acc_w():
                np.matmul(g_om, colsT_T, out=wg_tmp)
                np.add(wg_flat, wg_tmp, out=wg_flat)
            runs.append(acc_w)
    if bias_t is not None and bias_t.requires_grad:
        sink = _contrib_sink(grads[id(bias_t)], (out_channels,),
                             _mark(written, id(bias_t)))
        runs.append(lambda: sink(g_om.sum(axis=1)))
    if x_t.requires_grad:
        pg = grads[id(x_t)]
        store = _mark(written, id(x_t))
        gcolsT = _lease(scratch, (ckk, hw), g.dtype, "conv_gcols")
        gcolsT5 = gcolsT.reshape(channels, kernel, kernel, height, width)
        gpadded = _lease(scratch, (batch, channels, height + 2 * pad,
                                   width + 2 * pad), g.dtype, "conv_gpad")
        crop = (gpadded[:, :, pad:-pad, pad:-pad] if pad else gpadded)

        def run_x():
            np.matmul(flat_w.T, g_om, out=gcolsT)
            gpadded.fill(0.0)
            for ky in range(kernel):
                for kx in range(kernel):
                    gpadded[0, :, ky:ky + height, kx:kx + width] += \
                        gcolsT5[:, ky, kx]
            contrib = crop if batched else crop[0]
            if store:
                np.copyto(pg, contrib)
            else:
                np.add(pg, contrib, out=pg)
        runs.append(run_x)

    def run():
        if pre is not None:
            pre()
        for fn in runs:
            fn()
    return run


def _bwd_conv2d(node, grads, written, scratch):
    kernel, pad, batched, _ = node._ctx
    g = grads[id(node)]
    x_t, w_t = node._prev[0], node._prev[1]
    bias_t = node._prev[2] if len(node._prev) > 2 else None
    x, weight = x_t.data, w_t.data
    cols = scratch[id(node)]
    if isinstance(cols, tuple):
        return _bwd_conv2d_v2(node, grads, written, scratch, cols[1])
    data4_shape = x.shape if batched else (1,) + x.shape
    batch, channels, height, width = data4_shape
    out_channels = weight.shape[0]
    flat_w = weight.reshape(out_channels, -1)
    g4 = g if batched else g[None]
    # With a contiguous channel-first gradient (the gate-fusion layout)
    # the whole backward runs off the transposed (O, H·W) view — the
    # same dot products, no transposition pass.
    transposed = batch == 1 and g4.flags.c_contiguous
    if transposed:
        g_om = g4.reshape(out_channels, -1)
        gs4 = gflat = None
    else:
        g_om = None
        gs4 = np.empty((batch, height, width, out_channels), dtype=g.dtype)
        gflat = gs4.reshape(-1, out_channels)
    runs = []
    if w_t.requires_grad:
        wg = grads[id(w_t)]
        store = _mark(written, id(w_t))
        wg_flat = wg.reshape(out_channels, -1)
        if transposed:
            if store:
                runs.append(lambda: np.matmul(g_om, cols, out=wg_flat))
            else:
                runs.append(lambda: np.add(wg_flat, g_om @ cols, out=wg_flat))
        elif store:
            runs.append(lambda: np.matmul(gflat.T, cols, out=wg_flat))
        else:
            runs.append(lambda: np.add(
                wg, (gflat.T @ cols).reshape(wg.shape), out=wg))
    if bias_t is not None and bias_t.requires_grad:
        sink = _contrib_sink(grads[id(bias_t)], (out_channels,),
                             _mark(written, id(bias_t)))
        if transposed:
            runs.append(lambda: sink(g_om.sum(axis=1)))
        else:
            runs.append(lambda: sink(gflat.sum(axis=0)))
    if x_t.requires_grad:
        pg = grads[id(x_t)]
        store = _mark(written, id(x_t))
        gcols = np.empty((channels * kernel * kernel,
                          batch * height * width) if transposed else
                         (batch * height * width,
                          channels * kernel * kernel), dtype=g.dtype)
        if transposed:
            gcols6 = gcols.reshape(channels, kernel, kernel,
                                   batch, height, width)
        else:
            gcols6 = gcols.reshape(batch, height, width,
                                   channels, kernel, kernel)
        gpadded = np.empty((batch, channels, height + 2 * pad,
                            width + 2 * pad), dtype=g.dtype)
        crop = (gpadded[:, :, pad:-pad, pad:-pad] if pad else gpadded)

        def run_x():
            if transposed:
                np.matmul(flat_w.T, g_om, out=gcols)
            else:
                np.matmul(gflat, flat_w, out=gcols)
            gpadded.fill(0.0)
            for ky in range(kernel):
                for kx in range(kernel):
                    if transposed:
                        gpadded[:, :, ky:ky + height, kx:kx + width] += \
                            gcols6[:, ky, kx].swapaxes(0, 1)
                    else:
                        gpadded[:, :, ky:ky + height, kx:kx + width] += \
                            gcols6[:, :, :, :, ky, kx].transpose(0, 3, 1, 2)
            contrib = crop if batched else crop[0]
            if store:
                np.copyto(pg, contrib)
            else:
                np.add(pg, contrib, out=pg)
        runs.append(run_x)

    def run():
        if not transposed:
            np.copyto(gs4, g4.transpose(0, 2, 3, 1))
        for fn in runs:
            fn()
    return run


def _bwd_avgpool2d(node, grads, written, scratch):
    kernel, pad = node._ctx
    g = grads[id(node)]
    parent = node._prev[0]
    pg = grads[id(parent)]
    store = _mark(written, id(parent))
    height, width = parent.shape[-2:]
    scale = 1.0 / (kernel * kernel)
    gpadded = _zeros_with_layout(
        parent.shape[:-2] + (height + 2 * pad, width + 2 * pad), g)
    crop = gpadded[..., pad:-pad, pad:-pad] if pad else gpadded

    def run():
        gpadded.fill(0.0)
        for ky in range(kernel):
            for kx in range(kernel):
                gpadded[..., ky:ky + height, kx:kx + width] += g
        np.multiply(gpadded, scale, out=gpadded)
        if store:
            np.copyto(pg, crop)
        else:
            np.add(pg, crop, out=pg)
    return run


# ----------------------------------------------------------------------
# Gate-chain fusion (RegionSA Eq. 13-14): AvgPool2d -> softmax -> ⊙
# ----------------------------------------------------------------------
#
# The (c, n, n) correlation path is pure memory bandwidth: pool, gate
# softmax and the A' ⊙ softmax(A') product each sweep a multi-megabyte
# array that was just written.  Fusing the three ops into one
# channel-blocked kernel keeps the per-channel intermediates close to
# cache, and the 3x3 pool becomes two separable 3-tap passes.  Channels
# are independent for all three ops and the softmax rows are reduced
# per row either way, so the only deviation from the eager arithmetic
# is the re-association of the 9 pool additions (≈1e-16 relative
# rounding, covered by the ≤1e-8 parity budget).  The pattern is
# matched conservatively (each intermediate consumed only inside the
# chain); anything else falls back to the generic per-op kernels.
#
# The masked variant — softmax(A' + additive_key_mask) from the padded
# batches of the execution engine — fuses too: the additive mask is a
# constant (..., 1, 1, n) leaf, the extra ``add`` is folded into the
# per-channel softmax (its backward into the pool input is the identity),
# and the gradient never touches the mask, so the backward kernel is the
# unmasked one verbatim.

class _GateFusion(NamedTuple):
    """One fusable pool -> [+mask] -> softmax -> ⊙ chain."""

    pool: Tensor
    gate: Tensor
    mul: Tensor
    add: Tensor | None    # corr + mask (padded batches only); fused away
    mask: Tensor | None   # constant additive-mask leaf, read-only

    @property
    def fused_away(self) -> tuple[Tensor, ...]:
        """Interior nodes whose generic kernels the fusion replaces."""
        return (self.gate, self.mul) if self.add is None else \
            (self.gate, self.mul, self.add)

    @property
    def traffic_nodes(self) -> tuple[Tensor, ...]:
        """Buffers the fused kernels sweep (for the profiler's byte
        histogram)."""
        return (self.pool._prev[0], self.pool, self.gate, self.mul)

    @property
    def grad_targets(self) -> tuple[Tensor, ...]:
        """Tensors whose gradients the fused backward kernel writes."""
        parent = self.pool._prev[0]
        return (parent,) if parent.requires_grad else ()


def _find_gate_fusions(nodes: list[Tensor]) -> list[_GateFusion]:
    consumers: dict[int, list[Tensor]] = {}
    for n in nodes:
        for p in n._prev:
            consumers.setdefault(id(p), []).append(n)
    fusions = []
    for mul in nodes:
        if mul._op != "mul" or len(mul._prev) != 2:
            continue
        pool, gate = mul._prev
        if pool._op != "avgpool2d" or gate._op != "softmax":
            continue
        if pool._ctx != (3, 1):   # separable 3-tap kernels below
            continue
        if pool.ndim < 3:
            continue
        scores = gate._prev[0]
        add = mask = None
        if scores is not pool:
            # Masked chain: softmax(pool + additive mask) where the mask
            # is a constant (..., 1, 1, n) leaf broadcast over channels
            # and query rows — the engine's additive_key_mask layout.
            if (scores._op != "add" or len(scores._prev) != 2
                    or scores._prev[0] is not pool):
                continue
            add, mask = scores, scores._prev[1]
            if mask._prev or mask.requires_grad:
                continue
            if (mask.ndim != pool.ndim or mask.shape[-3:-1] != (1, 1)
                    or mask.shape[-1] != pool.shape[-1]
                    or mask.shape[:-3] != pool.shape[:-3]):
                continue
            if add.shape != pool.shape:
                continue
            add_cons = consumers.get(id(add), [])
            if len(add_cons) != 1 or add_cons[0] is not gate:
                continue
        if gate._ctx[0] not in (-1, pool.ndim - 1):
            continue
        if not (pool.shape == gate.shape == mul.shape):
            continue
        first = add if add is not None else gate
        pool_cons = consumers.get(id(pool), [])
        gate_cons = consumers.get(id(gate), [])
        if len(pool_cons) != 2 or {id(c) for c in pool_cons} != {id(first), id(mul)}:
            continue
        if len(gate_cons) != 1 or gate_cons[0] is not mul:
            continue
        fusions.append(_GateFusion(pool, gate, mul, add, mask))
    return fusions


def _separable_avg3(src, dst, colbuf, scale):
    """Same-padding 3x3 uniform window sum of ``src`` into ``dst`` (times
    ``scale``) via two 3-tap passes.  The operator equals the eager
    9-window loop; only the order of the 9 additions differs (≈1e-16
    relative rounding).  Symmetric, so it is also its own adjoint —
    the backward pass reuses it on the gradient."""
    np.copyto(colbuf, src)
    colbuf[..., 1:, :] += src[..., :-1, :]
    colbuf[..., :-1, :] += src[..., 1:, :]
    np.copyto(dst, colbuf)
    dst[..., :, 1:] += colbuf[..., :, :-1]
    dst[..., :, :-1] += colbuf[..., :, 1:]
    np.multiply(dst, scale, out=dst)


def _separable_avg3_v2(src, dst, colbuf, scale):
    """The v2 lowering of :func:`_separable_avg3`: same 3-tap operator,
    same per-element addition order (``x[i] + x[i-1]``, then ``+
    x[i+1]``), so the result is *bitwise* identical — but each pass
    starts from a fused two-operand add instead of a full copy followed
    by an in-place add, saving one full sweep of the array per pass."""
    np.add(src[..., 1:, :], src[..., :-1, :], out=colbuf[..., 1:, :])
    np.copyto(colbuf[..., :1, :], src[..., :1, :])
    colbuf[..., :-1, :] += src[..., 1:, :]
    np.add(colbuf[..., :, 1:], colbuf[..., :, :-1], out=dst[..., :, 1:])
    np.copyto(dst[..., :, :1], colbuf[..., :, :1])
    dst[..., :, :-1] += colbuf[..., :, 1:]
    np.multiply(dst, scale, out=dst)


def _fused_gate_forward(fusion: _GateFusion, scratch,
                        channel_range=None, tag=0):
    pool, gate_n, mul_n = fusion.pool, fusion.gate, fusion.mul
    x = pool._prev[0].data
    corr, gate, gated = pool.data, gate_n.data, mul_n.data
    # Channel slice of the (..., 1, 1, n) additive mask: (..., 1, n),
    # broadcasting over the query rows exactly as the eager add did.
    madd = fusion.mask.data[..., 0, :, :] if fusion.mask is not None else None
    height, width = x.shape[-2:]
    channels = channel_range or range(x.shape[-3])
    lead = x.shape[:-3]
    avg3 = _separable_avg3_v2 if _is_v2(scratch) else _separable_avg3
    if _is_v2(scratch):
        colbuf = _lease(scratch, lead + (height, width), x.dtype,
                        ("gate_col", tag))
    else:
        colbuf = np.empty(lead + (height, width), dtype=x.dtype)

    def run():
        for c in channels:
            cc = corr[..., c, :, :]
            gc = gate[..., c, :, :]
            avg3(x[..., c, :, :], cc, colbuf, 1.0 / 9.0)
            if madd is None:
                np.subtract(cc, cc.max(axis=-1, keepdims=True), out=gc)
            else:
                np.add(cc, madd, out=gc)
                np.subtract(gc, gc.max(axis=-1, keepdims=True), out=gc)
            np.exp(gc, out=gc)
            np.divide(gc, gc.sum(axis=-1, keepdims=True), out=gc)
            np.multiply(cc, gc, out=gated[..., c, :, :])
    return run


def _fused_gate_backward(fusion: _GateFusion, grads, written, scratch,
                         channel_range=None, tag=0, store=None):
    pool, gate_n, mul_n = fusion.pool, fusion.gate, fusion.mul
    g_gated = grads[id(mul_n)]
    corr, gate = pool.data, gate_n.data
    parent = pool._prev[0]
    pg = grads[id(parent)]
    if store is None:
        store = _mark(written, id(parent))
    height, width = corr.shape[-2:]
    channels = channel_range or range(corr.shape[-3])
    lead = corr.shape[:-3]
    shape = lead + (height, width)
    if _is_v2(scratch):
        dcorr = _lease(scratch, shape, corr.dtype, ("gate_dcorr", tag))
        dgate = _lease(scratch, shape, corr.dtype, ("gate_dgate", tag))
        tmp = _lease(scratch, shape, corr.dtype, ("gate_tmp", tag))
        colbuf = _lease(scratch, shape, corr.dtype, ("gate_col", tag))
        avg3 = _separable_avg3_v2
    else:
        dcorr = np.empty(shape, dtype=corr.dtype)
        dgate = np.empty_like(dcorr)
        tmp = np.empty_like(dcorr)
        colbuf = np.empty_like(dcorr)
        avg3 = _separable_avg3

    def run():
        for c in channels:
            gg = g_gated[..., c, :, :]
            cc = corr[..., c, :, :]
            gc = gate[..., c, :, :]
            # ⊙ backward, in parent order (corr, gate), then the fused
            # softmax backward accumulated into dcorr — the same edge
            # order the generic kernels execute.
            np.multiply(gg, gc, out=dcorr)
            np.multiply(gg, cc, out=dgate)
            np.multiply(dgate, gc, out=tmp)
            dot = tmp.sum(axis=-1, keepdims=True)
            np.subtract(dgate, dot, out=tmp)
            np.multiply(gc, tmp, out=tmp)
            np.add(dcorr, tmp, out=dcorr)
            # avgpool is self-adjoint: pooling the gradient IS the
            # backward scatter (same separable 3-tap operator).
            target = pg[..., c, :, :]
            if store:
                avg3(dcorr, target, colbuf, 1.0 / 9.0)
            else:
                avg3(dcorr, tmp, colbuf, 1.0 / 9.0)
                np.add(target, tmp, out=target)
    return run


class _LNFusion(NamedTuple):
    """One fusable LayerNorm chain: the 16-node tape pattern
    ``mean -> var -> (x - mean) * (var + eps)**-0.5 * gamma + beta``
    that :class:`repro.nn.layers.LayerNorm` records.  ``s1`` (the first
    node created) heads the fused forward kernel; ``out`` (the last)
    heads the fused backward kernel."""

    x: Tensor
    s1: Tensor      # sum(x, -1, keep)          — mean numerator
    m1: Tensor      # s1 * (1/d)                — mean (normalization)
    s2: Tensor      # sum(x, -1, keep)          — var's own mean
    m2: Tensor      # s2 * (1/d)
    neg_a: Tensor   # m2 * -1
    c1: Tensor      # x + neg_a                 — centered (variance)
    sq: Tensor      # c1 * c1
    s3: Tensor      # sum(sq, -1, keep)
    var: Tensor     # s3 * (1/d)
    neg_b: Tensor   # m1 * -1
    c2: Tensor      # x + neg_b                 — centered (bitwise == c1)
    ve: Tensor      # var + eps
    rstd: Tensor    # ve ** -0.5
    norm: Tensor    # c2 * rstd
    ng: Tensor      # norm * gamma
    out: Tensor     # ng + beta
    gamma: Tensor
    beta: Tensor
    inv: float      # 1/d, the recorded mean scale
    eps: float

    @property
    def fused_away(self) -> tuple[Tensor, ...]:
        """Interior nodes the fused *forward* replaces (head ``s1``
        emits the kernel; everything downstream through ``out`` is
        written by it or elided)."""
        return (self.m1, self.s2, self.m2, self.neg_a, self.c1, self.sq,
                self.s3, self.var, self.neg_b, self.c2, self.ve,
                self.rstd, self.norm, self.ng, self.out)

    @property
    def bwd_fused_away(self) -> tuple[Tensor, ...]:
        """Nodes whose generic backward kernels (and gradient buffers)
        the fused backward at head ``out`` replaces."""
        return (self.s1, self.m1, self.s2, self.m2, self.neg_a, self.c1,
                self.sq, self.s3, self.var, self.neg_b, self.c2, self.ve,
                self.rstd, self.norm, self.ng)

    @property
    def inference_dead(self) -> tuple[Tensor, ...]:
        """Buffers a forward-only plan never materializes (only ``out``
        survives; the training plan keeps c1/ve/rstd/norm for backward)."""
        return (self.s1,) + self.fused_away[:-1]

    @property
    def traffic_nodes(self) -> tuple[Tensor, ...]:
        return (self.x, self.c1, self.norm, self.out)

    @property
    def grad_targets(self) -> tuple[Tensor, ...]:
        return tuple(t for t in (self.beta, self.gamma, self.x)
                     if t.requires_grad)


def _find_layernorm_fusions(nodes: list[Tensor]) -> list[_LNFusion]:
    consumers: dict[int, list[Tensor]] = {}
    for n in nodes:
        for p in n._prev:
            consumers.setdefault(id(p), []).append(n)
    pos = {id(n): i for i, n in enumerate(nodes)}

    def sole(t: Tensor, expected: Tensor) -> bool:
        cons = consumers.get(id(t), [])
        return len(cons) == 1 and cons[0] is expected

    def const_scalar(t: Tensor) -> bool:
        return (not t._prev and not t.requires_grad
                and getattr(t.data, "ndim", None) == 0)

    def last_axis_sum(t: Tensor, src: Tensor) -> bool:
        if t._op != "sum" or t._prev[0] is not src:
            return False
        axis, keepdims = t._ctx
        return keepdims and axis in (-1, src.ndim - 1)

    fusions: list[_LNFusion] = []
    claimed: set[int] = set()
    for out in nodes:
        if out._op != "add" or len(out._prev) != 2:
            continue
        ng, beta = out._prev
        if ng._op != "mul" or len(ng._prev) != 2 or beta._prev:
            continue
        norm, gamma = ng._prev
        if norm._op != "mul" or gamma._prev or not sole(ng, out):
            continue
        c2, rstd = norm._prev
        if (c2._op != "add" or rstd._op != "pow"
                or rstd._ctx != (-0.5,) or not sole(norm, ng)):
            continue
        x, neg_b = c2._prev
        ve = rstd._prev[0]
        if (ve._op != "add" or neg_b._op != "mul"
                or not sole(c2, norm) or not sole(rstd, norm)):
            continue
        var, eps_t = ve._prev
        m1, neg1b = neg_b._prev
        if (var._op != "mul" or not const_scalar(eps_t)
                or m1._op != "mul" or not const_scalar(neg1b)
                or not sole(ve, rstd) or not sole(neg_b, c2)):
            continue
        s3, c_var = var._prev
        s1, c_m1 = m1._prev
        if (s3._op != "sum" or not const_scalar(c_var)
                or not last_axis_sum(s1, x) or not const_scalar(c_m1)
                or not sole(var, ve) or not sole(m1, neg_b)
                or not sole(s1, m1)):
            continue
        sq = s3._prev[0]
        if (sq._op != "mul" or sq._prev[0] is not sq._prev[1]
                or not last_axis_sum(s3, sq) or not sole(s3, var)
                or not sole(sq, s3)):
            continue
        c1 = sq._prev[0]
        if c1._op != "add" or c1._prev[0] is not x:
            continue
        c1_cons = consumers.get(id(c1), [])
        if len(c1_cons) != 2 or any(c is not sq for c in c1_cons):
            continue
        neg_a = c1._prev[1]
        if neg_a._op != "mul" or not sole(neg_a, c1):
            continue
        m2, neg1a = neg_a._prev
        if (m2._op != "mul" or not const_scalar(neg1a)
                or not sole(m2, neg_a)):
            continue
        s2, c_m2 = m2._prev
        if (not last_axis_sum(s2, x) or not const_scalar(c_m2)
                or not sole(s2, m2)):
            continue
        # Shapes: the affine output must keep x's shape (the direct
        # same-shape gradient paths below depend on it), reductions are
        # (..., 1).
        red = x.shape[:-1] + (1,)
        if not (out.shape == ng.shape == norm.shape == c1.shape
                == c2.shape == sq.shape == x.shape):
            continue
        if not all(t.shape == red for t in (s1, m1, s2, m2, neg_a, neg_b,
                                            s3, var, ve, rstd)):
            continue
        inv = float(c_m1.data)
        if (float(c_m2.data) != inv or float(c_var.data) != inv
                or float(neg1a.data) != -1.0 or float(neg1b.data) != -1.0):
            continue
        members = (s1, m1, s2, m2, neg_a, c1, sq, s3, var, neg_b, c2,
                   ve, rstd, norm, ng, out)
        if any(id(t) in claimed for t in members):
            continue
        # The fused backward reorders nothing only if no foreign kernel
        # interleaves the chain: require the 16 nodes to be consecutive
        # on the tape (straight-line eager code always is).
        indices = sorted(pos[id(t)] for t in members)
        if indices[-1] - indices[0] != len(members) - 1:
            continue
        claimed.update(id(t) for t in members)
        fusions.append(_LNFusion(x, s1, m1, s2, m2, neg_a, c1, sq, s3,
                                 var, neg_b, c2, ve, rstd, norm, ng, out,
                                 gamma, beta, inv, float(eps_t.data)))
    return fusions


def _fused_ln_forward(fusion: _LNFusion, scratch, inference: bool = False):
    """One kernel for the whole LayerNorm forward chain.

    Arithmetic is the generic kernels' bit-for-bit: the duplicate mean
    (``m2``) is computed once, ``x - mean`` replaces ``x + (-mean)``
    (IEEE-identical), and ``c2`` aliases ``c1`` (bitwise equal on the
    tape).  Training plans materialize c1/ve/rstd/norm into their
    adopted node buffers for the backward pass; inference plans route
    everything through leased kernel scratch and write only ``out``.
    """
    x = fusion.x.data
    gamma, beta = fusion.gamma.data, fusion.beta.data
    out = fusion.out.data
    inv, eps = fusion.inv, fusion.eps
    red_shape = x.shape[:-1] + (1,)
    if inference:
        c1 = _lease(scratch, x.shape, x.dtype, ("ln_row", 0))
        ve = _lease(scratch, red_shape, x.dtype, ("ln_red", 0))
        rstd = _lease(scratch, red_shape, x.dtype, ("ln_red", 1))
        norm = c1      # c1 is dead once norm is formed; aligned in-place
    else:
        c1 = fusion.c1.data
        ve = fusion.ve.data
        rstd = fusion.rstd.data
        norm = fusion.norm.data
    red = _lease(scratch, red_shape, x.dtype, ("ln_red", 2))
    sq = _lease(scratch, x.shape, x.dtype, ("ln_row", 1))
    ng = sq            # sq is dead once its sum is taken

    def run():
        np.sum(x, axis=-1, keepdims=True, out=red)
        np.multiply(red, inv, out=red)
        np.subtract(x, red, out=c1)
        np.multiply(c1, c1, out=sq)
        np.sum(sq, axis=-1, keepdims=True, out=red)
        np.multiply(red, inv, out=red)
        np.add(red, eps, out=ve)
        np.copyto(rstd, ve ** -0.5)
        np.multiply(c1, rstd, out=norm)
        np.multiply(norm, gamma, out=ng)
        np.add(ng, beta, out=out)
    return run


def _fused_ln_backward(fusion: _LNFusion, grads, written, scratch):
    """One kernel for the whole LayerNorm backward chain.

    Replays exactly what the 16 generic backward kernels compute, in
    the same dx contribution order (c2 store, c1 accumulate, then the
    two broadcast mean terms), with every interior gradient held in
    leased scratch instead of pooled buffers.  ``_mark`` is called in
    the generic kernels' leaf order (beta, gamma, x) so store-vs-
    accumulate decisions are unchanged when a leaf is shared with other
    chains."""
    x_t, gamma_t, beta_t = fusion.x, fusion.gamma, fusion.beta
    g_out = grads[id(fusion.out)]
    c1 = fusion.c1.data
    ve = fusion.ve.data
    rstd = fusion.rstd.data
    norm = fusion.norm.data
    gamma = gamma_t.data
    inv = fusion.inv
    row = g_out.shape
    red_shape = row[:-1] + (1,)
    dt = g_out.dtype
    runs = []
    if beta_t.requires_grad:
        beta_sink = _contrib_sink(grads[id(beta_t)], row,
                                  _mark(written, id(beta_t)))
        runs.append(lambda: beta_sink(g_out))
    if gamma_t.requires_grad:
        gamma_sink = _contrib_sink(grads[id(gamma_t)], row,
                                   _mark(written, id(gamma_t)))
        prod = _lease(scratch, row, dt, ("ln_grow", 0))

        def d_gamma():
            np.multiply(g_out, norm, out=prod)
            gamma_sink(prod)
        runs.append(d_gamma)
    if x_t.requires_grad:
        gx = grads[id(x_t)]
        store = _mark(written, id(x_t))
        D1 = _lease(scratch, row, dt, ("ln_grow", 0))
        D2 = _lease(scratch, row, dt, ("ln_grow", 1))
        S1 = _lease(scratch, red_shape, dt, ("ln_gred", 0))
        S2 = _lease(scratch, red_shape, dt, ("ln_gred", 1))
        P1 = _lease(scratch, red_shape, dt, ("ln_gred", 2))

        def d_x():
            # dnorm = dout ⊙ gamma  (dout ≡ dng: the +beta edge copies)
            np.multiply(g_out, gamma, out=D1)
            # rstd edge of norm = c2 ⊙ rstd: reduce (dnorm ⊙ c2) — c2
            # is bitwise c1, which the forward materialized.
            np.multiply(D1, c1, out=D2)
            np.copyto(S1, _unbroadcast(D2, S1.shape))
            # c2 edge: first dx contribution (the static store slot)
            np.multiply(D1, rstd, out=D2)
            if store:
                np.copyto(gx, D2)
            else:
                np.add(gx, D2, out=gx)
            # neg_b <- c2 (reduced); finished below as the s1 term
            np.copyto(S2, _unbroadcast(D2, S2.shape))
            # pow backward: dve = (drstd · -0.5) · ve^(-3/2)
            np.multiply(S1, -0.5, out=S1)
            np.power(ve, -1.5, out=P1)
            np.multiply(S1, P1, out=S1)
            # ve -> var -> s3 (scale), then broadcast to dsq
            np.multiply(S1, inv, out=S1)
            np.copyto(D1, S1)
            # sq = c1 ⊙ c1: the two edges store then accumulate
            np.multiply(D1, c1, out=D2)
            np.multiply(D1, c1, out=D1)
            np.add(D2, D1, out=D2)
            # c1 -> x: second dx contribution
            np.add(gx, D2, out=gx)
            # neg_a <- c1, then m2 -> s2 -> x (third contribution)
            np.copyto(S1, _unbroadcast(D2, S1.shape))
            np.multiply(S1, -1.0, out=S1)
            np.multiply(S1, inv, out=S1)
            np.add(gx, S1, out=gx)
            # neg_b -> m1 -> s1 -> x (fourth contribution)
            np.multiply(S2, -1.0, out=S2)
            np.multiply(S2, inv, out=S2)
            np.add(gx, S2, out=gx)
        runs.append(d_x)

    def run():
        for fn in runs:
            fn()
    return run


_BWD = {
    "add": _bwd_add,
    "mul": _bwd_mul,
    "pow": _bwd_pow,
    "matmul": _bwd_matmul,
    "exp": _bwd_exp,
    "log": _bwd_log,
    "tanh": _bwd_tanh,
    "sigmoid": _bwd_sigmoid,
    "relu": _bwd_relu,
    "leaky_relu": _bwd_leaky_relu,
    "abs": _bwd_abs,
    "softmax": _bwd_softmax,
    "log_softmax": _bwd_log_softmax,
    "sum": _bwd_sum,
    "max": _bwd_max,
    "reshape": _bwd_reshape,
    "swapaxes": _bwd_swapaxes,
    "transpose": _bwd_transpose,
    "expand_dims": _bwd_expand_dims,
    "squeeze": _bwd_squeeze,
    "getitem": _bwd_getitem,
    "concat": _bwd_concat,
    "stack": _bwd_stack,
    "dropout": _bwd_dropout,
    "conv2d": _bwd_conv2d,
    "avgpool2d": _bwd_avgpool2d,
}


# ----------------------------------------------------------------------
# Threaded backend: batch-parallel kernel partitioning
# ----------------------------------------------------------------------
#
# The threaded replay backend splits *batch-parallel-safe* kernels into
# per-slice thunks over the leading axis and runs them on the shared
# worker pool; everything else — cross-batch reductions (sum/dB/dbias),
# dropout's sequential RNG, conv's overlapping scatter, fancy-index
# backward — replays serially on the caller's thread.  Every slice
# computes exactly the rows the serial kernel would (elementwise ufuncs,
# row-wise softmax, and m-split GEMMs are all row-independent), so a
# threaded replay is bitwise identical to a serial replay of the same
# plan.

#: Don't split outputs smaller than this (elements): per-kernel pool
#: dispatch costs more than the sweep it parallelizes.
_PARTITION_MIN_ELEMENTS = 32768

_UNARY_FWD_UFUNC = {"exp": np.exp, "log": np.log, "tanh": np.tanh}


def _partition_fwd(node, scratch, workers):
    """Per-slice thunks for a batch-parallel-safe forward kernel, or
    None when the op must replay serially."""
    op = node._op
    out = node.data
    if out.ndim < 2 or out.size < _PARTITION_MIN_ELEMENTS:
        return None
    bounds = _slice_bounds(out.shape[0], workers)
    if len(bounds) < 2:
        return None

    if op in ("add", "mul"):
        a, b = node._prev[0].data, node._prev[1].data
        if a.shape != out.shape or b.shape != out.shape:
            return None   # broadcasting: slices would not align
        ufunc = np.add if op == "add" else np.multiply
        return [lambda lo=lo, hi=hi:
                ufunc(a[lo:hi], b[lo:hi], out=out[lo:hi])
                for lo, hi in bounds]

    if op in _UNARY_FWD_UFUNC:
        a = node._prev[0].data
        ufunc = _UNARY_FWD_UFUNC[op]
        return [lambda lo=lo, hi=hi: ufunc(a[lo:hi], out=out[lo:hi])
                for lo, hi in bounds]

    if op == "relu":
        a = node._prev[0].data
        return [lambda lo=lo, hi=hi:
                np.maximum(a[lo:hi], 0.0, out=out[lo:hi])
                for lo, hi in bounds]

    if op == "abs":
        a = node._prev[0].data
        return [lambda lo=lo, hi=hi: np.abs(a[lo:hi], out=out[lo:hi])
                for lo, hi in bounds]

    if op == "sigmoid":
        a = node._prev[0].data

        def sig_part(lo, hi):
            o = out[lo:hi]
            np.negative(a[lo:hi], out=o)
            np.exp(o, out=o)
            np.add(o, 1.0, out=o)
            np.divide(1.0, o, out=o)
        return [lambda lo=lo, hi=hi: sig_part(lo, hi) for lo, hi in bounds]

    if op == "leaky_relu":
        (slope,) = node._ctx
        a = node._prev[0].data

        def leaky_part(lo, hi):
            o = out[lo:hi]
            asl = a[lo:hi]
            np.multiply(asl, slope, out=o)
            np.copyto(o, asl, where=asl > 0.0)
        return [lambda lo=lo, hi=hi: leaky_part(lo, hi) for lo, hi in bounds]

    if op == "pow":
        (exponent,) = node._ctx
        a = node._prev[0].data
        return [lambda lo=lo, hi=hi:
                np.copyto(out[lo:hi], a[lo:hi] ** exponent)
                for lo, hi in bounds]

    if op == "softmax":
        (axis,) = node._ctx
        if axis % out.ndim == 0:
            return None   # normalizing over the split axis
        a = node._prev[0].data

        def sm_part(lo, hi):
            asl, o = a[lo:hi], out[lo:hi]
            np.subtract(asl, asl.max(axis=axis, keepdims=True), out=o)
            np.exp(o, out=o)
            np.divide(o, o.sum(axis=axis, keepdims=True), out=o)
        return [lambda lo=lo, hi=hi: sm_part(lo, hi) for lo, hi in bounds]

    if op == "log_softmax":
        (axis,) = node._ctx
        if axis % out.ndim == 0:
            return None
        a = node._prev[0].data

        def lsm_part(lo, hi):
            asl, o = a[lo:hi], out[lo:hi]
            np.subtract(asl, asl.max(axis=axis, keepdims=True), out=o)
            np.subtract(o, np.log(np.exp(o).sum(axis=axis, keepdims=True)),
                        out=o)
        return [lambda lo=lo, hi=hi: lsm_part(lo, hi) for lo, hi in bounds]

    if op == "matmul":
        a, b = node._prev[0].data, node._prev[1].data
        if b.ndim != 2:
            return None
        if a.ndim == 2:
            return [lambda lo=lo, hi=hi:
                    np.matmul(a[lo:hi], b, out=out[lo:hi])
                    for lo, hi in bounds]
        # m-split of the flattened-rows GEMM (rows independent) — only
        # when the serial kernel takes the same flattened path, so the
        # two backends sum identical k-panels.
        if (_is_v2(scratch) and a.flags.c_contiguous
                and out.flags.c_contiguous):
            a2 = a.reshape(-1, a.shape[-1])
            o2 = out.reshape(-1, out.shape[-1])
            rb = _slice_bounds(a2.shape[0], workers)
            if len(rb) < 2:
                return None
            return [lambda lo=lo, hi=hi:
                    np.matmul(a2[lo:hi], b, out=o2[lo:hi])
                    for lo, hi in rb]
        return None

    return None


def _bwd_store_flags(node, written):
    """Peek ``written`` (read-only, *before* the serial builder marks it)
    and return {id(parent): first-write?} in the builder's edge order."""
    flags: dict[int, bool] = {}
    for p in node._prev:
        if p.requires_grad and id(p) not in flags:
            flags[id(p)] = id(p) not in written
    return flags


def _sliced_sink(pg, store, bounds):
    """Per-slice store/accumulate closures for a same-shaped gradient
    contribution (the partitioned twin of :func:`_contrib_sink`)."""
    if store:
        return [lambda c, dst=pg[lo:hi]: np.copyto(dst, c)
                for lo, hi in bounds]
    return [lambda c, dst=pg[lo:hi]: np.add(dst, c, out=dst)
            for lo, hi in bounds]


def _partition_bwd(node, grads, written, scratch, workers):
    """Per-slice thunks for a batch-parallel-safe backward kernel, or
    None when the op must replay serially.

    Must run *before* the serial builder for the same node: the
    store-vs-accumulate decision peeks ``written`` without marking it
    (the serial builder, which always runs afterwards, does the
    marking).
    """
    op = node._op
    g = grads.get(id(node))
    if g is None or g.ndim < 2 or g.size < _PARTITION_MIN_ELEMENTS:
        return None
    bounds = _slice_bounds(g.shape[0], workers)
    if len(bounds) < 2:
        return None
    flags = _bwd_store_flags(node, written)

    if op == "add":
        sinks = []
        for p in node._prev:
            if not p.requires_grad:
                continue
            pg = grads[id(p)]
            if pg.shape != g.shape:
                return None
            sinks.append((pg, flags.pop(id(p), False)))
        if not sinks:
            return None

        def add_part(lo, hi):
            gsl = g[lo:hi]
            for pg, store in sinks:
                if store:
                    np.copyto(pg[lo:hi], gsl)
                else:
                    np.add(pg[lo:hi], gsl, out=pg[lo:hi])
        return [lambda lo=lo, hi=hi: add_part(lo, hi) for lo, hi in bounds]

    if op == "mul":
        a, b = node._prev
        edges = []
        for self_t, other_t in ((a, b), (b, a)):
            if not self_t.requires_grad:
                continue
            pg = grads[id(self_t)]
            other = other_t.data
            if pg.shape != g.shape or other.shape != g.shape:
                return None
            edges.append((pg, other, flags.pop(id(self_t), False)))
        if not edges:
            return None
        parts = []
        for w, (lo, hi) in enumerate(bounds):
            tmps = [None if store else
                    _lease(scratch, g[lo:hi].shape, g.dtype, ("mul_p", w, i))
                    for i, (pg, other, store) in enumerate(edges)]

            def mul_part(lo=lo, hi=hi, tmps=tmps):
                gsl = g[lo:hi]
                for (pg, other, store), tmp in zip(edges, tmps):
                    if store:
                        np.multiply(gsl, other[lo:hi], out=pg[lo:hi])
                    else:
                        np.multiply(gsl, other[lo:hi], out=tmp)
                        np.add(pg[lo:hi], tmp, out=pg[lo:hi])
            parts.append(mul_part)
        return parts

    if op in ("exp", "log", "tanh", "sigmoid", "relu", "leaky_relu",
              "abs", "pow"):
        parent = node._prev[0]
        if not parent.requires_grad:
            return None
        pg = grads[id(parent)]
        if pg.shape != g.shape:
            return None
        store = flags.get(id(parent), False)
        out = node.data
        a = parent.data
        ctx = node._ctx

        def unary_contrib(lo, hi):
            gsl = g[lo:hi]
            if op == "exp":
                return gsl * out[lo:hi]
            if op == "log":
                return gsl / a[lo:hi]
            if op == "tanh":
                return gsl * (1.0 - out[lo:hi] ** 2)
            if op == "sigmoid":
                return gsl * out[lo:hi] * (1.0 - out[lo:hi])
            if op == "relu":
                return gsl * (a[lo:hi] > 0.0)
            if op == "leaky_relu":
                return np.where(a[lo:hi] > 0.0, gsl, gsl * ctx[0])
            if op == "abs":
                return gsl * np.sign(a[lo:hi])
            return gsl * ctx[0] * a[lo:hi] ** (ctx[0] - 1.0)   # pow

        sinks = _sliced_sink(pg, store, bounds)
        return [lambda lo=lo, hi=hi, sink=sink: sink(unary_contrib(lo, hi))
                for (lo, hi), sink in zip(bounds, sinks)]

    if op == "softmax":
        (axis,) = node._ctx
        if axis % g.ndim == 0:
            return None   # reduction over the split axis
        parent = node._prev[0]
        if not parent.requires_grad:
            return None
        pg = grads[id(parent)]
        if pg.shape != g.shape:
            return None
        store = flags.get(id(parent), False)
        out = node.data
        parts = []
        for w, (lo, hi) in enumerate(bounds):
            tmp = (pg[lo:hi] if store else
                   _lease(scratch, g[lo:hi].shape, g.dtype, ("softmax_p", w)))

            def sm_part(lo=lo, hi=hi, tmp=tmp):
                gsl, osl = g[lo:hi], out[lo:hi]
                np.multiply(gsl, osl, out=tmp)
                dot = tmp.sum(axis=axis, keepdims=True)
                np.subtract(gsl, dot, out=tmp)
                np.multiply(osl, tmp, out=tmp)
                if not store:
                    np.add(pg[lo:hi], tmp, out=pg[lo:hi])
            parts.append(sm_part)
        return parts

    if op == "matmul":
        a_t, b_t = node._prev
        if a_t is b_t:
            return None   # dA and dB would race on one buffer
        a, b = a_t.data, b_t.data
        if not a_t.requires_grad or b.ndim != 2 or a.ndim < 2:
            return None
        pg = grads[id(a_t)]
        store_a = flags.get(id(a_t), False)
        b_T = b.T
        if a.ndim == 2:
            if pg.shape != (g.shape[0], b_T.shape[1]):
                return None
            g2, pg2 = g, pg
            rb = bounds
        else:
            # Mirror the serial v2 flattened-dA path's exact conditions;
            # under v1 the serial kernel runs a batched GEMM, so the op
            # stays serial there.
            if not (_is_v2(scratch) and g.flags.c_contiguous
                    and pg.flags.c_contiguous and pg.shape == a.shape):
                return None
            g2 = g.reshape(-1, g.shape[-1])
            pg2 = pg.reshape(-1, pg.shape[-1])
            rb = _slice_bounds(g2.shape[0], workers)
            if len(rb) < 2:
                return None
        parts = []
        for w, (lo, hi) in enumerate(rb):
            if store_a:
                parts.append(lambda lo=lo, hi=hi:
                             np.matmul(g2[lo:hi], b_T, out=pg2[lo:hi]))
            else:
                tmp = _lease(scratch, pg2[lo:hi].shape, pg.dtype, ("mm_p", w))

                def acc_part(lo=lo, hi=hi, tmp=tmp):
                    np.matmul(g2[lo:hi], b_T, out=tmp)
                    np.add(pg2[lo:hi], tmp, out=pg2[lo:hi])
                parts.append(acc_part)
        # dB is a cross-batch reduction — one serial thunk, run
        # concurrently with the dA slices (disjoint output buffers).
        if b_t.requires_grad:
            pgb = grads[id(b_t)]
            store_b = flags.get(id(b_t), False)
            if a.ndim == 2:
                if pgb.shape != (a.shape[1], g.shape[1]):
                    return None
                a2_T = a.T
            else:
                # Only when the serial v2 flattened-dB path applies (one
                # flat GEMM); any other association must stay serial.
                if not (_is_v2(scratch) and a.flags.c_contiguous
                        and g.flags.c_contiguous
                        and a.shape[:-2] == g.shape[:-2]):
                    return None
                a2_T = a.reshape(-1, a.shape[-1]).T
            g2b = g.reshape(-1, g.shape[-1]) if g.ndim > 2 else g
            if store_b:
                parts.append(lambda: np.matmul(a2_T, g2b, out=pgb))
            else:
                tmpb = _lease(scratch, pgb.shape, pgb.dtype, ("mm_p", "b"))

                def acc_b_part(tmpb=tmpb):
                    np.matmul(a2_T, g2b, out=tmpb)
                    np.add(pgb, tmpb, out=pgb)
                parts.append(acc_b_part)
        return parts

    return None


def _gate_fwd_parts(fusion: "_GateFusion", scratch, workers):
    """Channel-split thunks for the fused gate forward: each slice runs
    the per-channel kernel on a disjoint channel range with its own
    scratch lease (``tag``), writing disjoint channel planes."""
    channels = fusion.pool.data.shape[-3]
    cb = _slice_bounds(channels, workers)
    if len(cb) < 2:
        return None
    return [_fused_gate_forward(fusion, scratch,
                                channel_range=range(lo, hi), tag=w + 1)
            for w, (lo, hi) in enumerate(cb)]


def _gate_bwd_parts(fusion: "_GateFusion", grads, written, scratch, workers):
    """Channel-split thunks for the fused gate backward.  Must run
    before the serial builder: the store flag peeks ``written`` and is
    passed explicitly so the slices never re-mark it."""
    channels = fusion.pool.data.shape[-3]
    cb = _slice_bounds(channels, workers)
    if len(cb) < 2:
        return None
    parent = fusion.pool._prev[0]
    store = id(parent) not in written
    return [_fused_gate_backward(fusion, grads, written, scratch,
                                 channel_range=range(lo, hi), tag=w + 1,
                                 store=store)
            for w, (lo, hi) in enumerate(cb)]


# ----------------------------------------------------------------------
# Plan: the lowered program
# ----------------------------------------------------------------------

class _BufferPool:
    """Free-list allocator shared by the liveness passes.

    Buffers are recycled by exact (shape, dtype).  Both passes drive it
    with the same discipline — acquire every buffer *born* at a step
    before releasing the ones that *die* there — which guarantees a
    kernel never reads and writes the same array (a buffer consumed by
    step ``i`` only re-enters the free list after step ``i``'s births
    were served).
    """

    def __init__(self):
        self._free: dict[tuple, list[np.ndarray]] = {}
        self.allocated_bytes = 0
        self.live_bytes = 0
        self.peak_live_bytes = 0

    def acquire(self, shape, dtype) -> np.ndarray:
        key = (tuple(shape), np.dtype(dtype))
        bucket = self._free.get(key)
        if bucket:
            buf = bucket.pop()
        else:
            buf = np.empty(key[0], dtype=key[1])
            self.allocated_bytes += buf.nbytes
        self.live_bytes += buf.nbytes
        self.peak_live_bytes = max(self.peak_live_bytes, self.live_bytes)
        return buf

    def release(self, buf: np.ndarray) -> None:
        self._free.setdefault((buf.shape, buf.dtype), []).append(buf)
        self.live_bytes -= buf.nbytes

    def count_external(self, nbytes: int) -> None:
        """Account for a private (never-recycled) buffer."""
        self.allocated_bytes += nbytes


def _node_bytes(node: Tensor) -> int:
    """Approximate memory traffic of one kernel: output + read operands."""
    total = node.data.nbytes
    for p in node._prev:
        if p.data is not None:
            total += p.data.nbytes
    return total


def _fusion_bytes(fusion) -> int:
    total = 0
    for t in fusion.traffic_nodes:
        if t is not None and t.data is not None:
            total += t.data.nbytes
    return total


def _profile_ops(ops, meta, stats, kernels) -> float:
    """Time one replay of ``ops`` kernel-by-kernel into ``stats`` (keyed
    by op tag) and ``kernels`` (keyed by kernel index within the list)."""
    total = 0.0
    for i, (fn, (tag, nbytes)) in enumerate(zip(ops, meta)):
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        total += dt
        entry = stats.setdefault(tag, {"count": 0, "calls": 0,
                                       "seconds": 0.0, "bytes": 0})
        entry["calls"] += 1
        entry["seconds"] += dt
        entry["bytes"] += nbytes
        kern = kernels.setdefault((tag, i), {"kernel": f"{tag}#{i}",
                                             "seconds": 0.0, "bytes": nbytes})
        kern["seconds"] += dt
    return total


def _profile_report(stats, kernels, replays, total) -> dict:
    for entry in stats.values():
        entry["count"] = entry["calls"] // replays
        entry["calls"] = entry["calls"]
    top = sorted(kernels.values(), key=lambda k: -k["seconds"])[:5]
    for kern in top:
        kern["seconds"] /= replays
    return {
        "replays": replays,
        "seconds_per_replay": total / replays,
        "ops": dict(sorted(stats.items(), key=lambda kv: -kv[1]["seconds"])),
        "top_kernels": top,
    }


# ----------------------------------------------------------------------
# Folded optimizer: gradient clipping + parameter update as plan kernels
# ----------------------------------------------------------------------


def _build_update_ops(plan: "Plan", optimizer, grad_clip: float):
    """Lower ``clip_grad_norm`` + ``optimizer.step`` into flat kernels.

    The kernels capture the plan's leaf gradient buffers and the
    optimizer's own moment/scratch arrays, so a replayed epoch becomes a
    single flat kernel list — forward, backward, update — with no eager
    optimizer code on the hot path.  The arithmetic replicates
    :mod:`repro.nn.optim` expression for expression (same in-place
    sequence, same python-float norm summation order), so trajectories
    stay bit-identical to the unfused path.  Runtime-dependent scalars
    (the clip threshold test, Adam's bias correction) are recomputed on
    every replay, and the optimizer's ``_step_count`` is advanced so
    eager and folded steps can interleave consistently.
    """
    from .optim import SGD, Adam   # deferred: optim never imports compile

    grad_of = {id(t): g for t, g in plan.leaves}
    # After ``zero_grad`` + ``plan.backward()`` the parameters with
    # non-None grads are exactly the plan's leaves, in this order.
    entries = [(i, p, grad_of[id(p)])
               for i, p in enumerate(optimizer.parameters)
               if id(p) in grad_of]
    ops: list[Callable[[], None]] = []
    meta: list[tuple[str, int]] = []
    state: dict = {"scale": None, "norm": None}

    if grad_clip > 0:
        norm_bufs = [(g, plan._build.lease(g.shape, g.dtype, "opt_norm"))
                     for _, _, g in entries]
        max_norm = float(grad_clip)

        def clip_kernel():
            total = 0
            for g, ws in norm_bufs:
                np.power(g, 2, out=ws)
                total = total + float(ws.sum())
            total = float(np.sqrt(total))
            state["norm"] = total
            if total > max_norm and total > 0.0:
                scale = max_norm / total
                state["scale"] = scale
                for g, _ in norm_bufs:
                    np.multiply(g, scale, out=g)
            else:
                state["scale"] = None

        ops.append(clip_kernel)
        meta.append(("U:clip_grad_norm",
                     2 * sum(g.nbytes for _, _, g in entries)))

    if isinstance(optimizer, Adam):
        beta1, beta2 = optimizer.beta1, optimizer.beta2
        lr, eps, wd = optimizer.lr, optimizer.eps, optimizer.weight_decay

        def bias_kernel():
            optimizer._step_count += 1
            state["bias1"] = 1.0 - beta1 ** optimizer._step_count
            state["bias2"] = 1.0 - beta2 ** optimizer._step_count

        ops.append(bias_kernel)
        meta.append(("U:adam_bias", 0))
        for i, param, g in entries:

            def adam_kernel(g=g, m=optimizer._m[i], v=optimizer._v[i],
                            s1=optimizer._s1[i], s2=optimizer._s2[i],
                            data=param.data):
                grad = g
                if wd:
                    # grad + wd·data, staged through s2 (free until the
                    # divide phase, which runs after grad's last read).
                    np.multiply(data, wd, out=s2)
                    np.add(g, s2, out=s2)
                    grad = s2
                m *= beta1
                np.multiply(grad, 1.0 - beta1, out=s1)
                m += s1
                v *= beta2
                np.multiply(grad, 1.0 - beta2, out=s1)
                s1 *= grad
                v += s1
                np.divide(m, state["bias1"], out=s1)
                s1 *= lr
                np.divide(v, state["bias2"], out=s2)
                np.sqrt(s2, out=s2)
                s2 += eps
                s1 /= s2
                data -= s1

            ops.append(adam_kernel)
            meta.append(("U:adam", g.nbytes * 8))
    elif isinstance(optimizer, SGD):
        lr = optimizer.lr
        momentum = optimizer.momentum
        wd = optimizer.weight_decay
        for i, param, g in entries:

            def sgd_kernel(g=g, velocity=optimizer._velocity[i],
                           data=param.data,
                           ws=plan._build.lease(g.shape, g.dtype, "opt_sgd")):
                grad = g
                if wd:
                    np.multiply(data, wd, out=ws)
                    np.add(g, ws, out=ws)
                    grad = ws
                if momentum:
                    velocity *= momentum
                    velocity += grad
                    grad = velocity
                np.multiply(grad, lr, out=ws)
                data -= ws

            ops.append(sgd_kernel)
            meta.append(("U:sgd", g.nbytes * (4 if momentum else 2)))
    else:
        raise ValueError(
            f"cannot fold optimizer of type {type(optimizer).__name__}; "
            "expected Adam or SGD")
    return ops, meta, state


class Plan:
    """A recorded step lowered to flat forward/backward kernel lists.

    Built from the loss tensor of one eager step run under
    :func:`repro.nn.tensor.record_tape`.  Adopts every traced array as a
    permanent slot buffer: parameters contribute their (in-place updated)
    ``.data`` arrays, constants keep the values recorded at trace time,
    and each intermediate keeps the array the eager op allocated.
    Gradient buffers are preallocated per slot and never zeroed — a
    static first-write analysis turns the first contribution into a
    store.
    """

    def __init__(self, loss: Tensor, nodes: list[Tensor],
                 pool_gradients: bool = True, lowering: str | None = None,
                 backend: str | None = None, num_workers: int | None = None):
        if not loss.requires_grad or loss.size != 1:
            raise ValueError("plan requires a scalar loss with requires_grad")
        self.lowering = resolve_lowering(lowering)
        self.backend = resolve_backend(backend)
        self.num_workers = resolve_workers(num_workers) \
            if self.backend == "threaded" else 1
        self._worker_pool = (_WorkerPool.shared(self.num_workers)
                             if self.num_workers > 1 else None)
        recorded = {id(n) for n in nodes}
        # Reachable-from-loss subgraph (the part that owes gradients).
        reachable: dict[int, Tensor] = {}
        stack = [loss]
        while stack:
            t = stack.pop()
            if id(t) in reachable:
                continue
            reachable[id(t)] = t
            if t._prev and id(t) not in recorded:
                raise RuntimeError(
                    "loss depends on graph nodes created outside the "
                    "recorded step; build all differentiable state inside "
                    "the loss function")
            stack.extend(t._prev)

        self._loss_data = loss.data
        # Gate-chain fusion first: its nodes get contiguous channel-first
        # buffers (the eager views are channel-last, which would make the
        # per-channel blocked kernels strided) — before any builder or
        # gradient buffer captures a layout.
        fusions = _find_gate_fusions(nodes)
        # LayerNorm chains fuse only under the v2 lowering: v1 keeps the
        # generic per-node kernels as the honest comparison baseline.
        ln_fusions = (_find_layernorm_fusions(nodes)
                      if self.lowering == "v2" else [])
        fuse_fwd_head = {id(f.pool): f for f in fusions}
        fuse_fwd_head.update({id(f.s1): f for f in ln_fusions})
        fuse_fwd_skip = {id(t) for f in fusions for t in f.fused_away}
        fuse_fwd_skip.update(id(t) for f in ln_fusions for t in f.fused_away)
        fuse_bwd_head = {id(f.mul): f for f in fusions}
        fuse_bwd_head.update({id(f.out): f for f in ln_fusions})
        fuse_bwd_skip = {id(t) for f in fusions
                         for t in (f.pool, f.gate, f.add) if t is not None}
        fuse_bwd_skip.update(id(t) for f in ln_fusions
                             for t in f.bwd_fused_away)
        for fusion in fusions:
            targets = [fusion.pool, fusion.gate, fusion.mul]
            # The pool's input too: channel-sliced reads of a channel-last
            # array touch one cache line per element (a 16x traffic blow-
            # up); one contiguous materialization up front is far cheaper.
            # Views and leaves keep their buffers (a view's noop forward
            # and a parameter's identity both depend on them).
            parent = fusion.pool._prev[0]
            if parent._prev and not _is_view(parent):
                targets.append(parent)
            for t in targets:
                if not t.data.flags.c_contiguous:
                    t.data = np.ascontiguousarray(t.data)

        # Gradient buffers are C-contiguous: the fusion pass above already
        # normalized the conv path's channel-last activations, and BLAS
        # wants contiguous `out=` targets for the direct matmul-backward
        # fast path.  Fused-away intermediates keep their gradients in
        # kernel-local scratch instead.
        grads = self._allocate_gradients(loss, nodes, reachable,
                                         fuse_bwd_head, fuse_bwd_skip,
                                         pool_gradients)
        grads[id(loss)][...] = 1.0   # seed; loss has no consumers
        self._grads = grads

        build = _BuildContext(self.lowering, self.num_workers)
        scratch: dict = {_BuildContext.KEY: build}
        self._build = build
        threaded = self._worker_pool is not None
        self._forward_ops: list[Callable[[], None]] = []
        self._forward_meta: list[tuple[str, int]] = []
        #: Aligned with _forward_ops: per-slice thunk lists for the
        #: threaded backend (None = replay the serial kernel).
        self._forward_parts: list[list | None] = []
        for node in nodes:
            if id(node) in fuse_fwd_skip:
                continue
            if id(node) in fuse_fwd_head:
                fusion = fuse_fwd_head[id(node)]
                if isinstance(fusion, _LNFusion):
                    self._forward_ops.append(
                        _fused_ln_forward(fusion, scratch))
                    self._forward_meta.append(
                        ("F:fused_layernorm", _fusion_bytes(fusion)))
                    self._forward_parts.append(None)
                else:
                    self._forward_ops.append(
                        _fused_gate_forward(fusion, scratch))
                    self._forward_meta.append(
                        ("F:fused_gate", _fusion_bytes(fusion)))
                    self._forward_parts.append(
                        _gate_fwd_parts(fusion, scratch, self.num_workers)
                        if threaded else None)
                continue
            builder = _FWD.get(node._op)
            if builder is None:
                raise NotImplementedError(
                    f"op {node._op!r} has no compiled forward kernel")
            fn = builder(node, scratch)
            if fn is not None:
                self._forward_ops.append(fn)
                self._forward_meta.append((f"F:{node._op}", _node_bytes(node)))
                self._forward_parts.append(
                    _partition_fwd(node, scratch, self.num_workers)
                    if threaded else None)

        self._backward_ops: list[Callable[[], None]] = []
        self._backward_meta: list[tuple[str, int]] = []
        self._backward_parts: list[list | None] = []
        written: set[int] = {id(loss)}
        for node in reversed(nodes):
            if id(node) not in reachable or id(node) in fuse_bwd_skip:
                continue
            if id(node) in fuse_bwd_head:
                fusion = fuse_bwd_head[id(node)]
                if isinstance(fusion, _LNFusion):
                    if node.requires_grad:
                        self._backward_ops.append(_fused_ln_backward(
                            fusion, grads, written, scratch))
                        self._backward_meta.append(
                            ("B:fused_layernorm", _fusion_bytes(fusion)))
                        self._backward_parts.append(None)
                    continue
                # Peek the store decision before the serial builder (the
                # marking call) consumes the first write.
                parts = (_gate_bwd_parts(fusion, grads, written, scratch,
                                         self.num_workers)
                         if threaded else None)
                self._backward_ops.append(_fused_gate_backward(
                    fusion, grads, written, scratch))
                self._backward_meta.append(
                    ("B:fused_gate", _fusion_bytes(fusion)))
                self._backward_parts.append(parts)
                continue
            builder = _BWD.get(node._op)
            if builder is None:
                raise NotImplementedError(
                    f"op {node._op!r} has no compiled backward kernel")
            parts = (_partition_bwd(node, grads, written, scratch,
                                    self.num_workers)
                     if threaded else None)
            fn = builder(node, grads, written, scratch)
            if fn is not None:
                self._backward_ops.append(fn)
                self._backward_meta.append((f"B:{node._op}", _node_bytes(node)))
                self._backward_parts.append(parts)
        self.num_fused_chains = len(fusions)
        self.num_fused_layernorms = len(ln_fusions)

        #: requires-grad leaves (parameters and gradcheck inputs) in
        #: discovery order, with their plan-owned gradient buffers.
        self.leaves = [(t, grads[tid]) for tid, t in reachable.items()
                       if t.requires_grad and not t._prev]
        self._param_buffers = [(t, t.data) for t, _ in self.leaves
                               if isinstance(t, Parameter)]
        self.op_counts: dict[str, int] = {}
        for node in nodes:
            self.op_counts[node._op] = self.op_counts.get(node._op, 0) + 1

        # Optimizer folding (see fuse_optimizer): empty until requested.
        self._update_ops: list[Callable[[], None]] = []
        self._update_meta: list[tuple[str, int]] = []
        self._update_state: dict = {}
        self.fused_optimizer = None

    # ------------------------------------------------------------------
    def _allocate_gradients(self, loss: Tensor, nodes: list[Tensor],
                            reachable: dict[int, Tensor],
                            fuse_bwd_head: dict, fuse_bwd_skip: set[int],
                            pool_gradients: bool) -> dict[int, np.ndarray]:
        """Assign a gradient buffer to every slot that needs one.

        With ``pool_gradients`` (the liveness pass) an interior slot's
        gradient is *live* only from the first backward kernel that
        writes it (its last consumer in forward order) until the slot's
        own backward kernel consumes it; afterwards the buffer returns to
        a free pool keyed on (shape, dtype) and is handed to the next
        slot whose gradient is born.  Buffers are released only *after*
        the consuming kernel, so a kernel never reads and writes the same
        array — the first write to a recycled buffer is always a store
        (the same static analysis that lets buffers skip zeroing).  Leaf
        gradients (the optimizer reads them after replay) and the
        once-seeded loss gradient stay persistent.  Without pooling, one
        buffer per slot for the plan's lifetime (the PR 2 layout).
        """
        needed = [(tid, t) for tid, t in reachable.items()
                  if t.requires_grad and tid not in fuse_bwd_skip]
        self._grad_bytes_unpooled = sum(
            t.data.nbytes for _, t in needed)
        self._pool_gradients = pool_gradients
        if not pool_gradients:
            grads = {tid: np.empty(t.data.shape, dtype=t.data.dtype)
                     for tid, t in needed}
            self._grad_bytes = self._grad_bytes_unpooled
            self._grad_peak_bytes = self._grad_bytes_unpooled
            return grads

        # Backward kernel order (one kernel per node; fused chains one
        # kernel at the mul node).
        bwd_nodes = [n for n in reversed(nodes)
                     if id(n) in reachable and id(n) not in fuse_bwd_skip]
        own_pos = {id(n): i for i, n in enumerate(bwd_nodes)}
        birth: dict[int, int] = {}
        for i, n in enumerate(bwd_nodes):
            if id(n) in fuse_bwd_head:
                targets = fuse_bwd_head[id(n)].grad_targets
            else:
                targets = tuple(p for p in n._prev if p.requires_grad)
            for p in targets:
                birth.setdefault(id(p), i)

        grads: dict[int, np.ndarray] = {}
        persistent_bytes = 0
        births_at: dict[int, list[Tensor]] = {}
        deaths_at: dict[int, list[int]] = {}
        for tid, t in needed:
            # Persistent: leaves (optimizer-visible), the loss seed, and
            # any slot the analysis cannot place (defensive).
            if (not t._prev or tid == id(loss) or tid not in birth
                    or tid not in own_pos):
                grads[tid] = np.empty(t.data.shape, dtype=t.data.dtype)
                persistent_bytes += grads[tid].nbytes
                continue
            births_at.setdefault(birth[tid], []).append(t)
            deaths_at.setdefault(own_pos[tid], []).append(tid)

        pool = _BufferPool()
        for i in range(len(bwd_nodes)):
            for t in births_at.get(i, ()):
                grads[id(t)] = pool.acquire(t.data.shape, t.data.dtype)
            # Release only after the kernel at i has consumed its grad.
            for tid in deaths_at.get(i, ()):
                pool.release(grads[tid])
        self._grad_bytes = persistent_bytes + pool.allocated_bytes
        self._grad_peak_bytes = persistent_bytes + pool.peak_live_bytes
        return grads

    def buffer_report(self) -> dict:
        """Gradient-buffer byte accounting (the liveness-pool metric).

        ``grad_buffer_bytes`` is what this plan actually allocated;
        ``grad_buffer_bytes_unpooled`` is the PR 2 one-buffer-per-slot
        footprint the pool replaces.
        """
        unpooled = self._grad_bytes_unpooled
        return {
            "pooled": self._pool_gradients,
            "grad_buffer_bytes": self._grad_bytes,
            "grad_buffer_peak_bytes": self._grad_peak_bytes,
            "grad_buffer_bytes_unpooled": unpooled,
            "grad_buffer_reduction": (
                1.0 - self._grad_bytes / unpooled if unpooled else 0.0),
            "kernel_scratch_bytes": self._build.scratch_bytes,
        }

    def profile(self, replays: int = 3, include_update: bool = False) -> dict:
        """Per-op-kind replay timing/byte histogram.

        Replays the plan ``replays`` times with a ``perf_counter`` pair
        around every kernel and aggregates by op tag (``F:matmul``,
        ``B:fused_gate``, ...).  This is a separate instrumented walk of
        the same kernel lists — :meth:`forward`/:meth:`backward` carry
        zero profiling overhead when it is not called.  Returns op-kind
        aggregates sorted by time plus the five hottest individual
        kernels (``tag#index``, seconds averaged per replay).

        ``include_update`` also times any folded optimizer kernels —
        note this *applies* ``replays`` real parameter updates, so only
        use it on throwaway models/benchmarks, never mid-training.
        """
        stats: dict[str, dict] = {}
        kernels: dict[tuple, dict] = {}
        total = 0.0
        for _ in range(max(1, replays)):
            total += _profile_ops(self._forward_ops, self._forward_meta,
                                  stats, kernels)
            total += _profile_ops(self._backward_ops, self._backward_meta,
                                  stats, kernels)
            if include_update and self._update_ops:
                total += _profile_ops(self._update_ops, self._update_meta,
                                      stats, kernels)
        return _profile_report(stats, kernels, max(1, replays), total)

    # ------------------------------------------------------------------
    @property
    def num_forward_ops(self) -> int:
        return len(self._forward_ops)

    @property
    def num_backward_ops(self) -> int:
        return len(self._backward_ops)

    def params_current(self) -> bool:
        """Whether every traced parameter still owns its adopted buffer
        (``load_state_dict`` and manual reassignment break this)."""
        return all(t.data is buf for t, buf in self._param_buffers)

    @property
    def num_threaded_ops(self) -> int:
        """Kernels the threaded backend replays as parallel slices."""
        return (sum(p is not None for p in self._forward_parts)
                + sum(p is not None for p in self._backward_parts))

    def forward(self) -> float:
        """Replay the forward pass in-place; returns the loss value."""
        pool = self._worker_pool
        if pool is None:
            for fn in self._forward_ops:
                fn()
        else:
            for fn, parts in zip(self._forward_ops, self._forward_parts):
                if parts is None:
                    fn()
                else:
                    pool.run(parts)
        return float(self._loss_data)

    def backward(self) -> None:
        """Replay the backward pass and bind leaf gradients.

        Leaf ``.grad`` attributes are pointed at the plan's reusable
        buffers (marked not-owned, so any later eager accumulation copies
        rather than corrupting them).
        """
        pool = self._worker_pool
        if pool is None:
            for fn in self._backward_ops:
                fn()
        else:
            for fn, parts in zip(self._backward_ops, self._backward_parts):
                if parts is None:
                    fn()
                else:
                    pool.run(parts)
        for t, buf in self.leaves:
            t.grad = buf
            t._grad_owned = False

    def replay(self) -> float:
        """One full step: forward + backward; returns the loss value."""
        value = self.forward()
        self.backward()
        return value

    # -- optimizer folding ---------------------------------------------
    def fuse_optimizer(self, optimizer, grad_clip: float = 0.0) -> None:
        """Append gradient clipping + the optimizer update to the plan.

        After fusing, :meth:`replay_step` runs one flat kernel list per
        epoch (forward, backward, clip, update) — bit-identical to
        ``plan.replay()`` followed by eager ``clip_grad_norm`` +
        ``optimizer.step()``.  Pass ``grad_clip <= 0`` to skip clipping,
        matching the eager loop's guard.
        """
        ops, meta, state = _build_update_ops(self, optimizer, grad_clip)
        self._update_ops = ops
        self._update_meta = meta
        self._update_state = state
        self.fused_optimizer = optimizer

    @property
    def num_update_ops(self) -> int:
        return len(self._update_ops)

    @property
    def last_grad_norm(self) -> float | None:
        """Pre-clip gradient norm from the most recent update replay
        (None before the first, or when fused without clipping)."""
        return self._update_state.get("norm")

    def update(self) -> None:
        """Replay the folded clip + optimizer-update kernels."""
        if not self._update_ops:
            raise RuntimeError(
                "no optimizer fused onto this plan; call fuse_optimizer "
                "first")
        for fn in self._update_ops:
            fn()

    def replay_step(self) -> float:
        """One full training epoch as a single flat kernel list:
        forward + backward + folded optimizer update."""
        value = self.forward()
        self.backward()
        self.update()
        return value


# ----------------------------------------------------------------------
# InferencePlan: the forward-only serving program
# ----------------------------------------------------------------------

#: Ops whose output can alias their parent's buffer (replayed as no-ops).
_VIEW_OPS = {"reshape", "swapaxes", "transpose", "expand_dims", "squeeze",
             "getitem"}


def _view_candidate(node: Tensor, shape: tuple[int, ...]) -> np.ndarray | None:
    """Rebuild ``node`` as a view of its parent's current buffer, or None
    when the op materializes a copy on that layout (e.g. a reshape of a
    non-contiguous view)."""
    op = node._op
    if op not in _VIEW_OPS:
        return None
    if op == "getitem" and not _is_basic_index(node._ctx[0]):
        return None
    parent = node._prev[0].data
    if op == "reshape":
        cand = parent.reshape(shape)
    elif op == "swapaxes":
        cand = parent.swapaxes(*node._ctx)
    elif op == "transpose":
        cand = parent.transpose(node._ctx[0])
    elif op == "expand_dims":
        cand = np.expand_dims(parent, node._ctx[0])
    elif op == "squeeze":
        cand = np.squeeze(parent, node._ctx[0])
    else:
        cand = parent[node._ctx[0]]
    if cand.shape != tuple(shape) or not np.may_share_memory(cand, parent):
        return None
    return cand


class InferencePlan:
    """A recorded forward pass lowered to flat in-place kernels.

    Built from the output tensor of one ``no_grad`` + ``eval()`` forward
    run captured by :func:`record_forward` (or from a deserialized
    :class:`repro.nn.plancache.PlanSpec`).  Differences from the training
    :class:`Plan`:

    - **forward only** — no gradient buffers, no backward kernels, and
      dropout is structurally absent (eval mode elides it; an active
      dropout is rejected at record time);
    - **rebindable inputs** — the declared ``inputs`` are slot buffers
      that :meth:`run` refills per request, so one plan serves every
      same-shaped batch;
    - **activation liveness pool** — with ``pool_buffers`` (default) an
      intermediate's buffer is recycled once its last consumer kernel has
      run, so resident memory is the live working set rather than one
      buffer per slot.  View chains share their root's buffer and extend
      its lifetime; fused gate-chain members are born at the chain head
      (the single fused kernel writes all of them there).  Buffers are
      released only after the consuming kernel, so no kernel ever reads
      and writes the same array.
    """

    def __init__(self, output: Tensor, nodes: list[Tensor],
                 inputs: Sequence[Tensor], params: Sequence[Tensor] | None = None,
                 pool_buffers: bool = True, lowering: str | None = None,
                 backend: str | None = None, num_workers: int | None = None):
        if not output._prev:
            raise ValueError("inference plan output must be a computed node")
        self.lowering = resolve_lowering(lowering)
        self.backend = resolve_backend(backend)
        self.num_workers = resolve_workers(num_workers) \
            if self.backend == "threaded" else 1
        self._worker_pool = (_WorkerPool.shared(self.num_workers)
                             if self.num_workers > 1 else None)
        recorded = {id(n) for n in nodes}
        reachable: dict[int, Tensor] = {}
        stack = [output]
        while stack:
            t = stack.pop()
            if id(t) in reachable:
                continue
            reachable[id(t)] = t
            if t._prev and id(t) not in recorded:
                raise RuntimeError(
                    "output depends on graph nodes created outside the "
                    "recorded forward pass; build the whole forward inside "
                    "the recording")
            stack.extend(t._prev)
        for t in inputs:
            if t._prev:
                raise ValueError("plan inputs must be leaf tensors")
        order = [n for n in nodes if id(n) in reachable]
        self._order = order

        # Fusion decisions first (they fix birth positions); consumers
        # are computed over live nodes only — dead branches never replay.
        fusions = _find_gate_fusions(order)
        ln_fusions = (_find_layernorm_fusions(order)
                      if self.lowering == "v2" else [])
        fuse_fwd_head = {id(f.pool): f for f in fusions}
        fuse_fwd_head.update({id(f.s1): f for f in ln_fusions})
        fuse_fwd_skip = {id(t) for f in fusions for t in f.fused_away}
        fuse_fwd_skip.update(id(t) for f in ln_fusions for t in f.fused_away)
        skip_alloc = {id(f.add) for f in fusions if f.add is not None}
        skip_alloc.update(id(t) for f in ln_fusions
                          for t in f.inference_dead)
        birth_override: dict[int, int] = {}
        pos = {id(n): i for i, n in enumerate(order)}
        for f in fusions:
            head = pos[id(f.pool)]
            birth_override[id(f.gate)] = head
            birth_override[id(f.mul)] = head
        for f in ln_fusions:
            # Only the affine output materializes; it is born when the
            # single fused kernel (at the chain head) runs.
            birth_override[id(f.out)] = pos[id(f.s1)]

        shapes = {id(n): n.data.shape for n in order}
        dtypes = {id(n): n.data.dtype for n in order}
        self._pooled = pool_buffers
        if pool_buffers:
            self._assign_buffers(order, output, shapes, dtypes,
                                 skip_alloc, birth_override)
        else:
            # Adopt the traced buffers as-is (the PR 2 layout): one array
            # per non-view slot for the plan's lifetime.
            self._slot_bytes_unpooled = sum(
                n.data.nbytes
                for n in order
                if id(n) not in skip_alloc and not _is_view(n))
            self._slot_bytes = self._slot_bytes_unpooled
            self._slot_peak_bytes = self._slot_bytes_unpooled

        build = _BuildContext(self.lowering, self.num_workers)
        scratch: dict = {_BuildContext.KEY: build}
        self._build = build
        threaded = self._worker_pool is not None
        self._forward_ops: list[Callable[[], None]] = []
        self._forward_meta: list[tuple[str, int]] = []
        self._forward_parts: list[list | None] = []
        for node in order:
            if id(node) in fuse_fwd_skip:
                continue
            if id(node) in fuse_fwd_head:
                fusion = fuse_fwd_head[id(node)]
                if isinstance(fusion, _LNFusion):
                    self._forward_ops.append(
                        _fused_ln_forward(fusion, scratch, inference=True))
                    self._forward_meta.append(
                        ("F:fused_layernorm", _fusion_bytes(fusion)))
                    self._forward_parts.append(None)
                else:
                    self._forward_ops.append(
                        _fused_gate_forward(fusion, scratch))
                    self._forward_meta.append(
                        ("F:fused_gate", _fusion_bytes(fusion)))
                    self._forward_parts.append(
                        _gate_fwd_parts(fusion, scratch, self.num_workers)
                        if threaded else None)
                continue
            builder = _FWD.get(node._op)
            if builder is None:
                raise NotImplementedError(
                    f"op {node._op!r} has no compiled forward kernel")
            fn = builder(node, scratch)
            if fn is not None:
                self._forward_ops.append(fn)
                self._forward_meta.append((f"F:{node._op}", _node_bytes(node)))
                self._forward_parts.append(
                    _partition_fwd(node, scratch, self.num_workers)
                    if threaded else None)

        self.num_fused_chains = len(fusions)
        self.num_fused_layernorms = len(ln_fusions)
        self.op_counts: dict[str, int] = {}
        for node in order:
            self.op_counts[node._op] = self.op_counts.get(node._op, 0) + 1
        self._inputs = list(inputs)
        self._input_arrays = [t.data for t in inputs]
        self._output = output.data
        self._param_buffers = ([(p, p.data) for p in params]
                               if params is not None else [])
        #: Residency hook: how many requests this plan has replayed.
        #: A long-lived serving process reads this (via
        #: ``PlanCache.resident_report`` / ``EmbeddingService.stats``)
        #: to see which resident plans are hot.
        self.replays = 0

    # ------------------------------------------------------------------
    def _assign_buffers(self, order, output, shapes, dtypes,
                        skip_alloc, birth_override) -> None:
        """The activation liveness pass: classify views, compute per-root
        last-use positions, then rebind every interior node to a pooled
        C-contiguous buffer (or a view of one)."""
        # Pass A: provisional view/root classification on the incoming
        # buffers.  Pooled roots are contiguous, so a pass-A view can
        # only become *more* viewable in pass C; drift the other way is
        # handled there by materializing a private buffer.
        root: dict[int, int] = {}
        is_view: set[int] = set()
        own_nodes: list[Tensor] = []
        unpooled = 0
        for n in order:
            if id(n) in skip_alloc:
                continue
            cand = _view_candidate(n, shapes[id(n)])
            if cand is not None:
                is_view.add(id(n))
                root[id(n)] = root.get(id(n._prev[0]), id(n._prev[0]))
            else:
                own_nodes.append(n)
                root[id(n)] = id(n)
                unpooled += n.data.nbytes
        self._slot_bytes_unpooled = unpooled

        # Pass B: last consumer position per storage root (a node's read
        # touches its root's buffer; leaves are their own roots and are
        # never pooled).
        last_use: dict[int, int] = {}
        for i, n in enumerate(order):
            for p in n._prev:
                last_use[root.get(id(p), id(p))] = i
        persistent = {root.get(id(output), id(output))}

        births_at: dict[int, list[Tensor]] = {}
        deaths_at: dict[int, list[Tensor]] = {}
        positions = {id(n): i for i, n in enumerate(order)}
        for n in own_nodes:
            b = birth_override.get(id(n), positions[id(n)])
            births_at.setdefault(b, []).append(n)
            if id(n) in persistent:
                continue
            d = last_use.get(id(n))
            if d is None:
                continue   # never read again (defensive): keep persistent
            deaths_at.setdefault(d, []).append(n)

        # Pass C: linear-scan allocation + final buffer binding.  Views
        # are rebuilt on their parents' final buffers in program order.
        pool = _BufferPool()
        for i, n in enumerate(order):
            for t in births_at.get(i, ()):
                t.data = pool.acquire(shapes[id(t)], dtypes[id(t)])
            if id(n) in skip_alloc:
                # Fused away entirely (the masked chain's add): the fused
                # kernel never touches its buffer.
                n.data = None
            elif id(n) in is_view:
                cand = _view_candidate(n, shapes[id(n)])
                if cand is None:
                    # Layout drift (pass-A view, pass-C copy): keep the
                    # materialized array as a private persistent buffer.
                    n.data = np.empty(shapes[id(n)], dtype=dtypes[id(n)])
                    pool.count_external(n.data.nbytes)
                else:
                    n.data = cand
            for t in deaths_at.get(i, ()):
                pool.release(t.data)
        self._slot_bytes = pool.allocated_bytes
        self._slot_peak_bytes = pool.peak_live_bytes

    # ------------------------------------------------------------------
    @property
    def num_forward_ops(self) -> int:
        return len(self._forward_ops)

    @property
    def num_threaded_ops(self) -> int:
        """Kernels the threaded backend replays as parallel slices."""
        return sum(p is not None for p in self._forward_parts)

    @property
    def inputs(self) -> list[Tensor]:
        return self._inputs

    def matches(self, params: Sequence[Tensor]) -> bool:
        """Whether this plan is bound to exactly these parameter objects
        and their arrays have not been swapped out."""
        if len(params) != len(self._param_buffers):
            return False
        return all(p is q and q.data is buf
                   for (q, buf), p in zip(self._param_buffers, params))

    def buffer_report(self) -> dict:
        """Activation-slot byte accounting (the serving-residency metric)."""
        unpooled = self._slot_bytes_unpooled
        return {
            "pooled": self._pooled,
            "slot_bytes": self._slot_bytes,
            "slot_peak_bytes": self._slot_peak_bytes,
            "slot_bytes_unpooled": unpooled,
            "slot_reduction": (1.0 - self._slot_bytes / unpooled
                               if unpooled else 0.0),
            "kernel_scratch_bytes": self._build.scratch_bytes,
        }

    def profile(self, replays: int = 3) -> dict:
        """Forward-replay timing/byte histogram (see :meth:`Plan.profile`).
        Replays on whatever inputs are currently bound to the slots."""
        stats: dict[str, dict] = {}
        kernels: dict[tuple, dict] = {}
        total = 0.0
        for _ in range(max(1, replays)):
            total += _profile_ops(self._forward_ops, self._forward_meta,
                                  stats, kernels)
        return _profile_report(stats, kernels, max(1, replays), total)

    def run(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        """Replay the forward pass on fresh inputs.

        Copies each request array into its slot (casting to the slot
        dtype, exactly as the eager path's ``Tensor(m)`` would) and runs
        the kernel list.  Returns the output buffer — a view owned by the
        plan; copy it before the next ``run`` if it must survive.
        """
        if len(arrays) != len(self._input_arrays):
            raise ValueError(f"plan expects {len(self._input_arrays)} "
                             f"inputs, got {len(arrays)}")
        for slot, arr in zip(self._input_arrays, arrays):
            src = np.asarray(arr)
            if src.shape != slot.shape:
                raise ValueError(f"input shape {src.shape} does not match "
                                 f"plan slot {slot.shape}")
            np.copyto(slot, src)
        pool = self._worker_pool
        if pool is None:
            for fn in self._forward_ops:
                fn()
        else:
            for fn, parts in zip(self._forward_ops, self._forward_parts):
                if parts is None:
                    fn()
                else:
                    pool.run(parts)
        self.replays += 1
        return self._output


# ----------------------------------------------------------------------
# CompiledStep: record/replay with automatic eager fallback
# ----------------------------------------------------------------------

class CompiledStep:
    """Record-once/replay-many executor for a fixed-shape training step.

    Parameters
    ----------
    loss_fn:
        Zero-argument callable returning the scalar loss tensor.  The
        first call (and any re-record) runs it eagerly under the tape
        recorder; replays never call it.
    signature_fn:
        Optional zero-argument callable returning a hashable signature of
        the step's shapes.  When the signature changes between calls the
        stale plan is dropped and the step falls back to one eager
        (re-recording) execution — the automatic shape-change fallback.
    optimizer, grad_clip:
        When an optimizer is given, clipping and the parameter update are
        folded into the plan (:meth:`Plan.fuse_optimizer`) and ``run()``
        performs the complete training step as one flat kernel list —
        callers must NOT clip or call ``optimizer.step()`` themselves.
        Without one, ``run()`` computes loss + all leaf gradients and
        callers clip/step exactly as in eager mode.
    """

    def __init__(self, loss_fn: Callable[[], Tensor],
                 signature_fn: Callable[[], Hashable] | None = None,
                 optimizer=None, grad_clip: float = 0.0,
                 lowering: str | None = None, backend: str | None = None,
                 num_workers: int | None = None):
        self._loss_fn = loss_fn
        self._signature_fn = signature_fn
        self._optimizer = optimizer
        self._grad_clip = grad_clip
        self._lowering = lowering
        self._backend = backend
        self._num_workers = num_workers
        self._plan: Plan | None = None
        self._signature: Hashable | None = None
        self.compile_count = 0   # number of (re-)recordings performed

    @property
    def plan(self) -> Plan | None:
        return self._plan

    def _stale(self, signature: Hashable | None) -> bool:
        if self._plan is None:
            return True
        if self._signature_fn is not None and signature != self._signature:
            return True
        return not self._plan.params_current()

    def run(self) -> float:
        """One training step (forward+backward, plus the folded update
        when an optimizer was given); returns the loss value."""
        signature = self._signature_fn() if self._signature_fn else None
        if self._stale(signature):
            return self._record(signature)
        if self._optimizer is not None:
            return self._plan.replay_step()
        return self._plan.replay()

    def _record(self, signature: Hashable | None) -> float:
        with record_tape() as nodes:
            loss = self._loss_fn()
        RECORD_STATS.training_records += 1
        self._plan = Plan(loss, nodes, lowering=self._lowering,
                          backend=self._backend,
                          num_workers=self._num_workers)
        if self._optimizer is not None:
            self._plan.fuse_optimizer(self._optimizer, self._grad_clip)
        self._signature = signature
        self.compile_count += 1
        # The eager trace already holds this step's forward values in the
        # adopted buffers; only the backward half needs replaying.
        self._plan.backward()
        if self._optimizer is not None:
            self._plan.update()
        return float(loss.data)


def compile_step(loss_fn: Callable[[], Tensor],
                 signature_fn: Callable[[], Hashable] | None = None,
                 optimizer=None, grad_clip: float = 0.0,
                 lowering: str | None = None, backend: str | None = None,
                 num_workers: int | None = None) -> CompiledStep:
    """Convenience constructor mirroring ``torch.compile``'s shape."""
    return CompiledStep(loss_fn, signature_fn, optimizer, grad_clip,
                        lowering=lowering, backend=backend,
                        num_workers=num_workers)
