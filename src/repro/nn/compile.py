"""Compiled training-step executor: record the autograd tape once, replay
it with preallocated buffers.

HAFusion trains full-batch for thousands of epochs, so every step has
identical shapes: the same ops, on the same buffers, with only the
parameter values changing between steps.  The eager engine nevertheless
rebuilds the whole Python tape each step — thousands of
:class:`~repro.nn.Tensor` objects, backward closures, and fresh numpy
allocations per epoch.  This module removes that cost:

- :func:`repro.nn.tensor.record_tape` captures one eager step's graph in
  creation order (creation order *is* execution order, which is what
  keeps stateful ops like dropout replayable);
- :class:`Plan` lowers the captured graph to a flat list of forward and
  backward kernels over preallocated slot buffers — no ``Tensor``
  construction, no closure allocation, in-place numpy kernels
  (``np.matmul(..., out=)``, ``np.exp(x, out=buf)``, fused
  softmax/log-softmax backward), and gradient buffers reused across
  epochs.  Pure view ops (reshape/swapaxes/slice of a fixed buffer)
  replay as no-ops;
- :class:`CompiledStep` wraps record + replay with an automatic eager
  fallback: when the step signature (e.g. input shapes) changes or a
  parameter array is replaced (``load_state_dict``), the step re-records
  by running eagerly once and continues compiled.

Replay arithmetic is operation-for-operation equivalent to the eager
tape's (locked down by ``tests/core/test_compiled_parity.py`` and the
compiled golden-trajectory test); the admissible differences are the
*order* in which fan-out gradients are accumulated and the separable
re-association inside the fused RegionSA gate kernels — pure
float-rounding effects, which is why parity is ≤1e-8 in float64 rather
than bit-exact.

Contract: a compiled step assumes a *static* step — constant inputs and
loss targets, with parameters the only state changing between replays
(exactly full-batch training).  Dropout stays exact: each ``dropout``
node redraws its mask from the same ``Generator`` in recorded order, so
the stream of draws matches what the eager step would have consumed
(dropout on a constant input is off-tape and therefore rejected at
record time rather than silently frozen).

Memory: a buffer-liveness pass pools gradient buffers by last-consumer
position — an interior slot's gradient buffer is recycled as soon as the
slot's own backward kernel has consumed it, so the resident set is the
live gradient window plus the leaf gradients rather than one buffer per
slot (the PR 2 layout, still available via ``pool_gradients=False`` and
reported by :meth:`Plan.buffer_report`).  The forward-only
:class:`InferencePlan` applies the same pass to activation slots, with
rebindable input buffers so one plan serves every same-shaped request;
:mod:`repro.nn.plancache` serializes those plans so repeated runs skip
the record epoch entirely.
"""

from __future__ import annotations

from typing import Callable, Hashable, NamedTuple, Sequence

import numpy as np

from .module import Parameter
from .tensor import Tensor, _is_basic_index, _unbroadcast, record_tape

__all__ = ["Plan", "InferencePlan", "CompiledStep", "compile_step",
           "record_forward", "RECORD_STATS", "RecordStats"]


class RecordStats:
    """Global counter of tape-record events (the expensive eager epochs).

    Every plan (re-)recording — a training step captured by
    :class:`CompiledStep` or an inference pass captured by
    :func:`record_forward` — bumps a counter here, so tests and benchmark
    harnesses can assert that a warm plan cache performs **zero** record
    epochs (`RECORD_STATS.reset(); ...; assert RECORD_STATS.total == 0`).
    """

    def __init__(self):
        self.training_records = 0
        self.inference_records = 0

    @property
    def total(self) -> int:
        return self.training_records + self.inference_records

    def reset(self) -> None:
        self.training_records = 0
        self.inference_records = 0


RECORD_STATS = RecordStats()


def record_forward(fn: Callable[[], Tensor]) -> tuple[Tensor, list[Tensor]]:
    """Run ``fn`` under a forward-only tape; returns (output, nodes).

    The standard capture step for :class:`InferencePlan`: call under
    ``no_grad`` with the model in ``eval()`` mode so no backward closures
    are built and dropout is elided.
    """
    with record_tape(forward=True) as nodes:
        output = fn()
    RECORD_STATS.inference_records += 1
    return output, nodes


def _mark(written: set[int], key: int) -> bool:
    """First write to a gradient buffer stores; later writes accumulate.

    Called at *build* time in exact edge-execution order, so the flag is
    static and replay never needs to zero gradient buffers.
    """
    if key in written:
        return False
    written.add(key)
    return True


def _contrib_sink(pg: np.ndarray, contrib_shape, store: bool) -> Callable:
    """Return ``fn(contribution)`` storing/accumulating into ``pg``,
    reducing broadcast axes first when the shapes differ."""
    if tuple(contrib_shape) == pg.shape:
        if store:
            return lambda c: np.copyto(pg, c)
        return lambda c: np.add(pg, c, out=pg)
    if store:
        return lambda c: np.copyto(pg, _unbroadcast(np.asarray(c), pg.shape))
    return lambda c: np.add(pg, _unbroadcast(np.asarray(c), pg.shape), out=pg)


# ----------------------------------------------------------------------
# Forward kernel builders: op tag -> fn(node, scratch) -> callable | None
# (None = no work at replay time, e.g. a pure view).  Every kernel is
# arithmetically identical to the eager op it replays.
# ----------------------------------------------------------------------

def _is_view(node: Tensor) -> bool:
    return (node.data.base is not None
            and np.may_share_memory(node.data, node._prev[0].data))


def _zeros_with_layout(shape, like: np.ndarray) -> np.ndarray:
    """Zeros of ``shape`` laid out in memory like ``like`` (same axis
    order by descending stride), so bulk copies between the two iterate
    both arrays contiguously.  Shapes may differ per axis."""
    order = sorted(range(len(shape)), key=lambda i: -like.strides[i])
    buf = np.zeros(tuple(shape[i] for i in order), dtype=like.dtype)
    return buf.transpose(np.argsort(order))


def _fwd_add(node, scratch):
    a, b = node._prev[0].data, node._prev[1].data
    out = node.data
    return lambda: np.add(a, b, out=out)


def _fwd_mul(node, scratch):
    a, b = node._prev[0].data, node._prev[1].data
    out = node.data
    return lambda: np.multiply(a, b, out=out)


def _fwd_pow(node, scratch):
    (exponent,) = node._ctx
    a, out = node._prev[0].data, node.data
    # ``a ** e`` (not np.power) so numpy's special-cased exponents
    # (2, 0.5, -1, -0.5) match the eager computation bit-for-bit.
    return lambda: np.copyto(out, a ** exponent)


def _fwd_matmul(node, scratch):
    a, b = node._prev[0].data, node._prev[1].data
    out = node.data
    if a.ndim >= 2 and b.ndim >= 2:
        return lambda: np.matmul(a, b, out=out)
    return lambda: np.copyto(out, a @ b)


def _fwd_exp(node, scratch):
    a, out = node._prev[0].data, node.data
    return lambda: np.exp(a, out=out)


def _fwd_log(node, scratch):
    a, out = node._prev[0].data, node.data
    return lambda: np.log(a, out=out)


def _fwd_tanh(node, scratch):
    a, out = node._prev[0].data, node.data
    return lambda: np.tanh(a, out=out)


def _fwd_sigmoid(node, scratch):
    a, out = node._prev[0].data, node.data

    def run():
        np.negative(a, out=out)
        np.exp(out, out=out)
        np.add(out, 1.0, out=out)
        np.divide(1.0, out, out=out)
    return run


def _fwd_relu(node, scratch):
    a, out = node._prev[0].data, node.data
    return lambda: np.maximum(a, 0.0, out=out)


def _fwd_leaky_relu(node, scratch):
    (slope,) = node._ctx
    a, out = node._prev[0].data, node.data

    def run():
        # out = a * where(a > 0, 1, slope): a*1.0 is bitwise a, so the
        # positive branch is a plain masked copy.
        np.multiply(a, slope, out=out)
        np.copyto(out, a, where=a > 0.0)
    return run


def _fwd_abs(node, scratch):
    a, out = node._prev[0].data, node.data
    return lambda: np.abs(a, out=out)


def _fwd_softmax(node, scratch):
    (axis,) = node._ctx
    a, out = node._prev[0].data, node.data

    def run():
        np.subtract(a, a.max(axis=axis, keepdims=True), out=out)
        np.exp(out, out=out)
        np.divide(out, out.sum(axis=axis, keepdims=True), out=out)
    return run


def _fwd_log_softmax(node, scratch):
    (axis,) = node._ctx
    a, out = node._prev[0].data, node.data

    def run():
        np.subtract(a, a.max(axis=axis, keepdims=True), out=out)
        np.subtract(out, np.log(np.exp(out).sum(axis=axis, keepdims=True)),
                    out=out)
    return run


def _fwd_sum(node, scratch):
    axis, keepdims = node._ctx
    a, out = node._prev[0].data, node.data
    return lambda: np.sum(a, axis=axis, keepdims=keepdims, out=out)


def _fwd_max(node, scratch):
    axis, keepdims = node._ctx
    a, out = node._prev[0].data, node.data
    return lambda: np.amax(a, axis=axis, keepdims=keepdims, out=out)


def _fwd_reshape(node, scratch):
    if _is_view(node):
        return None
    a, out = node._prev[0].data, node.data
    return lambda: np.copyto(out, a.reshape(out.shape))


def _fwd_swapaxes(node, scratch):
    if _is_view(node):
        return None
    ax1, ax2 = node._ctx
    a, out = node._prev[0].data, node.data
    return lambda: np.copyto(out, a.swapaxes(ax1, ax2))


def _fwd_transpose(node, scratch):
    if _is_view(node):
        return None
    (axes,) = node._ctx
    a, out = node._prev[0].data, node.data
    return lambda: np.copyto(out, a.transpose(axes))


def _fwd_expand_dims(node, scratch):
    return None if _is_view(node) else _fwd_reshape(node, scratch)


def _fwd_squeeze(node, scratch):
    return None if _is_view(node) else _fwd_reshape(node, scratch)


def _fwd_getitem(node, scratch):
    if _is_view(node):
        return None
    (index,) = node._ctx
    a, out = node._prev[0].data, node.data
    return lambda: np.copyto(out, a[index])


def _fwd_concat(node, scratch):
    (axis,) = node._ctx
    arrays = [p.data for p in node._prev]
    out = node.data
    return lambda: np.concatenate(arrays, axis=axis, out=out)


def _fwd_stack(node, scratch):
    (axis,) = node._ctx
    out = node.data
    ax = axis % out.ndim
    pairs = [(out[(slice(None),) * ax + (i,)], p.data)
             for i, p in enumerate(node._prev)]

    def run():
        for view, src in pairs:
            np.copyto(view, src)
    return run


def _fwd_dropout(node, scratch):
    p, rng, mask = node._ctx
    a, out = node._prev[0].data, node.data
    rand = np.empty(a.shape, dtype=np.float64)
    kept = np.empty(a.shape, dtype=bool)
    # Adopt the eagerly drawn mask as the plan buffer: the recording
    # step's backward then reads the exact mask its forward used.
    scratch[id(node)] = mask

    def run():
        # Same draw, same comparison, same division as the eager op, so
        # the rng stream and the mask values match an eager step exactly.
        rng.random(out=rand)
        np.greater_equal(rand, p, out=kept)
        np.copyto(mask, kept)
        np.divide(mask, 1.0 - p, out=mask)
        np.multiply(a, mask, out=out)
    return run


def _fwd_conv2d(node, scratch):
    kernel, pad, batched, eager_cols = node._ctx
    x = node._prev[0].data
    weight = node._prev[1].data
    bias = node._prev[2].data if len(node._prev) > 2 else None
    out = node.data
    data4 = x if batched else x[None]
    batch, channels, height, width = data4.shape
    out_channels = weight.shape[0]
    padded = np.zeros((batch, channels, height + 2 * pad, width + 2 * pad),
                      dtype=x.dtype)
    inner = padded[:, :, pad:pad + height, pad:pad + width]
    s = padded.strides
    # Patch view already laid out as (B, H, W, C, k, k) — one copy into a
    # preallocated buffer replaces _im2col's transpose+reshape copy.
    patches = np.lib.stride_tricks.as_strided(
        padded, shape=(batch, height, width, channels, kernel, kernel),
        strides=(s[0], s[2], s[3], s[1], s[2], s[3]), writeable=False)
    # Adopt the eager im2col buffer: the recording step's backward then
    # reads the exact patch matrix its forward produced.
    cols = eager_cols
    cols6 = cols.reshape(batch, height, width, channels, kernel, kernel)
    flat_w = weight.reshape(out_channels, -1)
    out4 = out if batched else out[None]
    scratch[id(node)] = cols
    # The eager output is a transposed *view* of the GEMM result; adopt
    # that base array as the matmul target so the replay, like the eager
    # op, never materializes the (B, O, H, W) layout.
    mm = out.base
    adopted = (mm is not None
               and mm.shape == (batch * height * width, out_channels))
    # Channel-first contiguous output (the gate-fusion normalization):
    # run the GEMM transposed — flat_w @ colsᵀ lands directly in the
    # (O, H·W) layout, so no transposition pass is ever materialized.
    transposed = (not adopted and batch == 1 and out4.flags.c_contiguous)
    if not (adopted or transposed):
        mm = np.empty((batch * height * width, out_channels), dtype=x.dtype)
    out_flat = out4.reshape(out_channels, -1) if transposed else None

    def run():
        np.copyto(inner, data4)
        np.copyto(cols6, patches)
        if transposed:
            np.matmul(flat_w, cols.T, out=out_flat)
            if bias is not None:
                np.add(out_flat, bias[:, None], out=out_flat)
            return
        np.matmul(cols, flat_w.T, out=mm)
        if bias is not None:
            np.add(mm, bias, out=mm)
        if not adopted:
            np.copyto(out4, mm.reshape(batch, height, width,
                                       out_channels).transpose(0, 3, 1, 2))
    return run


def _fwd_avgpool2d(node, scratch):
    kernel, pad = node._ctx
    a, out = node._prev[0].data, node.data
    height, width = a.shape[-2:]
    scale = 1.0 / (kernel * kernel)
    padded = _zeros_with_layout(
        a.shape[:-2] + (height + 2 * pad, width + 2 * pad), a)
    inner = padded[..., pad:pad + height, pad:pad + width]

    def run():
        np.copyto(inner, a)
        out.fill(0.0)
        for ky in range(kernel):
            for kx in range(kernel):
                np.add(out, padded[..., ky:ky + height, kx:kx + width],
                       out=out)
        np.multiply(out, scale, out=out)
    return run


_FWD = {
    "add": _fwd_add,
    "mul": _fwd_mul,
    "pow": _fwd_pow,
    "matmul": _fwd_matmul,
    "exp": _fwd_exp,
    "log": _fwd_log,
    "tanh": _fwd_tanh,
    "sigmoid": _fwd_sigmoid,
    "relu": _fwd_relu,
    "leaky_relu": _fwd_leaky_relu,
    "abs": _fwd_abs,
    "softmax": _fwd_softmax,
    "log_softmax": _fwd_log_softmax,
    "sum": _fwd_sum,
    "max": _fwd_max,
    "reshape": _fwd_reshape,
    "swapaxes": _fwd_swapaxes,
    "transpose": _fwd_transpose,
    "expand_dims": _fwd_expand_dims,
    "squeeze": _fwd_squeeze,
    "getitem": _fwd_getitem,
    "concat": _fwd_concat,
    "stack": _fwd_stack,
    "dropout": _fwd_dropout,
    "conv2d": _fwd_conv2d,
    "avgpool2d": _fwd_avgpool2d,
}

# ----------------------------------------------------------------------
# Backward kernel builders:
#   op tag -> fn(node, grads, written, scratch) -> callable | None
# ``grads`` maps id(tensor) -> preallocated gradient buffer; ``written``
# is the static first-write analysis driven by _mark().
# ----------------------------------------------------------------------

def _bwd_add(node, grads, written, scratch):
    g = grads[id(node)]
    sinks = []
    for p in node._prev:
        if p.requires_grad:
            sinks.append(_contrib_sink(grads[id(p)], g.shape,
                                       _mark(written, id(p))))

    def run():
        for sink in sinks:
            sink(g)
    return run


def _bwd_mul(node, grads, written, scratch):
    g = grads[id(node)]
    a, b = node._prev
    runs = []
    for self_t, other_t in ((a, b), (b, a)):
        if not self_t.requires_grad:
            continue
        pg = grads[id(self_t)]
        other = other_t.data
        store = _mark(written, id(self_t))
        if pg.shape == g.shape:
            if store:
                runs.append(lambda pg=pg, other=other:
                            np.multiply(g, other, out=pg))
            else:
                tmp = np.empty_like(g)

                def accumulate(pg=pg, other=other, tmp=tmp):
                    np.multiply(g, other, out=tmp)
                    np.add(pg, tmp, out=pg)
                runs.append(accumulate)
        else:
            sink = _contrib_sink(pg, g.shape, store)
            runs.append(lambda sink=sink, other=other: sink(g * other))

    def run():
        for fn in runs:
            fn()
    return run


def _bwd_pow(node, grads, written, scratch):
    (exponent,) = node._ctx
    g = grads[id(node)]
    parent = node._prev[0]
    a = parent.data
    sink = _contrib_sink(grads[id(parent)], g.shape, _mark(written, id(parent)))
    return lambda: sink(g * exponent * a ** (exponent - 1.0))


def _bwd_matmul(node, grads, written, scratch):
    g = grads[id(node)]
    a_t, b_t = node._prev
    a, b = a_t.data, b_t.data
    runs = []
    if a_t.requires_grad:
        pg = grads[id(a_t)]
        store = _mark(written, id(a_t))
        if b.ndim == 1:
            shape = g.shape + b.shape
            sink = _contrib_sink(pg, shape, store)
            runs.append(lambda sink=sink: sink(np.expand_dims(g, -1) * b))
        elif a.ndim == 1:
            axes = tuple(range(b.ndim - 2)) + (-1,)
            sink = _contrib_sink(pg, a.shape, store)
            runs.append(lambda sink=sink, axes=axes:
                        sink((np.expand_dims(g, -2) * b).sum(axis=axes)))
        else:
            b_T = b.swapaxes(-1, -2)
            shape = (np.broadcast_shapes(g.shape[:-2], b_T.shape[:-2])
                     + (g.shape[-2], b_T.shape[-1]))
            if store and tuple(shape) == pg.shape:
                runs.append(lambda pg=pg, b_T=b_T: np.matmul(g, b_T, out=pg))
            else:
                sink = _contrib_sink(pg, shape, store)
                runs.append(lambda sink=sink, b_T=b_T: sink(g @ b_T))
    if b_t.requires_grad:
        pg = grads[id(b_t)]
        store = _mark(written, id(b_t))
        if a.ndim == 1:
            if b.ndim == 1:
                sink = _contrib_sink(pg, b.shape, store)

                def run_b(sink=sink):
                    contrib = np.expand_dims(a, -1) * np.expand_dims(g, -2)
                    sink(contrib.sum(axis=tuple(range(contrib.ndim - 1))))
                runs.append(run_b)
            else:
                shape = np.broadcast_shapes(
                    (a.shape[0], 1), np.expand_dims(g, -2).shape)
                sink = _contrib_sink(pg, shape, store)
                runs.append(lambda sink=sink: sink(
                    np.expand_dims(a, -1) * np.expand_dims(g, -2)))
        elif b.ndim == 1:
            axes = tuple(range(a.ndim - 1))
            sink = _contrib_sink(pg, b.shape, store)
            runs.append(lambda sink=sink, axes=axes:
                        sink((np.expand_dims(g, -1) * a).sum(axis=axes)))
        else:
            a_T = a.swapaxes(-1, -2)
            shape = (np.broadcast_shapes(a_T.shape[:-2], g.shape[:-2])
                     + (a_T.shape[-2], g.shape[-1]))
            if store and tuple(shape) == pg.shape:
                runs.append(lambda pg=pg, a_T=a_T: np.matmul(a_T, g, out=pg))
            else:
                sink = _contrib_sink(pg, shape, store)
                runs.append(lambda sink=sink, a_T=a_T: sink(a_T @ g))

    def run():
        for fn in runs:
            fn()
    return run


def _bwd_exp(node, grads, written, scratch):
    g = grads[id(node)]
    parent = node._prev[0]
    out = node.data
    sink = _contrib_sink(grads[id(parent)], g.shape, _mark(written, id(parent)))
    return lambda: sink(g * out)


def _bwd_log(node, grads, written, scratch):
    g = grads[id(node)]
    parent = node._prev[0]
    a = parent.data
    sink = _contrib_sink(grads[id(parent)], g.shape, _mark(written, id(parent)))
    return lambda: sink(g / a)


def _bwd_tanh(node, grads, written, scratch):
    g = grads[id(node)]
    parent = node._prev[0]
    out = node.data
    sink = _contrib_sink(grads[id(parent)], g.shape, _mark(written, id(parent)))
    return lambda: sink(g * (1.0 - out ** 2))


def _bwd_sigmoid(node, grads, written, scratch):
    g = grads[id(node)]
    parent = node._prev[0]
    out = node.data
    sink = _contrib_sink(grads[id(parent)], g.shape, _mark(written, id(parent)))
    return lambda: sink(g * out * (1.0 - out))


def _bwd_relu(node, grads, written, scratch):
    g = grads[id(node)]
    parent = node._prev[0]
    a = parent.data
    sink = _contrib_sink(grads[id(parent)], g.shape, _mark(written, id(parent)))
    return lambda: sink(g * (a > 0.0))


def _bwd_leaky_relu(node, grads, written, scratch):
    (slope,) = node._ctx
    g = grads[id(node)]
    parent = node._prev[0]
    a = parent.data
    sink = _contrib_sink(grads[id(parent)], g.shape, _mark(written, id(parent)))
    # g * where(a > 0, 1, slope): the kept branch g*1.0 is bitwise g.
    return lambda: sink(np.where(a > 0.0, g, g * slope))


def _bwd_abs(node, grads, written, scratch):
    g = grads[id(node)]
    parent = node._prev[0]
    a = parent.data
    sink = _contrib_sink(grads[id(parent)], g.shape, _mark(written, id(parent)))
    return lambda: sink(g * np.sign(a))


def _bwd_softmax(node, grads, written, scratch):
    (axis,) = node._ctx
    g = grads[id(node)]
    parent = node._prev[0]
    out = node.data
    pg = grads[id(parent)]
    store = _mark(written, id(parent))
    # dx = out ⊙ (g − Σ g⊙out) staged through one buffer: the parent
    # grad itself when storing, a preallocated scratch when accumulating.
    tmp = pg if (store and pg.shape == g.shape) else np.empty_like(g)

    def run():
        np.multiply(g, out, out=tmp)
        dot = tmp.sum(axis=axis, keepdims=True)
        np.subtract(g, dot, out=tmp)
        np.multiply(out, tmp, out=tmp)
        if tmp is not pg:
            np.add(pg, tmp, out=pg)
    return run


def _bwd_log_softmax(node, grads, written, scratch):
    (axis,) = node._ctx
    g = grads[id(node)]
    parent = node._prev[0]
    out = node.data
    sink = _contrib_sink(grads[id(parent)], g.shape, _mark(written, id(parent)))

    def run():
        total = g.sum(axis=axis, keepdims=True)
        sink(g - np.exp(out) * total)
    return run


def _bwd_sum(node, grads, written, scratch):
    axis, keepdims = node._ctx
    g = grads[id(node)]
    parent = node._prev[0]
    pg = grads[id(parent)]
    store = _mark(written, id(parent))
    if axis is not None and not keepdims:
        axes = (axis,) if isinstance(axis, int) else axis
        expand = tuple(ax % parent.ndim for ax in axes)
    else:
        expand = None

    def run():
        ge = np.expand_dims(g, expand) if expand is not None else g
        if store:
            np.copyto(pg, ge)       # copyto broadcasts ge up to pg
        else:
            np.add(pg, ge, out=pg)
    return run


def _bwd_max(node, grads, written, scratch):
    axis, keepdims = node._ctx
    g = grads[id(node)]
    parent = node._prev[0]
    a = parent.data
    sink = _contrib_sink(grads[id(parent)], a.shape, _mark(written, id(parent)))

    def run():
        expanded = a.max(axis=axis, keepdims=True)
        mask = (a == expanded).astype(a.dtype)
        mask /= mask.sum(axis=axis, keepdims=True)
        ge = g
        if axis is not None and not keepdims:
            ge = np.expand_dims(g, axis)
        sink(mask * ge)
    return run


def _bwd_reshape(node, grads, written, scratch):
    g = grads[id(node)]
    parent = node._prev[0]
    shape = parent.shape
    sink = _contrib_sink(grads[id(parent)], shape, _mark(written, id(parent)))
    return lambda: sink(g.reshape(shape))


def _bwd_swapaxes(node, grads, written, scratch):
    ax1, ax2 = node._ctx
    g = grads[id(node)]
    parent = node._prev[0]
    sink = _contrib_sink(grads[id(parent)], parent.shape,
                         _mark(written, id(parent)))
    return lambda: sink(g.swapaxes(ax1, ax2))


def _bwd_transpose(node, grads, written, scratch):
    (axes,) = node._ctx
    inverse = np.argsort(axes)
    g = grads[id(node)]
    parent = node._prev[0]
    sink = _contrib_sink(grads[id(parent)], parent.shape,
                         _mark(written, id(parent)))
    return lambda: sink(g.transpose(inverse))


def _bwd_expand_dims(node, grads, written, scratch):
    (axis,) = node._ctx
    g = grads[id(node)]
    parent = node._prev[0]
    sink = _contrib_sink(grads[id(parent)], parent.shape,
                         _mark(written, id(parent)))
    return lambda: sink(g.squeeze(axis))


def _bwd_squeeze(node, grads, written, scratch):
    (axis,) = node._ctx
    g = grads[id(node)]
    parent = node._prev[0]
    sink = _contrib_sink(grads[id(parent)], parent.shape,
                         _mark(written, id(parent)))
    return lambda: sink(np.expand_dims(g, axis))


def _bwd_getitem(node, grads, written, scratch):
    (index,) = node._ctx
    g = grads[id(node)]
    parent = node._prev[0]
    pg = grads[id(parent)]
    store = _mark(written, id(parent))
    basic = _is_basic_index(index)

    def run():
        if store:
            pg.fill(0.0)            # a slice write covers pg only partially
        if basic:
            pg[index] += g
        else:
            np.add.at(pg, index, g)
    return run


def _bwd_concat(node, grads, written, scratch):
    (axis,) = node._ctx
    g = grads[id(node)]
    ax = axis % node.ndim
    runs = []
    offset = 0
    for p in node._prev:
        size = p.shape[ax]
        if p.requires_grad:
            idx = (slice(None),) * ax + (slice(offset, offset + size),)
            sink = _contrib_sink(grads[id(p)], p.shape, _mark(written, id(p)))
            runs.append(lambda sink=sink, idx=idx: sink(g[idx]))
        offset += size

    def run():
        for fn in runs:
            fn()
    return run


def _bwd_stack(node, grads, written, scratch):
    (axis,) = node._ctx
    g = grads[id(node)]
    ax = axis % node.ndim
    runs = []
    for i, p in enumerate(node._prev):
        if p.requires_grad:
            idx = (slice(None),) * ax + (i,)
            sink = _contrib_sink(grads[id(p)], p.shape, _mark(written, id(p)))
            runs.append(lambda sink=sink, idx=idx: sink(g[idx]))

    def run():
        for fn in runs:
            fn()
    return run


def _bwd_dropout(node, grads, written, scratch):
    g = grads[id(node)]
    parent = node._prev[0]
    mask = scratch[id(node)]
    pg = grads[id(parent)]
    store = _mark(written, id(parent))
    if store:
        return lambda: np.multiply(g, mask, out=pg)
    return lambda: np.add(pg, g * mask, out=pg)


def _bwd_conv2d(node, grads, written, scratch):
    kernel, pad, batched, _ = node._ctx
    g = grads[id(node)]
    x_t, w_t = node._prev[0], node._prev[1]
    bias_t = node._prev[2] if len(node._prev) > 2 else None
    x, weight = x_t.data, w_t.data
    cols = scratch[id(node)]
    data4_shape = x.shape if batched else (1,) + x.shape
    batch, channels, height, width = data4_shape
    out_channels = weight.shape[0]
    flat_w = weight.reshape(out_channels, -1)
    g4 = g if batched else g[None]
    # With a contiguous channel-first gradient (the gate-fusion layout)
    # the whole backward runs off the transposed (O, H·W) view — the
    # same dot products, no transposition pass.
    transposed = batch == 1 and g4.flags.c_contiguous
    if transposed:
        g_om = g4.reshape(out_channels, -1)
        gs4 = gflat = None
    else:
        g_om = None
        gs4 = np.empty((batch, height, width, out_channels), dtype=g.dtype)
        gflat = gs4.reshape(-1, out_channels)
    runs = []
    if w_t.requires_grad:
        wg = grads[id(w_t)]
        store = _mark(written, id(w_t))
        wg_flat = wg.reshape(out_channels, -1)
        if transposed:
            if store:
                runs.append(lambda: np.matmul(g_om, cols, out=wg_flat))
            else:
                runs.append(lambda: np.add(wg_flat, g_om @ cols, out=wg_flat))
        elif store:
            runs.append(lambda: np.matmul(gflat.T, cols, out=wg_flat))
        else:
            runs.append(lambda: np.add(
                wg, (gflat.T @ cols).reshape(wg.shape), out=wg))
    if bias_t is not None and bias_t.requires_grad:
        sink = _contrib_sink(grads[id(bias_t)], (out_channels,),
                             _mark(written, id(bias_t)))
        if transposed:
            runs.append(lambda: sink(g_om.sum(axis=1)))
        else:
            runs.append(lambda: sink(gflat.sum(axis=0)))
    if x_t.requires_grad:
        pg = grads[id(x_t)]
        store = _mark(written, id(x_t))
        gcols = np.empty((channels * kernel * kernel,
                          batch * height * width) if transposed else
                         (batch * height * width,
                          channels * kernel * kernel), dtype=g.dtype)
        if transposed:
            gcols6 = gcols.reshape(channels, kernel, kernel,
                                   batch, height, width)
        else:
            gcols6 = gcols.reshape(batch, height, width,
                                   channels, kernel, kernel)
        gpadded = np.empty((batch, channels, height + 2 * pad,
                            width + 2 * pad), dtype=g.dtype)
        crop = (gpadded[:, :, pad:-pad, pad:-pad] if pad else gpadded)

        def run_x():
            if transposed:
                np.matmul(flat_w.T, g_om, out=gcols)
            else:
                np.matmul(gflat, flat_w, out=gcols)
            gpadded.fill(0.0)
            for ky in range(kernel):
                for kx in range(kernel):
                    if transposed:
                        gpadded[:, :, ky:ky + height, kx:kx + width] += \
                            gcols6[:, ky, kx].swapaxes(0, 1)
                    else:
                        gpadded[:, :, ky:ky + height, kx:kx + width] += \
                            gcols6[:, :, :, :, ky, kx].transpose(0, 3, 1, 2)
            contrib = crop if batched else crop[0]
            if store:
                np.copyto(pg, contrib)
            else:
                np.add(pg, contrib, out=pg)
        runs.append(run_x)

    def run():
        if not transposed:
            np.copyto(gs4, g4.transpose(0, 2, 3, 1))
        for fn in runs:
            fn()
    return run


def _bwd_avgpool2d(node, grads, written, scratch):
    kernel, pad = node._ctx
    g = grads[id(node)]
    parent = node._prev[0]
    pg = grads[id(parent)]
    store = _mark(written, id(parent))
    height, width = parent.shape[-2:]
    scale = 1.0 / (kernel * kernel)
    gpadded = _zeros_with_layout(
        parent.shape[:-2] + (height + 2 * pad, width + 2 * pad), g)
    crop = gpadded[..., pad:-pad, pad:-pad] if pad else gpadded

    def run():
        gpadded.fill(0.0)
        for ky in range(kernel):
            for kx in range(kernel):
                gpadded[..., ky:ky + height, kx:kx + width] += g
        np.multiply(gpadded, scale, out=gpadded)
        if store:
            np.copyto(pg, crop)
        else:
            np.add(pg, crop, out=pg)
    return run


# ----------------------------------------------------------------------
# Gate-chain fusion (RegionSA Eq. 13-14): AvgPool2d -> softmax -> ⊙
# ----------------------------------------------------------------------
#
# The (c, n, n) correlation path is pure memory bandwidth: pool, gate
# softmax and the A' ⊙ softmax(A') product each sweep a multi-megabyte
# array that was just written.  Fusing the three ops into one
# channel-blocked kernel keeps the per-channel intermediates close to
# cache, and the 3x3 pool becomes two separable 3-tap passes.  Channels
# are independent for all three ops and the softmax rows are reduced
# per row either way, so the only deviation from the eager arithmetic
# is the re-association of the 9 pool additions (≈1e-16 relative
# rounding, covered by the ≤1e-8 parity budget).  The pattern is
# matched conservatively (each intermediate consumed only inside the
# chain); anything else falls back to the generic per-op kernels.
#
# The masked variant — softmax(A' + additive_key_mask) from the padded
# batches of the execution engine — fuses too: the additive mask is a
# constant (..., 1, 1, n) leaf, the extra ``add`` is folded into the
# per-channel softmax (its backward into the pool input is the identity),
# and the gradient never touches the mask, so the backward kernel is the
# unmasked one verbatim.

class _GateFusion(NamedTuple):
    """One fusable pool -> [+mask] -> softmax -> ⊙ chain."""

    pool: Tensor
    gate: Tensor
    mul: Tensor
    add: Tensor | None    # corr + mask (padded batches only); fused away
    mask: Tensor | None   # constant additive-mask leaf, read-only

    @property
    def fused_away(self) -> tuple[Tensor, ...]:
        """Interior nodes whose generic kernels the fusion replaces."""
        return (self.gate, self.mul) if self.add is None else \
            (self.gate, self.mul, self.add)


def _find_gate_fusions(nodes: list[Tensor]) -> list[_GateFusion]:
    consumers: dict[int, list[Tensor]] = {}
    for n in nodes:
        for p in n._prev:
            consumers.setdefault(id(p), []).append(n)
    fusions = []
    for mul in nodes:
        if mul._op != "mul" or len(mul._prev) != 2:
            continue
        pool, gate = mul._prev
        if pool._op != "avgpool2d" or gate._op != "softmax":
            continue
        if pool._ctx != (3, 1):   # separable 3-tap kernels below
            continue
        if pool.ndim < 3:
            continue
        scores = gate._prev[0]
        add = mask = None
        if scores is not pool:
            # Masked chain: softmax(pool + additive mask) where the mask
            # is a constant (..., 1, 1, n) leaf broadcast over channels
            # and query rows — the engine's additive_key_mask layout.
            if (scores._op != "add" or len(scores._prev) != 2
                    or scores._prev[0] is not pool):
                continue
            add, mask = scores, scores._prev[1]
            if mask._prev or mask.requires_grad:
                continue
            if (mask.ndim != pool.ndim or mask.shape[-3:-1] != (1, 1)
                    or mask.shape[-1] != pool.shape[-1]
                    or mask.shape[:-3] != pool.shape[:-3]):
                continue
            if add.shape != pool.shape:
                continue
            add_cons = consumers.get(id(add), [])
            if len(add_cons) != 1 or add_cons[0] is not gate:
                continue
        if gate._ctx[0] not in (-1, pool.ndim - 1):
            continue
        if not (pool.shape == gate.shape == mul.shape):
            continue
        first = add if add is not None else gate
        pool_cons = consumers.get(id(pool), [])
        gate_cons = consumers.get(id(gate), [])
        if len(pool_cons) != 2 or {id(c) for c in pool_cons} != {id(first), id(mul)}:
            continue
        if len(gate_cons) != 1 or gate_cons[0] is not mul:
            continue
        fusions.append(_GateFusion(pool, gate, mul, add, mask))
    return fusions


def _separable_avg3(src, dst, colbuf, scale):
    """Same-padding 3x3 uniform window sum of ``src`` into ``dst`` (times
    ``scale``) via two 3-tap passes.  The operator equals the eager
    9-window loop; only the order of the 9 additions differs (≈1e-16
    relative rounding).  Symmetric, so it is also its own adjoint —
    the backward pass reuses it on the gradient."""
    np.copyto(colbuf, src)
    colbuf[..., 1:, :] += src[..., :-1, :]
    colbuf[..., :-1, :] += src[..., 1:, :]
    np.copyto(dst, colbuf)
    dst[..., :, 1:] += colbuf[..., :, :-1]
    dst[..., :, :-1] += colbuf[..., :, 1:]
    np.multiply(dst, scale, out=dst)


def _fused_gate_forward(fusion: _GateFusion):
    pool, gate_n, mul_n = fusion.pool, fusion.gate, fusion.mul
    x = pool._prev[0].data
    corr, gate, gated = pool.data, gate_n.data, mul_n.data
    # Channel slice of the (..., 1, 1, n) additive mask: (..., 1, n),
    # broadcasting over the query rows exactly as the eager add did.
    madd = fusion.mask.data[..., 0, :, :] if fusion.mask is not None else None
    height, width = x.shape[-2:]
    channels = x.shape[-3]
    lead = x.shape[:-3]
    colbuf = np.empty(lead + (height, width), dtype=x.dtype)

    def run():
        for c in range(channels):
            cc = corr[..., c, :, :]
            gc = gate[..., c, :, :]
            _separable_avg3(x[..., c, :, :], cc, colbuf, 1.0 / 9.0)
            if madd is None:
                np.subtract(cc, cc.max(axis=-1, keepdims=True), out=gc)
            else:
                np.add(cc, madd, out=gc)
                np.subtract(gc, gc.max(axis=-1, keepdims=True), out=gc)
            np.exp(gc, out=gc)
            np.divide(gc, gc.sum(axis=-1, keepdims=True), out=gc)
            np.multiply(cc, gc, out=gated[..., c, :, :])
    return run


def _fused_gate_backward(fusion: _GateFusion, grads, written):
    pool, gate_n, mul_n = fusion.pool, fusion.gate, fusion.mul
    g_gated = grads[id(mul_n)]
    corr, gate = pool.data, gate_n.data
    parent = pool._prev[0]
    pg = grads[id(parent)]
    store = _mark(written, id(parent))
    height, width = corr.shape[-2:]
    channels = corr.shape[-3]
    lead = corr.shape[:-3]
    dcorr = np.empty(lead + (height, width), dtype=corr.dtype)
    dgate = np.empty_like(dcorr)
    tmp = np.empty_like(dcorr)
    colbuf = np.empty_like(dcorr)

    def run():
        for c in range(channels):
            gg = g_gated[..., c, :, :]
            cc = corr[..., c, :, :]
            gc = gate[..., c, :, :]
            # ⊙ backward, in parent order (corr, gate), then the fused
            # softmax backward accumulated into dcorr — the same edge
            # order the generic kernels execute.
            np.multiply(gg, gc, out=dcorr)
            np.multiply(gg, cc, out=dgate)
            np.multiply(dgate, gc, out=tmp)
            dot = tmp.sum(axis=-1, keepdims=True)
            np.subtract(dgate, dot, out=tmp)
            np.multiply(gc, tmp, out=tmp)
            np.add(dcorr, tmp, out=dcorr)
            # avgpool is self-adjoint: pooling the gradient IS the
            # backward scatter (same separable 3-tap operator).
            target = pg[..., c, :, :]
            if store:
                _separable_avg3(dcorr, target, colbuf, 1.0 / 9.0)
            else:
                _separable_avg3(dcorr, tmp, colbuf, 1.0 / 9.0)
                np.add(target, tmp, out=target)
    return run


_BWD = {
    "add": _bwd_add,
    "mul": _bwd_mul,
    "pow": _bwd_pow,
    "matmul": _bwd_matmul,
    "exp": _bwd_exp,
    "log": _bwd_log,
    "tanh": _bwd_tanh,
    "sigmoid": _bwd_sigmoid,
    "relu": _bwd_relu,
    "leaky_relu": _bwd_leaky_relu,
    "abs": _bwd_abs,
    "softmax": _bwd_softmax,
    "log_softmax": _bwd_log_softmax,
    "sum": _bwd_sum,
    "max": _bwd_max,
    "reshape": _bwd_reshape,
    "swapaxes": _bwd_swapaxes,
    "transpose": _bwd_transpose,
    "expand_dims": _bwd_expand_dims,
    "squeeze": _bwd_squeeze,
    "getitem": _bwd_getitem,
    "concat": _bwd_concat,
    "stack": _bwd_stack,
    "dropout": _bwd_dropout,
    "conv2d": _bwd_conv2d,
    "avgpool2d": _bwd_avgpool2d,
}


# ----------------------------------------------------------------------
# Plan: the lowered program
# ----------------------------------------------------------------------

class _BufferPool:
    """Free-list allocator shared by the liveness passes.

    Buffers are recycled by exact (shape, dtype).  Both passes drive it
    with the same discipline — acquire every buffer *born* at a step
    before releasing the ones that *die* there — which guarantees a
    kernel never reads and writes the same array (a buffer consumed by
    step ``i`` only re-enters the free list after step ``i``'s births
    were served).
    """

    def __init__(self):
        self._free: dict[tuple, list[np.ndarray]] = {}
        self.allocated_bytes = 0
        self.live_bytes = 0
        self.peak_live_bytes = 0

    def acquire(self, shape, dtype) -> np.ndarray:
        key = (tuple(shape), np.dtype(dtype))
        bucket = self._free.get(key)
        if bucket:
            buf = bucket.pop()
        else:
            buf = np.empty(key[0], dtype=key[1])
            self.allocated_bytes += buf.nbytes
        self.live_bytes += buf.nbytes
        self.peak_live_bytes = max(self.peak_live_bytes, self.live_bytes)
        return buf

    def release(self, buf: np.ndarray) -> None:
        self._free.setdefault((buf.shape, buf.dtype), []).append(buf)
        self.live_bytes -= buf.nbytes

    def count_external(self, nbytes: int) -> None:
        """Account for a private (never-recycled) buffer."""
        self.allocated_bytes += nbytes

class Plan:
    """A recorded step lowered to flat forward/backward kernel lists.

    Built from the loss tensor of one eager step run under
    :func:`repro.nn.tensor.record_tape`.  Adopts every traced array as a
    permanent slot buffer: parameters contribute their (in-place updated)
    ``.data`` arrays, constants keep the values recorded at trace time,
    and each intermediate keeps the array the eager op allocated.
    Gradient buffers are preallocated per slot and never zeroed — a
    static first-write analysis turns the first contribution into a
    store.
    """

    def __init__(self, loss: Tensor, nodes: list[Tensor],
                 pool_gradients: bool = True):
        if not loss.requires_grad or loss.size != 1:
            raise ValueError("plan requires a scalar loss with requires_grad")
        recorded = {id(n) for n in nodes}
        # Reachable-from-loss subgraph (the part that owes gradients).
        reachable: dict[int, Tensor] = {}
        stack = [loss]
        while stack:
            t = stack.pop()
            if id(t) in reachable:
                continue
            reachable[id(t)] = t
            if t._prev and id(t) not in recorded:
                raise RuntimeError(
                    "loss depends on graph nodes created outside the "
                    "recorded step; build all differentiable state inside "
                    "the loss function")
            stack.extend(t._prev)

        self._loss_data = loss.data
        # Gate-chain fusion first: its nodes get contiguous channel-first
        # buffers (the eager views are channel-last, which would make the
        # per-channel blocked kernels strided) — before any builder or
        # gradient buffer captures a layout.
        fusions = _find_gate_fusions(nodes)
        fuse_fwd_head = {id(f.pool): f for f in fusions}
        fuse_fwd_skip = {id(t) for f in fusions for t in f.fused_away}
        fuse_bwd_head = {id(f.mul): f for f in fusions}
        fuse_bwd_skip = {id(t) for f in fusions
                         for t in (f.pool, f.gate, f.add) if t is not None}
        for fusion in fusions:
            targets = [fusion.pool, fusion.gate, fusion.mul]
            # The pool's input too: channel-sliced reads of a channel-last
            # array touch one cache line per element (a 16x traffic blow-
            # up); one contiguous materialization up front is far cheaper.
            # Views and leaves keep their buffers (a view's noop forward
            # and a parameter's identity both depend on them).
            parent = fusion.pool._prev[0]
            if parent._prev and not _is_view(parent):
                targets.append(parent)
            for t in targets:
                if not t.data.flags.c_contiguous:
                    t.data = np.ascontiguousarray(t.data)

        # Gradient buffers are C-contiguous: the fusion pass above already
        # normalized the conv path's channel-last activations, and BLAS
        # wants contiguous `out=` targets for the direct matmul-backward
        # fast path.  Fused-away intermediates keep their gradients in
        # kernel-local scratch instead.
        grads = self._allocate_gradients(loss, nodes, reachable,
                                         fuse_bwd_head, fuse_bwd_skip,
                                         pool_gradients)
        grads[id(loss)][...] = 1.0   # seed; loss has no consumers
        self._grads = grads

        scratch: dict[int, object] = {}
        self._forward_ops: list[Callable[[], None]] = []
        for node in nodes:
            if id(node) in fuse_fwd_skip:
                continue
            if id(node) in fuse_fwd_head:
                self._forward_ops.append(
                    _fused_gate_forward(fuse_fwd_head[id(node)]))
                continue
            builder = _FWD.get(node._op)
            if builder is None:
                raise NotImplementedError(
                    f"op {node._op!r} has no compiled forward kernel")
            fn = builder(node, scratch)
            if fn is not None:
                self._forward_ops.append(fn)

        self._backward_ops: list[Callable[[], None]] = []
        written: set[int] = {id(loss)}
        for node in reversed(nodes):
            if id(node) not in reachable or id(node) in fuse_bwd_skip:
                continue
            if id(node) in fuse_bwd_head:
                self._backward_ops.append(_fused_gate_backward(
                    fuse_bwd_head[id(node)], grads, written))
                continue
            builder = _BWD.get(node._op)
            if builder is None:
                raise NotImplementedError(
                    f"op {node._op!r} has no compiled backward kernel")
            fn = builder(node, grads, written, scratch)
            if fn is not None:
                self._backward_ops.append(fn)
        self.num_fused_chains = len(fusions)

        #: requires-grad leaves (parameters and gradcheck inputs) in
        #: discovery order, with their plan-owned gradient buffers.
        self.leaves = [(t, grads[tid]) for tid, t in reachable.items()
                       if t.requires_grad and not t._prev]
        self._param_buffers = [(t, t.data) for t, _ in self.leaves
                               if isinstance(t, Parameter)]
        self.op_counts: dict[str, int] = {}
        for node in nodes:
            self.op_counts[node._op] = self.op_counts.get(node._op, 0) + 1

    # ------------------------------------------------------------------
    def _allocate_gradients(self, loss: Tensor, nodes: list[Tensor],
                            reachable: dict[int, Tensor],
                            fuse_bwd_head: dict, fuse_bwd_skip: set[int],
                            pool_gradients: bool) -> dict[int, np.ndarray]:
        """Assign a gradient buffer to every slot that needs one.

        With ``pool_gradients`` (the liveness pass) an interior slot's
        gradient is *live* only from the first backward kernel that
        writes it (its last consumer in forward order) until the slot's
        own backward kernel consumes it; afterwards the buffer returns to
        a free pool keyed on (shape, dtype) and is handed to the next
        slot whose gradient is born.  Buffers are released only *after*
        the consuming kernel, so a kernel never reads and writes the same
        array — the first write to a recycled buffer is always a store
        (the same static analysis that lets buffers skip zeroing).  Leaf
        gradients (the optimizer reads them after replay) and the
        once-seeded loss gradient stay persistent.  Without pooling, one
        buffer per slot for the plan's lifetime (the PR 2 layout).
        """
        needed = [(tid, t) for tid, t in reachable.items()
                  if t.requires_grad and tid not in fuse_bwd_skip]
        self._grad_bytes_unpooled = sum(
            t.data.nbytes for _, t in needed)
        self._pool_gradients = pool_gradients
        if not pool_gradients:
            grads = {tid: np.empty(t.data.shape, dtype=t.data.dtype)
                     for tid, t in needed}
            self._grad_bytes = self._grad_bytes_unpooled
            self._grad_peak_bytes = self._grad_bytes_unpooled
            return grads

        # Backward kernel order (one kernel per node; fused chains one
        # kernel at the mul node).
        bwd_nodes = [n for n in reversed(nodes)
                     if id(n) in reachable and id(n) not in fuse_bwd_skip]
        own_pos = {id(n): i for i, n in enumerate(bwd_nodes)}
        birth: dict[int, int] = {}
        for i, n in enumerate(bwd_nodes):
            if id(n) in fuse_bwd_head:
                parent = fuse_bwd_head[id(n)].pool._prev[0]
                targets = (parent,) if parent.requires_grad else ()
            else:
                targets = tuple(p for p in n._prev if p.requires_grad)
            for p in targets:
                birth.setdefault(id(p), i)

        grads: dict[int, np.ndarray] = {}
        persistent_bytes = 0
        births_at: dict[int, list[Tensor]] = {}
        deaths_at: dict[int, list[int]] = {}
        for tid, t in needed:
            # Persistent: leaves (optimizer-visible), the loss seed, and
            # any slot the analysis cannot place (defensive).
            if (not t._prev or tid == id(loss) or tid not in birth
                    or tid not in own_pos):
                grads[tid] = np.empty(t.data.shape, dtype=t.data.dtype)
                persistent_bytes += grads[tid].nbytes
                continue
            births_at.setdefault(birth[tid], []).append(t)
            deaths_at.setdefault(own_pos[tid], []).append(tid)

        pool = _BufferPool()
        for i in range(len(bwd_nodes)):
            for t in births_at.get(i, ()):
                grads[id(t)] = pool.acquire(t.data.shape, t.data.dtype)
            # Release only after the kernel at i has consumed its grad.
            for tid in deaths_at.get(i, ()):
                pool.release(grads[tid])
        self._grad_bytes = persistent_bytes + pool.allocated_bytes
        self._grad_peak_bytes = persistent_bytes + pool.peak_live_bytes
        return grads

    def buffer_report(self) -> dict:
        """Gradient-buffer byte accounting (the liveness-pool metric).

        ``grad_buffer_bytes`` is what this plan actually allocated;
        ``grad_buffer_bytes_unpooled`` is the PR 2 one-buffer-per-slot
        footprint the pool replaces.
        """
        unpooled = self._grad_bytes_unpooled
        return {
            "pooled": self._pool_gradients,
            "grad_buffer_bytes": self._grad_bytes,
            "grad_buffer_peak_bytes": self._grad_peak_bytes,
            "grad_buffer_bytes_unpooled": unpooled,
            "grad_buffer_reduction": (
                1.0 - self._grad_bytes / unpooled if unpooled else 0.0),
        }

    # ------------------------------------------------------------------
    @property
    def num_forward_ops(self) -> int:
        return len(self._forward_ops)

    @property
    def num_backward_ops(self) -> int:
        return len(self._backward_ops)

    def params_current(self) -> bool:
        """Whether every traced parameter still owns its adopted buffer
        (``load_state_dict`` and manual reassignment break this)."""
        return all(t.data is buf for t, buf in self._param_buffers)

    def forward(self) -> float:
        """Replay the forward pass in-place; returns the loss value."""
        for fn in self._forward_ops:
            fn()
        return float(self._loss_data)

    def backward(self) -> None:
        """Replay the backward pass and bind leaf gradients.

        Leaf ``.grad`` attributes are pointed at the plan's reusable
        buffers (marked not-owned, so any later eager accumulation copies
        rather than corrupting them).
        """
        for fn in self._backward_ops:
            fn()
        for t, buf in self.leaves:
            t.grad = buf
            t._grad_owned = False

    def replay(self) -> float:
        """One full step: forward + backward; returns the loss value."""
        value = self.forward()
        self.backward()
        return value


# ----------------------------------------------------------------------
# InferencePlan: the forward-only serving program
# ----------------------------------------------------------------------

#: Ops whose output can alias their parent's buffer (replayed as no-ops).
_VIEW_OPS = {"reshape", "swapaxes", "transpose", "expand_dims", "squeeze",
             "getitem"}


def _view_candidate(node: Tensor, shape: tuple[int, ...]) -> np.ndarray | None:
    """Rebuild ``node`` as a view of its parent's current buffer, or None
    when the op materializes a copy on that layout (e.g. a reshape of a
    non-contiguous view)."""
    op = node._op
    if op not in _VIEW_OPS:
        return None
    if op == "getitem" and not _is_basic_index(node._ctx[0]):
        return None
    parent = node._prev[0].data
    if op == "reshape":
        cand = parent.reshape(shape)
    elif op == "swapaxes":
        cand = parent.swapaxes(*node._ctx)
    elif op == "transpose":
        cand = parent.transpose(node._ctx[0])
    elif op == "expand_dims":
        cand = np.expand_dims(parent, node._ctx[0])
    elif op == "squeeze":
        cand = np.squeeze(parent, node._ctx[0])
    else:
        cand = parent[node._ctx[0]]
    if cand.shape != tuple(shape) or not np.may_share_memory(cand, parent):
        return None
    return cand


class InferencePlan:
    """A recorded forward pass lowered to flat in-place kernels.

    Built from the output tensor of one ``no_grad`` + ``eval()`` forward
    run captured by :func:`record_forward` (or from a deserialized
    :class:`repro.nn.plancache.PlanSpec`).  Differences from the training
    :class:`Plan`:

    - **forward only** — no gradient buffers, no backward kernels, and
      dropout is structurally absent (eval mode elides it; an active
      dropout is rejected at record time);
    - **rebindable inputs** — the declared ``inputs`` are slot buffers
      that :meth:`run` refills per request, so one plan serves every
      same-shaped batch;
    - **activation liveness pool** — with ``pool_buffers`` (default) an
      intermediate's buffer is recycled once its last consumer kernel has
      run, so resident memory is the live working set rather than one
      buffer per slot.  View chains share their root's buffer and extend
      its lifetime; fused gate-chain members are born at the chain head
      (the single fused kernel writes all of them there).  Buffers are
      released only after the consuming kernel, so no kernel ever reads
      and writes the same array.
    """

    def __init__(self, output: Tensor, nodes: list[Tensor],
                 inputs: Sequence[Tensor], params: Sequence[Tensor] | None = None,
                 pool_buffers: bool = True):
        if not output._prev:
            raise ValueError("inference plan output must be a computed node")
        recorded = {id(n) for n in nodes}
        reachable: dict[int, Tensor] = {}
        stack = [output]
        while stack:
            t = stack.pop()
            if id(t) in reachable:
                continue
            reachable[id(t)] = t
            if t._prev and id(t) not in recorded:
                raise RuntimeError(
                    "output depends on graph nodes created outside the "
                    "recorded forward pass; build the whole forward inside "
                    "the recording")
            stack.extend(t._prev)
        for t in inputs:
            if t._prev:
                raise ValueError("plan inputs must be leaf tensors")
        order = [n for n in nodes if id(n) in reachable]
        self._order = order

        # Fusion decisions first (they fix birth positions); consumers
        # are computed over live nodes only — dead branches never replay.
        fusions = _find_gate_fusions(order)
        fuse_fwd_head = {id(f.pool): f for f in fusions}
        fuse_fwd_skip = {id(t) for f in fusions for t in f.fused_away}
        skip_alloc = {id(f.add) for f in fusions if f.add is not None}
        birth_override: dict[int, int] = {}
        pos = {id(n): i for i, n in enumerate(order)}
        for f in fusions:
            head = pos[id(f.pool)]
            birth_override[id(f.gate)] = head
            birth_override[id(f.mul)] = head

        shapes = {id(n): n.data.shape for n in order}
        dtypes = {id(n): n.data.dtype for n in order}
        self._pooled = pool_buffers
        if pool_buffers:
            self._assign_buffers(order, output, shapes, dtypes,
                                 skip_alloc, birth_override)
        else:
            # Adopt the traced buffers as-is (the PR 2 layout): one array
            # per non-view slot for the plan's lifetime.
            self._slot_bytes_unpooled = sum(
                n.data.nbytes
                for n in order
                if id(n) not in skip_alloc and not _is_view(n))
            self._slot_bytes = self._slot_bytes_unpooled
            self._slot_peak_bytes = self._slot_bytes_unpooled

        scratch: dict[int, object] = {}
        self._forward_ops: list[Callable[[], None]] = []
        for node in order:
            if id(node) in fuse_fwd_skip:
                continue
            if id(node) in fuse_fwd_head:
                self._forward_ops.append(
                    _fused_gate_forward(fuse_fwd_head[id(node)]))
                continue
            builder = _FWD.get(node._op)
            if builder is None:
                raise NotImplementedError(
                    f"op {node._op!r} has no compiled forward kernel")
            fn = builder(node, scratch)
            if fn is not None:
                self._forward_ops.append(fn)

        self.num_fused_chains = len(fusions)
        self.op_counts: dict[str, int] = {}
        for node in order:
            self.op_counts[node._op] = self.op_counts.get(node._op, 0) + 1
        self._inputs = list(inputs)
        self._input_arrays = [t.data for t in inputs]
        self._output = output.data
        self._param_buffers = ([(p, p.data) for p in params]
                               if params is not None else [])
        #: Residency hook: how many requests this plan has replayed.
        #: A long-lived serving process reads this (via
        #: ``PlanCache.resident_report`` / ``EmbeddingService.stats``)
        #: to see which resident plans are hot.
        self.replays = 0

    # ------------------------------------------------------------------
    def _assign_buffers(self, order, output, shapes, dtypes,
                        skip_alloc, birth_override) -> None:
        """The activation liveness pass: classify views, compute per-root
        last-use positions, then rebind every interior node to a pooled
        C-contiguous buffer (or a view of one)."""
        # Pass A: provisional view/root classification on the incoming
        # buffers.  Pooled roots are contiguous, so a pass-A view can
        # only become *more* viewable in pass C; drift the other way is
        # handled there by materializing a private buffer.
        root: dict[int, int] = {}
        is_view: set[int] = set()
        own_nodes: list[Tensor] = []
        unpooled = 0
        for n in order:
            if id(n) in skip_alloc:
                continue
            cand = _view_candidate(n, shapes[id(n)])
            if cand is not None:
                is_view.add(id(n))
                root[id(n)] = root.get(id(n._prev[0]), id(n._prev[0]))
            else:
                own_nodes.append(n)
                root[id(n)] = id(n)
                unpooled += n.data.nbytes
        self._slot_bytes_unpooled = unpooled

        # Pass B: last consumer position per storage root (a node's read
        # touches its root's buffer; leaves are their own roots and are
        # never pooled).
        last_use: dict[int, int] = {}
        for i, n in enumerate(order):
            for p in n._prev:
                last_use[root.get(id(p), id(p))] = i
        persistent = {root.get(id(output), id(output))}

        births_at: dict[int, list[Tensor]] = {}
        deaths_at: dict[int, list[Tensor]] = {}
        positions = {id(n): i for i, n in enumerate(order)}
        for n in own_nodes:
            b = birth_override.get(id(n), positions[id(n)])
            births_at.setdefault(b, []).append(n)
            if id(n) in persistent:
                continue
            d = last_use.get(id(n))
            if d is None:
                continue   # never read again (defensive): keep persistent
            deaths_at.setdefault(d, []).append(n)

        # Pass C: linear-scan allocation + final buffer binding.  Views
        # are rebuilt on their parents' final buffers in program order.
        pool = _BufferPool()
        for i, n in enumerate(order):
            for t in births_at.get(i, ()):
                t.data = pool.acquire(shapes[id(t)], dtypes[id(t)])
            if id(n) in skip_alloc:
                # Fused away entirely (the masked chain's add): the fused
                # kernel never touches its buffer.
                n.data = None
            elif id(n) in is_view:
                cand = _view_candidate(n, shapes[id(n)])
                if cand is None:
                    # Layout drift (pass-A view, pass-C copy): keep the
                    # materialized array as a private persistent buffer.
                    n.data = np.empty(shapes[id(n)], dtype=dtypes[id(n)])
                    pool.count_external(n.data.nbytes)
                else:
                    n.data = cand
            for t in deaths_at.get(i, ()):
                pool.release(t.data)
        self._slot_bytes = pool.allocated_bytes
        self._slot_peak_bytes = pool.peak_live_bytes

    # ------------------------------------------------------------------
    @property
    def num_forward_ops(self) -> int:
        return len(self._forward_ops)

    @property
    def inputs(self) -> list[Tensor]:
        return self._inputs

    def matches(self, params: Sequence[Tensor]) -> bool:
        """Whether this plan is bound to exactly these parameter objects
        and their arrays have not been swapped out."""
        if len(params) != len(self._param_buffers):
            return False
        return all(p is q and q.data is buf
                   for (q, buf), p in zip(self._param_buffers, params))

    def buffer_report(self) -> dict:
        """Activation-slot byte accounting (the serving-residency metric)."""
        unpooled = self._slot_bytes_unpooled
        return {
            "pooled": self._pooled,
            "slot_bytes": self._slot_bytes,
            "slot_peak_bytes": self._slot_peak_bytes,
            "slot_bytes_unpooled": unpooled,
            "slot_reduction": (1.0 - self._slot_bytes / unpooled
                               if unpooled else 0.0),
        }

    def run(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        """Replay the forward pass on fresh inputs.

        Copies each request array into its slot (casting to the slot
        dtype, exactly as the eager path's ``Tensor(m)`` would) and runs
        the kernel list.  Returns the output buffer — a view owned by the
        plan; copy it before the next ``run`` if it must survive.
        """
        if len(arrays) != len(self._input_arrays):
            raise ValueError(f"plan expects {len(self._input_arrays)} "
                             f"inputs, got {len(arrays)}")
        for slot, arr in zip(self._input_arrays, arrays):
            src = np.asarray(arr)
            if src.shape != slot.shape:
                raise ValueError(f"input shape {src.shape} does not match "
                                 f"plan slot {slot.shape}")
            np.copyto(slot, src)
        for fn in self._forward_ops:
            fn()
        self.replays += 1
        return self._output


# ----------------------------------------------------------------------
# CompiledStep: record/replay with automatic eager fallback
# ----------------------------------------------------------------------

class CompiledStep:
    """Record-once/replay-many executor for a fixed-shape training step.

    Parameters
    ----------
    loss_fn:
        Zero-argument callable returning the scalar loss tensor.  The
        first call (and any re-record) runs it eagerly under the tape
        recorder; replays never call it.
    signature_fn:
        Optional zero-argument callable returning a hashable signature of
        the step's shapes.  When the signature changes between calls the
        stale plan is dropped and the step falls back to one eager
        (re-recording) execution — the automatic shape-change fallback.

    ``run()`` computes loss + all leaf gradients and returns the loss
    value; callers clip/step exactly as in eager mode.
    """

    def __init__(self, loss_fn: Callable[[], Tensor],
                 signature_fn: Callable[[], Hashable] | None = None):
        self._loss_fn = loss_fn
        self._signature_fn = signature_fn
        self._plan: Plan | None = None
        self._signature: Hashable | None = None
        self.compile_count = 0   # number of (re-)recordings performed

    @property
    def plan(self) -> Plan | None:
        return self._plan

    def _stale(self, signature: Hashable | None) -> bool:
        if self._plan is None:
            return True
        if self._signature_fn is not None and signature != self._signature:
            return True
        return not self._plan.params_current()

    def run(self) -> float:
        """One training step's forward+backward; returns the loss value."""
        signature = self._signature_fn() if self._signature_fn else None
        if self._stale(signature):
            return self._record(signature)
        return self._plan.replay()

    def _record(self, signature: Hashable | None) -> float:
        with record_tape() as nodes:
            loss = self._loss_fn()
        RECORD_STATS.training_records += 1
        self._plan = Plan(loss, nodes)
        self._signature = signature
        self.compile_count += 1
        # The eager trace already holds this step's forward values in the
        # adopted buffers; only the backward half needs replaying.
        self._plan.backward()
        return float(loss.data)


def compile_step(loss_fn: Callable[[], Tensor],
                 signature_fn: Callable[[], Hashable] | None = None) -> CompiledStep:
    """Convenience constructor mirroring ``torch.compile``'s shape."""
    return CompiledStep(loss_fn, signature_fn)
