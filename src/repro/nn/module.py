"""Module / Parameter abstractions, mirroring the ``torch.nn`` programming model.

A :class:`Module` discovers its :class:`Parameter` leaves (and sub-modules)
by attribute inspection, supports train/eval mode toggling, and offers
state-dict style introspection. This is the scaffolding every layer in
:mod:`repro.nn.layers`, :mod:`repro.nn.attention` and the HAFusion model
itself builds upon.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList"]


class Parameter(Tensor):
    """A tensor flagged as a trainable model parameter."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all neural network modules.

    Subclasses implement :meth:`forward`; calling the module invokes it.
    Parameters and sub-modules assigned as attributes are registered
    automatically.
    """

    def __init__(self):
        self.training = True

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendant modules (depth-first)."""
        yield self
        for child in self.children():
            yield from child.modules()

    def children(self) -> Iterator["Module"]:
        """Yield immediate sub-modules."""
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first, stable order."""
        for name, value in self.__dict__.items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")

    def parameters(self) -> list[Parameter]:
        """Return all unique parameters of this module tree."""
        seen: set[int] = set()
        result: list[Parameter] = []
        for _, param in self.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                result.append(param)
        return result

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set train/eval mode recursively (affects dropout)."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter array keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray],
                        in_place: bool = False) -> None:
        """Load parameter arrays produced by :meth:`state_dict`.

        ``in_place=True`` copies each value *into* the existing
        ``param.data`` array (``np.copyto``) instead of rebinding it —
        required when a compiled plan (:mod:`repro.nn.compile`) has
        adopted the parameter arrays as replay buffers: restoring a
        checkpoint must not invalidate the plan.  In-place loading
        additionally demands an exact dtype match (a silent cast would
        break bit-identical resume).
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in own.items():
            if in_place:
                value = np.asarray(state[name])
                if value.dtype != param.data.dtype:
                    raise ValueError(
                        f"dtype mismatch for {name}: {value.dtype} vs "
                        f"{param.data.dtype} (in-place load requires exact "
                        f"dtype)")
            else:
                value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {param.shape}")
            if in_place:
                np.copyto(param.data, value)
            else:
                param.data = value.copy()


class Sequential(Module):
    """Chain modules, feeding each output into the next module."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = list(modules)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]


class ModuleList(Module):
    """A list container whose items are registered sub-modules."""

    def __init__(self, modules: Iterable[Module] = ()):
        super().__init__()
        self.items = list(modules)

    def append(self, module: Module) -> None:
        self.items.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index: int) -> Module:
        return self.items[index]
