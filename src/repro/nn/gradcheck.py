"""Finite-difference gradient checking.

The single most important correctness tool for a hand-written autograd
engine: every layer in the substrate is validated against central
differences in the test suite.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numeric_gradient", "check_gradients"]


def numeric_gradient(func: Callable[[], Tensor], tensor: Tensor, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``func()`` w.r.t. ``tensor``.

    ``func`` must re-evaluate the computation from ``tensor.data`` each
    call (the tensor is perturbed in place).
    """
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = func().item()
        flat[i] = original - eps
        lower = func().item()
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2.0 * eps)
    return grad


def check_gradients(func: Callable[[], Tensor], tensors: Sequence[Tensor],
                    eps: float = 1e-6, atol: float = 1e-5, rtol: float = 1e-4) -> None:
    """Assert analytic gradients of ``func`` match finite differences.

    Raises ``AssertionError`` with a readable diff on mismatch.
    """
    for tensor in tensors:
        tensor.zero_grad()
    output = func()
    output.backward()
    for index, tensor in enumerate(tensors):
        expected = numeric_gradient(func, tensor, eps=eps)
        actual = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        if not np.allclose(actual, expected, atol=atol, rtol=rtol):
            worst = np.abs(actual - expected).max()
            raise AssertionError(
                f"gradient mismatch for tensor #{index} (shape {tensor.shape}): "
                f"max abs error {worst:.3e}\nanalytic:\n{actual}\nnumeric:\n{expected}"
            )
