"""Composite differentiable operations built from :class:`repro.nn.Tensor` primitives.

Every function here is pure: it takes tensors and returns tensors, with
gradients flowing through the primitive ops recorded in
:mod:`repro.nn.tensor`.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, is_forward_recording, is_recording

__all__ = [
    "softmax",
    "log_softmax",
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "gelu",
    "dropout",
    "l1_normalize",
    "l2_normalize",
    "cosine_similarity_matrix",
    "mse_loss",
    "l1_loss",
    "scaled_dot_product_attention",
    "additive_mask",
    "additive_key_mask",
    "MASK_NEG",
]

_EPS = 1e-12

#: Additive score applied to masked-out positions. Large enough that
#: ``exp(score - max)`` underflows to exactly 0.0 in float32/float64, so a
#: masked softmax matches an unpadded softmax bit-for-bit on the kept
#: entries, while staying finite (no inf - inf = nan in the max-shift).
MASK_NEG = -1e30


def additive_mask(keep: np.ndarray) -> np.ndarray:
    """Convert a keep mask (1.0 = real, 0.0 = padded) to an additive score
    mask: 0.0 on kept positions, :data:`MASK_NEG` on padded ones."""
    keep = np.asarray(keep)
    return (1.0 - keep) * MASK_NEG


def additive_key_mask(keep: np.ndarray) -> np.ndarray:
    """A ``(..., n)`` keep mask as an additive key mask ``(..., 1, 1, n)``
    that broadcasts over the head and query axes of a
    ``(..., heads, n_q, n_k)`` score matrix — the layout every
    self-attention module in this package shares."""
    return additive_mask(keep)[..., None, None, :]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis`` (fused primitive)."""
    return x.softmax(axis=axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis`` (fused primitive)."""
    return x.log_softmax(axis=axis)


def relu(x: Tensor) -> Tensor:
    return x.relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    return x.leaky_relu(negative_slope)


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def gelu(x: Tensor) -> Tensor:
    """Gaussian Error Linear Unit (tanh approximation)."""
    inner = 0.7978845608028654 * (x + 0.044715 * (x * x * x))
    return 0.5 * (x * (1.0 + inner.tanh()))


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout: scales kept activations by ``1/(1-p)`` at train time.

    Recorded as a dedicated ``dropout`` tape node (rather than a multiply
    by an anonymous constant) so the compiled executor can redraw the
    mask from the same ``rng`` stream on every replay — keeping the draw
    sequence identical to an eager run's.
    """
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if is_forward_recording():
        # A forward-only plan has no rng-stream contract to honour —
        # inference must be deterministic. Recording active dropout means
        # the model was left in train mode; refuse rather than bake one
        # arbitrary mask into every replay.
        raise RuntimeError(
            "active dropout cannot be captured on a forward-only tape; "
            "record inference plans with the model in eval() mode")
    rng = rng if rng is not None else np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    out = Tensor._make(x.data * mask, (x,), "dropout")
    if is_recording() and not out.requires_grad:
        # Off-tape dropout (constant input) cannot be replayed: its mask
        # would freeze and the rng stream silently desynchronize from an
        # eager run. Fail loudly rather than train wrong.
        raise RuntimeError(
            "dropout on a non-differentiable input cannot be compiled; "
            "train this model in eager mode")
    if out.requires_grad:
        # The drawn mask rides along so a compiled plan can adopt it as
        # the replayable mask buffer (redrawn in-place on later replays).
        out._ctx = (p, rng, mask)

        def backward():
            x._accumulate(out.grad * mask)
        out._backward = backward
    return out


def l1_normalize(x: Tensor, axis: int = -1) -> Tensor:
    """Normalize so absolute values along ``axis`` sum to one."""
    denom = x.abs().sum(axis=axis, keepdims=True) + _EPS
    return x / denom


def l2_normalize(x: Tensor, axis: int = -1) -> Tensor:
    """Normalize rows to unit Euclidean norm."""
    denom = ((x * x).sum(axis=axis, keepdims=True) + _EPS) ** 0.5
    return x / denom


def cosine_similarity_matrix(x: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarity between rows of a plain array.

    Used to build the (constant) similarity targets of the feature
    reconstruction loss (paper Eq. 8); hence it operates on numpy arrays
    and does not build a graph.
    """
    x = np.asarray(x, dtype=np.float64)
    norms = np.linalg.norm(x, axis=1, keepdims=True)
    norms = np.where(norms < _EPS, 1.0, norms)
    unit = x / norms
    return unit @ unit.T


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    diff = prediction - target
    return (diff * diff).mean()


def l1_loss(prediction: Tensor, target: Tensor) -> Tensor:
    return (prediction - target).abs().mean()


def scaled_dot_product_attention(
    query: Tensor,
    key: Tensor,
    value: Tensor,
    mask: Tensor | np.ndarray | None = None,
) -> tuple[Tensor, Tensor]:
    """Attention(Q, K, V) = softmax(QKᵀ/√d + mask) V  (paper Eq. 4–5).

    Supports arbitrary leading batch dimensions (e.g. attention heads, or
    a leading city/shard batch axis on top of the head axis).

    Parameters
    ----------
    mask:
        Optional additive mask broadcastable to the score matrix
        ``(..., n_q, n_k)``; use :func:`additive_mask` to turn a 0/1 keep
        mask into scores (:data:`MASK_NEG` at padded key positions makes
        their softmax weight exactly zero).

    Returns
    -------
    (output, attention_weights)
    """
    d = query.shape[-1]
    scores = (query @ key.T) * (1.0 / np.sqrt(d))
    if mask is not None:
        scores = scores + (mask if isinstance(mask, Tensor) else Tensor(mask))
    weights = softmax(scores, axis=-1)
    return weights @ value, weights
