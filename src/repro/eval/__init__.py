"""``repro.eval`` — downstream evaluation substrate.

Implements the paper's evaluation protocol (Sec. VI-A/B): frozen region
embeddings → Lasso(α=1) → ten-fold cross-validated MAE / RMSE / R² on
check-in, crime and service-call count prediction.
"""

from .crossval import FoldedMetrics, KFold, cross_validated_regression
from .lasso import Lasso
from .metrics import mae, r2_score, regression_report, rmse
from .reporting import format_metric_block, format_table, markdown_table
from .tasks import TASKS, TaskResult, evaluate_all_tasks, evaluate_embeddings

__all__ = [
    "FoldedMetrics",
    "KFold",
    "Lasso",
    "TASKS",
    "TaskResult",
    "cross_validated_regression",
    "evaluate_all_tasks",
    "evaluate_embeddings",
    "format_metric_block",
    "format_table",
    "mae",
    "markdown_table",
    "r2_score",
    "regression_report",
    "rmse",
]
