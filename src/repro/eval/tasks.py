"""Downstream-task evaluation: embeddings → Lasso → MAE/RMSE/R².

One call reproduces one cell of the paper's Table III: frozen region
embeddings are fed to a Lasso(α=1) regressor predicting a per-region
count, with ten-fold cross-validation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..data.city import SyntheticCity
from .crossval import FoldedMetrics, cross_validated_regression

__all__ = ["TASKS", "TaskResult", "evaluate_embeddings", "evaluate_all_tasks"]

#: Downstream task names, paper order (Task 1-3).
TASKS = ("checkin", "crime", "service_call")


@dataclass
class TaskResult:
    """Metrics plus downstream wall-clock for one (embedding, task) pair."""

    task: str
    metrics: FoldedMetrics
    seconds: float

    @property
    def r2(self) -> float:
        return self.metrics.mean["r2"]

    @property
    def mae(self) -> float:
        return self.metrics.mean["mae"]

    @property
    def rmse(self) -> float:
        return self.metrics.mean["rmse"]


def evaluate_embeddings(embeddings: np.ndarray, city: SyntheticCity, task: str,
                        n_splits: int = 10, seed: int = 0) -> TaskResult:
    """Evaluate embeddings on one downstream task of a city."""
    if task not in TASKS:
        raise KeyError(f"unknown task {task!r}; choose from {TASKS}")
    embeddings = np.asarray(embeddings, dtype=np.float64)
    if len(embeddings) != city.n_regions:
        raise ValueError(
            f"embeddings have {len(embeddings)} rows but city has {city.n_regions} regions")
    targets = city.targets.task(task)
    start = time.perf_counter()
    metrics = cross_validated_regression(embeddings, targets,
                                         n_splits=n_splits, seed=seed)
    seconds = time.perf_counter() - start
    return TaskResult(task=task, metrics=metrics, seconds=seconds)


def evaluate_all_tasks(embeddings: np.ndarray, city: SyntheticCity,
                       n_splits: int = 10, seed: int = 0) -> dict[str, TaskResult]:
    """Evaluate embeddings on all three paper tasks."""
    return {task: evaluate_embeddings(embeddings, city, task, n_splits, seed)
            for task in TASKS}
