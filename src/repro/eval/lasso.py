"""Lasso regression via cyclic coordinate descent.

The paper's downstream predictor is "a Lasso regression model (model
parameter α = 1)" (Sec. VI-A). scikit-learn is not available in this
environment, so this is a from-scratch implementation of the same
algorithm sklearn uses: cyclic coordinate descent with soft-thresholding
on standardized features, minimising

    (1 / (2 n)) ‖y − Xw − b‖² + α ‖w‖₁
"""

from __future__ import annotations

import numpy as np

__all__ = ["Lasso"]


def _soft_threshold(value: float, threshold: float) -> float:
    if value > threshold:
        return value - threshold
    if value < -threshold:
        return value + threshold
    return 0.0


class Lasso:
    """L1-regularized linear regression.

    Parameters
    ----------
    alpha:
        L1 penalty strength (paper uses 1.0).
    max_iter, tol:
        Coordinate-descent sweep limit and convergence tolerance on the
        maximum coefficient update.
    standardize:
        Standardize features internally (coefficients are mapped back to
        the original scale). Default False — matching scikit-learn's
        ``Lasso``, which the paper uses, and which does *not* standardize.
    """

    def __init__(self, alpha: float = 1.0, max_iter: int = 1000,
                 tol: float = 1e-6, standardize: bool = False):
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = alpha
        self.max_iter = max_iter
        self.tol = tol
        self.standardize = standardize
        self.coef_: np.ndarray | None = None
        self.intercept_: float | None = None
        self.n_iter_: int | None = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "Lasso":
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(targets, dtype=np.float64).ravel()
        if x.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {x.shape}")
        if len(x) != len(y):
            raise ValueError(f"row mismatch: {len(x)} features vs {len(y)} targets")
        n, d = x.shape

        # Features are always centered (the intercept is fit separately,
        # as sklearn does with fit_intercept=True); scaling is optional.
        mean = x.mean(axis=0)
        if self.standardize:
            std = x.std(axis=0)
            std = np.where(std < 1e-12, 1.0, std)
        else:
            std = np.ones(d)
        xs = (x - mean) / std
        y_mean = y.mean()
        yc = y - y_mean

        weights = np.zeros(d)
        residual = yc.copy()          # residual = yc - xs @ weights
        col_sq = (xs ** 2).sum(axis=0)
        threshold = self.alpha * n
        for sweep in range(self.max_iter):
            max_update = 0.0
            for j in range(d):
                if col_sq[j] < 1e-12:
                    continue
                w_old = weights[j]
                # rho = correlation of feature j with residual excluding j
                rho = xs[:, j] @ residual + col_sq[j] * w_old
                w_new = _soft_threshold(rho, threshold) / col_sq[j]
                if w_new != w_old:
                    residual += xs[:, j] * (w_old - w_new)
                    weights[j] = w_new
                    max_update = max(max_update, abs(w_new - w_old))
            if max_update < self.tol:
                break
        self.n_iter_ = sweep + 1

        # Map back to the original feature scale.
        self.coef_ = weights / std
        self.intercept_ = float(y_mean - mean @ self.coef_)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("predict() called before fit()")
        x = np.asarray(features, dtype=np.float64)
        return x @ self.coef_ + self.intercept_
