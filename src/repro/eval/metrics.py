"""Regression metrics used in the paper's evaluation (Sec. VI-A):
MAE, RMSE and the coefficient of determination R².
"""

from __future__ import annotations

import numpy as np

__all__ = ["mae", "rmse", "r2_score", "regression_report"]


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.float64).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("empty arrays")
    return y_true, y_pred


def mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.abs(y_true - y_pred).mean())


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean squared error."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.sqrt(((y_true - y_pred) ** 2).mean()))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination; 1 is perfect, can be negative."""
    y_true, y_pred = _validate(y_true, y_pred)
    ss_res = float(((y_true - y_pred) ** 2).sum())
    ss_tot = float(((y_true - y_true.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 0.0 if ss_res > 0 else 1.0
    return 1.0 - ss_res / ss_tot


def regression_report(y_true: np.ndarray, y_pred: np.ndarray) -> dict[str, float]:
    """All three paper metrics in one dict."""
    return {
        "mae": mae(y_true, y_pred),
        "rmse": rmse(y_true, y_pred),
        "r2": r2_score(y_true, y_pred),
    }
