"""K-fold cross-validation for the downstream regression evaluation.

The paper uses ten-fold cross-validation "because the number of regions
in each dataset is relatively small" (Sec. VI-B) and reports mean ± std
of each metric across folds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from .lasso import Lasso
from .metrics import regression_report

__all__ = ["KFold", "FoldedMetrics", "cross_validated_regression"]


class KFold:
    """Shuffled k-fold splitter with deterministic seeding."""

    def __init__(self, n_splits: int = 10, seed: int = 0):
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.seed = seed

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if n_samples < self.n_splits:
            raise ValueError(f"cannot split {n_samples} samples into {self.n_splits} folds")
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(n_samples)
        folds = np.array_split(order, self.n_splits)
        for held_out in range(self.n_splits):
            test_index = folds[held_out]
            train_index = np.concatenate(
                [folds[i] for i in range(self.n_splits) if i != held_out])
            yield train_index, test_index


@dataclass
class FoldedMetrics:
    """Mean ± std of each metric over CV folds."""

    mean: dict[str, float]
    std: dict[str, float]
    per_fold: list[dict[str, float]]

    def __getitem__(self, metric: str) -> float:
        return self.mean[metric]

    def format(self, metric: str, precision: int = 3) -> str:
        """Paper-style "mean ± std" string."""
        return f"{self.mean[metric]:.{precision}f} ± {self.std[metric]:.{precision}f}"


def cross_validated_regression(
        features: np.ndarray, targets: np.ndarray,
        model_factory: Callable[[], object] | None = None,
        n_splits: int = 10, seed: int = 0) -> FoldedMetrics:
    """Evaluate embeddings on a prediction task with k-fold CV.

    ``model_factory`` builds a fresh regressor per fold (default:
    ``Lasso(alpha=1)``, matching the paper). The regressor must expose
    ``fit(X, y)`` and ``predict(X)``.
    """
    features = np.asarray(features, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64).ravel()
    if len(features) != len(targets):
        raise ValueError(f"row mismatch: {len(features)} vs {len(targets)}")
    factory = model_factory if model_factory is not None else (lambda: Lasso(alpha=1.0))
    reports: list[dict[str, float]] = []
    for train_index, test_index in KFold(n_splits, seed).split(len(targets)):
        model = factory()
        model.fit(features[train_index], targets[train_index])
        predictions = model.predict(features[test_index])
        reports.append(regression_report(targets[test_index], predictions))
    keys = reports[0].keys()
    mean = {k: float(np.mean([r[k] for r in reports])) for k in keys}
    std = {k: float(np.std([r[k] for r in reports])) for k in keys}
    return FoldedMetrics(mean=mean, std=std, per_fold=reports)
