"""Paper-style table formatting for experiment results.

The experiment runners produce nested dicts; these helpers render them as
aligned text tables matching the layout of Tables III–VII so the bench
output can be eyeballed against the paper.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_metric_block", "markdown_table"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned plain-text table."""
    string_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in string_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a GitHub-markdown table (used by EXPERIMENTS.md tooling)."""
    lines = ["| " + " | ".join(str(h) for h in headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def format_metric_block(results: Mapping[str, Mapping[str, object]],
                        metrics: Sequence[str] = ("mae", "rmse", "r2"),
                        title: str | None = None) -> str:
    """Format {model: {metric: FoldedMetrics-or-float}} as a table."""
    headers = ["model"] + [m.upper() for m in metrics]
    rows = []
    for model, per_metric in results.items():
        row: list[object] = [model]
        for metric in metrics:
            value = per_metric[metric]
            row.append(value.format(metric) if hasattr(value, "format") else f"{value:.3f}"
                       if isinstance(value, float) else str(value))
        rows.append(row)
    return format_table(headers, rows, title=title)
