"""IntraAFL — intra-view attentive feature learning (paper Sec. V, Fig. 4).

A Transformer-encoder stack whose self-attention is the paper's
**RegionSA**: vanilla multi-head attention augmented with a lightweight
convolutional path over the attention-coefficient matrix that extracts
*multi-region* (higher-order) correlations and injects them back into the
embeddings:

    A'   = AvgPool(Conv2D(A))                (Eq. 13, c channels)
    C_A  = MLP( AVG( A' ⊙ softmax(A') ) )    (Eq. 14)
    C    = C_V + C_A                         (Eq. 15)

where ``A`` is the (head-averaged) n×n coefficient matrix and ``C_V`` the
standard attention output.
"""

from __future__ import annotations

import numpy as np

from ..nn import (
    AvgPool2d,
    Conv2d,
    Linear,
    Module,
    ModuleList,
    Tensor,
    TransformerEncoderBlock,
)
from ..nn import functional as F

__all__ = ["RegionSA", "IntraAFL"]


class RegionSA(Module):
    """Region self-attention with the higher-order correlation module.

    Maps (n, d) -> (n, d), or (b, n, d) -> (b, n, d) for a batch of
    cities/shards sharing one set of weights. ``n_regions`` is needed at
    construction time because the correlation MLP projects rows of the
    n×n coefficient matrix to d dimensions.

    With a keep ``mask`` (1.0 = real region, 0.0 = padding), padded keys
    get exactly-zero attention weight, padded query rows of the
    coefficient matrix are zeroed before the convolution (so the conv
    kernel sees the same zero boundary an unpadded matrix would), and the
    gating softmax of Eq. 14 is restricted to real columns — real-region
    outputs are bit-identical to an unbatched padded run.
    """

    def __init__(self, d_model: int, n_regions: int, num_heads: int = 4,
                 conv_channels: int = 32, conv_kernel: int = 3,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} must be divisible by num_heads={num_heads}")
        rng = rng if rng is not None else np.random.default_rng()
        self.d_model = d_model
        self.n_regions = n_regions
        self.num_heads = num_heads
        self.d_head = d_model // num_heads
        self.w_query = Linear(d_model, d_model, bias=False, rng=rng)
        self.w_key = Linear(d_model, d_model, bias=False, rng=rng)
        self.w_value = Linear(d_model, d_model, bias=False, rng=rng)
        self.w_out = Linear(d_model, d_model, bias=False, rng=rng)
        self.conv = Conv2d(1, conv_channels, kernel_size=conv_kernel, rng=rng)
        self.pool = AvgPool2d(kernel_size=conv_kernel)
        self.correlation_mlp = Linear(n_regions, d_model, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        # (..., n, d) -> (..., heads, n, d_head)
        shape = x.shape[:-1] + (self.num_heads, self.d_head)
        return x.reshape(shape).swapaxes(-3, -2)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        n = x.shape[-2]
        if n != self.n_regions:
            raise ValueError(f"RegionSA built for n={self.n_regions}, got input with n={n}")
        query = self._split_heads(self.w_query(x))
        key = self._split_heads(self.w_key(x))
        value = self._split_heads(self.w_value(x))
        additive = None if mask is None else F.additive_key_mask(mask)
        context, weights = F.scaled_dot_product_attention(query, key, value,
                                                          mask=additive)
        if mask is not None:
            # Zero the padded query rows so the coefficient matrix below is
            # exactly zero outside the real n_i × n_i block.
            weights = weights * Tensor(mask[..., None, :, None])
        merged = context.swapaxes(-3, -2).reshape(x.shape[:-1] + (self.d_model,))
        c_v = self.w_out(merged)

        # Higher-order correlation path (Eq. 13-14) on the head-averaged
        # coefficient matrix, treated as a 1-channel image.
        coeff = weights.mean(axis=-3).expand_dims(-3)        # (..., 1, n, n)
        corr = self.pool(self.conv(coeff))                   # (..., c, n, n)
        if mask is None:
            gate = F.softmax(corr, axis=-1)
        else:
            gate = F.softmax(corr + Tensor(F.additive_key_mask(mask)), axis=-1)
        gated = corr * gate                                  # A' ⊙ softmax(A')
        c_a = self.correlation_mlp(gated.mean(axis=-3))      # (..., n, n) -> (..., n, d)
        return c_v + c_a                                     # Eq. 15


class IntraAFL(Module):
    """Per-view encoder: input projection + stacked RegionSA encoder blocks.

    The input view matrix X_j (n × d_j) — or a (b, n, d_j) batch of view
    matrices — is first projected to the model width d, then refined by
    ``num_layers`` Transformer-encoder blocks whose attention is RegionSA
    (or vanilla multi-head attention for the HAFusion-w/o-S ablation).
    """

    def __init__(self, input_dim: int, d_model: int, n_regions: int,
                 num_layers: int = 3, num_heads: int = 4, conv_channels: int = 32,
                 dropout: float = 0.1, attention_kind: str = "region_sa",
                 rng: np.random.Generator | None = None):
        super().__init__()
        if attention_kind not in ("region_sa", "vanilla"):
            raise ValueError(f"unknown attention_kind {attention_kind!r}")
        rng = rng if rng is not None else np.random.default_rng()
        self.input_projection = Linear(input_dim, d_model, rng=rng)
        blocks = []
        for _ in range(num_layers):
            if attention_kind == "region_sa":
                attention = RegionSA(d_model, n_regions, num_heads=num_heads,
                                     conv_channels=conv_channels, rng=rng)
            else:
                attention = None  # TransformerEncoderBlock default (vanilla MHSA)
            blocks.append(TransformerEncoderBlock(
                d_model, num_heads=num_heads, dropout=dropout,
                attention=attention, rng=rng))
        self.blocks = ModuleList(blocks)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        h = self.input_projection(x)
        for block in self.blocks:
            h = block(h, mask=mask)
        return h
