"""HALearning — hybrid attentive feature learning (paper Sec. V).

Combines one IntraAFL encoder per view with a shared InterAFL module, and
blends the two with a learnable gate β ∈ [0, 1] (Eq. 18):

    Z_j = β · Z_j^sv + (1 − β) · Z_j^cv
"""

from __future__ import annotations

import numpy as np

from ..nn import Module, ModuleList, Parameter, Tensor
from .inter_afl import InterAFL
from .intra_afl import IntraAFL

__all__ = ["HALearning"]


class HALearning(Module):
    """View-based embedding learner.

    Parameters
    ----------
    view_dims:
        Input dimensionality of each view (e.g. [n, 26, 11]).
    n_regions, d_model:
        Number of regions and embedding width.
    Other arguments mirror :class:`repro.core.HAFusionConfig`.
    """

    def __init__(self, view_dims: list[int], n_regions: int, d_model: int,
                 intra_layers: int = 3, inter_layers: int = 3,
                 num_heads: int = 4, conv_channels: int = 32,
                 memory_size: int = 72, dropout: float = 0.1,
                 intra_attention: str = "region_sa",
                 inter_attention: str = "external",
                 rng: np.random.Generator | None = None):
        super().__init__()
        if not view_dims:
            raise ValueError("need at least one view")
        rng = rng if rng is not None else np.random.default_rng()
        self.n_views = len(view_dims)
        self.intra = ModuleList([
            IntraAFL(dim, d_model, n_regions, num_layers=intra_layers,
                     num_heads=num_heads, conv_channels=conv_channels,
                     dropout=dropout, attention_kind=intra_attention, rng=rng)
            for dim in view_dims
        ])
        self.inter = InterAFL(d_model, memory_size=memory_size,
                              num_layers=inter_layers,
                              attention_kind=inter_attention,
                              num_heads=num_heads, rng=rng)
        # β is parameterized through a sigmoid so the blend stays in [0, 1].
        self.beta_logit = Parameter(np.zeros(1))

    @property
    def beta(self) -> float:
        """Current value of the blending gate β."""
        return float(1.0 / (1.0 + np.exp(-self.beta_logit.data[0])))

    def forward(self, views: list[Tensor],
                mask: np.ndarray | None = None) -> list[Tensor]:
        if len(views) != self.n_views:
            raise ValueError(f"model built for {self.n_views} views, got {len(views)}")
        z_sv = [encoder(view, mask=mask) for encoder, view in zip(self.intra, views)]
        z_stack = Tensor.stack(z_sv, axis=-2)        # (..., n, v, d)
        z_cv_stack = self.inter(z_stack, mask=mask)  # (..., n, v, d)
        beta = self.beta_logit.sigmoid()
        blended = []
        for j in range(self.n_views):
            z_cv_j = z_cv_stack[..., j, :]
            blended.append(z_sv[j] * beta + z_cv_j * (1.0 - beta))
        return blended
