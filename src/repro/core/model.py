"""The full HAFusion model (paper Fig. 2).

Pipeline: views → HALearning (IntraAFL per view + shared InterAFL) →
DAFusion (ViewFusion + RegionFusion) → region embeddings H, plus the
per-view loss heads of Sec. IV-C (feature-oriented MLPs and the
source/destination mobility heads).
"""

from __future__ import annotations

import numpy as np

from ..data.features import ViewSet
from ..nn import MLP, Linear, Module, ModuleList, Tensor, no_grad
from .config import HAFusionConfig
from .dafusion import build_fusion
from .halearning import HALearning
from .losses import feature_similarity_loss, mobility_kl_loss

__all__ = ["HAFusion"]


class HAFusion(Module):
    """Urban region representation learner.

    Parameters
    ----------
    view_dims:
        Input width of each view (mobility first if present).
    n_regions:
        Number of regions n (needed by RegionSA's correlation MLP).
    config:
        Hyper-parameters; see :class:`HAFusionConfig`.
    mobility_view:
        Index of the mobility view in the inputs, or None if absent
        (Fig. 6 w/o-M ablation) — decides which loss head each view gets.
    rng:
        Generator for weight initialization.
    """

    def __init__(self, view_dims: list[int], n_regions: int,
                 config: HAFusionConfig | None = None,
                 mobility_view: int | None = 0,
                 rng: np.random.Generator | None = None):
        super().__init__()
        config = config if config is not None else HAFusionConfig()
        rng = rng if rng is not None else np.random.default_rng()
        self.config = config
        self.n_views = len(view_dims)
        self.mobility_view = mobility_view

        self.halearning = HALearning(
            view_dims, n_regions, config.d,
            intra_layers=config.intra_layers, inter_layers=config.inter_layers,
            num_heads=config.num_heads, conv_channels=config.conv_channels,
            memory_size=config.memory_size, dropout=config.dropout,
            intra_attention=config.intra_attention,
            inter_attention=config.inter_attention, rng=rng)
        self.fusion = build_fusion(
            config.fusion, config.d, self.n_views, d_prime=config.d_prime,
            num_layers=config.fusion_layers, num_heads=config.num_heads,
            dropout=config.dropout, rng=rng)

        # Loss heads (Sec. IV-C): one feature-oriented MLP per
        # non-mobility view; source/destination MLPs for the mobility view.
        self.feature_heads = ModuleList([
            MLP(config.d, config.d, activation="relu", rng=rng)
            for _ in range(self.n_views)
        ])
        self.source_head = MLP(config.d, config.d, activation="relu", rng=rng)
        self.dest_head = MLP(config.d, config.d, activation="relu", rng=rng)

    # ------------------------------------------------------------------
    def forward(self, views: list[Tensor],
                mask: np.ndarray | None = None) -> Tensor:
        """Compute the (n, d) region embedding matrix H.

        Views may carry a leading batch axis — (b, n, d_j) each — in which
        case H is (b, n, d). ``mask`` is the (…, n) keep mask of the
        batched execution engine (1.0 = real region, 0.0 = padding):
        padded regions are excluded from every attention softmax and
        zeroed between stages so they never contaminate real regions.
        """
        view_embeddings = self.halearning(views, mask=mask)
        if mask is not None:
            # Encoder blocks leave nonzero garbage in padded rows (LayerNorm
            # maps a zero row to its bias); re-zero them so ViewFusion's
            # region sums see exact zeros.
            keep = Tensor(mask[..., None])
            view_embeddings = [z * keep for z in view_embeddings]
        return self.fusion(view_embeddings, mask=mask)

    def loss(self, views: ViewSet) -> Tensor:
        """Multi-task objective L = Σ_j L_j (Sec. IV-C).

        The mobility view gets the KL transition loss (Eq. 9-12) *and*
        the generic similarity loss (Eq. 8) — the paper notes Eq. 8
        "also works" for mobility; using both anchors flow-volume
        structure directly in H, which the KL term alone (being
        normalized per row/column) cannot.
        """
        inputs = [Tensor(m) for m in views.matrices]
        h = self.forward(inputs)
        total = None
        for j in range(self.n_views):
            h_j = self.feature_heads[j](h)
            term = feature_similarity_loss(h_j, views.matrices[j])
            if j == self.mobility_view:
                h_source = self.source_head(h)
                h_dest = self.dest_head(h)
                raw_mobility = views.raw[j] if views.raw is not None else views.matrices[j]
                kl = mobility_kl_loss(h_source, h_dest, raw_mobility,
                                      scale=self.config.mobility_loss_scale)
                term = term + kl * self.config.mobility_kl_weight
            total = term if total is None else total + term
        return total

    def embed(self, views: ViewSet) -> np.ndarray:
        """Inference: frozen embeddings for downstream tasks."""
        self.eval()
        with no_grad():
            inputs = [Tensor(m) for m in views.matrices]
            h = self.forward(inputs)
        self.train()
        return h.data.copy()
