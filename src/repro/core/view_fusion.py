"""ViewFusion — view-aware attentive fusion (paper Sec. IV-B, Eq. 1–3).

Learns one softmax weight per view via GAT-style pairwise scoring:

    a_i^{jk} = LeakyReLU( aᵀ [W_F z_i^j ‖ W_F z_i^k] )     (Eq. 1)
    α_j      = Softmax_j( 1/n · Σ_i Σ_k a_i^{jk} )          (Eq. 2)
    Z̃        = Σ_j α_j Z_j                                  (Eq. 3)
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, Module, Parameter, Tensor, init
from ..nn import functional as F

__all__ = ["ViewFusion"]


class ViewFusion(Module):
    """Fuse v view-based embedding matrices into one (n, d) matrix.

    Views may also carry a leading batch axis — v × (b, n, d) in, (b, n, d)
    out, with one softmax weight vector per batch item. With a keep
    ``mask``, padded region rows (which the caller zeroes before fusion)
    contribute nothing to the pair-score sums and Eq. 2's average runs
    over each city's real region count.
    """

    def __init__(self, d_model: int, d_prime: int = 64,
                 negative_slope: float = 0.2,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.transform = Linear(d_model, d_prime, bias=False, rng=rng)
        self.attention_vector = Parameter(init.xavier_uniform((2 * d_prime, 1), rng))
        self.negative_slope = negative_slope
        self.last_weights: np.ndarray | None = None

    def forward(self, views: list[Tensor], mask: np.ndarray | None = None) -> Tensor:
        if not views:
            raise ValueError("ViewFusion needs at least one view")
        if len(views) == 1:
            self.last_weights = np.ones(1)
            return views[0]
        projected = [self.transform(z) for z in views]       # v × (..., n, d')
        d_prime = projected[0].shape[-1]
        a_left = self.attention_vector[:d_prime, 0]
        a_right = self.attention_vector[d_prime:, 0]
        # aᵀ[u ‖ w] decomposes as a_leftᵀu + a_rightᵀw, so the v² pair
        # scores come from two (..., n, v) score tables — no explicit concat.
        left_scores = Tensor.stack([p @ a_left for p in projected], axis=-1)
        right_scores = Tensor.stack([p @ a_right for p in projected], axis=-1)
        pair_scores = left_scores.expand_dims(-1) + right_scores.expand_dims(-2)
        pair_scores = pair_scores.leaky_relu(self.negative_slope)  # (..., n, v, v)
        # Eq. 2 inner sums: average over regions, sum over the second view
        # index. Padded rows contribute exactly zero to the sum (their
        # zeroed embeddings project to zero scores and LeakyReLU(0) = 0),
        # so with a mask we divide by the real region count instead.
        if mask is None:
            region_mean = pair_scores.mean(axis=-3)          # (..., v, v)
        else:
            inv_count = 1.0 / mask.sum(axis=-1)
            region_mean = pair_scores.sum(axis=-3) * Tensor(
                np.asarray(inv_count)[..., None, None])
        view_scores = region_mean.sum(axis=-1)               # (..., v)
        alphas = F.softmax(view_scores, axis=-1)
        self.last_weights = alphas.data.copy()
        stacked = Tensor.stack(views, axis=-3)               # (..., v, n, d)
        weighted = stacked * alphas.reshape(alphas.shape + (1, 1))
        return weighted.sum(axis=-3)                         # Eq. 3
