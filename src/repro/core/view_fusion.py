"""ViewFusion — view-aware attentive fusion (paper Sec. IV-B, Eq. 1–3).

Learns one softmax weight per view via GAT-style pairwise scoring:

    a_i^{jk} = LeakyReLU( aᵀ [W_F z_i^j ‖ W_F z_i^k] )     (Eq. 1)
    α_j      = Softmax_j( 1/n · Σ_i Σ_k a_i^{jk} )          (Eq. 2)
    Z̃        = Σ_j α_j Z_j                                  (Eq. 3)
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, Module, Parameter, Tensor, init
from ..nn import functional as F

__all__ = ["ViewFusion"]


class ViewFusion(Module):
    """Fuse v view-based embedding matrices into one (n, d) matrix."""

    def __init__(self, d_model: int, d_prime: int = 64,
                 negative_slope: float = 0.2,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.transform = Linear(d_model, d_prime, bias=False, rng=rng)
        self.attention_vector = Parameter(init.xavier_uniform((2 * d_prime, 1), rng))
        self.negative_slope = negative_slope
        self.last_weights: np.ndarray | None = None

    def forward(self, views: list[Tensor]) -> Tensor:
        if not views:
            raise ValueError("ViewFusion needs at least one view")
        if len(views) == 1:
            self.last_weights = np.ones(1)
            return views[0]
        projected = [self.transform(z) for z in views]       # v × (n, d')
        a_left = self.attention_vector[: projected[0].shape[1], 0]
        a_right = self.attention_vector[projected[0].shape[1]:, 0]
        # aᵀ[u ‖ w] decomposes as a_leftᵀu + a_rightᵀw, so the v² pair
        # scores come from two (n, v) score tables — no explicit concat.
        left_scores = Tensor.stack([p @ a_left for p in projected], axis=1)    # (n, v)
        right_scores = Tensor.stack([p @ a_right for p in projected], axis=1)  # (n, v)
        pair_scores = left_scores.expand_dims(2) + right_scores.expand_dims(1)  # (n, v, v)
        pair_scores = pair_scores.leaky_relu(self.negative_slope)
        view_scores = pair_scores.mean(axis=0).sum(axis=1)   # (v,)  Eq. 2 inner sums
        alphas = F.softmax(view_scores, axis=0)
        self.last_weights = alphas.data.copy()
        stacked = Tensor.stack(views, axis=0)                # (v, n, d)
        weighted = stacked * alphas.reshape(-1, 1, 1)
        return weighted.sum(axis=0)                          # Eq. 3
