"""Batched multi-city execution engine.

Every module in :mod:`repro.nn` and :mod:`repro.core` accepts a leading
batch axis, so a batch of cities (or region shards of one large city) can
run through HAFusion as a single vectorized numpy pass instead of a
Python-level loop. This module packages that capability:

- :func:`make_batch` pads ragged region counts / view widths with zeros
  and builds the keep mask that excludes padding from every attention
  softmax and loss term;
- :func:`batched_embed` / :func:`sequential_embed` run inference for a
  city batch through one ``(b, n, d)`` forward pass vs. a per-city loop
  over the identical model — the two produce embeddings equal to within
  numerical round-off (locked to ≤1e-8 in ``tests/core/test_batched_parity.py``).
  Both are **deprecated shims** over
  :class:`repro.serving.EmbeddingService` — the unified serving facade
  that adds request scheduling, warm-up packs and provenance on the
  same code path.  With ``compiled=True`` they serve through a
  forward-only :class:`~repro.nn.compile.InferencePlan` fetched from a
  :class:`~repro.nn.plancache.PlanCache` — record once (or relower a
  cached spec), then replay flat numpy kernels over pooled buffers for
  every same-shaped request (:func:`serving_speedup_report` measures
  ≈2.9x regions/sec over the eager tape on nyc_360);
- :class:`BatchedTrainer` trains one shared-weight model on a city batch
  under the paper's multi-task objective, averaged over cities;
- :func:`shard_viewset` splits one large city into region shards so its
  quadratic attention cost drops to ``O(n²/b)`` per shard while the batch
  axis keeps the hardware busy;
- :func:`engine_speedup_report` measures batched-vs-sequential speedup
  and parity (recorded by ``benchmarks/test_fig7_scalability.py``).

Padding exactness: padded feature rows are zero, so they project to zero
scores everywhere a sum crosses regions; attention key masks make padded
softmax weights exactly zero (see ``MASK_NEG`` in
:mod:`repro.nn.functional`); and RegionSA's convolution sees an
exactly-zero boundary outside the real n×n block — the same zero boundary
same-padding convolution applies to an unpadded matrix.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from ..data.city import SyntheticCity
from ..data.features import ViewSet
from ..nn import Adam, CompiledStep, Tensor
from ..nn.plancache import PlanCache, default_plan_cache
from .config import HAFusionConfig
from .losses import (
    batched_feature_similarity_loss,
    batched_mobility_kl_loss,
    pad_similarity_targets,
    pad_transition_probabilities,
)
from ..train.checkpoint import Checkpointer
from .model import HAFusion
from .trainer import (
    TrainingHistory,
    compiled_optimizer_step,
    optimizer_step,
    run_training_loop,
)

__all__ = [
    "CityBatch",
    "make_batch",
    "shard_viewset",
    "build_batched_model",
    "BatchedEmbedResult",
    "batched_embed",
    "sequential_embed",
    "BatchedTrainer",
    "engine_speedup_report",
    "compiled_speedup_report",
    "backend_speedup_report",
    "serving_speedup_report",
]

CityLike = Union[SyntheticCity, ViewSet]


def _as_viewset(city: CityLike) -> ViewSet:
    return city.views() if isinstance(city, SyntheticCity) else city


def _as_batch(cities: "Sequence[CityLike] | CityBatch") -> "CityBatch":
    return cities if isinstance(cities, CityBatch) else make_batch(cities)


@dataclass
class CityBatch:
    """A padded stack of per-city view sets plus its keep mask.

    Attributes
    ----------
    view_names:
        Shared view ordering, e.g. ``("mobility", "poi", "landuse")``.
    matrices:
        One ``(b, n_max, d_j)`` zero-padded array per view.
    mask:
        ``(b, n_max)`` keep mask: 1.0 for real regions, 0.0 for padding.
    view_sets:
        The original (unpadded) per-city view sets, kept for the loss
        targets and for cropping results back to each city's size.
    """

    view_names: tuple[str, ...]
    matrices: list[np.ndarray]
    mask: np.ndarray
    view_sets: list[ViewSet]

    @property
    def batch_size(self) -> int:
        return self.mask.shape[0]

    @property
    def n_max(self) -> int:
        return self.mask.shape[1]

    @property
    def n_regions(self) -> list[int]:
        return [vs.n_regions for vs in self.view_sets]

    @property
    def view_dims(self) -> list[int]:
        """Padded per-view input widths the shared model is built with."""
        return [m.shape[-1] for m in self.matrices]

    @property
    def is_padded(self) -> bool:
        """Whether any city needed padding (regions or view widths)."""
        return bool((self.mask == 0.0).any()) or any(
            vs.dims() != self.view_dims for vs in self.view_sets)

    def forward_mask(self) -> np.ndarray | None:
        """Mask to pass to the model — None when nothing is padded, which
        keeps the unpadded fast path free of masking arithmetic."""
        return self.mask if self.is_padded else None

    def select(self, indices: Sequence[int]) -> "CityBatch":
        """Sub-batch of the given cities, keeping this batch's padded
        layout (n_max and view widths) so it stays compatible with a
        model built for the full batch."""
        indices = list(indices)
        return CityBatch(
            view_names=self.view_names,
            matrices=[m[indices] for m in self.matrices],
            mask=self.mask[indices],
            view_sets=[self.view_sets[i] for i in indices],
        )


def make_batch(cities: Sequence[CityLike], n_max: int | None = None,
               view_dims: Sequence[int] | None = None) -> CityBatch:
    """Stack cities into one padded batch (ragged n and view widths ok).

    ``n_max`` / ``view_dims`` force the padded layout instead of using
    the batch's own maxima — the serving scheduler pads every flush to
    its *model's* capacity so the resulting shapes (and therefore the
    compiled-plan cache keys) stay stable across flushes.
    """
    view_sets = [_as_viewset(city) for city in cities]
    if not view_sets:
        raise ValueError("need at least one city")
    names = view_sets[0].names
    for vs in view_sets[1:]:
        if vs.names != names:
            raise ValueError(f"cities disagree on views: {vs.names} vs {names}")
    batch = len(view_sets)
    widest = max(vs.n_regions for vs in view_sets)
    if n_max is None:
        n_max = widest
    elif n_max < widest:
        raise ValueError(f"n_max={n_max} below the widest city ({widest})")
    mask = np.zeros((batch, n_max))
    for i, vs in enumerate(view_sets):
        mask[i, :vs.n_regions] = 1.0
    matrices: list[np.ndarray] = []
    for j in range(len(names)):
        d_max = max(vs.matrices[j].shape[1] for vs in view_sets)
        if view_dims is not None:
            if view_dims[j] < d_max:
                raise ValueError(f"view_dims[{j}]={view_dims[j]} below the "
                                 f"widest view ({d_max})")
            d_max = view_dims[j]
        stacked = np.zeros((batch, n_max, d_max))
        for i, vs in enumerate(view_sets):
            m = vs.matrices[j]
            stacked[i, :m.shape[0], :m.shape[1]] = m
        matrices.append(stacked)
    return CityBatch(view_names=names, matrices=matrices, mask=mask,
                     view_sets=view_sets)


def shard_viewset(views: ViewSet, num_shards: int) -> list[ViewSet]:
    """Split one city's regions into contiguous shards.

    Each shard keeps the full view widths (a mobility feature row still
    describes flows to/from *all* regions), so all shards share one model
    and stack without padding when ``n`` divides evenly. Shards drop the
    raw square mobility matrix — the KL loss needs the full city, so
    sharded batches train with the feature-similarity objective only.
    """
    if not 1 <= num_shards <= views.n_regions:
        raise ValueError(f"num_shards must be in [1, {views.n_regions}], got {num_shards}")
    bounds = np.linspace(0, views.n_regions, num_shards + 1).astype(int)
    return [
        ViewSet(names=views.names,
                matrices=[m[start:stop] for m in views.matrices])
        for start, stop in zip(bounds[:-1], bounds[1:])
    ]


def build_batched_model(batch: CityBatch, config: HAFusionConfig | None = None,
                        seed: int = 0) -> HAFusion:
    """One shared-weight HAFusion sized for the padded batch."""
    config = config if config is not None else HAFusionConfig()
    mobility_view = (batch.view_names.index("mobility")
                     if "mobility" in batch.view_names else None)
    return HAFusion(batch.view_dims, batch.n_max, config,
                    mobility_view=mobility_view,
                    rng=np.random.default_rng(seed))


@dataclass
class BatchedEmbedResult:
    """Per-city embeddings plus timing for one engine inference pass."""

    embeddings: list[np.ndarray]
    seconds: float
    batch_size: int
    n_max: int


@dataclass(frozen=True)
class _EmbedOptions:
    """The one shared option set of :func:`batched_embed` and
    :func:`sequential_embed` — both shims build it positionally from an
    identical signature, so the two can never drift apart again (locked
    by ``tests/serving/test_service.py::test_shim_signatures_identical``).
    """

    config: HAFusionConfig | None = None
    seed: int = 0
    model: HAFusion | None = None
    compiled: bool = False
    plan_cache: PlanCache | None = None

    def service(self, batch: CityBatch):
        """The :class:`~repro.serving.EmbeddingService` serving these
        options (building the shared model when none was given)."""
        from ..serving import EmbeddingService
        model = (self.model if self.model is not None
                 else build_batched_model(batch, self.config, self.seed))
        cache = (self.plan_cache if self.plan_cache is not None
                 else default_plan_cache())
        return EmbeddingService(model, n_max=batch.n_max,
                                view_dims=batch.view_dims,
                                compiled=self.compiled, plan_cache=cache)


def _embed_via_service(cities: "Sequence[CityLike] | CityBatch",
                       options: _EmbedOptions,
                       sequential: bool) -> BatchedEmbedResult:
    batch = _as_batch(cities)
    service = options.service(batch)
    start = time.perf_counter()
    embeddings = (service.embed_each(batch) if sequential
                  else service.embed_batch(batch))
    return BatchedEmbedResult(embeddings, time.perf_counter() - start,
                              batch.batch_size, batch.n_max)


def _serving_plan(model: HAFusion, matrices: list[np.ndarray],
                  mask: np.ndarray | None, cache: PlanCache, tag: str):
    """Back-compat alias: fetch (or record) the forward-only plan for one
    request shape through a throwaway service (the logic lives in
    :meth:`repro.serving.EmbeddingService._plan` now)."""
    from ..serving import EmbeddingService
    return EmbeddingService(model, plan_cache=cache)._plan(matrices, mask, tag)


def batched_embed(cities: "Sequence[CityLike] | CityBatch",
                  config: HAFusionConfig | None = None, seed: int = 0,
                  model: HAFusion | None = None, compiled: bool = False,
                  plan_cache: PlanCache | None = None) -> BatchedEmbedResult:
    """Embed a batch of cities in one vectorized forward pass.

    .. deprecated::
        Thin shim over :meth:`repro.serving.EmbeddingService.embed_batch`
        — the unified serving path every embed request flows through.
        New code should construct an :class:`~repro.serving.EmbeddingService`
        (which adds request scheduling, warm-up packs and provenance).

    ``cities`` may be raw cities/view sets or a prebuilt :class:`CityBatch`.
    Builds (or reuses) one shared-weight model over the padded batch and
    runs inference under ``no_grad``; results are cropped back to each
    city's real region count.

    ``compiled=True`` serves through a forward-only
    :class:`~repro.nn.compile.InferencePlan`: the first request for a
    (config, shapes, dtype, mask) signature records the pass once (or
    relowers a cached spec — see :mod:`repro.nn.plancache`), every later
    request replays flat numpy kernels over pooled buffers.
    ``plan_cache`` defaults to the process-wide cache
    (``REPRO_PLAN_CACHE_DIR`` enables on-disk persistence).
    """
    return _embed_via_service(
        cities, _EmbedOptions(config, seed, model, compiled, plan_cache),
        sequential=False)


def sequential_embed(cities: "Sequence[CityLike] | CityBatch",
                     config: HAFusionConfig | None = None, seed: int = 0,
                     model: HAFusion | None = None, compiled: bool = False,
                     plan_cache: PlanCache | None = None) -> BatchedEmbedResult:
    """Reference per-city loop over the identical shared model.

    .. deprecated::
        Thin shim over :meth:`repro.serving.EmbeddingService.embed_each`
        (see :func:`batched_embed`); kept as the parity/baseline twin.

    Same padding, same mask, same weights — just one city at a time.
    ``compiled=True`` replays a per-item-shape inference plan instead of
    the eager tape; unpadded batches share one plan across cities, while
    a ragged batch holds one plan per distinct mask pattern — for very
    wide ragged batches pass a ``plan_cache`` whose capacity exceeds the
    number of distinct masks, or the LRU re-records on every pass.
    """
    return _embed_via_service(
        cities, _EmbedOptions(config, seed, model, compiled, plan_cache),
        sequential=True)


class BatchedTrainer:
    """Full-batch Adam training of one shared model on a city batch.

    The objective is the mean over cities of the paper's per-city
    multi-task loss (Sec. IV-C): every view contributes the Eq. 8
    similarity term, and the mobility view additionally contributes the
    Eq. 9–12 KL term whenever the batch carries raw square OD matrices
    (region shards drop them — see :func:`shard_viewset`).
    """

    def __init__(self, cities: "Sequence[CityLike] | CityBatch",
                 config: HAFusionConfig | None = None, seed: int = 0,
                 model: HAFusion | None = None, compiled: bool = False):
        self.batch = _as_batch(cities)
        self.config = config if config is not None else HAFusionConfig()
        self.model = model if model is not None else build_batched_model(
            self.batch, self.config, seed)
        self.optimizer = Adam(self.model.parameters(), lr=self.config.lr)
        self._inputs = [Tensor(m) for m in self.batch.matrices]
        self._mobility_view = self.model.mobility_view
        # Loss targets are constant w.r.t. the model — build them once
        # here instead of on every training step.
        self._targets = [
            pad_similarity_targets([vs.matrices[j] for vs in self.batch.view_sets],
                                   self.batch.n_max)
            for j in range(len(self.batch.view_names))
        ]
        self._mobilities = None
        if self._mobility_view is not None:
            # Mirror HAFusion.loss: prefer each city's raw OD matrix,
            # fall back to the normalized mobility view. The KL term
            # needs a square matrix, which region shards don't have —
            # they train with the similarity objective only.
            j = self._mobility_view
            candidates = [vs.raw[j] if vs.raw is not None else vs.matrices[j]
                          for vs in self.batch.view_sets]
            if all(m.shape[0] == m.shape[1] for m in candidates):
                self._mobilities = candidates
        self._use_kl = self._mobilities is not None
        self._mobility_probs = (
            pad_transition_probabilities(self._mobilities, self.batch.n_max)
            if self._use_kl else None)
        # Record-once/replay-many executor: the batch layout is fixed at
        # construction, so one plan covers the whole training run.  The
        # optimizer is folded into the plan — clip + Adam update replay
        # as plan kernels after the backward list.
        self._compiled_step = CompiledStep(
            self.loss,
            signature_fn=lambda: tuple(m.shape for m in self.batch.matrices),
            optimizer=self.optimizer, grad_clip=self.config.grad_clip
        ) if compiled else None

    def loss(self) -> Tensor:
        """Masked multi-view objective over the whole batch."""
        batch, model = self.batch, self.model
        h = model.forward(self._inputs, mask=batch.forward_mask())
        total = None
        for j in range(len(batch.view_names)):
            h_j = model.feature_heads[j](h)
            features = [vs.matrices[j] for vs in batch.view_sets]
            term = batched_feature_similarity_loss(h_j, features, batch.mask,
                                                   targets=self._targets[j])
            if j == self._mobility_view and self._use_kl:
                kl = batched_mobility_kl_loss(
                    model.source_head(h), model.dest_head(h), self._mobilities,
                    batch.mask, scale=self.config.mobility_loss_scale,
                    probabilities=self._mobility_probs)
                term = term + kl * self.config.mobility_kl_weight
            total = term if total is None else total + term
        return total

    def step(self) -> float:
        """One optimizer step; returns the pre-step loss."""
        if self._compiled_step is not None:
            # Clip + update are folded into the plan's kernel list.
            return self._compiled_step.run()
        return optimizer_step(self.optimizer, self.loss,
                              self.model.parameters(), self.config.grad_clip)

    def train(self, epochs: int | None = None, log_every: int = 0,
              checkpoint_dir=None, checkpoint_every: int = 0,
              resume: bool = False, checkpoint_keep: int = 3,
              fault_plan=None,
              check_numerics: bool = True) -> TrainingHistory:
        """Train the shared model; crash-safe when ``checkpoint_dir`` is
        given (same contract as :func:`~repro.core.trainer.train_model`:
        atomic checkpoints every ``checkpoint_every`` epochs, ``resume=True``
        continues bit-identically from the newest intact one)."""
        epochs = epochs if epochs is not None else self.config.epochs
        checkpointer = None
        history = None
        if checkpoint_dir is not None:
            checkpointer = Checkpointer(self.model, self.optimizer,
                                        checkpoint_dir,
                                        every=checkpoint_every,
                                        keep=checkpoint_keep,
                                        fault_plan=fault_plan)
            if resume:
                history = checkpointer.resume()
        elif resume:
            raise ValueError("resume=True requires checkpoint_dir")
        if (self._compiled_step is not None and history is not None
                and history.losses and len(history.losses) < epochs):
            # Warm-record + rewind (see train_model): the resumed epoch
            # must execute as a plan replay, not the recording step.
            self._compiled_step.run()
            checkpointer.rewind()
        named = (list(self.model.named_parameters())
                 if check_numerics else None)
        return run_training_loop(self.step, epochs, log_every=log_every,
                                 history=history, checkpointer=checkpointer,
                                 fault_plan=fault_plan,
                                 named_parameters=named,
                                 check_numerics=check_numerics)

    def embed(self) -> list[np.ndarray]:
        """Frozen per-city embeddings from the shared model."""
        from ..serving import EmbeddingService
        return EmbeddingService(self.model, compiled=False).embed_batch(
            self.batch)


def engine_speedup_report(cities: "Sequence[CityLike] | CityBatch",
                          config: HAFusionConfig | None = None, seed: int = 0,
                          repeats: int = 3) -> dict:
    """Time batched vs. sequential inference over the same shared model.

    Returns a JSON-ready dict with the best-of-``repeats`` wall-clock of
    each path, their speedup, and the max absolute embedding difference —
    the number the fig7 benchmark records and asserts on.
    """
    from ..serving import EmbeddingService
    batch = _as_batch(cities)
    model = build_batched_model(batch, config, seed)
    service = EmbeddingService(model, compiled=False)
    # Warm-up (first call pays numpy/BLAS setup) + parity check.
    batched = service.embed_batch(batch)
    sequential = service.embed_each(batch)
    max_abs_diff = max(float(np.abs(b - s).max())
                       for b, s in zip(batched, sequential))
    batched_seconds = min(
        _timed(service.embed_batch, batch) for _ in range(repeats))
    sequential_seconds = min(
        _timed(service.embed_each, batch) for _ in range(repeats))
    return {
        "batch_size": batch.batch_size,
        "n_max": batch.n_max,
        "n_regions": batch.n_regions,
        "padded": batch.is_padded,
        "repeats": repeats,
        "sequential_seconds": sequential_seconds,
        "batched_seconds": batched_seconds,
        "speedup": sequential_seconds / batched_seconds,
        "max_abs_diff": max_abs_diff,
    }


def _timed(func, *args) -> float:
    start = time.perf_counter()
    func(*args)
    return time.perf_counter() - start


def compiled_speedup_report(city: CityLike,
                            config: HAFusionConfig | None = None,
                            seed: int = 7, epochs: int = 4) -> dict:
    """Time eager vs compiled training steps on identical twin models.

    Two models are built from the same seed (identical weights and rng
    streams); one trains eagerly, the other through the compiled
    record/replay executor.  Per-epoch wall-clock is measured for both
    (the compiled side's recording epoch is reported separately — the
    speedup compares an eager step against a plan *replay*), together
    with the per-epoch loss differences and the final-embedding max
    absolute difference.  This is the JSON payload the substrate
    benchmark records and gates (≥2x, ≤1e-8 in float64).
    """
    if epochs < 2:
        raise ValueError(f"epochs must be >= 2 (the first compiled epoch "
                         f"records; at least one replay is timed), got {epochs}")
    views = _as_viewset(city)
    config = config if config is not None else HAFusionConfig()
    mobility_view = (views.names.index("mobility")
                     if "mobility" in views.names else None)

    def build() -> HAFusion:
        return HAFusion(views.dims(), views.n_regions, config,
                        mobility_view=mobility_view,
                        rng=np.random.default_rng(seed))

    eager_model = build()
    parameters = eager_model.parameters()
    optimizer = Adam(parameters, lr=config.lr)
    eager_losses, eager_times = [], []
    for _ in range(epochs):
        start = time.perf_counter()
        eager_losses.append(optimizer_step(
            optimizer, lambda: eager_model.loss(views), parameters,
            config.grad_clip))
        eager_times.append(time.perf_counter() - start)

    compiled_model = build()
    parameters = compiled_model.parameters()
    optimizer = Adam(parameters, lr=config.lr)
    step = CompiledStep(lambda: compiled_model.loss(views))
    compiled_losses, replay_times = [], []
    start = time.perf_counter()
    compiled_losses.append(compiled_optimizer_step(
        optimizer, step, parameters, config.grad_clip))
    record_seconds = time.perf_counter() - start
    for _ in range(epochs - 1):
        start = time.perf_counter()
        compiled_losses.append(compiled_optimizer_step(
            optimizer, step, parameters, config.grad_clip))
        replay_times.append(time.perf_counter() - start)

    max_loss_diff = max(abs(e - c)
                        for e, c in zip(eager_losses, compiled_losses))
    embedding_diff = float(np.abs(eager_model.embed(views)
                                  - compiled_model.embed(views)).max())
    eager_seconds = min(eager_times)
    compiled_seconds = min(replay_times)
    plan = step.plan
    buffers = plan.buffer_report()
    return {
        "grad_buffer_bytes": buffers["grad_buffer_bytes"],
        "grad_buffer_bytes_unpooled": buffers["grad_buffer_bytes_unpooled"],
        "grad_buffer_reduction": buffers["grad_buffer_reduction"],
        "city": getattr(city, "name", "viewset"),
        "n_regions": views.n_regions,
        "epochs": epochs,
        "plan_forward_ops": plan.num_forward_ops,
        "plan_backward_ops": plan.num_backward_ops,
        "record_seconds": record_seconds,
        "eager_seconds_per_epoch": eager_seconds,
        "compiled_seconds_per_epoch": compiled_seconds,
        "speedup": eager_seconds / compiled_seconds,
        "max_loss_diff": max_loss_diff,
        "final_embedding_max_abs_diff": embedding_diff,
    }


def backend_speedup_report(city: CityLike,
                           config: HAFusionConfig | None = None,
                           seed: int = 7, epochs: int = 4,
                           backend: str | None = None,
                           num_workers: int | None = None) -> dict:
    """Time the PR 7 training path against the previous compiled path.

    Baseline: the PR 2/4 executor preserved verbatim — ``"v1"`` kernels,
    serial replay, clip + Adam update looping eagerly in Python after
    each replay.  Candidate: the fused ``"v2"`` lowering with the
    optimizer folded into the plan's kernel list, replayed on
    ``backend`` (default: the ``REPRO_PLAN_BACKEND`` environment, so the
    CI backend matrix steers this report without code changes).  Twin
    models from one seed; per-epoch wall-clock is best-of-replays for
    both sides, and per-epoch losses plus final embeddings are compared
    — the candidate must stay within the compiled-parity budget (≤1e-8
    embeddings in float64).  Single-core machines should expect the
    dispatch-level gains only (~1.05–1.1x); the threaded backend's
    batch-partitioned kernels need real cores to pay off, which is why
    the benchmark gate reads ``REPRO_LOWERING_SPEEDUP_GATE``.
    """
    if epochs < 2:
        raise ValueError(f"epochs must be >= 2 (the first compiled epoch "
                         f"records; at least one replay is timed), got {epochs}")
    views = _as_viewset(city)
    config = config if config is not None else HAFusionConfig()
    mobility_view = (views.names.index("mobility")
                     if "mobility" in views.names else None)

    def build() -> HAFusion:
        return HAFusion(views.dims(), views.n_regions, config,
                        mobility_view=mobility_view,
                        rng=np.random.default_rng(seed))

    def run(model, step_fn):
        losses, times = [], []
        start = time.perf_counter()
        losses.append(step_fn())          # record epoch (not timed)
        record_seconds = time.perf_counter() - start
        for _ in range(epochs - 1):
            start = time.perf_counter()
            losses.append(step_fn())
            times.append(time.perf_counter() - start)
        return losses, min(times), record_seconds

    base_model = build()
    parameters = base_model.parameters()
    optimizer = Adam(parameters, lr=config.lr)
    base_step = CompiledStep(lambda: base_model.loss(views),
                             lowering="v1", backend="serial")
    base_losses, base_seconds, _ = run(
        base_model, lambda: compiled_optimizer_step(
            optimizer, base_step, parameters, config.grad_clip))

    cand_model = build()
    cand_optimizer = Adam(cand_model.parameters(), lr=config.lr)
    cand_step = CompiledStep(lambda: cand_model.loss(views),
                             optimizer=cand_optimizer,
                             grad_clip=config.grad_clip,
                             lowering="v2", backend=backend,
                             num_workers=num_workers)
    cand_losses, cand_seconds, record_seconds = run(cand_model, cand_step.run)

    plan = cand_step.plan
    max_loss_diff = max(abs(b - c)
                        for b, c in zip(base_losses, cand_losses))
    embedding_diff = float(
        np.abs(base_model.embed(views) - cand_model.embed(views)).max())
    # Last: profiling with include_update applies real parameter updates,
    # which is fine only because both twins are throwaway models and every
    # comparison has already been taken.
    prof = plan.profile(replays=3, include_update=True)
    return {
        "city": getattr(city, "name", "viewset"),
        "n_regions": views.n_regions,
        "epochs": epochs,
        "backend": plan.backend,
        "lowering": plan.lowering,
        "num_workers": plan.num_workers,
        "threaded_ops": plan.num_threaded_ops,
        "update_ops": plan.num_update_ops,
        "record_seconds": record_seconds,
        "baseline_seconds_per_epoch": base_seconds,
        "candidate_seconds_per_epoch": cand_seconds,
        "speedup": base_seconds / cand_seconds,
        "max_loss_diff": max_loss_diff,
        "final_embedding_max_abs_diff": embedding_diff,
        "profile_seconds_per_replay": prof["seconds_per_replay"],
        "top_kernels": prof["top_kernels"],
    }


def serving_speedup_report(cities: "Sequence[CityLike] | CityBatch",
                           config: HAFusionConfig | None = None,
                           seed: int = 7, repeats: int = 5,
                           plan_cache: PlanCache | None = None) -> dict:
    """Time eager vs compiled ``batched_embed`` over one shared model.

    The serving scenario of the ROADMAP north star: a fixed model answers
    repeated embed requests of one shape.  The eager side rebuilds the
    Python tape per request; the compiled side replays the cached
    :class:`~repro.nn.compile.InferencePlan` (the one record epoch is
    reported separately and excluded from the replay timing, exactly as
    a warm server would run).  Reports best-of-``repeats`` wall-clocks,
    regions/sec for both paths, max absolute embedding difference, and
    the plan's activation-pool byte accounting — the JSON payload the
    substrate benchmark records and gates (≥2x, ≤1e-8 in float64).
    """
    from ..serving import EmbeddingService
    batch = _as_batch(cities)
    model = build_batched_model(batch, config, seed)
    cache = plan_cache if plan_cache is not None else PlanCache()
    service = EmbeddingService(model, plan_cache=cache)
    # Warm-up (numpy/BLAS setup + the record epoch) and parity check.
    eager = service.embed_batch(batch, compiled=False)
    start = time.perf_counter()
    compiled = service.embed_batch(batch, compiled=True)
    record_seconds = time.perf_counter() - start
    max_abs_diff = max(float(np.abs(e - c).max())
                       for e, c in zip(eager, compiled))
    eager_seconds = min(
        _timed(service.embed_batch, batch, False) for _ in range(repeats))
    compiled_seconds = min(
        _timed(service.embed_batch, batch, True) for _ in range(repeats))
    plan = service.plan_for(batch)
    buffers = plan.buffer_report()
    total_regions = sum(batch.n_regions)
    return {
        "batch_size": batch.batch_size,
        "n_max": batch.n_max,
        "n_regions_total": total_regions,
        "padded": batch.is_padded,
        "repeats": repeats,
        "record_seconds": record_seconds,
        "eager_seconds": eager_seconds,
        "compiled_seconds": compiled_seconds,
        "speedup": eager_seconds / compiled_seconds,
        "eager_regions_per_sec": total_regions / eager_seconds,
        "compiled_regions_per_sec": total_regions / compiled_seconds,
        "max_abs_diff": max_abs_diff,
        "plan_forward_ops": plan.num_forward_ops,
        "plan_fused_chains": plan.num_fused_chains,
        "slot_bytes": buffers["slot_bytes"],
        "slot_bytes_unpooled": buffers["slot_bytes_unpooled"],
        "slot_reduction": buffers["slot_reduction"],
        "cache_stats": cache.stats(),
    }
