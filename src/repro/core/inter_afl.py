"""InterAFL — inter-view attentive feature learning (paper Sec. V, Fig. 5).

Learns correlations between *different regions across different views*
without materialising the O((n·v)²) pairwise attention: a learnable
memory unit of ``dm`` representative embeddings summarises the latent
region space, and every (region, view) embedding attends to it
(external attention, Eq. 16–17):

    A_cv = FFN(Z_sv)                              (weights in R^{d×dm})
    Z_cv = FFN(L1Norm(Softmax(A_cv)))             (weights in R^{dm×d})

Softmax runs over the view axis, L1 normalisation over the memory axis.
Stacked for ``num_layers`` rounds. The HAFusion-w/o-C ablation replaces
this with vanilla self-attention over the flattened (n·v, d) matrix.
"""

from __future__ import annotations

import numpy as np

from ..nn import ExternalAttention, Module, ModuleList, MultiHeadSelfAttention, Tensor

__all__ = ["InterAFL"]


class InterAFL(Module):
    """Cross-view correlation learner.

    Input/output shape: (n, v, d) — all regions across all views — or
    (b, n, v, d) for a batch of cities. External attention treats every
    region row independently, so the batched path needs no masking; the
    vanilla ablation flattens regions × views into tokens and key-masks
    the padded ones.
    """

    def __init__(self, d_model: int, memory_size: int = 72, num_layers: int = 3,
                 attention_kind: str = "external", num_heads: int = 4,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if attention_kind not in ("external", "vanilla"):
            raise ValueError(f"unknown attention_kind {attention_kind!r}")
        rng = rng if rng is not None else np.random.default_rng()
        self.attention_kind = attention_kind
        if attention_kind == "external":
            self.layers = ModuleList([
                ExternalAttention(d_model, memory_size, rng=rng)
                for _ in range(num_layers)
            ])
        else:
            self.layers = ModuleList([
                MultiHeadSelfAttention(d_model, num_heads=num_heads, rng=rng)
                for _ in range(num_layers)
            ])

    def forward(self, z_stack: Tensor, mask: np.ndarray | None = None) -> Tensor:
        if z_stack.ndim not in (3, 4):
            raise ValueError(f"expected (n, v, d) or (b, n, v, d) input, got shape {z_stack.shape}")
        n, v, d = z_stack.shape[-3:]
        h = z_stack
        if self.attention_kind == "external":
            for layer in self.layers:
                h = h + layer(h)  # residual keeps per-view identity stable
            return h
        # Ablation: vanilla self-attention over all n*v tokens (the
        # "computationally expensive, noisy" alternative the paper argues
        # against in Sec. V).
        flat = h.reshape(z_stack.shape[:-3] + (n * v, d))
        token_mask = None if mask is None else np.repeat(mask, v, axis=-1)
        for layer in self.layers:
            flat = flat + layer(flat, mask=token_mask)
        return flat.reshape(z_stack.shape)
