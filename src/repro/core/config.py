"""Configuration for the HAFusion model and its training loop.

Defaults follow Sec. VI-A of the paper: d = 144, d' = 64 (ViewFusion
latent), c = 32 (conv channels), dm = 72 (memory slots), 3 IntraAFL /
3 InterAFL / 3 RegionFusion layers (NYC settings), Adam lr 5e-4, 2500
full-batch epochs. Experiment runners shrink ``epochs`` for CPU budgets
(recorded in EXPERIMENTS.md); the architecture is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["HAFusionConfig"]


@dataclass(frozen=True)
class HAFusionConfig:
    """Hyper-parameters of HAFusion.

    Architecture
    ------------
    d:               region embedding dimensionality (paper: 144).
    d_prime:         ViewFusion latent dimensionality d' (paper: 64).
    conv_channels:   channels c of IntraAFL's Conv2D module (paper: 32).
    memory_size:     memory-unit slots dm of InterAFL (paper: 72).
    num_heads:       attention heads in RegionSA / RegionFusion.
    intra_layers:    IntraAFL encoder layers (paper: 3 NYC/SF, 1 CHI).
    inter_layers:    InterAFL layers (paper: 3 NYC, 2 CHI/SF).
    fusion_layers:   RegionFusion layers (paper: 3, Table VII).
    dropout:         dropout rate inside encoder blocks.

    Ablation switches (Table VI)
    ----------------------------
    fusion:          "dafusion" | "sum" (w/o-D+) | "concat" (w/o-D‖).
    intra_attention: "region_sa" | "vanilla" (w/o-S).
    inter_attention: "external" | "vanilla" (w/o-C).

    Training
    --------
    lr / epochs:     Adam learning rate and full-batch epoch count.
    mobility_loss_scale: "mean" divides the KL loss by n (keeps the three
        view losses on comparable scales on CPU-sized runs); "sum" is the
        paper's literal Eq. 12.
    mobility_kl_weight: multiplier on the KL term (1.0 = the paper's
        unweighted sum; empirically the best setting — the KL term
        carries the mobility-hub structure check-in prediction needs).
    grad_clip:       max global grad norm (0 disables).
    """

    d: int = 144
    d_prime: int = 64
    conv_channels: int = 32
    memory_size: int = 72
    num_heads: int = 4
    intra_layers: int = 3
    inter_layers: int = 3
    fusion_layers: int = 3
    dropout: float = 0.1

    fusion: str = "dafusion"
    intra_attention: str = "region_sa"
    inter_attention: str = "external"

    lr: float = 5e-4
    epochs: int = 2500
    mobility_loss_scale: str = "mean"
    mobility_kl_weight: float = 1.0
    grad_clip: float = 5.0

    def __post_init__(self):
        if self.d % self.num_heads != 0:
            raise ValueError(f"d={self.d} must be divisible by num_heads={self.num_heads}")
        if self.fusion not in ("dafusion", "sum", "concat"):
            raise ValueError(f"unknown fusion {self.fusion!r}")
        if self.intra_attention not in ("region_sa", "vanilla"):
            raise ValueError(f"unknown intra_attention {self.intra_attention!r}")
        if self.inter_attention not in ("external", "vanilla"):
            raise ValueError(f"unknown inter_attention {self.inter_attention!r}")
        if self.mobility_loss_scale not in ("mean", "sum"):
            raise ValueError(f"unknown mobility_loss_scale {self.mobility_loss_scale!r}")
        for name in ("d", "d_prime", "conv_channels", "memory_size",
                     "intra_layers", "inter_layers", "fusion_layers", "epochs"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    def with_overrides(self, **kwargs) -> "HAFusionConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def for_city(cls, city_name: str, **overrides) -> "HAFusionConfig":
        """Paper's per-city grid-searched layer counts (Sec. VI-A)."""
        per_city = {
            "nyc": dict(intra_layers=3, inter_layers=3),
            "chi": dict(intra_layers=1, inter_layers=2),
            "sf": dict(intra_layers=3, inter_layers=2),
        }
        base = per_city.get(city_name.split("_")[0], {})
        base.update(overrides)
        return cls(**base)
