"""DAFusion — dual-feature attentive fusion (paper Sec. IV-B, Fig. 3).

ViewFusion aggregates the view-based embeddings of the same region into
one embedding; RegionFusion then propagates information *between regions*
through stacked self-attention. The module is generic: it takes any list
of (n, d) — or batched (b, n, d) — view-based embedding matrices, which
is what lets it be bolted onto MVURE / MGFN / HREP in Table IV (see
:mod:`repro.baselines.fusion_adapters`).

Ablation variants (Table VI) replace DAFusion with an element-wise sum
(w/o-D+) or a concat+MLP (w/o-D‖); :func:`build_fusion` selects between
them.
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, Module, Tensor
from .region_fusion import RegionFusion
from .view_fusion import ViewFusion

__all__ = ["DAFusion", "SumFusion", "ConcatFusion", "build_fusion"]


class DAFusion(Module):
    """ViewFusion + RegionFusion (the paper's full fusion module)."""

    def __init__(self, d_model: int, d_prime: int = 64, num_layers: int = 3,
                 num_heads: int = 4, dropout: float = 0.1,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.view_fusion = ViewFusion(d_model, d_prime=d_prime, rng=rng)
        self.region_fusion = RegionFusion(d_model, num_layers=num_layers,
                                          num_heads=num_heads, dropout=dropout,
                                          rng=rng)

    def forward(self, views: list[Tensor], mask: np.ndarray | None = None) -> Tensor:
        fused = self.view_fusion(views, mask=mask)
        return self.region_fusion(fused, mask=mask)

    @property
    def view_weights(self) -> np.ndarray | None:
        """Softmax view weights α from the last forward pass."""
        return self.view_fusion.last_weights


class SumFusion(Module):
    """HAFusion-w/o-D+: element-wise sum of the view embeddings."""

    def __init__(self, d_model: int, **_ignored):
        super().__init__()

    def forward(self, views: list[Tensor], mask: np.ndarray | None = None) -> Tensor:
        out = views[0]
        for view in views[1:]:
            out = out + view
        return out


class ConcatFusion(Module):
    """HAFusion-w/o-D‖: concatenation followed by a dimension-reducing MLP."""

    def __init__(self, d_model: int, n_views: int,
                 rng: np.random.Generator | None = None, **_ignored):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.projection = Linear(n_views * d_model, d_model, rng=rng)

    def forward(self, views: list[Tensor], mask: np.ndarray | None = None) -> Tensor:
        return self.projection(Tensor.concat(views, axis=-1)).relu()


def build_fusion(kind: str, d_model: int, n_views: int, d_prime: int = 64,
                 num_layers: int = 3, num_heads: int = 4, dropout: float = 0.1,
                 rng: np.random.Generator | None = None) -> Module:
    """Factory used by the model and the Table VI ablations."""
    if kind == "dafusion":
        return DAFusion(d_model, d_prime=d_prime, num_layers=num_layers,
                        num_heads=num_heads, dropout=dropout, rng=rng)
    if kind == "sum":
        return SumFusion(d_model)
    if kind == "concat":
        return ConcatFusion(d_model, n_views, rng=rng)
    raise ValueError(f"unknown fusion kind {kind!r}")
