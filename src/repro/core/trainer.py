"""Full-batch training loop for HAFusion (paper Sec. VI-A).

The paper trains for 2,500 epochs in full batches with Adam (lr 5e-4).
:func:`train_hafusion` is the one-call entry point used by the examples
and experiment runners; :class:`TrainingHistory` records per-epoch losses
and wall-clock time for Table V.

``compiled=True`` switches the loop onto the record-once/replay-many
executor (:mod:`repro.nn.compile`): the first epoch runs eagerly under
the tape recorder, every later epoch replays the captured plan over
preallocated buffers.  Shapes are static in full-batch training, so the
plan stays valid for the whole run; if they do change, the step falls
back to one eager (re-recording) epoch automatically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..data.city import SyntheticCity
from ..data.features import ViewSet
from ..nn import Adam, CompiledStep, clip_grad_norm
from .config import HAFusionConfig
from .model import HAFusion

__all__ = ["TrainingHistory", "optimizer_step", "compiled_optimizer_step",
           "run_training_loop", "train_model", "train_hafusion"]


@dataclass
class TrainingHistory:
    """Loss curve and timing of one training run."""

    losses: list[float] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("no epochs recorded")
        return self.losses[-1]

    def improved(self) -> bool:
        """Whether the loss decreased from first to last epoch."""
        return len(self.losses) >= 2 and self.losses[-1] < self.losses[0]


def optimizer_step(optimizer, loss_fn, parameters, grad_clip: float) -> float:
    """One full-batch step: zero grads, evaluate ``loss_fn``, backprop,
    clip, update. Shared by :func:`train_model` and the batched engine's
    :class:`~repro.core.engine.BatchedTrainer`; returns the loss value.
    """
    optimizer.zero_grad()
    loss = loss_fn()
    loss.backward()
    if grad_clip > 0:
        clip_grad_norm(parameters, grad_clip)
    optimizer.step()
    return loss.item()


def compiled_optimizer_step(optimizer, step: CompiledStep, parameters,
                            grad_clip: float) -> float:
    """Compiled twin of :func:`optimizer_step`: the forward+backward pair
    is one plan replay (``step.run()`` binds every parameter's ``.grad``);
    clipping and the optimizer update stay identical.

    For a step built *without* a folded optimizer.  Prefer constructing
    ``CompiledStep(..., optimizer=opt, grad_clip=clip)`` and calling
    ``step.run()`` directly — that folds clip+update into the plan's
    kernel list (bit-identical, less per-epoch python)."""
    optimizer.zero_grad()
    value = step.run()
    if grad_clip > 0:
        clip_grad_norm(parameters, grad_clip)
    optimizer.step()
    return value


def run_training_loop(step, epochs: int, log_every: int = 0) -> TrainingHistory:
    """Drive ``step()`` for ``epochs`` iterations, recording the loss
    curve and wall-clock time (the one training protocol both the
    per-city and the batched trainers follow)."""
    history = TrainingHistory()
    start = time.perf_counter()
    for epoch in range(epochs):
        history.losses.append(step())
        if log_every and (epoch + 1) % log_every == 0:
            print(f"epoch {epoch + 1:>5}/{epochs}  loss {history.losses[-1]:.4f}")
    history.seconds = time.perf_counter() - start
    return history


def train_model(model: HAFusion, views: ViewSet,
                epochs: int | None = None, lr: float | None = None,
                log_every: int = 0, compiled: bool = False) -> TrainingHistory:
    """Train ``model`` on ``views`` with full-batch Adam.

    Parameters
    ----------
    epochs, lr:
        Override the model config's values if given.
    log_every:
        Print a progress line every k epochs (0 = silent).
    compiled:
        Run epochs through the compiled record/replay executor instead of
        rebuilding the eager tape each step (same arithmetic, locked to
        ≤1e-8 parity by ``tests/core/test_compiled_parity.py``).
    """
    config = model.config
    epochs = epochs if epochs is not None else config.epochs
    lr = lr if lr is not None else config.lr
    parameters = model.parameters()
    optimizer = Adam(parameters, lr=lr)
    if compiled:
        # The optimizer is folded into the plan: clipping and the Adam
        # update replay as plan kernels, so each epoch after the first is
        # one flat kernel list (no eager code on the hot path).
        step = CompiledStep(
            lambda: model.loss(views),
            signature_fn=lambda: tuple(m.shape for m in views.matrices),
            optimizer=optimizer, grad_clip=config.grad_clip)
        return run_training_loop(step.run, epochs, log_every=log_every)
    return run_training_loop(
        lambda: optimizer_step(optimizer, lambda: model.loss(views),
                               parameters, config.grad_clip),
        epochs, log_every=log_every)


def train_hafusion(city: SyntheticCity, config: HAFusionConfig | None = None,
                   seed: int = 0, view_names: list[str] | None = None,
                   log_every: int = 0,
                   compiled: bool = False) -> tuple[HAFusion, TrainingHistory]:
    """Build and train HAFusion on a city; returns (model, history).

    Parameters
    ----------
    view_names:
        Subset of views to use (Fig. 6 ablations); default all three.
    compiled:
        Train through the compiled record/replay executor.
    """
    views = city.views()
    if view_names is not None:
        views = views.subset(view_names)
    mobility_view = views.names.index("mobility") if "mobility" in views.names else None
    config = config if config is not None else HAFusionConfig.for_city(city.name)
    rng = np.random.default_rng(seed)
    model = HAFusion(views.dims(), views.n_regions, config,
                     mobility_view=mobility_view, rng=rng)
    history = train_model(model, views, log_every=log_every, compiled=compiled)
    return model, history
