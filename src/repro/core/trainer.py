"""Full-batch training loop for HAFusion (paper Sec. VI-A).

The paper trains for 2,500 epochs in full batches with Adam (lr 5e-4).
:func:`train_hafusion` is the one-call entry point used by the examples
and experiment runners; :class:`TrainingHistory` records per-epoch losses
and wall-clock time for Table V.

``compiled=True`` switches the loop onto the record-once/replay-many
executor (:mod:`repro.nn.compile`): the first epoch runs eagerly under
the tape recorder, every later epoch replays the captured plan over
preallocated buffers.  Shapes are static in full-batch training, so the
plan stays valid for the whole run; if they do change, the step falls
back to one eager (re-recording) epoch automatically.

Training is **crash-safe** (PR 9): pass ``checkpoint_dir=`` to persist
atomic checksummed checkpoints (:mod:`repro.train.checkpoint`) every
``checkpoint_every`` epochs, and ``resume=True`` to continue from the
newest intact one — bit-identically, for both eager and compiled runs.
SIGTERM/SIGINT are handled preemption-style: the loop finishes the
current epoch, checkpoints, and raises
:class:`~repro.train.checkpoint.TrainingPreempted`.  Non-finite losses
or gradients checkpoint the diverged state and raise
:class:`~repro.train.checkpoint.NumericalError` instead of silently
training on NaNs.
"""

from __future__ import annotations

import signal
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..data.city import SyntheticCity
from ..data.features import ViewSet
from ..nn import Adam, CompiledStep, clip_grad_norm
from ..train.checkpoint import Checkpointer, NumericalError, TrainingPreempted
from .config import HAFusionConfig
from .model import HAFusion

__all__ = ["TrainingHistory", "optimizer_step", "compiled_optimizer_step",
           "run_training_loop", "train_model", "train_hafusion"]


@dataclass
class TrainingHistory:
    """Loss curve and timing of one training run.

    ``resume_report`` is populated by :func:`run_training_loop` when a
    checkpointer was active: checkpoints written/loaded/discarded, the
    resume epoch, and the wall-clock the resume did not have to redo.
    """

    losses: list[float] = field(default_factory=list)
    seconds: float = 0.0
    resume_report: dict | None = None

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("no epochs recorded")
        return self.losses[-1]

    def improved(self) -> bool:
        """Whether the loss decreased from first to last epoch."""
        return len(self.losses) >= 2 and self.losses[-1] < self.losses[0]


def optimizer_step(optimizer, loss_fn, parameters, grad_clip: float) -> float:
    """One full-batch step: zero grads, evaluate ``loss_fn``, backprop,
    clip, update. Shared by :func:`train_model` and the batched engine's
    :class:`~repro.core.engine.BatchedTrainer`; returns the loss value.
    """
    optimizer.zero_grad()
    loss = loss_fn()
    loss.backward()
    if grad_clip > 0:
        clip_grad_norm(parameters, grad_clip)
    optimizer.step()
    return loss.item()


def compiled_optimizer_step(optimizer, step: CompiledStep, parameters,
                            grad_clip: float) -> float:
    """Compiled twin of :func:`optimizer_step`: the forward+backward pair
    is one plan replay (``step.run()`` binds every parameter's ``.grad``);
    clipping and the optimizer update stay identical.

    For a step built *without* a folded optimizer.  Prefer constructing
    ``CompiledStep(..., optimizer=opt, grad_clip=clip)`` and calling
    ``step.run()`` directly — that folds clip+update into the plan's
    kernel list (bit-identical, less per-epoch python)."""
    optimizer.zero_grad()
    value = step.run()
    if grad_clip > 0:
        clip_grad_norm(parameters, grad_clip)
    optimizer.step()
    return value


def _non_finite_grads(named_parameters) -> list[str]:
    """Names of parameters whose gradient holds a NaN or ±inf.

    Allocation-free: min/max reductions propagate NaN and surface inf,
    so one pair of scalars per parameter decides finiteness."""
    bad: list[str] = []
    for name, param in named_parameters:
        grad = param.grad
        if grad is None or grad.size == 0:
            continue
        lo, hi = grad.min(), grad.max()
        if not (np.isfinite(lo) and np.isfinite(hi)):
            bad.append(name)
    return bad


def run_training_loop(step, epochs: int, log_every: int = 0, *,
                      history: TrainingHistory | None = None,
                      checkpointer: Checkpointer | None = None,
                      fault_plan=None,
                      named_parameters=None,
                      check_numerics: bool = True,
                      handle_signals: bool = True) -> TrainingHistory:
    """Drive ``step()`` once per remaining epoch, recording the loss
    curve and wall-clock time (the one training protocol both the
    per-city and the batched trainers follow).

    Parameters
    ----------
    history:
        A resumed :class:`TrainingHistory` — the loop continues at epoch
        ``len(history.losses) + 1`` and *replays nothing* (already at or
        past ``epochs`` means zero steps run).  ``None`` starts fresh.
    checkpointer:
        Saves a checkpoint every ``checkpointer.every`` completed epochs,
        plus one on preemption or numerical abort; fills
        ``history.resume_report`` on exit.
    fault_plan:
        A :class:`~repro.train.faults.TrainFaultPlan` fired at the
        ``before_step`` / ``after_step`` points of each epoch (the
        ``mid_checkpoint`` point fires inside the checkpoint writer).
    named_parameters:
        ``(name, Parameter)`` pairs whose gradients the numerical guard
        scans after each step; ``None`` guards the loss value only.
    check_numerics:
        Raise :class:`~repro.train.checkpoint.NumericalError` (after
        checkpointing, when a checkpointer is active) on a non-finite
        loss or gradient instead of training on into NaN.
    handle_signals:
        Turn SIGTERM/SIGINT into finish-epoch → checkpoint →
        :class:`~repro.train.checkpoint.TrainingPreempted` (main thread
        only; worker threads never install handlers).
    """
    history = history if history is not None else TrainingHistory()
    base_seconds = history.seconds
    start = time.perf_counter()
    attempt = checkpointer.attempt if checkpointer is not None else 1

    def _sync_seconds() -> None:
        history.seconds = base_seconds + (time.perf_counter() - start)

    def _fire(epoch: int, when: str) -> None:
        if fault_plan is not None:
            fault_plan.apply(epoch, attempt, when)

    preempt_signals: list[int] = []
    installed: list[tuple[int, object]] = []
    if handle_signals and threading.current_thread() is threading.main_thread():
        def _on_signal(signum, frame):
            preempt_signals.append(signum)
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                installed.append((sig, signal.signal(sig, _on_signal)))
            except (ValueError, OSError):   # exotic embedding; run unguarded
                pass

    try:
        for epoch in range(len(history.losses) + 1, epochs + 1):
            _fire(epoch, "before_step")
            loss = float(step())
            if check_numerics:
                bad = [] if named_parameters is None else \
                    _non_finite_grads(named_parameters)
                if bad or not np.isfinite(loss):
                    # Checkpoint the diverged state first: a blown-up run
                    # should be debuggable, not vanished.
                    history.losses.append(loss)
                    path = None
                    if checkpointer is not None:
                        _sync_seconds()
                        path = checkpointer.save(epoch, history,
                                                 reason="numerical")
                    what = f"loss={loss!r}" if not np.isfinite(loss) else \
                        f"gradients of {bad}"
                    suffix = f" (diverged state checkpointed at {path})" \
                        if path is not None else ""
                    raise NumericalError(
                        f"non-finite {what} at epoch {epoch}{suffix}",
                        epoch=epoch, loss=loss, bad_parameters=bad)
            history.losses.append(loss)
            _fire(epoch, "after_step")
            if checkpointer is not None:
                _sync_seconds()
                checkpointer.maybe_save(epoch, history)
            if preempt_signals:
                _sync_seconds()
                path = None
                if checkpointer is not None:
                    path = checkpointer.save(epoch, history, reason="preempt")
                raise TrainingPreempted(
                    f"signal {preempt_signals[0]} after epoch {epoch}"
                    + (f"; checkpointed to {path}" if path else
                       "; no checkpointer active"),
                    epoch=epoch, signum=preempt_signals[0],
                    checkpoint_path=path)
            if log_every and epoch % log_every == 0:
                print(f"epoch {epoch:>5}/{epochs}  loss {history.losses[-1]:.4f}")
    finally:
        for sig, old in installed:
            signal.signal(sig, old)
    _sync_seconds()
    if checkpointer is not None:
        history.resume_report = checkpointer.resume_report()
    return history


def train_model(model: HAFusion, views: ViewSet,
                epochs: int | None = None, lr: float | None = None,
                log_every: int = 0, compiled: bool = False,
                checkpoint_dir=None, checkpoint_every: int = 0,
                resume: bool = False, checkpoint_keep: int = 3,
                fault_plan=None,
                check_numerics: bool = True) -> TrainingHistory:
    """Train ``model`` on ``views`` with full-batch Adam.

    Parameters
    ----------
    epochs, lr:
        Override the model config's values if given.
    log_every:
        Print a progress line every k epochs (0 = silent).
    compiled:
        Run epochs through the compiled record/replay executor instead of
        rebuilding the eager tape each step (same arithmetic, locked to
        ≤1e-8 parity by ``tests/core/test_compiled_parity.py``).
    checkpoint_dir, checkpoint_every, checkpoint_keep:
        Persist an atomic checkpoint to ``checkpoint_dir`` every
        ``checkpoint_every`` completed epochs, retaining the newest
        ``checkpoint_keep`` (``checkpoint_dir=None`` disables).
    resume:
        Restore the newest intact checkpoint in ``checkpoint_dir`` before
        training and continue from its epoch, bit-identically to a run
        that never crashed.  Under ``compiled=True`` the restored state
        first warm-records the plan and is then rewound, so the resumed
        epoch executes as a plan *replay* exactly like it would have in
        the uninterrupted run.
    fault_plan:
        Deterministic :class:`~repro.train.faults.TrainFaultPlan` (tests
        and chaos smoke only).
    """
    config = model.config
    epochs = epochs if epochs is not None else config.epochs
    lr = lr if lr is not None else config.lr
    parameters = model.parameters()
    optimizer = Adam(parameters, lr=lr)
    checkpointer = None
    history = None
    if checkpoint_dir is not None:
        checkpointer = Checkpointer(model, optimizer, checkpoint_dir,
                                    every=checkpoint_every,
                                    keep=checkpoint_keep,
                                    fault_plan=fault_plan)
        if resume:
            history = checkpointer.resume()
    elif resume:
        raise ValueError("resume=True requires checkpoint_dir")
    named = list(model.named_parameters()) if check_numerics else None
    if compiled:
        # The optimizer is folded into the plan: clipping and the Adam
        # update replay as plan kernels, so each epoch after the first is
        # one flat kernel list (no eager code on the hot path).
        step = CompiledStep(
            lambda: model.loss(views),
            signature_fn=lambda: tuple(m.shape for m in views.matrices),
            optimizer=optimizer, grad_clip=config.grad_clip)
        if history is not None and history.losses and len(history.losses) < epochs:
            # Warm-record + rewind: recording costs one real (eager)
            # step, which would make the resumed epoch eager where the
            # uninterrupted run replayed it.  Record once, then restore
            # the checkpoint again — in place, so the freshly recorded
            # plan stays valid — and every remaining epoch is a replay,
            # keeping resume bit-identical.
            step.run()
            checkpointer.rewind()
        return run_training_loop(step.run, epochs, log_every=log_every,
                                 history=history, checkpointer=checkpointer,
                                 fault_plan=fault_plan,
                                 named_parameters=named,
                                 check_numerics=check_numerics)
    return run_training_loop(
        lambda: optimizer_step(optimizer, lambda: model.loss(views),
                               parameters, config.grad_clip),
        epochs, log_every=log_every,
        history=history, checkpointer=checkpointer, fault_plan=fault_plan,
        named_parameters=named, check_numerics=check_numerics)


def train_hafusion(city: SyntheticCity, config: HAFusionConfig | None = None,
                   seed: int = 0, view_names: list[str] | None = None,
                   log_every: int = 0, compiled: bool = False,
                   checkpoint_dir=None, checkpoint_every: int = 0,
                   resume: bool = False, checkpoint_keep: int = 3,
                   fault_plan=None) -> tuple[HAFusion, TrainingHistory]:
    """Build and train HAFusion on a city; returns (model, history).

    Parameters
    ----------
    view_names:
        Subset of views to use (Fig. 6 ablations); default all three.
    compiled:
        Train through the compiled record/replay executor.
    checkpoint_dir, checkpoint_every, resume, checkpoint_keep, fault_plan:
        Crash-safe training controls, forwarded to :func:`train_model`.
        Resume rebuilds the model from the same ``seed`` and then
        overwrites every parameter and RNG stream from the checkpoint,
        so the continued run is bit-identical to an uninterrupted one.
    """
    views = city.views()
    if view_names is not None:
        views = views.subset(view_names)
    mobility_view = views.names.index("mobility") if "mobility" in views.names else None
    config = config if config is not None else HAFusionConfig.for_city(city.name)
    rng = np.random.default_rng(seed)
    model = HAFusion(views.dims(), views.n_regions, config,
                     mobility_view=mobility_view, rng=rng)
    history = train_model(model, views, log_every=log_every, compiled=compiled,
                          checkpoint_dir=checkpoint_dir,
                          checkpoint_every=checkpoint_every,
                          resume=resume, checkpoint_keep=checkpoint_keep,
                          fault_plan=fault_plan)
    return model, history
