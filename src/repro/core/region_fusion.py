"""RegionFusion — region-aware attentive fusion (paper Sec. IV-B, Eq. 4–7).

A stack of vanilla post-norm Transformer encoder blocks applied to the
view-fused embedding matrix Z̃, propagating information *between regions*
so the final embeddings encode higher-order region correlations. The
paper stacks 3 layers (Table VII).
"""

from __future__ import annotations

import numpy as np

from ..nn import Module, ModuleList, Tensor, TransformerEncoderBlock

__all__ = ["RegionFusion"]


class RegionFusion(Module):
    """Stacked self-attention encoder over the fused region embeddings.

    Accepts (n, d) or a batched (b, n, d); with a keep ``mask``, padded
    regions are excluded from every attention softmax.
    """

    def __init__(self, d_model: int, num_layers: int = 3, num_heads: int = 4,
                 dropout: float = 0.1, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.blocks = ModuleList([
            TransformerEncoderBlock(d_model, num_heads=num_heads,
                                    dropout=dropout, rng=rng)
            for _ in range(num_layers)
        ])

    def forward(self, z: Tensor, mask: np.ndarray | None = None) -> Tensor:
        h = z
        for block in self.blocks:
            h = block(h, mask=mask)
        return h
