"""``repro.core`` — the paper's contribution: HAFusion.

Modules map one-to-one onto the paper's architecture (Fig. 2):

- :class:`IntraAFL` / :class:`RegionSA` — intra-view learning (Fig. 4);
- :class:`InterAFL` — cross-view external attention (Fig. 5);
- :class:`HALearning` — the hybrid of the two (Eq. 18);
- :class:`ViewFusion` / :class:`RegionFusion` / :class:`DAFusion` —
  dual-feature attentive fusion (Fig. 3, Eq. 1–7);
- :mod:`repro.core.losses` — Eq. 8 and Eq. 9–12 objectives;
- :class:`HAFusion` + :func:`train_hafusion` — the assembled model and
  its full-batch Adam trainer;
- :mod:`repro.core.engine` — batched multi-city execution: one
  vectorized ``(b, n, d)`` pass over a padded+masked stack of cities (or
  region shards of one large city) via :func:`batched_embed` /
  :class:`BatchedTrainer`, parity-locked against the per-city loop.
"""

from .config import HAFusionConfig
from .dafusion import ConcatFusion, DAFusion, SumFusion, build_fusion
from .engine import (
    BatchedEmbedResult,
    BatchedTrainer,
    CityBatch,
    backend_speedup_report,
    batched_embed,
    build_batched_model,
    compiled_speedup_report,
    engine_speedup_report,
    serving_speedup_report,
    make_batch,
    sequential_embed,
    shard_viewset,
)
from .halearning import HALearning
from .inter_afl import InterAFL
from .intra_afl import IntraAFL, RegionSA
from .losses import (
    batched_feature_similarity_loss,
    batched_mobility_kl_loss,
    feature_similarity_loss,
    mobility_kl_loss,
    mobility_transition_probabilities,
    pad_similarity_targets,
    pad_transition_probabilities,
)
from .model import HAFusion
from .region_fusion import RegionFusion
from .trainer import (
    TrainingHistory,
    compiled_optimizer_step,
    optimizer_step,
    train_hafusion,
    train_model,
)
from .view_fusion import ViewFusion

__all__ = [
    "HAFusionConfig",
    "HAFusion",
    "HALearning",
    "IntraAFL",
    "RegionSA",
    "InterAFL",
    "ViewFusion",
    "RegionFusion",
    "DAFusion",
    "SumFusion",
    "ConcatFusion",
    "build_fusion",
    "feature_similarity_loss",
    "mobility_kl_loss",
    "mobility_transition_probabilities",
    "batched_feature_similarity_loss",
    "batched_mobility_kl_loss",
    "pad_similarity_targets",
    "pad_transition_probabilities",
    "TrainingHistory",
    "train_hafusion",
    "train_model",
    "optimizer_step",
    "compiled_optimizer_step",
    "CityBatch",
    "make_batch",
    "shard_viewset",
    "build_batched_model",
    "BatchedEmbedResult",
    "BatchedTrainer",
    "batched_embed",
    "sequential_embed",
    "engine_speedup_report",
    "compiled_speedup_report",
    "backend_speedup_report",
    "serving_speedup_report",
]
