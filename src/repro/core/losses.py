"""Training objectives of HAFusion (paper Sec. IV-C).

Two loss families:

- :func:`feature_similarity_loss` — Eq. 8: the dot products of
  feature-oriented embeddings should match the cosine similarity of the
  raw input features (used for the POI and land-use views).
- :func:`mobility_kl_loss` — Eq. 9–12: source/destination transition
  probabilities derived from the embeddings should match the empirical
  taxi-flow transition probabilities under KL divergence (used for the
  mobility view).
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor
from ..nn import functional as F

__all__ = [
    "feature_similarity_loss",
    "mobility_transition_probabilities",
    "mobility_kl_loss",
    "pad_similarity_targets",
    "pad_transition_probabilities",
    "batched_feature_similarity_loss",
    "batched_mobility_kl_loss",
]


def feature_similarity_loss(embeddings: Tensor, feature_matrix: np.ndarray) -> Tensor:
    """Eq. 8: mean |cos(x_i, x_k) − h_i · h_k| over all region pairs.

    Parameters
    ----------
    embeddings:
        (n, d) feature-oriented embedding matrix ``H_j`` (already mapped
        through the per-view MLP).
    feature_matrix:
        (n, d_j) raw input features of this view; constant w.r.t. the
        model.
    """
    target = Tensor(F.cosine_similarity_matrix(feature_matrix))
    predicted = embeddings @ embeddings.T
    return (predicted - target).abs().mean()


def mobility_transition_probabilities(mobility: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Eq. 9: empirical source (row) and destination (column) transition
    probabilities of the OD matrix; zero rows/columns become uniform.
    """
    mobility = np.asarray(mobility, dtype=np.float64)
    if mobility.ndim != 2 or mobility.shape[0] != mobility.shape[1]:
        raise ValueError(f"mobility matrix must be square, got {mobility.shape}")
    n = mobility.shape[0]
    row_sums = mobility.sum(axis=1, keepdims=True)
    col_sums = mobility.sum(axis=0, keepdims=True)
    p_source = np.where(row_sums > 0, mobility / np.where(row_sums == 0, 1, row_sums), 1.0 / n)
    p_dest = np.where(col_sums > 0, mobility / np.where(col_sums == 0, 1, col_sums), 1.0 / n)
    return p_source, p_dest


def mobility_kl_loss(h_source: Tensor, h_dest: Tensor, mobility: np.ndarray,
                     scale: str = "mean") -> Tensor:
    """Eq. 10–12: cross-entropy between empirical and embedding-derived
    transition distributions (the KL divergence up to a constant).

    Parameters
    ----------
    h_source, h_dest:
        (n, d) source- and destination-oriented embedding matrices
        ``H^S``/``H^D``.
    mobility:
        (n, n) raw OD count matrix.
    scale:
        "sum" — the paper's literal double sum; "mean" — divided by n,
        keeping this loss on the same scale as the per-pair feature
        losses.
    """
    if scale not in ("mean", "sum"):
        raise ValueError(f"unknown scale {scale!r}")
    p_source, p_dest = mobility_transition_probabilities(mobility)
    logits = h_source @ h_dest.T
    log_p_source = F.log_softmax(logits, axis=1)   # Eq. 10: normalize over destinations
    log_p_dest = F.log_softmax(logits, axis=0)     # Eq. 11: normalize over sources
    loss = -(Tensor(p_source) * log_p_source).sum() - (Tensor(p_dest) * log_p_dest).sum()
    if scale == "mean":
        loss = loss * (1.0 / mobility.shape[0])
    return loss


# ----------------------------------------------------------------------
# Batched (multi-city) variants used by :mod:`repro.core.engine`.
#
# Each takes a (b, n_max, d) embedding batch plus per-city raw inputs and
# a (b, n_max) keep mask, and returns the MEAN over cities of the exact
# per-city loss above — padded rows/columns contribute exactly zero, so a
# batch of size one reproduces the unbatched loss up to summation order.
# ----------------------------------------------------------------------

def pad_similarity_targets(feature_matrices: list[np.ndarray],
                           n_max: int) -> np.ndarray:
    """Per-city cosine-similarity targets zero-padded to (b, n_max, n_max).

    Constant w.r.t. the model — trainers should compute this once and
    pass it back through ``targets=`` on every step.
    """
    targets = np.zeros((len(feature_matrices), n_max, n_max))
    for i, features in enumerate(feature_matrices):
        n_i = features.shape[0]
        targets[i, :n_i, :n_i] = F.cosine_similarity_matrix(features)
    return targets


def batched_feature_similarity_loss(embeddings: Tensor,
                                    feature_matrices: list[np.ndarray],
                                    mask: np.ndarray,
                                    targets: np.ndarray | None = None) -> Tensor:
    """Eq. 8 averaged over a padded city batch.

    Parameters
    ----------
    embeddings:
        (b, n_max, d) feature-oriented embeddings ``H_j`` of the batch.
    feature_matrices:
        Per-city raw (n_i, d_j) feature matrices of this view (unpadded).
    mask:
        (b, n_max) keep mask; ``mask[i, :n_i] == 1``.
    targets:
        Optional precomputed :func:`pad_similarity_targets` output (they
        are constant per batch, so per-step recomputation is wasted work).
    """
    b, n_max, _ = embeddings.shape
    if targets is None:
        targets = pad_similarity_targets(feature_matrices, n_max)
    predicted = embeddings @ embeddings.T                    # (b, n, n)
    pair_mask = mask[:, :, None] * mask[:, None, :]
    counts = mask.sum(axis=-1)
    diff = (predicted - Tensor(targets)).abs() * Tensor(pair_mask)
    per_city = diff.sum(axis=(-1, -2)) * Tensor(1.0 / counts ** 2)
    return per_city.mean()


def pad_transition_probabilities(mobilities: list[np.ndarray],
                                 n_max: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-city Eq. 9 probabilities zero-padded to two (b, n_max, n_max)
    arrays — constant per batch, precompute once per training run."""
    b = len(mobilities)
    p_source = np.zeros((b, n_max, n_max))
    p_dest = np.zeros((b, n_max, n_max))
    for i, mobility in enumerate(mobilities):
        n_i = mobility.shape[0]
        p_source[i, :n_i, :n_i], p_dest[i, :n_i, :n_i] = \
            mobility_transition_probabilities(mobility)
    return p_source, p_dest


def batched_mobility_kl_loss(h_source: Tensor, h_dest: Tensor,
                             mobilities: list[np.ndarray], mask: np.ndarray,
                             scale: str = "mean",
                             probabilities: tuple[np.ndarray, np.ndarray] | None = None) -> Tensor:
    """Eq. 10–12 averaged over a padded city batch.

    ``mobilities`` holds each city's raw square OD matrix; the empirical
    transition probabilities are computed per city (or taken from a
    precomputed ``probabilities`` pair) and padded with zeros, and each
    log-softmax normalization is restricted to real rows/columns with an
    additive mask.
    """
    if scale not in ("mean", "sum"):
        raise ValueError(f"unknown scale {scale!r}")
    b, n_max, _ = h_source.shape
    p_source, p_dest = (probabilities if probabilities is not None
                        else pad_transition_probabilities(mobilities, n_max))
    logits = h_source @ h_dest.T                             # (b, n, n)
    additive = F.additive_mask(mask)
    log_p_source = F.log_softmax(logits + Tensor(additive[:, None, :]), axis=-1)
    log_p_dest = F.log_softmax(logits + Tensor(additive[:, :, None]), axis=-2)
    per_city = -(Tensor(p_source) * log_p_source).sum(axis=(-1, -2)) \
        - (Tensor(p_dest) * log_p_dest).sum(axis=(-1, -2))
    if scale == "mean":
        per_city = per_city * Tensor(1.0 / mask.sum(axis=-1))
    return per_city.mean()
