"""Training objectives of HAFusion (paper Sec. IV-C).

Two loss families:

- :func:`feature_similarity_loss` — Eq. 8: the dot products of
  feature-oriented embeddings should match the cosine similarity of the
  raw input features (used for the POI and land-use views).
- :func:`mobility_kl_loss` — Eq. 9–12: source/destination transition
  probabilities derived from the embeddings should match the empirical
  taxi-flow transition probabilities under KL divergence (used for the
  mobility view).
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor
from ..nn import functional as F

__all__ = [
    "feature_similarity_loss",
    "mobility_transition_probabilities",
    "mobility_kl_loss",
]


def feature_similarity_loss(embeddings: Tensor, feature_matrix: np.ndarray) -> Tensor:
    """Eq. 8: mean |cos(x_i, x_k) − h_i · h_k| over all region pairs.

    Parameters
    ----------
    embeddings:
        (n, d) feature-oriented embedding matrix ``H_j`` (already mapped
        through the per-view MLP).
    feature_matrix:
        (n, d_j) raw input features of this view; constant w.r.t. the
        model.
    """
    target = Tensor(F.cosine_similarity_matrix(feature_matrix))
    predicted = embeddings @ embeddings.T
    return (predicted - target).abs().mean()


def mobility_transition_probabilities(mobility: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Eq. 9: empirical source (row) and destination (column) transition
    probabilities of the OD matrix; zero rows/columns become uniform.
    """
    mobility = np.asarray(mobility, dtype=np.float64)
    if mobility.ndim != 2 or mobility.shape[0] != mobility.shape[1]:
        raise ValueError(f"mobility matrix must be square, got {mobility.shape}")
    n = mobility.shape[0]
    row_sums = mobility.sum(axis=1, keepdims=True)
    col_sums = mobility.sum(axis=0, keepdims=True)
    p_source = np.where(row_sums > 0, mobility / np.where(row_sums == 0, 1, row_sums), 1.0 / n)
    p_dest = np.where(col_sums > 0, mobility / np.where(col_sums == 0, 1, col_sums), 1.0 / n)
    return p_source, p_dest


def mobility_kl_loss(h_source: Tensor, h_dest: Tensor, mobility: np.ndarray,
                     scale: str = "mean") -> Tensor:
    """Eq. 10–12: cross-entropy between empirical and embedding-derived
    transition distributions (the KL divergence up to a constant).

    Parameters
    ----------
    h_source, h_dest:
        (n, d) source- and destination-oriented embedding matrices
        ``H^S``/``H^D``.
    mobility:
        (n, n) raw OD count matrix.
    scale:
        "sum" — the paper's literal double sum; "mean" — divided by n,
        keeping this loss on the same scale as the per-pair feature
        losses.
    """
    if scale not in ("mean", "sum"):
        raise ValueError(f"unknown scale {scale!r}")
    p_source, p_dest = mobility_transition_probabilities(mobility)
    logits = h_source @ h_dest.T
    log_p_source = F.log_softmax(logits, axis=1)   # Eq. 10: normalize over destinations
    log_p_dest = F.log_softmax(logits, axis=0)     # Eq. 11: normalize over sources
    loss = -(Tensor(p_source) * log_p_source).sum() - (Tensor(p_dest) * log_p_dest).sum()
    if scale == "mean":
        loss = loss * (1.0 / mobility.shape[0])
    return loss
