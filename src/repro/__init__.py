"""Reproduction of "Urban Region Representation Learning with Attentive Fusion"
(HAFusion, ICDE 2024) on a from-scratch numpy substrate.

Public API overview
-------------------
- :mod:`repro.nn` — numpy autograd deep-learning substrate (PyTorch stand-in).
- :mod:`repro.data` — synthetic-city generators standing in for the NYC /
  Chicago / San Francisco open datasets, plus view feature matrices.
- :mod:`repro.core` — the paper's contribution: HALearning (IntraAFL,
  InterAFL), DAFusion (ViewFusion, RegionFusion), losses, trainer.
- :mod:`repro.baselines` — MVURE, MGFN, RegionDCL, HREP reimplementations
  and their DAFusion-augmented variants.
- :mod:`repro.eval` — Lasso regression, k-fold CV, MAE/RMSE/R² metrics and
  the downstream-task runner.
- :mod:`repro.experiments` — one runner per paper table/figure.
- :mod:`repro.serving` — the production serving API: typed embed
  requests/responses, an :class:`~repro.serving.EmbeddingService` with a
  shape-bucket scheduler over resident compiled plans, and deploy-time
  warm-up packs.
- :mod:`repro.train` — crash-safe training: atomic checksummed
  checkpoints with bit-identical resume, typed preemption/numerical
  errors, and a deterministic training fault-injection harness.

Quickstart
----------
>>> from repro.data import load_city
>>> from repro.core import HAFusion, HAFusionConfig, train_hafusion
>>> city = load_city("nyc", seed=7)
>>> model, history = train_hafusion(city, HAFusionConfig(epochs=50), seed=7)
>>> embeddings = model.embed(city.views())
"""

from .version import __version__

__all__ = ["__version__"]
