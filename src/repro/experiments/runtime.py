"""Table V — embedding-learning and downstream running time.

The paper reports per-model training time (CPU and GPU) and downstream
task time across the three cities. Here everything runs on the same CPU;
the claims to preserve are *relative*: HAFusion within the same order of
magnitude as the fastest model, RegionDCL slowest in training, HREP
orders of magnitude slower downstream (prompt learning per task).

HAFusion's recorded training wall-clock reflects the compiled
record/replay executor (the production training path); set
``REPRO_EAGER=1`` to time the eager tape instead.  Its embeddings are
produced through the unified :class:`repro.serving.EmbeddingService`
path (one request through the shape-bucket scheduler, compiled plan
replay) — the same code that answers production traffic — which the
payload records as ``embedding_path``.
"""

from __future__ import annotations

from ..data import load_city
from ..eval.reporting import format_table
from .common import (
    MODEL_LABELS,
    MODEL_ORDER,
    compute_embeddings,
    evaluate_model,
    get_profile,
    use_compiled_training,
)

__all__ = ["run_table5", "format_table5"]

CITIES = ("nyc", "chi", "sf")


def run_table5(profile: str = "quick", cities: tuple[str, ...] = CITIES,
               models: tuple[str, ...] = MODEL_ORDER,
               use_cache: bool = True) -> dict:
    """Returns per-model training seconds and downstream seconds per city."""
    prof = get_profile(profile)
    training: dict = {model: {} for model in models}
    downstream: dict = {model: {} for model in models}
    for city_name in cities:
        city = load_city(city_name, seed=prof.seed)
        for model_name in models:
            emb = compute_embeddings(model_name, city, profile=prof, use_cache=use_cache)
            training[model_name][city_name] = emb.train_seconds
            result = evaluate_model(emb, city, "checkin", profile=prof)
            downstream[model_name][city_name] = result.seconds
    return {"training": training, "downstream": downstream,
            "profile": prof.name, "cities": cities, "models": models,
            "compiled_training": use_compiled_training(),
            "embedding_path": "service"}


def format_table5(payload: dict) -> str:
    headers = ["model"] + [f"train:{c} (s)" for c in payload["cities"]] \
        + [f"downstream:{c} (s)" for c in payload["cities"]]
    rows = []
    for model in payload["models"]:
        row = [MODEL_LABELS.get(model, model)]
        row += [f"{payload['training'][model][c]:.1f}" for c in payload["cities"]]
        row += [f"{payload['downstream'][model][c]:.3f}" for c in payload["cities"]]
        rows.append(row)
    mode = "compiled" if payload.get("compiled_training", True) else "eager"
    return format_table(
        headers, rows,
        title=f"Table V / running time, single CPU (profile={payload['profile']}; "
              f"hafusion step: {mode}; "
              "training times read from cache metadata when embeddings were reused)")
