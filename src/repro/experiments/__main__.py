"""CLI for the experiment runners.

Examples
--------
List experiments::

    python -m repro.experiments --list

Regenerate Table III with the quick profile::

    python -m repro.experiments table3 --profile quick
"""

from __future__ import annotations

import argparse

from .common import PROFILES
from .registry import EXPERIMENTS, available_experiments, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment", nargs="?",
                        help=f"one of {available_experiments()}")
    parser.add_argument("--profile", default="quick", choices=sorted(PROFILES),
                        help="training budget tier (default: quick)")
    parser.add_argument("--no-cache", action="store_true",
                        help="retrain even if cached embeddings exist")
    parser.add_argument("--list", action="store_true", help="list experiments")
    args = parser.parse_args(argv)

    if args.list or args.experiment is None:
        for spec in EXPERIMENTS.values():
            print(f"{spec.id:8s} {spec.paper_artifact:10s} {spec.description}")
        return 0

    _, table = run_experiment(args.experiment, profile=args.profile,
                              use_cache=not args.no_cache)
    print(table)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
