"""Table III — overall prediction accuracy.

3 cities × 5 models × 3 tasks, Lasso 10-fold CV, MAE / RMSE / R².
The paper's headline: HAFusion best in every cell; multi-view models
(MVURE/HREP) beat single-view models (MGFN/RegionDCL) on crime and
service calls; MGFN strong on CHI/SF check-in but weak on NYC (noisy
mobility); RegionDCL generally worst.
"""

from __future__ import annotations

from ..data import load_city
from ..eval.reporting import format_table
from .common import MODEL_LABELS, MODEL_ORDER, compute_embeddings, evaluate_model, get_profile

__all__ = ["run_table3", "format_table3"]

CITIES = ("nyc", "chi", "sf")
TASKS = ("checkin", "crime", "service_call")


def run_table3(profile: str = "quick", cities: tuple[str, ...] = CITIES,
               models: tuple[str, ...] = MODEL_ORDER,
               use_cache: bool = True) -> dict:
    """Returns {task: {city: {model: TaskResult}}} plus timing metadata."""
    prof = get_profile(profile)
    results: dict = {task: {city: {} for city in cities} for task in TASKS}
    timings: dict = {city: {} for city in cities}
    for city_name in cities:
        city = load_city(city_name, seed=prof.seed)
        for model_name in models:
            emb = compute_embeddings(model_name, city, profile=prof, use_cache=use_cache)
            timings[city_name][model_name] = emb.train_seconds
            for task in TASKS:
                results[task][city_name][model_name] = evaluate_model(
                    emb, city, task, profile=prof)
    return {"results": results, "timings": timings, "profile": prof.name,
            "cities": cities, "models": models}


def improvement_over_best_baseline(per_model: dict, metric: str) -> float:
    """HAFusion's relative improvement vs the best baseline (paper's
    'Improvement' row). For errors lower is better; for R² higher is."""
    baselines = {m: r for m, r in per_model.items() if m != "hafusion"}
    if "hafusion" not in per_model or not baselines:
        return float("nan")
    ours = getattr(per_model["hafusion"], metric)
    if metric in ("mae", "rmse"):
        best = min(getattr(r, metric) for r in baselines.values())
        return (best - ours) / best * 100.0
    best = max(getattr(r, metric) for r in baselines.values())
    return (ours - best) / abs(best) * 100.0 if best != 0 else float("nan")


def format_table3(payload: dict) -> str:
    """Render the paper-style Table III."""
    blocks = []
    for task in TASKS:
        headers = ["model"]
        for city in payload["cities"]:
            headers += [f"{city}:MAE", f"{city}:RMSE", f"{city}:R2"]
        rows = []
        for model in payload["models"]:
            row = [MODEL_LABELS.get(model, model)]
            for city in payload["cities"]:
                r = payload["results"][task][city][model]
                row += [f"{r.mae:.1f}", f"{r.rmse:.1f}",
                        r.metrics.format("r2")]
            rows.append(row)
        improvement = ["Improvement %"]
        for city in payload["cities"]:
            per_model = payload["results"][task][city]
            improvement += [
                f"{improvement_over_best_baseline(per_model, 'mae'):.1f}",
                f"{improvement_over_best_baseline(per_model, 'rmse'):.1f}",
                f"{improvement_over_best_baseline(per_model, 'r2'):.1f}",
            ]
        rows.append(improvement)
        blocks.append(format_table(headers, rows,
                                   title=f"Table III / Task: {task} "
                                         f"(profile={payload['profile']})"))
    return "\n\n".join(blocks)
