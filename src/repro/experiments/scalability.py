"""Fig. 7 — impact of the number of regions (NYC expansions).

Accuracy (check-in R²) and total running time (training + downstream) on
180 / 360 / 720 / 1440 regions. Expected shape: accuracy decreases with
n for every model (outer regions are sparse); HAFusion stays best; the
runtime of quadratic-attention models grows faster than HAFusion's
external-attention InterAFL.

Resource note: at n = 1440 the n×n convolutional buffers of IntraAFL are
large (32 channels × 1440² floats); the runner scales ``conv_channels``
down with n (32 / 16 / 8 / 4) — documented in EXPERIMENTS.md — which
affects absolute accuracy mildly and preserves the runtime-growth shape.
"""

from __future__ import annotations

from ..data import load_city
from ..eval.reporting import format_table
from .common import MODEL_LABELS, MODEL_ORDER, compute_embeddings, evaluate_model, get_profile

__all__ = ["run_fig7", "format_fig7", "SIZES"]

SIZES = ("nyc", "nyc_360", "nyc_720", "nyc_1440")

_CONV_CHANNELS = {"nyc": 32, "nyc_360": 16, "nyc_720": 8, "nyc_1440": 4}


def run_fig7(profile: str = "quick", sizes: tuple[str, ...] = SIZES,
             models: tuple[str, ...] = MODEL_ORDER,
             use_cache: bool = True) -> dict:
    """Returns accuracy and total runtime per (size, model)."""
    prof = get_profile(profile)
    accuracy: dict = {model: {} for model in models}
    runtime: dict = {model: {} for model in models}
    region_counts: dict = {}
    for size in sizes:
        city = load_city(size, seed=prof.seed)
        region_counts[size] = city.n_regions
        for model_name in models:
            overrides = None
            if model_name == "hafusion":
                overrides = {"conv_channels": _CONV_CHANNELS.get(size, 8)}
            emb = compute_embeddings(model_name, city, profile=prof,
                                     use_cache=use_cache,
                                     config_overrides=overrides)
            result = evaluate_model(emb, city, "checkin", profile=prof)
            accuracy[model_name][size] = result.r2
            runtime[model_name][size] = emb.train_seconds + result.seconds
    return {"accuracy": accuracy, "runtime": runtime,
            "region_counts": region_counts, "profile": prof.name,
            "sizes": sizes, "models": models}


def format_fig7(payload: dict) -> str:
    counts = payload["region_counts"]
    headers = ["model"] + [f"n={counts[s]}" for s in payload["sizes"]]
    acc_rows, time_rows = [], []
    for model in payload["models"]:
        label = MODEL_LABELS.get(model, model)
        acc_rows.append([label] + [f"{payload['accuracy'][model][s]:.3f}"
                                   for s in payload["sizes"]])
        time_rows.append([label] + [f"{payload['runtime'][model][s]:.1f}"
                                    for s in payload["sizes"]])
    return "\n\n".join([
        format_table(headers, acc_rows,
                     title=f"Fig. 7a / check-in R2 vs #regions (profile={payload['profile']})"),
        format_table(headers, time_rows,
                     title="Fig. 7b / total running time (s) vs #regions"),
    ])
