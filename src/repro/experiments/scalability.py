"""Fig. 7 — impact of the number of regions (NYC expansions).

Accuracy (check-in R²) and total running time (training + downstream) on
180 / 360 / 720 / 1440 regions. Expected shape: accuracy decreases with
n for every model (outer regions are sparse); HAFusion stays best; the
runtime of quadratic-attention models grows faster than HAFusion's
external-attention InterAFL.

Resource note: at n = 1440 the n×n convolutional buffers of IntraAFL are
large (32 channels × 1440² floats); the runner scales ``conv_channels``
down with n (32 / 16 / 8 / 4) — documented in EXPERIMENTS.md — which
affects absolute accuracy mildly and preserves the runtime-growth shape.

The payload also carries an ``engine`` section: the largest city in the
sweep is split into region shards and embedded through
:func:`repro.core.engine.batched_embed` (one fused ``(b, n, d)`` tensor
pass) vs. the per-shard Python loop over the identical model, recording
the wall-clock speedup and the max absolute embedding difference.  Its
``serving`` sub-section times eager vs *compiled* ``batched_embed`` on
the full city (the forward-only :class:`~repro.nn.compile.InferencePlan`
replay); the plan spec persists in the experiment cache, so repeated
runs relower it instead of paying the record epoch.

HAFusion trains through the compiled record/replay executor, so the
recorded wall-clocks reflect the compiled step (``REPRO_EAGER=1``
restores the eager tape).
"""

from __future__ import annotations

from ..core import (
    HAFusionConfig,
    engine_speedup_report,
    serving_speedup_report,
    shard_viewset,
)
from ..data import load_city
from ..eval.reporting import format_table
from ..nn import PlanCache
from ..serving import serving_scheduler_report
from .common import (
    MODEL_LABELS,
    MODEL_ORDER,
    cache_dir,
    compute_embeddings,
    evaluate_model,
    get_profile,
    use_compiled_training,
)

__all__ = ["run_fig7", "format_fig7", "run_engine_comparison", "SIZES"]

SIZES = ("nyc", "nyc_360", "nyc_720", "nyc_1440")

_CONV_CHANNELS = {"nyc": 32, "nyc_360": 16, "nyc_720": 8, "nyc_1440": 4}

#: Target regions per shard for the batched-engine comparison. Small
#: shards put the per-forward Python/numpy dispatch overhead — the cost
#: the batch axis amortizes — in the majority, which is exactly the
#: regime the engine exists for.
_ENGINE_SHARD_REGIONS = 8


#: City the scheduler-throughput section runs on: the base NYC size —
#: big enough for meaningful compute, small enough that the uniform
#: section's (max_batch, n, n) conv buffers stay modest even inside the
#: nyc_1440 sweep.
_SCHEDULER_CITY = "nyc"


def run_engine_comparison(size: str, seed: int = 7,
                          shard_regions: int = _ENGINE_SHARD_REGIONS,
                          repeats: int = 5) -> dict:
    """Batched vs. sequential engine inference on shards of one city,
    plus eager vs compiled serving on the full city and the serving
    scheduler's uniform/ragged throughput on the base city.

    The serving comparison's plan spec is persisted under the experiment
    cache (``.cache/plans``), so a repeated run relowers the cached spec
    instead of re-recording."""
    city = load_city(size, seed=seed)
    num_shards = max(2, city.n_regions // shard_regions)
    config = HAFusionConfig.for_city(
        size, conv_channels=_CONV_CHANNELS.get(size, 8))
    shards = shard_viewset(city.views(), num_shards)
    report = engine_speedup_report(shards, config, seed=seed, repeats=repeats)
    report["city"] = size
    report["num_shards"] = num_shards
    plan_cache = PlanCache(directory=cache_dir() / "plans")
    report["serving"] = serving_speedup_report([city], config, seed=seed,
                                               repeats=3,
                                               plan_cache=plan_cache)
    sched_city = load_city(_SCHEDULER_CITY, seed=seed)
    sched_config = HAFusionConfig.for_city(_SCHEDULER_CITY, conv_channels=8)
    report["scheduler"] = serving_scheduler_report(
        sched_city.views(), sched_config, seed=seed, max_batch=4, repeats=3)
    report["scheduler"]["city"] = _SCHEDULER_CITY
    return report


def run_fig7(profile: str = "quick", sizes: tuple[str, ...] = SIZES,
             models: tuple[str, ...] = MODEL_ORDER,
             use_cache: bool = True) -> dict:
    """Returns accuracy and total runtime per (size, model), plus the
    batched-engine speedup report on shards of the largest city."""
    prof = get_profile(profile)
    accuracy: dict = {model: {} for model in models}
    runtime: dict = {model: {} for model in models}
    region_counts: dict = {}
    for size in sizes:
        city = load_city(size, seed=prof.seed)
        region_counts[size] = city.n_regions
        for model_name in models:
            overrides = None
            if model_name == "hafusion":
                overrides = {"conv_channels": _CONV_CHANNELS.get(size, 8)}
            emb = compute_embeddings(model_name, city, profile=prof,
                                     use_cache=use_cache,
                                     config_overrides=overrides)
            result = evaluate_model(emb, city, "checkin", profile=prof)
            accuracy[model_name][size] = result.r2
            runtime[model_name][size] = emb.train_seconds + result.seconds
    largest = max(sizes, key=lambda s: region_counts[s])
    engine = run_engine_comparison(largest, seed=prof.seed)
    return {"accuracy": accuracy, "runtime": runtime,
            "region_counts": region_counts, "profile": prof.name,
            "sizes": sizes, "models": models, "engine": engine,
            "compiled_training": use_compiled_training()}


def format_fig7(payload: dict) -> str:
    counts = payload["region_counts"]
    headers = ["model"] + [f"n={counts[s]}" for s in payload["sizes"]]
    acc_rows, time_rows = [], []
    for model in payload["models"]:
        label = MODEL_LABELS.get(model, model)
        acc_rows.append([label] + [f"{payload['accuracy'][model][s]:.3f}"
                                   for s in payload["sizes"]])
        time_rows.append([label] + [f"{payload['runtime'][model][s]:.1f}"
                                    for s in payload["sizes"]])
    sections = [
        format_table(headers, acc_rows,
                     title=f"Fig. 7a / check-in R2 vs #regions (profile={payload['profile']})"),
        format_table(headers, time_rows,
                     title="Fig. 7b / total running time (s) vs #regions"),
    ]
    engine = payload.get("engine")
    if engine:
        sections.append(
            f"Batched engine ({engine['city']}, {engine['num_shards']} shards of "
            f"~{engine['n_max']} regions): sequential {engine['sequential_seconds']:.3f}s, "
            f"batched {engine['batched_seconds']:.3f}s — "
            f"{engine['speedup']:.2f}x speedup, max |Δ| = {engine['max_abs_diff']:.1e}")
        serving = engine.get("serving")
        if serving:
            sections.append(
                f"Compiled serving ({engine['city']}, full city): eager "
                f"{serving['eager_regions_per_sec']:.0f} regions/s, compiled "
                f"{serving['compiled_regions_per_sec']:.0f} regions/s — "
                f"{serving['speedup']:.2f}x speedup, max |Δ| = "
                f"{serving['max_abs_diff']:.1e}, activation pool "
                f"{serving['slot_reduction']:.0%} smaller")
        scheduler = engine.get("scheduler")
        if scheduler:
            ragged = scheduler["ragged"]
            sections.append(
                f"Serving scheduler ({scheduler['city']}): ragged traffic "
                f"{ragged['scheduler_regions_per_sec']:.0f} regions/s "
                f"co-batched vs {ragged['sequential_regions_per_sec']:.0f} "
                f"sequential — {ragged['speedup']:.2f}x, padding overhead "
                f"{ragged['padding_overhead']:.0%}, uniform-traffic "
                f"efficiency {scheduler['uniform']['efficiency']:.2f}x of "
                f"the direct batched path")
    return "\n\n".join(sections)
