"""Fig. 9 — impact of the region embedding dimensionality d (NYC).

All models re-trained at d ∈ {36, 72, 96, 144, 288} and evaluated on the
three tasks. Expected shape: accuracy rises then falls (overfitting);
HAFusion dominates across d and peaks around 144–288.
"""

from __future__ import annotations

from ..data import load_city
from ..eval.reporting import format_table
from .common import MODEL_LABELS, MODEL_ORDER, compute_embeddings, evaluate_model, get_profile

__all__ = ["run_fig9", "format_fig9", "DIMS"]

TASKS = ("checkin", "crime", "service_call")
DIMS = (36, 72, 96, 144, 288)


def run_fig9(profile: str = "quick", city_name: str = "nyc",
             dims: tuple[int, ...] = DIMS,
             models: tuple[str, ...] = MODEL_ORDER,
             use_cache: bool = True) -> dict:
    """Returns {task: {model: {d: R²}}}."""
    prof = get_profile(profile)
    city = load_city(city_name, seed=prof.seed)
    results: dict = {task: {model: {} for model in models} for task in TASKS}
    for d in dims:
        for model_name in models:
            overrides = {"d": d} if model_name == "hafusion" else {"d": d}
            emb = compute_embeddings(model_name, city, profile=prof,
                                     use_cache=use_cache,
                                     config_overrides=overrides)
            for task in TASKS:
                results[task][model_name][d] = evaluate_model(
                    emb, city, task, profile=prof).r2
    return {"results": results, "profile": prof.name, "city": city_name,
            "dims": dims, "models": models}


def format_fig9(payload: dict) -> str:
    blocks = []
    for task in TASKS:
        headers = ["model"] + [f"d={d}" for d in payload["dims"]]
        rows = []
        for model in payload["models"]:
            rows.append([MODEL_LABELS.get(model, model)]
                        + [f"{payload['results'][task][model][d]:.3f}"
                           for d in payload["dims"]])
        blocks.append(format_table(
            headers, rows,
            title=f"Fig. 9 / embedding dimensionality, {task} R2 "
                  f"({payload['city']}, profile={payload['profile']})"))
    return "\n\n".join(blocks)
