"""``repro.experiments`` — one runner per paper table/figure.

Usage::

    python -m repro.experiments table3 --profile quick
    python -m repro.experiments fig6 --profile smoke

or programmatically::

    from repro.experiments import run_experiment
    payload, table = run_experiment("table6", profile="smoke")
    print(table)
"""

from .common import (
    MODEL_LABELS,
    MODEL_ORDER,
    PROFILES,
    EmbeddingResult,
    ExperimentProfile,
    compute_embeddings,
    evaluate_model,
    get_profile,
)
from .registry import EXPERIMENTS, ExperimentSpec, available_experiments, run_experiment

__all__ = [
    "EXPERIMENTS",
    "ExperimentSpec",
    "ExperimentProfile",
    "EmbeddingResult",
    "MODEL_LABELS",
    "MODEL_ORDER",
    "PROFILES",
    "available_experiments",
    "compute_embeddings",
    "evaluate_model",
    "get_profile",
    "run_experiment",
]
