"""Table IV — DAFusion plugged into existing models (NYC).

For MGFN, MVURE and HREP: vanilla vs ``<model>-DAFusion``; the paper's
claim is that the DAFusion variant improves every model on every task.
"""

from __future__ import annotations

from ..data import load_city
from ..eval.reporting import format_table
from .common import MODEL_LABELS, compute_embeddings, evaluate_model, get_profile

__all__ = ["run_table4", "format_table4"]

PLUGIN_MODELS = ("mgfn", "mvure", "hrep")
TASKS = ("checkin", "crime", "service_call")


def run_table4(profile: str = "quick", city_name: str = "nyc",
               models: tuple[str, ...] = PLUGIN_MODELS,
               use_cache: bool = True) -> dict:
    """Returns {model: {variant: {task: TaskResult}}}."""
    prof = get_profile(profile)
    city = load_city(city_name, seed=prof.seed)
    results: dict = {}
    for base in models:
        results[base] = {}
        for variant in (base, f"{base}-dafusion"):
            emb = compute_embeddings(variant, city, profile=prof, use_cache=use_cache)
            results[base][variant] = {
                task: evaluate_model(emb, city, task, profile=prof)
                for task in TASKS
            }
    return {"results": results, "profile": prof.name, "city": city_name,
            "models": models}


def format_table4(payload: dict) -> str:
    headers = ["model"]
    for task in TASKS:
        headers += [f"{task}:MAE", f"{task}:RMSE", f"{task}:R2"]
    rows = []
    for base, variants in payload["results"].items():
        for variant, per_task in variants.items():
            row = [MODEL_LABELS.get(variant, variant)]
            for task in TASKS:
                r = per_task[task]
                row += [f"{r.mae:.1f}", f"{r.rmse:.1f}", f"{r.r2:.3f}"]
            rows.append(row)
        vanilla, plugged = variants[base], variants[f"{base}-dafusion"]
        gains = ["  improvement %"]
        for task in TASKS:
            v, p = vanilla[task], plugged[task]
            gains += [f"{(v.mae - p.mae) / v.mae * 100:.1f}",
                      f"{(v.rmse - p.rmse) / v.rmse * 100:.1f}",
                      f"{(p.r2 - v.r2) / abs(v.r2) * 100:.1f}" if v.r2 != 0 else "n/a"]
        rows.append(gains)
    return format_table(headers, rows,
                        title=f"Table IV / DAFusion plug-in ({payload['city']}, "
                              f"profile={payload['profile']})")
