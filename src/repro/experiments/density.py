"""Fig. 8 — impact of population density (Manhattan vs Staten Island).

Check-in R² on a dense city versus a sparse suburban one (trips in the
hundreds instead of millions). Expected shape: every model degrades on
the sparse city; MGFN (mobility-only) degrades the most; HAFusion stays
best in both.
"""

from __future__ import annotations

from ..data import load_city
from ..eval.reporting import format_table
from .common import MODEL_LABELS, MODEL_ORDER, compute_embeddings, evaluate_model, get_profile

__all__ = ["run_fig8", "format_fig8"]

#: The paper's NYC dataset covers Manhattan, so the dense side of the
#: split is the ``nyc`` preset itself (reusing its trained embeddings);
#: ``staten_island`` is the sparse suburban variant.
AREAS = ("nyc", "staten_island")


def run_fig8(profile: str = "quick", areas: tuple[str, ...] = AREAS,
             models: tuple[str, ...] = MODEL_ORDER,
             use_cache: bool = True) -> dict:
    """Returns {model: {area: checkin R²}}."""
    prof = get_profile(profile)
    results: dict = {model: {} for model in models}
    for area in areas:
        city = load_city(area, seed=prof.seed)
        for model_name in models:
            emb = compute_embeddings(model_name, city, profile=prof,
                                     use_cache=use_cache)
            results[model_name][area] = evaluate_model(
                emb, city, "checkin", profile=prof).r2
    return {"results": results, "profile": prof.name, "areas": areas,
            "models": models}


def format_fig8(payload: dict) -> str:
    headers = ["model"] + list(payload["areas"]) + ["drop"]
    rows = []
    for model in payload["models"]:
        dense, sparse = (payload["results"][model][a] for a in payload["areas"])
        rows.append([MODEL_LABELS.get(model, model),
                     f"{dense:.3f}", f"{sparse:.3f}", f"{dense - sparse:+.3f}"])
    return format_table(headers, rows,
                        title=f"Fig. 8 / population density, check-in R2 "
                              f"(profile={payload['profile']})")
