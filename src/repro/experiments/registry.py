"""Experiment index: one entry per paper table/figure.

``run_experiment("table3")`` executes the runner; each entry carries the
formatter that renders the paper-style text table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .ablation import format_table6, run_table6
from .density import format_fig8, run_fig8
from .dimensionality import format_fig9, run_fig9
from .layers import format_table7, run_table7
from .overall import format_table3, run_table3
from .plugin import format_table4, run_table4
from .runtime import format_table5, run_table5
from .scalability import format_fig7, run_fig7
from .views import format_fig6, run_fig6

__all__ = ["EXPERIMENTS", "ExperimentSpec", "run_experiment", "available_experiments"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One reproducible paper artifact."""

    id: str
    paper_artifact: str
    description: str
    runner: Callable[..., dict]
    formatter: Callable[[dict], str]


EXPERIMENTS = {
    spec.id: spec for spec in [
        ExperimentSpec("table3", "Table III", "Overall prediction accuracy",
                       run_table3, format_table3),
        ExperimentSpec("table4", "Table IV", "DAFusion plugged into baselines",
                       run_table4, format_table4),
        ExperimentSpec("table5", "Table V", "Embedding learning / downstream time",
                       run_table5, format_table5),
        ExperimentSpec("table6", "Table VI", "Component ablation",
                       run_table6, format_table6),
        ExperimentSpec("table7", "Table VII", "#RegionFusion layers",
                       run_table7, format_table7),
        ExperimentSpec("fig6", "Fig. 6", "Input-view ablation",
                       run_fig6, format_fig6),
        ExperimentSpec("fig7", "Fig. 7", "Scalability in #regions",
                       run_fig7, format_fig7),
        ExperimentSpec("fig8", "Fig. 8", "Population-density split",
                       run_fig8, format_fig8),
        ExperimentSpec("fig9", "Fig. 9", "Embedding dimensionality sweep",
                       run_fig9, format_fig9),
    ]
}


def available_experiments() -> list[str]:
    return list(EXPERIMENTS)


def run_experiment(experiment_id: str, profile: str = "quick", **kwargs) -> tuple[dict, str]:
    """Run one experiment; returns (payload, formatted_table)."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {experiment_id!r}; "
                       f"available: {available_experiments()}")
    spec = EXPERIMENTS[experiment_id]
    payload = spec.runner(profile=profile, **kwargs)
    return payload, spec.formatter(payload)
