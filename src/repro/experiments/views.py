"""Fig. 6 — impact of different input views (NYC).

HAFusion without each view (w/o-M, w/o-P, w/o-L) vs the full model, with
MVURE and HREP as references. Expected shape: dropping mobility hurts
most; land use second; HAFusion-w/o-L still beats MVURE/HREP.
"""

from __future__ import annotations

from ..data import load_city
from ..eval.reporting import format_table
from .common import MODEL_LABELS, compute_embeddings, evaluate_model, get_profile

__all__ = ["VIEW_VARIANTS", "run_fig6", "format_fig6"]

TASKS = ("checkin", "crime", "service_call")

#: Variant -> views kept.
VIEW_VARIANTS = {
    "HAFusion-w/o-M": ["poi", "landuse"],
    "HAFusion-w/o-P": ["mobility", "landuse"],
    "HAFusion-w/o-L": ["mobility", "poi"],
    "HAFusion": ["mobility", "poi", "landuse"],
}


def run_fig6(profile: str = "quick", city_name: str = "nyc",
             use_cache: bool = True) -> dict:
    """Returns {label: {task: TaskResult}} including MVURE/HREP refs."""
    prof = get_profile(profile)
    city = load_city(city_name, seed=prof.seed)
    results: dict = {}
    for reference in ("mvure", "hrep"):
        emb = compute_embeddings(reference, city, profile=prof, use_cache=use_cache)
        results[MODEL_LABELS[reference]] = {
            task: evaluate_model(emb, city, task, profile=prof) for task in TASKS}
    for variant, keep in VIEW_VARIANTS.items():
        emb = compute_embeddings("hafusion", city, profile=prof,
                                 use_cache=use_cache,
                                 config_overrides={"view_names": list(keep)})
        results[variant] = {task: evaluate_model(emb, city, task, profile=prof)
                            for task in TASKS}
    return {"results": results, "profile": prof.name, "city": city_name}


def format_fig6(payload: dict) -> str:
    headers = ["model"] + [f"{task}:R2" for task in TASKS]
    rows = [[label] + [f"{per_task[t].r2:.3f}" for t in TASKS]
            for label, per_task in payload["results"].items()]
    return format_table(headers, rows,
                        title=f"Fig. 6 / input-view ablation ({payload['city']}, "
                              f"profile={payload['profile']})")
