"""Table VI — ablation study (NYC).

Variants (Sec. VI-D):
- ``w/o-D+``  — DAFusion replaced by element-wise sum;
- ``w/o-D‖``  — DAFusion replaced by concat + MLP;
- ``w/o-C``   — InterAFL replaced by vanilla self-attention;
- ``w/o-S``   — IntraAFL's RegionSA replaced by vanilla self-attention;
- full HAFusion.

Expected shape: full model best; the DAFusion ablations (w/o-D±) hurt
more than the HALearning ablations (w/o-C / w/o-S).
"""

from __future__ import annotations

from ..data import load_city
from ..eval.reporting import format_table
from .common import compute_embeddings, evaluate_model, get_profile

__all__ = ["ABLATION_VARIANTS", "run_table6", "format_table6"]

TASKS = ("checkin", "crime", "service_call")

#: Variant name -> HAFusionConfig overrides.
ABLATION_VARIANTS = {
    "HAFusion-w/o-D+": {"fusion": "sum"},
    "HAFusion-w/o-D||": {"fusion": "concat"},
    "HAFusion-w/o-C": {"inter_attention": "vanilla"},
    "HAFusion-w/o-S": {"intra_attention": "vanilla"},
    "HAFusion": {},
}


def run_table6(profile: str = "quick", city_name: str = "nyc",
               use_cache: bool = True) -> dict:
    """Returns {variant: {task: TaskResult}}."""
    prof = get_profile(profile)
    city = load_city(city_name, seed=prof.seed)
    results: dict = {}
    for variant, overrides in ABLATION_VARIANTS.items():
        emb = compute_embeddings("hafusion", city, profile=prof,
                                 use_cache=use_cache,
                                 config_overrides=dict(overrides))
        results[variant] = {task: evaluate_model(emb, city, task, profile=prof)
                            for task in TASKS}
    return {"results": results, "profile": prof.name, "city": city_name}


def format_table6(payload: dict) -> str:
    headers = ["variant"] + [f"{task}:R2" for task in TASKS]
    rows = []
    for variant, per_task in payload["results"].items():
        rows.append([variant] + [per_task[t].metrics.format("r2") for t in TASKS])
    return format_table(headers, rows,
                        title=f"Table VI / ablation ({payload['city']}, "
                              f"profile={payload['profile']})")
