"""Shared infrastructure for the experiment runners.

Profiles scale the training epochs to the compute budget (the paper's
full 2,500-epoch schedule is impractical to repeat dozens of times on
CPU); the architecture and evaluation protocol never change between
profiles. Embeddings are cached on disk keyed by (model, city, seed,
epochs) so that experiments sharing a trained model (e.g. Table III and
Table V) do not retrain it.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..baselines import make_baseline, train_baseline
from ..core import HAFusionConfig, train_hafusion
from ..data import SyntheticCity, load_city
from ..eval import TaskResult, evaluate_embeddings

__all__ = [
    "ExperimentProfile",
    "PROFILES",
    "get_profile",
    "EmbeddingResult",
    "compute_embeddings",
    "evaluate_model",
    "MODEL_ORDER",
    "MODEL_LABELS",
    "cache_dir",
    "use_compiled_training",
    "checkpoint_settings",
]

#: Canonical model ordering for tables (paper order).
MODEL_ORDER = ("mvure", "mgfn", "region_dcl", "hrep", "hafusion")

MODEL_LABELS = {
    "mvure": "MVURE",
    "mgfn": "MGFN",
    "region_dcl": "RegionDCL",
    "hrep": "HREP",
    "hafusion": "HAFusion",
    "mvure-dafusion": "MVURE-DAFusion",
    "mgfn-dafusion": "MGFN-DAFusion",
    "hrep-dafusion": "HREP-DAFusion",
}


@dataclass(frozen=True)
class ExperimentProfile:
    """Epoch budgets for one run tier."""

    name: str
    hafusion_epochs: int
    baseline_epochs: int
    seed: int = 7
    n_splits: int = 10


PROFILES = {
    # Tiny budget for CI / pytest-benchmark smoke runs.
    "smoke": ExperimentProfile("smoke", hafusion_epochs=30, baseline_epochs=30),
    # The budget used for the numbers recorded in EXPERIMENTS.md.
    "quick": ExperimentProfile("quick", hafusion_epochs=250, baseline_epochs=200),
    # The paper's schedule (hours on CPU).
    "full": ExperimentProfile("full", hafusion_epochs=2500, baseline_epochs=1500),
}


def get_profile(profile: str | ExperimentProfile) -> ExperimentProfile:
    if isinstance(profile, ExperimentProfile):
        return profile
    if profile not in PROFILES:
        raise KeyError(f"unknown profile {profile!r}; choose from {sorted(PROFILES)}")
    return PROFILES[profile]


def cache_dir() -> Path:
    """Embedding cache directory (override with REPRO_CACHE_DIR)."""
    root = os.environ.get("REPRO_CACHE_DIR", os.path.join(os.path.dirname(__file__),
                                                          "..", "..", "..", ".cache"))
    path = Path(root).resolve()
    path.mkdir(parents=True, exist_ok=True)
    return path


@dataclass
class EmbeddingResult:
    """Embeddings plus provenance/timing for one (model, city) pair."""

    model_name: str
    city_name: str
    embeddings: np.ndarray
    train_seconds: float
    epochs: int
    from_cache: bool = False


def _cache_key(model_name: str, city: SyntheticCity, seed: int, epochs: int,
               extra: dict | None = None) -> str:
    payload = {
        "model": model_name,
        "city": city.name,
        "n_regions": city.n_regions,
        "seed": seed,
        "epochs": epochs,
        "extra": extra or {},
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha1(blob).hexdigest()[:16]


def use_compiled_training() -> bool:
    """Whether experiment runners train HAFusion through the compiled
    record/replay executor (the default; set ``REPRO_EAGER=1`` to force
    the eager tape — the escape hatch for debugging the executor itself).
    """
    return os.environ.get("REPRO_EAGER", "") != "1"


def checkpoint_settings() -> tuple[str | None, int]:
    """Crash-safety defaults for experiment training runs.

    ``REPRO_CHECKPOINT_DIR`` names a directory to persist training
    checkpoints under (per model/city sub-directories are created inside
    it); ``REPRO_CHECKPOINT_EVERY`` sets the epoch interval (default 50
    when a directory is set).  Unset directory = checkpointing off, the
    zero-overhead default for short runs.
    """
    directory = os.environ.get("REPRO_CHECKPOINT_DIR") or None
    every = int(os.environ.get("REPRO_CHECKPOINT_EVERY", "50") or 0)
    return directory, every


def compute_embeddings(model_name: str, city: SyntheticCity,
                       profile: str | ExperimentProfile = "quick",
                       use_cache: bool = True,
                       config_overrides: dict | None = None,
                       compiled: bool | None = None,
                       checkpoint_dir=None, checkpoint_every: int | None = None,
                       resume: bool = True) -> EmbeddingResult:
    """Train (or load cached) embeddings for one model on one city.

    ``model_name`` is "hafusion", a baseline name, a ``<baseline>-dafusion``
    variant, or "hafusion" with ``config_overrides`` for ablations.
    HAFusion trains through the compiled executor by default
    (``compiled=None`` defers to :func:`use_compiled_training`); the mode
    is part of the cache key so eager and compiled runs never share
    cached embeddings.

    ``checkpoint_dir`` / ``checkpoint_every`` / ``resume`` make the
    HAFusion training run crash-safe (see
    :mod:`repro.train.checkpoint`); they default to the
    ``REPRO_CHECKPOINT_DIR`` / ``REPRO_CHECKPOINT_EVERY`` environment,
    so long experiment sweeps become resumable without code changes.
    Checkpoints land in a per-run sub-directory keyed like the embedding
    cache, so different models/cities/profiles never share checkpoints.

    .. deprecated::
        The embedding production at the end is a thin shim over
        :class:`repro.serving.EmbeddingService` — the trained model
        answers one :class:`~repro.serving.EmbedRequest` through the
        unified serving path (compiled plan replay when training ran
        compiled), so every experiment exercises the same code as
        production serving.  The serving route is part of the cache key
        (``embed: service``).
    """
    profile = get_profile(profile)
    is_hafusion = model_name == "hafusion"
    if compiled is None:
        compiled = use_compiled_training()
    compiled = bool(compiled and is_hafusion)
    epochs = profile.hafusion_epochs if is_hafusion else profile.baseline_epochs
    extra = dict(config_overrides or {})
    if compiled:
        extra["compiled"] = True
    if is_hafusion:
        # Embeddings come off the serving path (a (1, n, d) service
        # batch), not the legacy unbatched model.embed — keep the two
        # from ever sharing a cache entry.
        extra["embed"] = "service"
    key = _cache_key(model_name, city, profile.seed, epochs, extra)
    cache_file = cache_dir() / f"{model_name}-{city.name}-{key}.npz"
    if checkpoint_dir is None:
        checkpoint_dir, env_every = checkpoint_settings()
        if checkpoint_every is None:
            checkpoint_every = env_every
    if checkpoint_every is None:
        checkpoint_every = 50
    run_checkpoint_dir = None
    if checkpoint_dir is not None and is_hafusion:
        # Keyed like the embedding cache: a checkpoint can only ever be
        # resumed by the exact run configuration that wrote it.
        run_checkpoint_dir = (Path(checkpoint_dir)
                              / f"{model_name}-{city.name}-{key}")
    if use_cache and cache_file.exists():
        payload = np.load(cache_file)
        return EmbeddingResult(model_name, city.name, payload["embeddings"],
                               float(payload["train_seconds"]), epochs,
                               from_cache=True)

    from ..nn.tensor import use_dtype

    start = time.perf_counter()
    # Training runs in float32 (PyTorch's default precision) — roughly
    # half the time and memory of the library-default float64.
    with use_dtype(np.float32):
        if is_hafusion:
            overrides = dict(config_overrides or {})
            view_names = overrides.pop("view_names", None)
            config = HAFusionConfig.for_city(city.name, epochs=epochs, **overrides)
            model, _history = train_hafusion(city, config, seed=profile.seed,
                                             view_names=view_names,
                                             compiled=compiled,
                                             checkpoint_dir=run_checkpoint_dir,
                                             checkpoint_every=checkpoint_every,
                                             resume=(resume and
                                                     run_checkpoint_dir
                                                     is not None))
            views = city.views()
            if view_names is not None:
                views = views.subset(view_names)
            # Serve the embeddings through the unified service path (one
            # request, compiled plan replay when training ran compiled).
            from ..serving import EmbedRequest, EmbeddingService
            service = EmbeddingService(model, n_max=views.n_regions,
                                       compiled=compiled)
            embeddings = service.run(
                [EmbedRequest(views, name=city.name)])[0].embeddings
        else:
            model = make_baseline(model_name, city, seed=profile.seed,
                                  **(config_overrides or {}))
            train_baseline(model, epochs=epochs)
            embeddings = model.embed()
    seconds = time.perf_counter() - start

    if use_cache:
        np.savez_compressed(cache_file, embeddings=embeddings,
                            train_seconds=seconds)
    return EmbeddingResult(model_name, city.name, embeddings, seconds, epochs)


def evaluate_model(result: EmbeddingResult, city: SyntheticCity, task: str,
                   profile: str | ExperimentProfile = "quick") -> TaskResult:
    """Downstream evaluation honouring model-specific protocols.

    HREP's prompt-learning stage runs inside the regressor (that is the
    model's published protocol, and the source of its slow downstream
    column in Table V).
    """
    profile = get_profile(profile)
    if result.model_name.startswith("hrep"):
        from ..baselines.hrep import PromptedLasso
        from ..eval import cross_validated_regression
        import time as _time
        start = _time.perf_counter()
        metrics = cross_validated_regression(
            result.embeddings, city.targets.task(task),
            model_factory=lambda: PromptedLasso(seed=profile.seed),
            n_splits=profile.n_splits, seed=profile.seed)
        seconds = _time.perf_counter() - start
        return TaskResult(task=task, metrics=metrics, seconds=seconds)
    return evaluate_embeddings(result.embeddings, city, task,
                               n_splits=profile.n_splits, seed=profile.seed)
