"""Table VII — impact of the number of RegionFusion layers (NYC).

R² across 1–5 layers on all three tasks; the paper finds a peak at 3
(deeper stacks overfit).
"""

from __future__ import annotations

from ..data import load_city
from ..eval.reporting import format_table
from .common import compute_embeddings, evaluate_model, get_profile

__all__ = ["run_table7", "format_table7"]

TASKS = ("checkin", "crime", "service_call")
LAYER_COUNTS = (1, 2, 3, 4, 5)


def run_table7(profile: str = "quick", city_name: str = "nyc",
               layer_counts: tuple[int, ...] = LAYER_COUNTS,
               use_cache: bool = True) -> dict:
    """Returns {n_layers: {task: TaskResult}}."""
    prof = get_profile(profile)
    city = load_city(city_name, seed=prof.seed)
    results: dict = {}
    for n_layers in layer_counts:
        emb = compute_embeddings("hafusion", city, profile=prof,
                                 use_cache=use_cache,
                                 config_overrides={"fusion_layers": n_layers})
        results[n_layers] = {task: evaluate_model(emb, city, task, profile=prof)
                             for task in TASKS}
    return {"results": results, "profile": prof.name, "city": city_name,
            "layer_counts": layer_counts}


def format_table7(payload: dict) -> str:
    headers = ["task"] + [f"{k} layer(s)" for k in payload["layer_counts"]]
    rows = []
    for task in TASKS:
        rows.append([task] + [f"{payload['results'][k][task].r2:.3f}"
                              for k in payload["layer_counts"]])
    return format_table(headers, rows,
                        title=f"Table VII / #RegionFusion layers ({payload['city']}, "
                              f"profile={payload['profile']})")
