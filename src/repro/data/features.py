"""View feature matrices and their normalizations.

The models take the raw count matrices (M, P, L) through standard
transformations before learning:

- counts are heavy-tailed → a square-root transform tames the tail while
  preserving hub magnitudes far better than a log would (downstream
  targets are raw counts, so hub-scale information must survive);
- columns are then standardized (z-scored), which keeps *volume*
  information (how big a region's counts are) as well as *shape*
  information (how they distribute over categories/destinations) — both
  matter for the downstream count-prediction tasks.

The *loss* side of the mobility view keeps the raw M (transition
probabilities, Eq. 9), so :class:`ViewSet` carries both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["normalize_counts", "ViewSet"]


def normalize_counts(counts: np.ndarray) -> np.ndarray:
    """``sqrt`` then column standardization; constant columns become 0."""
    if counts.ndim != 2:
        raise ValueError(f"expected a 2-D count matrix, got shape {counts.shape}")
    if (counts < 0).any():
        raise ValueError("count matrices must be non-negative")
    damped = np.sqrt(counts)
    mean = damped.mean(axis=0, keepdims=True)
    std = damped.std(axis=0, keepdims=True)
    std = np.where(std < 1e-12, 1.0, std)
    return (damped - mean) / std


@dataclass
class ViewSet:
    """The ordered collection of input views for one city.

    Attributes
    ----------
    names:
        View names, e.g. ``("mobility", "poi", "landuse")``.
    matrices:
        Normalized feature matrices, one (n, d_j) per view, aligned with
        ``names``.
    raw:
        Raw (un-normalized) count matrices, same order; the mobility KL
        loss consumes ``raw[0]``.
    """

    names: tuple[str, ...]
    matrices: list[np.ndarray]
    raw: list[np.ndarray] = field(repr=False, default=None)

    def __post_init__(self):
        if len(self.names) != len(self.matrices):
            raise ValueError("names and matrices length mismatch")
        n_rows = {m.shape[0] for m in self.matrices}
        if len(n_rows) != 1:
            raise ValueError(f"views disagree on region count: {n_rows}")
        if self.raw is not None and len(self.raw) != len(self.matrices):
            raise ValueError("raw and matrices length mismatch")

    @property
    def n_views(self) -> int:
        return len(self.matrices)

    @property
    def n_regions(self) -> int:
        return self.matrices[0].shape[0]

    def dims(self) -> list[int]:
        return [m.shape[1] for m in self.matrices]

    def index(self, name: str) -> int:
        if name not in self.names:
            raise KeyError(f"unknown view {name!r}; have {self.names}")
        return self.names.index(name)

    def subset(self, keep: list[str]) -> "ViewSet":
        """Return a ViewSet restricted to the named views (Fig. 6 ablation)."""
        indices = [self.index(name) for name in keep]
        return ViewSet(
            names=tuple(self.names[i] for i in indices),
            matrices=[self.matrices[i] for i in indices],
            raw=[self.raw[i] for i in indices] if self.raw is not None else None,
        )
