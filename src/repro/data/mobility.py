"""Human-mobility (taxi OD flow) generation.

The paper's mobility view is the matrix ``M`` of trip counts between
regions over an observation window (Sec. III). We use a doubly-constrained
gravity model with functional compatibility:

    E[m_ij] ∝ production_i · attraction_j · exp(-d_ij / σ) · compat(f_i, f_j)

where production is population-driven, attraction is the latent
attractiveness, distance decay matches taxi-trip length distributions, and
``compat`` encodes archetype-pair propensities (home→office commutes,
home→entertainment evenings, ...). Counts are Poisson-sampled and scaled
to the city's total trip volume (NYC ≈ 11M, CHI ≈ 3.4M, SF ≈ 0.36M).

The generator also emits 24 *hourly* slices (the same gravity kernel
modulated by archetype-pair time-of-day profiles) because MGFN consumes
per-hour mobility graphs.

A ``noise_level`` knob adds multiplicative log-normal noise — the paper
observes NYC's mobility data is noisy and MGFN suffers there; the NYC
preset turns this up.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .latent import ARCHETYPES, LatentCity
from .geometry import RegionGeometry

__all__ = ["MobilityData", "compatibility_matrix", "generate_mobility"]


@dataclass
class MobilityData:
    """Origin–destination trip data.

    Attributes
    ----------
    matrix:
        (n, n) total trip counts; ``matrix[i, j]`` = trips from i to j.
    hourly:
        (24, n, n) per-hour trip counts summing (approximately) to
        ``matrix``.
    """

    matrix: np.ndarray
    hourly: np.ndarray

    @property
    def total_trips(self) -> float:
        return float(self.matrix.sum())

    def outflow(self) -> np.ndarray:
        return self.matrix.sum(axis=1)

    def inflow(self) -> np.ndarray:
        return self.matrix.sum(axis=0)


def compatibility_matrix() -> np.ndarray:
    """(K, K) origin-archetype → destination-archetype trip propensity."""
    k = len(ARCHETYPES)
    compat = 0.25 * np.ones((k, k))
    idx = {name: i for i, name in enumerate(ARCHETYPES)}

    def boost(src: str, dst: str, value: float) -> None:
        compat[idx[src], idx[dst]] += value

    boost("residential", "office", 1.2)
    boost("residential", "commercial", 0.9)
    boost("residential", "entertainment", 0.8)
    boost("residential", "education", 0.6)
    boost("office", "residential", 1.0)
    boost("office", "commercial", 0.5)
    boost("office", "entertainment", 0.4)
    boost("commercial", "residential", 0.7)
    boost("entertainment", "residential", 0.9)
    boost("transit_hub", "office", 0.8)
    boost("transit_hub", "residential", 0.6)
    boost("education", "residential", 0.5)
    boost("industrial", "residential", 0.3)
    return compat


def _hourly_profiles(rng: np.random.Generator) -> dict[str, np.ndarray]:
    """Time-of-day trip-share profiles (24,) for broad trip purposes."""
    hours = np.arange(24)

    def bump(center: float, width: float) -> np.ndarray:
        raw = np.exp(-0.5 * ((hours - center) / width) ** 2)
        return raw / raw.sum()

    return {
        "commute_am": bump(8.0, 1.5),
        "commute_pm": bump(18.0, 1.8),
        "daytime": bump(13.0, 3.5),
        "nightlife": 0.5 * (bump(21.5, 2.0) + bump(1.0, 1.5)),
    }


def generate_mobility(geometry: RegionGeometry, latent: LatentCity,
                      rng: np.random.Generator,
                      total_trips: float = 1e7,
                      distance_scale_km: float = 3.0,
                      noise_level: float = 0.3) -> MobilityData:
    """Sample the OD matrix and its hourly decomposition.

    Parameters
    ----------
    total_trips:
        Expected total trip count over the observation window.
    distance_scale_km:
        Exponential distance-decay scale (typical taxi trip length).
    noise_level:
        Sigma of multiplicative log-normal noise on expected flows.
    """
    if total_trips <= 0:
        raise ValueError(f"total_trips must be positive, got {total_trips}")
    compat = compatibility_matrix()
    functional = latent.functionality @ compat @ latent.functionality.T   # (n, n)
    production = latent.population / latent.population.mean()
    attraction = latent.attractiveness / max(latent.attractiveness.mean(), 1e-9)
    decay = np.exp(-geometry.distances / distance_scale_km)
    intensity = production[:, None] * attraction[None, :] * decay * functional
    np.fill_diagonal(intensity, 0.3 * intensity.diagonal())  # few intra-region taxi trips
    if noise_level > 0:
        intensity *= np.exp(rng.normal(0.0, noise_level, size=intensity.shape))
    intensity *= total_trips / max(intensity.sum(), 1e-12)

    # Poisson sampling overflows for huge rates; for large expected counts
    # the normal approximation is exact enough and much faster.
    if intensity.max() < 1e6:
        matrix = rng.poisson(intensity).astype(np.float64)
    else:
        matrix = np.maximum(0.0, rng.normal(intensity, np.sqrt(intensity))).round()

    # Hourly decomposition: mix purpose profiles by archetype composition.
    profiles = _hourly_profiles(rng)
    idx = {name: i for i, name in enumerate(ARCHETYPES)}
    f = latent.functionality
    share_commute_am = np.outer(f[:, idx["residential"]],
                                f[:, idx["office"]] + f[:, idx["education"]])
    share_commute_pm = share_commute_am.T
    share_night = np.outer(f[:, idx["residential"]] + f[:, idx["entertainment"]],
                           f[:, idx["entertainment"]])
    total_share = share_commute_am + share_commute_pm + share_night + 1e-9
    weight_am = share_commute_am / total_share
    weight_pm = share_commute_pm / total_share
    weight_night = share_night / total_share

    # Hour-share normaliser (sum over hours of the per-cell mix).
    share_total = np.zeros_like(matrix)
    hour_mixes = []
    for hour in range(24):
        mix = (weight_am * profiles["commute_am"][hour]
               + weight_pm * profiles["commute_pm"][hour]
               + weight_night * profiles["nightlife"][hour])
        mix = 0.35 * profiles["daytime"][hour] + 0.65 * mix
        hour_mixes.append(mix)
        share_total += mix
    # One hour at a time keeps peak memory at O(n²), not O(24 n²) — the
    # 1440-region expansion would otherwise need several GB of buffers.
    hourly = np.zeros((24, geometry.n_regions, geometry.n_regions), dtype=np.float32)
    for hour in range(24):
        expected = hour_mixes[hour] / share_total * matrix
        floored = np.floor(expected)
        floored += rng.random(expected.shape) < (expected - floored)
        hourly[hour] = floored
    return MobilityData(matrix=matrix, hourly=hourly)
