"""Latent region-functionality model.

Every observable the paper's models consume — POIs, land use, taxi flows,
check-ins, crime, service calls — is generated from a shared latent
description of each region: a mixture over functional *archetypes*
(residential, commercial, ...) plus a population-density field. This
shared latent is exactly why multi-view learning works on the real data:
views are correlated because they are projections of the same underlying
urban function. The generator reproduces that causal structure.

Spatial coherence: archetype intensities are smooth spatial fields (sums
of Gaussian bumps anchored at archetype centres), so nearby regions have
similar function — matching the spatial autocorrelation of real cities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .geometry import RegionGeometry

__all__ = ["ARCHETYPES", "LatentCity", "generate_latent"]

#: Functional archetypes. Order matters: generators index into this list.
ARCHETYPES = (
    "residential",
    "commercial",
    "office",
    "industrial",
    "entertainment",
    "transit_hub",
    "park",
    "education",
)


@dataclass
class LatentCity:
    """Latent ground truth about every region.

    Attributes
    ----------
    functionality:
        (n, K) rows are mixtures over :data:`ARCHETYPES` (non-negative,
        rows sum to 1).
    population:
        (n,) resident population per region.
    attractiveness:
        (n,) trip-attraction propensity (commerce/office/entertainment-
        weighted function, scaled by density).
    density_profile:
        Name of the density profile used ("dense" or "suburban").
    """

    functionality: np.ndarray
    population: np.ndarray
    attractiveness: np.ndarray
    density_profile: str = "dense"
    archetypes: tuple[str, ...] = field(default=ARCHETYPES, repr=False)

    @property
    def n_regions(self) -> int:
        return len(self.functionality)

    def archetype_share(self, name: str) -> np.ndarray:
        """(n,) mixture weight of one archetype across regions."""
        return self.functionality[:, self.archetypes.index(name)]


def _gaussian_bumps(centroids: np.ndarray, centers: np.ndarray,
                    scales: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Sum of weighted Gaussian kernels evaluated at each centroid."""
    diff = centroids[:, None, :] - centers[None, :, :]
    sq_dist = (diff ** 2).sum(axis=-1)
    return (weights[None, :] * np.exp(-sq_dist / (2.0 * scales[None, :] ** 2))).sum(axis=1)


def generate_latent(geometry: RegionGeometry, rng: np.random.Generator,
                    density_profile: str = "dense",
                    base_population: float = 8000.0,
                    mixture_temperature: float = 1.2) -> LatentCity:
    """Sample latent functionality and population for every region.

    Parameters
    ----------
    geometry:
        Region layout (centroids drive the smooth spatial fields).
    density_profile:
        ``"dense"`` — Manhattan-like: strong CBD population/attraction
        gradient. ``"suburban"`` — Staten-Island-like: flat, low density,
        residential-dominated.
    base_population:
        Mean region population before the density gradient.
    mixture_temperature:
        Softmax temperature for archetype mixtures; lower = purer regions.
    """
    if density_profile not in ("dense", "suburban"):
        raise ValueError(f"unknown density_profile {density_profile!r}")
    centroids = geometry.centroids
    n = geometry.n_regions
    extent = centroids.max(axis=0) - centroids.min(axis=0) + 1e-9
    k = len(ARCHETYPES)

    # Each archetype gets a few spatial anchor points; intensity fields are
    # sums of Gaussian bumps -> smooth, spatially autocorrelated mixtures.
    scores = np.zeros((n, k))
    for a in range(k):
        n_centers = rng.integers(2, 5)
        centers = centroids.min(axis=0) + rng.random((n_centers, 2)) * extent
        scales = rng.uniform(0.15, 0.45, n_centers) * extent.mean()
        weights = rng.uniform(0.5, 1.5, n_centers)
        scores[:, a] = _gaussian_bumps(centroids, centers, scales, weights)
    scores += rng.normal(0.0, 0.08, size=scores.shape)

    if density_profile == "suburban":
        # Suburbs are residential/park heavy with little office/entertainment.
        bias = np.array([1.2, 0.1, -0.6, 0.0, -0.8, -0.5, 0.6, 0.1])
        scores += bias[None, :]

    logits = scores / mixture_temperature
    logits -= logits.max(axis=1, keepdims=True)
    functionality = np.exp(logits)
    functionality /= functionality.sum(axis=1, keepdims=True)

    # Population: log-normal around a CBD-distance gradient (dense profile)
    # or flat low density (suburban profile).
    cbd = centroids.min(axis=0) + extent * rng.uniform(0.35, 0.65, size=2)
    cbd_dist = np.sqrt(((centroids - cbd) ** 2).sum(axis=1))
    if density_profile == "dense":
        gradient = np.exp(-cbd_dist / (0.45 * extent.mean()))
        population = base_population * (0.2 + 3.0 * gradient)
    else:
        population = 0.12 * base_population * np.ones(n)
    population *= np.exp(rng.normal(0.0, 0.55, size=n))
    population *= 0.5 + functionality[:, ARCHETYPES.index("residential")]

    attract_weights = np.zeros(k)
    for name, w in (("commercial", 1.0), ("office", 0.9), ("entertainment", 1.1),
                    ("transit_hub", 0.7), ("education", 0.3)):
        attract_weights[ARCHETYPES.index(name)] = w
    attractiveness = functionality @ attract_weights
    if density_profile == "dense":
        attractiveness *= 0.3 + 2.5 * np.exp(-cbd_dist / (0.45 * extent.mean()))
    attractiveness *= np.exp(rng.normal(0.0, 0.40, size=n))

    return LatentCity(functionality=functionality, population=population,
                      attractiveness=attractiveness, density_profile=density_profile)
