"""The synthetic city: everything one paper dataset provides.

:class:`SyntheticCity` bundles geometry, latent ground truth, the three
input views (mobility M, POI P, land-use L), building footprints, hourly
mobility slices, and the downstream targets — i.e. the complete contents
of one row of the paper's Table II, generated instead of downloaded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .buildings import BuildingData, generate_buildings
from .features import ViewSet, normalize_counts
from .geometry import RegionGeometry, generate_geometry
from .landuse import generate_landuse_counts
from .latent import LatentCity, generate_latent
from .mobility import MobilityData, generate_mobility
from .pois import generate_poi_counts
from .targets import TargetData, generate_targets

__all__ = ["CityConfig", "SyntheticCity", "generate_city"]


@dataclass(frozen=True)
class CityConfig:
    """Generator knobs for one city preset (mirrors the paper's Table II)."""

    name: str
    n_regions: int
    landuse_categories: int = 11
    total_trips: float = 1e7
    poi_total: int = 25000
    mobility_noise: float = 0.3
    density_profile: str = "dense"
    service_noise: float = 0.45
    checkin_scale: float = 600.0
    crime_scale: float = 200.0
    service_scale: float = 2800.0
    city_extent_km: float = 12.0

    def __post_init__(self):
        if self.n_regions < 4:
            raise ValueError(f"n_regions must be >= 4, got {self.n_regions}")
        if self.landuse_categories < 4:
            raise ValueError("landuse_categories must be >= 4")


@dataclass
class SyntheticCity:
    """One fully-generated city dataset."""

    config: CityConfig
    geometry: RegionGeometry
    latent: LatentCity = field(repr=False)
    poi_counts: np.ndarray = field(repr=False)
    landuse_counts: np.ndarray = field(repr=False)
    mobility: MobilityData = field(repr=False)
    buildings: BuildingData = field(repr=False)
    targets: TargetData = field(repr=False)

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def n_regions(self) -> int:
        return self.geometry.n_regions

    def views(self) -> ViewSet:
        """The three paper views, normalized, mobility first.

        The mobility feature vector of a region concatenates its outflow
        profile (row of M) and inflow profile (column of M): both
        directions carry distinct functional signal (cf. MVURE's separate
        source/destination graphs), and inflow volume is what check-in
        counts track. The raw square M is kept for the KL loss.
        """
        matrices = [
            np.concatenate([normalize_counts(self.mobility.matrix),
                            normalize_counts(self.mobility.matrix.T)], axis=1),
            normalize_counts(self.poi_counts),
            normalize_counts(self.landuse_counts),
        ]
        raw = [self.mobility.matrix, self.poi_counts, self.landuse_counts]
        return ViewSet(names=("mobility", "poi", "landuse"), matrices=matrices, raw=raw)

    def summary(self) -> dict[str, float]:
        """Table II-style dataset statistics."""
        return {
            "regions": self.n_regions,
            "pois": int(self.poi_counts.sum()),
            "poi_categories": self.poi_counts.shape[1],
            "landuse_categories": self.landuse_counts.shape[1],
            "taxi_trips": int(self.mobility.total_trips),
            "crime_records": int(self.targets.crime.sum()),
            "checkins": int(self.targets.checkin.sum()),
            "service_calls": int(self.targets.service_call.sum()),
        }


def generate_city(config: CityConfig, seed: int = 0) -> SyntheticCity:
    """Generate a complete city from a config and seed (deterministic)."""
    rng = np.random.default_rng(seed)
    geometry = generate_geometry(config.n_regions, rng,
                                 city_extent_km=config.city_extent_km)
    latent = generate_latent(geometry, rng, density_profile=config.density_profile)
    poi_counts = generate_poi_counts(latent, rng, target_total=config.poi_total)
    landuse_counts = generate_landuse_counts(latent, rng,
                                             n_categories=config.landuse_categories)
    mobility = generate_mobility(geometry, latent, rng,
                                 total_trips=config.total_trips,
                                 noise_level=config.mobility_noise)
    buildings = generate_buildings(latent, rng)
    targets = generate_targets(latent, mobility, rng,
                               checkin_scale=config.checkin_scale,
                               crime_scale=config.crime_scale,
                               service_scale=config.service_scale,
                               service_noise=config.service_noise)
    return SyntheticCity(config=config, geometry=geometry, latent=latent,
                         poi_counts=poi_counts, landuse_counts=landuse_counts,
                         mobility=mobility, buildings=buildings, targets=targets)
