"""Downstream prediction targets: check-ins, crimes, service calls.

The paper evaluates embeddings by predicting three per-region counts
(Sec. VI-B). Each target is generated as a noisy nonlinear function of
the latent city, with couplings chosen to reproduce the paper's
qualitative findings:

- **check-ins** are dominated by mobility inflow and entertainment /
  commercial function (hence mobility-only MGFN is competitive on this
  task — Table III observation (2));
- **crime** depends on several factors jointly — mobility, nightlife,
  transit proximity, population — so multi-view models win (Table III
  Task 2 discussion);
- **service calls** track population and residential/infrastructure
  function with task-specific noise; the NYC preset uses a higher noise
  level because NYC's 400 call categories make its counts harder to
  predict (Task 3 discussion).

A ``training-period`` check-in *category matrix* is also produced, since
MVURE consumes check-in features as an input view (trained and evaluated
on disjoint periods, as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .latent import ARCHETYPES, LatentCity
from .mobility import MobilityData

__all__ = ["TargetData", "generate_targets"]

#: Check-in venue categories for the MVURE input view.
CHECKIN_CATEGORIES = (
    "food", "nightlife", "shopping", "arts", "outdoors",
    "travel", "work", "education", "residence", "event",
)


@dataclass
class TargetData:
    """Downstream task targets and the auxiliary check-in input view.

    Attributes
    ----------
    checkin:
        (n,) check-in counts (evaluation period).
    crime:
        (n,) crime counts.
    service_call:
        (n,) service-call counts.
    checkin_categories_train:
        (n, 10) check-in category counts from a *disjoint training
        period*; input feature for MVURE only.
    """

    checkin: np.ndarray
    crime: np.ndarray
    service_call: np.ndarray
    checkin_categories_train: np.ndarray

    def task(self, name: str) -> np.ndarray:
        tasks = {"checkin": self.checkin, "crime": self.crime,
                 "service_call": self.service_call}
        if name not in tasks:
            raise KeyError(f"unknown task {name!r}; choose from {sorted(tasks)}")
        return tasks[name]

    @staticmethod
    def task_names() -> tuple[str, ...]:
        return ("checkin", "crime", "service_call")


def _positive_counts(expected: np.ndarray, rng: np.random.Generator,
                     dispersion: float) -> np.ndarray:
    """Sample over-dispersed counts (log-normal × expected, rounded)."""
    noisy = expected * np.exp(rng.normal(0.0, dispersion, size=expected.shape))
    return np.maximum(0.0, noisy).round()


def generate_targets(latent: LatentCity, mobility: MobilityData,
                     rng: np.random.Generator,
                     checkin_scale: float = 600.0,
                     crime_scale: float = 200.0,
                     service_scale: float = 2800.0,
                     service_noise: float = 0.28,
                     crime_noise: float = 0.18,
                     checkin_noise: float = 0.14) -> TargetData:
    """Generate the three downstream targets plus MVURE's check-in view."""
    idx = {name: i for i, name in enumerate(ARCHETYPES)}
    f = latent.functionality
    pop = latent.population / latent.population.mean()
    inflow = mobility.inflow()
    inflow_norm = inflow / max(inflow.mean(), 1e-9)

    # Check-ins: mobility-dominated with entertainment/commercial boosts.
    # The power amplifies cross-region spread: real check-in counts span
    # orders of magnitude between hotspots and quiet tracts.
    checkin_factor = (0.55 * inflow_norm ** 0.85
                      + 0.30 * (f[:, idx["entertainment"]] + f[:, idx["commercial"]]) * pop
                      + 0.15 * f[:, idx["transit_hub"]] * pop) ** 1.25
    expected_checkin = checkin_scale * checkin_factor
    checkin = _positive_counts(expected_checkin, rng, checkin_noise)

    # Crime: joint function of several views (no single view suffices).
    crime_factor = (0.30 * inflow_norm ** 0.6
                    + 0.25 * f[:, idx["entertainment"]] * pop
                    + 0.20 * f[:, idx["transit_hub"]]
                    + 0.15 * pop
                    + 0.10 * f[:, idx["commercial"]]) ** 1.3
    expected_crime = crime_scale * crime_factor
    crime = _positive_counts(expected_crime, rng, crime_noise)

    # Service calls: population/residential-infrastructure driven.
    service_factor = (0.50 * pop
                      + 0.30 * f[:, idx["residential"]] * pop
                      + 0.10 * f[:, idx["industrial"]]
                      + 0.10 * inflow_norm ** 0.4) ** 1.2
    expected_service = service_scale * service_factor
    service = _positive_counts(expected_service, rng, service_noise)

    # Training-period check-in categories for MVURE (disjoint noise draw).
    category_loading = np.zeros((len(CHECKIN_CATEGORIES), len(ARCHETYPES)))
    loadings = {
        "food": ("commercial", "entertainment"), "nightlife": ("entertainment",),
        "shopping": ("commercial",), "arts": ("entertainment", "education"),
        "outdoors": ("park",), "travel": ("transit_hub",),
        "work": ("office",), "education": ("education",),
        "residence": ("residential",), "event": ("entertainment", "commercial"),
    }
    for c, names in loadings.items():
        for name in names:
            category_loading[CHECKIN_CATEGORIES.index(c), idx[name]] = 1.0
    category_probs = f @ category_loading.T + 0.02
    category_probs /= category_probs.sum(axis=1, keepdims=True)
    train_totals = _positive_counts(0.8 * expected_checkin, rng, checkin_noise)
    checkin_categories = category_probs * train_totals[:, None]
    checkin_categories = rng.poisson(checkin_categories).astype(np.float64)

    return TargetData(checkin=checkin, crime=crime, service_call=service,
                      checkin_categories_train=checkin_categories)
