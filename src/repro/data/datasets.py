"""City presets mirroring the paper's datasets (Table II) and experiment
variants (Figs. 7–8).

========= ======== ================= ============ =====================
Preset    #regions #landuse classes  #taxi trips  Notes
========= ======== ================= ============ =====================
nyc       180      11                ≈ 11.0M      noisy mobility
chi       77       12                ≈ 3.4M
sf        175      23                ≈ 0.36M      sparse trips
========= ======== ================= ============ =====================

Scaling variants ``nyc_360`` / ``nyc_720`` / ``nyc_1440`` reproduce the
breadth-first expansion of NYC into Queens/Brooklyn (Fig. 7): the added
regions are progressively sparser in features, which is why all models
lose accuracy as n grows. Density variants ``manhattan`` (dense, the
nyc preset's core) and ``staten_island`` (suburban, trips in the
hundreds) reproduce Fig. 8.
"""

from __future__ import annotations

from .city import CityConfig, SyntheticCity, generate_city

__all__ = ["CITY_PRESETS", "available_cities", "load_city"]

CITY_PRESETS: dict[str, CityConfig] = {
    "nyc": CityConfig(
        name="nyc", n_regions=180, landuse_categories=11,
        total_trips=10_953_879, poi_total=24_496, mobility_noise=0.85,
        checkin_scale=600.0, crime_scale=200.0, service_scale=2800.0,
        service_noise=0.42,  # ~400 call categories -> hard-to-predict counts
    ),
    "chi": CityConfig(
        name="chi", n_regions=77, landuse_categories=12,
        total_trips=3_381_807, poi_total=57_891, mobility_noise=0.30,
        checkin_scale=2200.0, crime_scale=240.0, service_scale=320.0,
        service_noise=0.28,
    ),
    "sf": CityConfig(
        name="sf", n_regions=175, landuse_categories=23,
        total_trips=357_749, poi_total=28_578, mobility_noise=0.30,
        checkin_scale=500.0, crime_scale=280.0, service_scale=200.0,
        service_noise=0.28,
    ),
    # Fig. 7: breadth-first expansion into outer boroughs. Outer regions
    # are sparser: trips grow sub-linearly with n while the extent grows.
    "nyc_360": CityConfig(
        name="nyc_360", n_regions=360, landuse_categories=11,
        total_trips=13_000_000, poi_total=33_000, mobility_noise=0.85,
        city_extent_km=18.0, service_noise=0.42,
    ),
    "nyc_720": CityConfig(
        name="nyc_720", n_regions=720, landuse_categories=11,
        total_trips=15_000_000, poi_total=45_000, mobility_noise=0.85,
        city_extent_km=26.0, service_noise=0.42,
    ),
    "nyc_1440": CityConfig(
        name="nyc_1440", n_regions=1440, landuse_categories=11,
        total_trips=17_000_000, poi_total=60_000, mobility_noise=0.85,
        city_extent_km=38.0, service_noise=0.42,
    ),
    # Fig. 8: density split.
    "manhattan": CityConfig(
        name="manhattan", n_regions=180, landuse_categories=11,
        total_trips=10_953_879, poi_total=24_496, mobility_noise=0.85,
        density_profile="dense", service_noise=0.42,
    ),
    "staten_island": CityConfig(
        name="staten_island", n_regions=110, landuse_categories=11,
        total_trips=900, poi_total=2_600, mobility_noise=0.85,
        density_profile="suburban", checkin_scale=60.0, crime_scale=40.0,
        service_scale=400.0, service_noise=0.42, city_extent_km=16.0,
    ),
}


def available_cities() -> list[str]:
    """Names accepted by :func:`load_city`."""
    return sorted(CITY_PRESETS)


def load_city(name: str, seed: int = 0) -> SyntheticCity:
    """Generate a preset city deterministically from ``seed``.

    Raises ``KeyError`` with the available names on a bad preset name.
    """
    if name not in CITY_PRESETS:
        raise KeyError(f"unknown city {name!r}; available: {available_cities()}")
    return generate_city(CITY_PRESETS[name], seed=seed)
