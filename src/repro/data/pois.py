"""POI (point-of-interest) generation.

The paper counts OpenStreetMap POIs in 26 categories per region
(Sec. III). We generate a 26×K affinity matrix tying each category to the
functional archetypes (restaurants load on commercial/entertainment,
schools on education/residential, ...) and draw per-region category counts
from a Poisson whose intensity combines archetype mixture, population and
area — reproducing both the marginal count statistics and the
cross-region correlation structure the POI view carries.
"""

from __future__ import annotations

import numpy as np

from .latent import ARCHETYPES, LatentCity

__all__ = ["POI_CATEGORIES", "poi_affinity_matrix", "generate_poi_counts"]

#: The 26 POI categories used by the paper (following Zhao et al., TKDE'23).
POI_CATEGORIES = (
    "restaurant", "cafe", "bar", "nightclub", "fast_food",
    "supermarket", "convenience", "clothes_shop", "mall", "marketplace",
    "school", "university", "kindergarten", "library",
    "hospital", "pharmacy", "clinic",
    "bank", "office_building", "coworking",
    "theatre", "cinema", "museum", "park_facility",
    "bus_station", "subway_entrance",
)

# Hand-designed loading of each category on the 8 archetypes
# (residential, commercial, office, industrial, entertainment,
#  transit_hub, park, education).
_AFFINITY = {
    "restaurant":      (0.2, 1.0, 0.6, 0.0, 0.9, 0.3, 0.0, 0.2),
    "cafe":            (0.3, 0.9, 0.8, 0.0, 0.5, 0.3, 0.1, 0.4),
    "bar":             (0.1, 0.5, 0.2, 0.0, 1.2, 0.2, 0.0, 0.1),
    "nightclub":       (0.0, 0.3, 0.1, 0.0, 1.4, 0.2, 0.0, 0.0),
    "fast_food":       (0.4, 0.8, 0.5, 0.2, 0.6, 0.5, 0.0, 0.3),
    "supermarket":     (1.0, 0.7, 0.2, 0.1, 0.1, 0.2, 0.0, 0.1),
    "convenience":     (0.9, 0.6, 0.4, 0.2, 0.3, 0.5, 0.0, 0.2),
    "clothes_shop":    (0.1, 1.3, 0.2, 0.0, 0.3, 0.2, 0.0, 0.0),
    "mall":            (0.1, 1.5, 0.2, 0.0, 0.4, 0.3, 0.0, 0.0),
    "marketplace":     (0.4, 1.0, 0.1, 0.1, 0.2, 0.2, 0.0, 0.0),
    "school":          (1.1, 0.1, 0.0, 0.0, 0.0, 0.0, 0.1, 1.0),
    "university":      (0.1, 0.1, 0.2, 0.0, 0.2, 0.1, 0.1, 1.6),
    "kindergarten":    (1.2, 0.1, 0.0, 0.0, 0.0, 0.0, 0.1, 0.6),
    "library":         (0.5, 0.2, 0.2, 0.0, 0.1, 0.1, 0.1, 1.0),
    "hospital":        (0.6, 0.3, 0.3, 0.1, 0.0, 0.2, 0.0, 0.3),
    "pharmacy":        (0.9, 0.6, 0.3, 0.0, 0.1, 0.2, 0.0, 0.1),
    "clinic":          (0.8, 0.4, 0.4, 0.0, 0.0, 0.1, 0.0, 0.2),
    "bank":            (0.2, 0.9, 1.0, 0.1, 0.1, 0.2, 0.0, 0.1),
    "office_building": (0.1, 0.4, 1.6, 0.2, 0.1, 0.3, 0.0, 0.1),
    "coworking":       (0.1, 0.3, 1.3, 0.1, 0.2, 0.2, 0.0, 0.3),
    "theatre":         (0.1, 0.4, 0.2, 0.0, 1.1, 0.2, 0.0, 0.2),
    "cinema":          (0.2, 0.6, 0.2, 0.0, 1.0, 0.2, 0.0, 0.1),
    "museum":          (0.0, 0.3, 0.2, 0.0, 0.8, 0.2, 0.2, 0.5),
    "park_facility":   (0.3, 0.1, 0.0, 0.0, 0.2, 0.0, 1.5, 0.1),
    "bus_station":     (0.4, 0.4, 0.4, 0.3, 0.2, 1.3, 0.1, 0.3),
    "subway_entrance": (0.3, 0.5, 0.6, 0.1, 0.3, 1.5, 0.0, 0.2),
}


def poi_affinity_matrix() -> np.ndarray:
    """(26, 8) loading of POI categories on archetypes."""
    return np.array([_AFFINITY[c] for c in POI_CATEGORIES])


def generate_poi_counts(latent: LatentCity, rng: np.random.Generator,
                        target_total: int = 25000) -> np.ndarray:
    """Sample the (n, 26) POI count matrix ``P``.

    Intensity per region/category = archetype affinity × density factor;
    scaled so expected total matches ``target_total`` (cities differ: NYC
    24k, CHI 58k, SF 29k POIs).
    """
    if target_total < 1:
        raise ValueError(f"target_total must be positive, got {target_total}")
    affinity = poi_affinity_matrix()                       # (26, K)
    base = latent.functionality @ affinity.T               # (n, 26)
    density = (latent.population / latent.population.mean()) ** 0.5
    intensity = base * density[:, None]
    intensity *= target_total / max(intensity.sum(), 1e-9)
    return rng.poisson(intensity).astype(np.float64)
