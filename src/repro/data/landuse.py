"""Land-use zone generation.

The paper is the first to use land-use features for region representation
learning: per region, the count of zoning lots in each land-use category
(11 for NYC, 12 for CHI, 23 for SF — Sec. III / Table II). Land use is a
*coarser* projection of the same latent functionality than POIs: few
categories, strong signal about the dominant function.

We map the 8 archetypes onto ``n_categories`` land-use categories with a
banded loading matrix (each archetype spreads over a couple of adjacent
zoning codes, as real zoning taxonomies do), then draw zone counts from a
multinomial over each region's lots.
"""

from __future__ import annotations

import numpy as np

from .latent import ARCHETYPES, LatentCity

__all__ = ["landuse_loading_matrix", "generate_landuse_counts"]


def landuse_loading_matrix(n_categories: int, rng: np.random.Generator) -> np.ndarray:
    """(n_categories, K) archetype loading for each land-use category.

    Each archetype dominates a contiguous band of categories, with small
    random cross-talk — e.g. NYC's R1–R10 residential districts all load
    on "residential".
    """
    if n_categories < 4:
        raise ValueError(f"need at least 4 land-use categories, got {n_categories}")
    k = len(ARCHETYPES)
    loading = 0.05 * rng.random((n_categories, k))
    # Assign each category a primary archetype, cycling through archetypes
    # so every archetype is represented.
    for cat in range(n_categories):
        primary = cat % k
        loading[cat, primary] += 1.0
        loading[cat, (primary + 1) % k] += 0.15
    return loading


def generate_landuse_counts(latent: LatentCity, rng: np.random.Generator,
                            n_categories: int = 11,
                            mean_lots_per_region: float = 60.0) -> np.ndarray:
    """Sample the (n, n_categories) land-use count matrix ``L``.

    Each region has ``~Poisson(mean_lots_per_region)`` zoning lots,
    distributed over categories by a multinomial whose probabilities come
    from the region's archetype mixture.
    """
    loading = landuse_loading_matrix(n_categories, rng)      # (C, K)
    probs = latent.functionality @ loading.T                 # (n, C)
    probs /= probs.sum(axis=1, keepdims=True)
    n_lots = rng.poisson(mean_lots_per_region, size=latent.n_regions)
    counts = np.zeros((latent.n_regions, n_categories))
    for i in range(latent.n_regions):
        if n_lots[i] > 0:
            counts[i] = rng.multinomial(n_lots[i], probs[i])
    return counts.astype(np.float64)
