"""Building-footprint groups (the RegionDCL baseline's input).

RegionDCL (Li et al., KDD'23) learns region embeddings from OpenStreetMap
building footprints: buildings are partitioned into road-bounded groups,
each footprint image is encoded by a CNN, and group embeddings are
refined contrastively.

We generate, per region, a set of building *groups* each described by a
shape-statistics feature vector (footprint area, aspect ratio, vertex
count, height proxy, coverage ratio, ...). Crucially — mirroring the
paper's observation that "buildings predominantly take on a rectangular
shape, irrespective of whether they are situated in industrial or
residential areas" — these features carry only a *weak* signal about
region functionality (density-related components) plus substantial noise.
That weak coupling is what makes RegionDCL underperform on check-in and
crime prediction in Table III, and the generator preserves it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .latent import ARCHETYPES, LatentCity

__all__ = ["BuildingData", "generate_buildings", "BUILDING_FEATURES"]

#: Per-group footprint descriptor components.
BUILDING_FEATURES = (
    "mean_area", "area_std", "aspect_ratio", "vertex_count",
    "height_proxy", "coverage_ratio", "compactness", "setback",
)


@dataclass
class BuildingData:
    """Building groups per region.

    Attributes
    ----------
    group_features:
        List of (g_i, 8) arrays, one per region: footprint descriptors of
        the region's building groups.
    region_index:
        (total_groups,) region id of each group, concatenated in order.
    """

    group_features: list[np.ndarray]

    @property
    def n_regions(self) -> int:
        return len(self.group_features)

    def stacked(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (all_groups, region_index) as flat arrays."""
        features = np.concatenate(self.group_features, axis=0)
        index = np.concatenate([
            np.full(len(groups), i) for i, groups in enumerate(self.group_features)
        ])
        return features, index


def generate_buildings(latent: LatentCity, rng: np.random.Generator,
                       mean_groups_per_region: float = 8.0,
                       functional_signal: float = 0.25) -> BuildingData:
    """Sample building-group footprint descriptors for every region.

    Parameters
    ----------
    mean_groups_per_region:
        Poisson mean of road-bounded building groups per region.
    functional_signal:
        How strongly descriptors reflect the latent functionality
        (deliberately small: footprints are weak functional evidence).
    """
    idx = {name: i for i, name in enumerate(ARCHETYPES)}
    density = latent.population / latent.population.mean()
    group_features: list[np.ndarray] = []
    for i in range(latent.n_regions):
        n_groups = max(1, rng.poisson(mean_groups_per_region))
        f = latent.functionality[i]
        # Density and a faint industrial/office signature leak into shape
        # statistics; everything else is generic-rectangular noise.
        base = np.array([
            0.5 + 0.4 * f[idx["industrial"]] + 0.2 * f[idx["office"]],   # mean_area
            0.3 + 0.2 * f[idx["industrial"]],                             # area_std
            1.4 + 0.3 * f[idx["industrial"]],                             # aspect_ratio
            4.5 + 1.0 * f[idx["commercial"]],                             # vertex_count
            0.4 + 0.8 * min(density[i], 3.0) / 3.0,                       # height_proxy
            0.3 + 0.4 * min(density[i], 3.0) / 3.0,                       # coverage_ratio
            0.7,                                                          # compactness
            0.2 + 0.1 * f[idx["residential"]],                            # setback
        ])
        noise = rng.normal(0.0, 1.0, size=(n_groups, len(BUILDING_FEATURES)))
        groups = (functional_signal * base[None, :]
                  + (1.0 - functional_signal) * (0.5 + 0.35 * noise))
        group_features.append(groups)
    return BuildingData(group_features=group_features)
