"""Region geometry: spatial partitions of a synthetic city.

The paper partitions each city into census-tract regions. We model a city
as a jittered grid of region centroids with log-normal area jitter — this
preserves the two geometric properties the models actually consume:
pairwise centroid distances (gravity mobility model, HDGE-style spatial
similarity) and an adjacency structure (HREP's geographic-neighbor view).

Adjacency is derived from the Delaunay triangulation of the centroids
(via :mod:`scipy.spatial`) and exposed as a :mod:`networkx` graph, which
is how "neighbouring census tracts" behave in the real datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np
from scipy.spatial import Delaunay

__all__ = ["RegionGeometry", "generate_geometry"]


@dataclass
class RegionGeometry:
    """Spatial layout of ``n`` regions.

    Attributes
    ----------
    centroids:
        (n, 2) region centroid coordinates in kilometres.
    areas:
        (n,) region areas in square kilometres.
    distances:
        (n, n) pairwise centroid distances in kilometres.
    adjacency:
        networkx graph on region indices; edges join Delaunay neighbours.
    """

    centroids: np.ndarray
    areas: np.ndarray
    adjacency: nx.Graph = field(repr=False)
    distances: np.ndarray = field(repr=False, default=None)

    def __post_init__(self):
        if self.distances is None:
            diff = self.centroids[:, None, :] - self.centroids[None, :, :]
            self.distances = np.sqrt((diff ** 2).sum(axis=-1))

    @property
    def n_regions(self) -> int:
        return len(self.centroids)

    def adjacency_matrix(self) -> np.ndarray:
        """Dense 0/1 adjacency matrix (no self loops)."""
        return nx.to_numpy_array(self.adjacency, nodelist=range(self.n_regions))

    def neighbors(self, region: int) -> list[int]:
        return sorted(self.adjacency.neighbors(region))


def _delaunay_graph(centroids: np.ndarray) -> nx.Graph:
    """Build the Delaunay neighbour graph; falls back to a path for tiny n."""
    n = len(centroids)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    if n < 4:
        graph.add_edges_from((i, i + 1) for i in range(n - 1))
        return graph
    triangulation = Delaunay(centroids)
    for simplex in triangulation.simplices:
        for i in range(3):
            a, b = int(simplex[i]), int(simplex[(i + 1) % 3])
            graph.add_edge(a, b)
    return graph


def generate_geometry(n_regions: int, rng: np.random.Generator,
                      city_extent_km: float = 12.0,
                      area_sigma: float = 0.35) -> RegionGeometry:
    """Generate a jittered-grid region layout.

    Parameters
    ----------
    n_regions:
        Number of regions (census-tract stand-ins).
    rng:
        Source of randomness.
    city_extent_km:
        Side length of the square city bounding box.
    area_sigma:
        Log-normal sigma of the per-region area jitter.
    """
    if n_regions < 1:
        raise ValueError(f"n_regions must be positive, got {n_regions}")
    cols = int(np.ceil(np.sqrt(n_regions)))
    rows = int(np.ceil(n_regions / cols))
    cell = city_extent_km / max(cols, rows)
    ys, xs = np.divmod(np.arange(n_regions), cols)
    centroids = np.stack([xs * cell + cell / 2, ys * cell + cell / 2], axis=1)
    centroids = centroids + rng.uniform(-0.3, 0.3, size=centroids.shape) * cell
    base_area = cell * cell
    areas = base_area * np.exp(rng.normal(0.0, area_sigma, size=n_regions))
    return RegionGeometry(centroids=centroids, areas=areas,
                          adjacency=_delaunay_graph(centroids))
