"""``repro.data`` — synthetic-city substrate.

Stands in for the paper's NYC / Chicago / San Francisco open datasets
(taxi trips, OSM POIs, land-use shapefiles, building footprints, crime /
check-in / 311 records). See DESIGN.md §2 for the substitution argument.

Typical usage::

    from repro.data import load_city
    city = load_city("nyc", seed=7)
    views = city.views()          # mobility / POI / land-use matrices
    y = city.targets.task("crime")
"""

from .buildings import BUILDING_FEATURES, BuildingData, generate_buildings
from .city import CityConfig, SyntheticCity, generate_city
from .datasets import CITY_PRESETS, available_cities, load_city
from .features import ViewSet, normalize_counts
from .geometry import RegionGeometry, generate_geometry
from .landuse import generate_landuse_counts, landuse_loading_matrix
from .latent import ARCHETYPES, LatentCity, generate_latent
from .mobility import MobilityData, compatibility_matrix, generate_mobility
from .pois import POI_CATEGORIES, generate_poi_counts, poi_affinity_matrix
from .targets import CHECKIN_CATEGORIES, TargetData, generate_targets

__all__ = [
    "ARCHETYPES",
    "BUILDING_FEATURES",
    "BuildingData",
    "CHECKIN_CATEGORIES",
    "CITY_PRESETS",
    "CityConfig",
    "LatentCity",
    "MobilityData",
    "POI_CATEGORIES",
    "RegionGeometry",
    "SyntheticCity",
    "TargetData",
    "ViewSet",
    "available_cities",
    "compatibility_matrix",
    "generate_buildings",
    "generate_city",
    "generate_geometry",
    "generate_landuse_counts",
    "generate_latent",
    "generate_mobility",
    "generate_poi_counts",
    "generate_targets",
    "landuse_loading_matrix",
    "load_city",
    "normalize_counts",
    "poi_affinity_matrix",
]
