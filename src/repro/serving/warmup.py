"""Deploy-time plan warm-up packs.

A fresh serving process pays one record epoch (a full eager forward
under the tape recorder) for every plan shape it has never seen.  A
:class:`WarmupPack` moves that cost to deploy time: build it once
against a reference service over the common ``(batch_size, n_regions)``
grid, ship the directory with the model, and point the production
service's :class:`~repro.nn.plancache.PlanCache` at it — the first
request of every warmed shape then relowers a pickled
:class:`~repro.nn.plancache.PlanSpec` instead of recording
(``RECORD_STATS.total`` stays **zero** on the warm path, asserted by
``tests/serving/test_service.py`` and the ``serving-smoke`` CI job).

Plan specs bake in shapes, dtype, the mask constants and the config
digest — not parameter or input *values* — so a pack built from any
model of the right architecture serves every other one.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from ..nn.plancache import PlanCache, config_digest
from .service import EmbeddingService

__all__ = ["WarmupPack", "default_shape_grid"]

_MANIFEST = "warmup_pack.json"
#: Bump when the manifest layout changes.
_PACK_VERSION = 1


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` durably: temp file + fsync + ``os.replace``.

    The manifest is the pack's validity marker (:meth:`WarmupPack.exists`
    trusts its presence), so it must appear atomically — a crash
    mid-build must leave either no manifest or a complete one, never a
    partial file a later ``exists()`` check would treat as a valid pack.
    """
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as f:
        f.write(text)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


def default_shape_grid(policy_max_batch: int,
                       bucket_edges: Sequence[int]) -> list[tuple[int, int]]:
    """The grid a scheduler's steady state exercises: full flushes of
    every bucket edge, plus the single-request (straggler) flush."""
    grid = []
    for edge in sorted(set(int(e) for e in bucket_edges)):
        grid.append((policy_max_batch, edge))
        if policy_max_batch != 1:
            grid.append((1, edge))
    return grid


@dataclass
class WarmupPack:
    """A directory of pre-recorded plan specs plus its manifest."""

    directory: Path
    manifest: dict

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, service: EmbeddingService,
              shape_grid: "Sequence[tuple[int, int | Sequence[int]]] | None" = None,
              directory: "str | os.PathLike | None" = None,
              traffic=None) -> "WarmupPack":
        """Record the plan for every ``(batch_size, n_regions)`` shape in
        the grid through ``service`` and persist the specs.

        ``directory`` defaults to the service plan cache's directory (it
        must have one — the pack *is* the on-disk cache).  When a
        directory is given and differs from the service's, the service
        is repointed at it first.

        The default grid covers the scheduler's steady state — full and
        single-request flushes of every bucket edge — which is exact for
        uniform traffic.  Ragged traffic flushes with mixed per-row
        region counts whose masks the grid cannot enumerate; pass a
        ``traffic`` sample (a sequence of view sets representative of
        production requests) and it is played through the scheduler once
        so those exact flush compositions are recorded into the pack
        too.
        """
        from .api import EmbedRequest
        if shape_grid is None:
            scheduler = service._require_scheduler()
            shape_grid = default_shape_grid(service.policy.max_batch,
                                            scheduler.edges)
        directory = Path(directory) if directory is not None else \
            service.plan_cache.directory
        if directory is None:
            raise ValueError(
                "warm-up packs are on-disk artifacts: give the service a "
                "PlanCache(directory=...) or pass directory= explicitly")
        if service.plan_cache.directory is None or \
                Path(service.plan_cache.directory) != directory:
            service.plan_cache = PlanCache(
                capacity=service.plan_cache.capacity, directory=directory)
        shapes = []
        for batch_size, n_regions in shape_grid:
            bucket_id = service.warm(batch_size, n_regions)
            rows = ([int(n_regions)] * batch_size
                    if isinstance(n_regions, (int, np.integer))
                    else [int(n) for n in n_regions])
            shapes.append({"batch_size": int(batch_size), "n_regions": rows,
                           "bucket_id": bucket_id})
        if traffic is not None:
            mark = service.flush_seq
            service.run([EmbedRequest(vs) for vs in traffic])
            # The flush log holds the exact co-batch compositions the
            # traffic produced — each one a valid service.warm() shape.
            # Filtered by seq (not position): the log is a bounded deque
            # whose older entries may have been evicted.
            for flush in (f for f in service.flush_log
                          if f["seq"] > mark):
                shape = {"batch_size": flush["batch_size"],
                         "n_regions": list(flush["n_regions"]),
                         "bucket_id": flush["bucket_id"],
                         "from_traffic": True}
                if shape not in shapes:
                    shapes.append(shape)
        params = service.model.parameters()
        manifest = {
            "version": _PACK_VERSION,
            "config_digest": config_digest(service.model.config),
            "param_dtype": str(params[0].dtype) if params else "none",
            "n_max": service.n_max,
            "view_dims": list(service.view_dims),
            "shapes": shapes,
        }
        directory.mkdir(parents=True, exist_ok=True)
        # Specs were persisted by service.warm() above; the manifest
        # lands last and atomically, so its presence implies a complete
        # pack (exists() gates worker spawns on exactly this file).
        _atomic_write_text(directory / _MANIFEST,
                           json.dumps(manifest, indent=2))
        return cls(directory=directory, manifest=manifest)

    @classmethod
    def exists(cls, directory: "str | os.PathLike") -> bool:
        """Whether ``directory`` holds a loadable pack manifest.

        The cheap pre-flight the fleet runs before spawning workers (and
        the supervisor relies on when respawning them): a missing pack
        should fail once, in the parent, with a clear message — not as
        ``n_workers`` independent worker-start tracebacks, and never
        first at respawn time when the original pack directory has been
        deleted out from under a running fleet.
        """
        return (Path(directory) / _MANIFEST).exists()

    @classmethod
    def load(cls, directory: "str | os.PathLike") -> "WarmupPack":
        directory = Path(directory)
        path = directory / _MANIFEST
        if not path.exists():
            raise FileNotFoundError(f"no warm-up pack manifest at {path}")
        manifest = json.loads(path.read_text())
        if manifest.get("version") != _PACK_VERSION:
            raise ValueError(f"warm-up pack version "
                             f"{manifest.get('version')} != {_PACK_VERSION}")
        return cls(directory=directory, manifest=manifest)

    # ------------------------------------------------------------------
    @property
    def shapes(self) -> list[dict]:
        return list(self.manifest["shapes"])

    def compatible_with(self, service: EmbeddingService) -> bool:
        """Whether this pack's specs can serve ``service`` without
        recording (same architecture digest, dtype and capacity)."""
        params = service.model.parameters()
        return (self.manifest["config_digest"]
                == config_digest(service.model.config)
                and self.manifest["param_dtype"]
                == (str(params[0].dtype) if params else "none")
                and self.manifest["n_max"] == service.n_max
                and self.manifest["view_dims"] == list(service.view_dims))

    def attach(self, service: EmbeddingService) -> EmbeddingService:
        """Point ``service`` at this pack's on-disk specs (cold start →
        spec relowering, zero record epochs for warmed shapes)."""
        if not self.compatible_with(service):
            raise ValueError(
                "warm-up pack was built for a different architecture, "
                "dtype or capacity than this service")
        service.plan_cache = PlanCache(capacity=service.plan_cache.capacity,
                                       directory=self.directory)
        return service
