"""Serving benchmarks: scheduler throughput vs the direct embed paths.

Two traffic shapes, matching the ROADMAP's serving scenarios:

- **uniform** — every request is the full-size city, so the scheduler
  co-batches them into the unpadded compiled fast path.  Its throughput
  must not fall below the direct :meth:`EmbeddingService.embed_batch`
  call on the same prebuilt batch (scheduler bookkeeping is queue
  append/pop — noise next to a model pass);
- **ragged** — mixed-size region shards, the traffic shape the
  scheduler exists for.  Co-batching under padded masks must beat
  sequential (one-request-at-a-time) serving by ≥1.5x regions/sec.

Both sides replay warm resident plans (record epochs are paid before
timing, exactly as a warm server runs) and are best-of-``repeats``.
``benchmarks/test_serving_service.py`` records this payload in the
pytest-benchmark JSON and asserts the gates.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.config import HAFusionConfig
from ..core.engine import make_batch, shard_viewset
from ..data.features import ViewSet
from .api import EmbedRequest, FlushPolicy
from .service import EmbeddingService

__all__ = ["serving_scheduler_report"]


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def serving_scheduler_report(views: ViewSet,
                             config: HAFusionConfig | None = None,
                             seed: int = 7, max_batch: int = 8,
                             uniform_batch: int | None = None,
                             ragged_shard_counts: tuple[int, ...] = (6, 9, 14),
                             repeats: int = 3) -> dict:
    """Measure scheduler throughput on uniform and ragged traffic.

    ``views`` is the full-size city; ragged traffic is built by
    sharding it at each count in ``ragged_shard_counts`` and mixing the
    shards, so request sizes span roughly a 2.3x range and no two shard
    populations pad identically.  ``uniform_batch`` (default
    ``min(max_batch, 8)``) sizes the uniform-traffic burst — full-size
    cities are quadratic in ``n``, so the uniform section stays modest
    while the ragged section co-batches up to ``max_batch`` shards.
    """
    # ------------------------------------------------------------------
    # Uniform: full-city requests against the direct batched path.
    # ------------------------------------------------------------------
    uniform_batch = (min(max_batch, 8) if uniform_batch is None
                     else uniform_batch)
    policy = FlushPolicy(max_batch=max_batch, max_wait=60.0)
    service = EmbeddingService.build([views] * uniform_batch, config, seed,
                                     policy=policy)
    direct_batch = make_batch([views] * uniform_batch)
    service.embed_batch(direct_batch)          # record epoch (excluded)

    def scheduler_uniform():
        service.run([EmbedRequest(views) for _ in range(uniform_batch)])

    scheduler_uniform()                        # warm the flush path
    direct_seconds = min(_timed(lambda: service.embed_batch(direct_batch))
                         for _ in range(repeats))
    scheduler_seconds = min(_timed(scheduler_uniform)
                            for _ in range(repeats))
    uniform_regions = uniform_batch * views.n_regions
    uniform = {
        "n_regions": views.n_regions,
        "batch_size": uniform_batch,
        "direct_seconds": direct_seconds,
        "scheduler_seconds": scheduler_seconds,
        "direct_regions_per_sec": uniform_regions / direct_seconds,
        "scheduler_regions_per_sec": uniform_regions / scheduler_seconds,
        "efficiency": direct_seconds / scheduler_seconds,
    }

    # ------------------------------------------------------------------
    # Ragged: mixed-size shards, scheduler vs sequential serving.
    # ------------------------------------------------------------------
    traffic: list[ViewSet] = []
    for count in ragged_shard_counts:
        traffic.extend(shard_viewset(views, count))
    ragged = EmbeddingService.build(traffic, config, seed, policy=policy)
    batch_all = make_batch(traffic, n_max=ragged.n_max,
                           view_dims=ragged.view_dims)

    def sequential():
        return ragged.embed_each(batch_all)

    def scheduler():
        return ragged.run([EmbedRequest(vs) for vs in traffic])

    # Warm both paths (records / relowers every plan) + parity check.
    seq_out = sequential()
    responses = scheduler()
    max_abs_diff = max(float(np.abs(r.embeddings - s).max())
                       for r, s in zip(responses, seq_out))
    sequential_seconds = min(_timed(sequential) for _ in range(repeats))
    scheduler_seconds = min(_timed(scheduler) for _ in range(repeats))
    total_regions = sum(vs.n_regions for vs in traffic)
    stats = ragged.stats()
    return {
        "uniform": uniform,
        "ragged": {
            "requests": len(traffic),
            "n_max": ragged.n_max,
            "sizes": sorted({vs.n_regions for vs in traffic}),
            "sequential_seconds": sequential_seconds,
            "scheduler_seconds": scheduler_seconds,
            "speedup": sequential_seconds / scheduler_seconds,
            "sequential_regions_per_sec": total_regions / sequential_seconds,
            "scheduler_regions_per_sec": total_regions / scheduler_seconds,
            "max_abs_diff": max_abs_diff,
            "padding_overhead": stats["padding_overhead"],
        },
        "scheduler_stats": stats,
    }
