"""EmbeddingService — the unified serving facade.

One service owns one shared-weight :class:`~repro.core.model.HAFusion`
and one :class:`~repro.nn.plancache.PlanCache`, and every embedding the
repo produces flows through its single batch code path:

- :meth:`embed_batch` runs one padded :class:`~repro.core.engine.CityBatch`
  through the model as a single ``(b, n, d)`` pass, eagerly or by
  replaying a compiled :class:`~repro.nn.compile.InferencePlan` fetched
  from the plan cache (the code path the deprecated
  :func:`repro.core.engine.batched_embed` shim delegates to);
- :meth:`embed_each` is its per-city parity twin (the
  ``sequential_embed`` shim);
- :meth:`submit` / :meth:`poll` / :meth:`flush` queue typed
  :class:`~repro.serving.api.EmbedRequest`\\ s through the
  :class:`~repro.serving.scheduler.ShapeBucketScheduler`, co-batching
  compatible requests per the flush policy and answering each with an
  :class:`~repro.serving.api.EmbedResponse` carrying plan-cache and
  padding provenance;
- :meth:`warm` pre-records the plan for one ``(batch_size, n_regions)``
  serving shape — the primitive :class:`~repro.serving.warmup.WarmupPack`
  builds deploy-time warm-up grids from;
- :meth:`stats` reports per-bucket throughput, padding overhead, plan
  cache hit rates and resident-plan replay counts.

The service is synchronous: there is no background thread, so
time-based (``max_wait``) flushes happen at ``submit``/``poll`` call
boundaries.  Plans stay *resident* for the service's lifetime — the
long-lived process the ROADMAP asks for is simply a process that keeps
one ``EmbeddingService`` alive across requests.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Sequence

import numpy as np

from ..core.config import HAFusionConfig
from ..core.model import HAFusion
from ..nn import Tensor, get_default_dtype, no_grad
from ..nn.compile import InferencePlan, record_forward
from ..nn.plancache import PlanCache, default_plan_cache, inference_plan_key
from .api import (
    AdmissionError,
    EmbedRequest,
    EmbedResponse,
    EmbedTicket,
    FlushPolicy,
)
from .scheduler import BucketKey, ShapeBucketScheduler

__all__ = ["EmbeddingService"]


def _infer_capacity(model: HAFusion) -> tuple[int | None, list[int]]:
    """Read the (n_max, view_dims) capacity off a model's weights.

    ``n_max`` is RegionSA's construction-time attention width; a model
    built with vanilla intra attention has no width constraint and
    returns ``None`` (the caller must then pass ``n_max`` explicitly to
    use the scheduler).
    """
    view_dims = [intra.input_projection.in_features
                 for intra in model.halearning.intra]
    n_max = None
    for intra in model.halearning.intra:
        for block in intra.blocks:
            n = getattr(block.attention, "n_regions", None)
            if n is not None:
                n_max = int(n)
                break
        if n_max is not None:
            break
    return n_max, view_dims


class _BucketStats:
    """Mutable per-bucket counters behind :meth:`EmbeddingService.stats`."""

    def __init__(self):
        self.requests = 0
        self.batches = 0
        self.regions = 0
        self.slots = 0           # b * n_max per flush, summed
        self.seconds = 0.0
        self.plan_events: dict[str, int] = {}

    def report(self) -> dict:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "regions": self.regions,
            "padding_overhead": (1.0 - self.regions / self.slots
                                 if self.slots else 0.0),
            "seconds": self.seconds,
            "regions_per_sec": (self.regions / self.seconds
                                if self.seconds > 0 else 0.0),
            "plan_events": dict(self.plan_events),
        }


class EmbeddingService:
    """Serving facade over one model + one plan cache (module docstring).

    Parameters
    ----------
    model:
        The shared-weight :class:`HAFusion` answering every request.
    n_max, view_dims, view_names:
        The service's request capacity — the padded shape every batch is
        brought to.  Inferred from the model's weights when omitted
        (``view_names`` then defaults to the request traffic's names).
    compiled:
        Serve through cached :class:`InferencePlan` replays (default) or
        the eager tape (``False`` — the debugging escape hatch).
    lowering, backend, num_workers:
        Kernel lowering level and replay backend for the service's
        plans (defaults: the ``REPRO_PLAN_LOWERING`` /
        ``REPRO_PLAN_BACKEND`` / ``REPRO_PLAN_WORKERS`` environment).
        ``backend="threaded"`` replays batch-parallel-safe kernels
        across a worker pool — bit-identical output, selected per plan
        variant in the cache, and warm-startable from a serially
        recorded spec with zero record epochs.
    plan_cache:
        Defaults to the process-wide cache
        (:func:`repro.nn.plancache.default_plan_cache`), which persists
        specs on disk when ``REPRO_PLAN_CACHE_DIR`` is set.
    policy:
        :class:`FlushPolicy` for the shape-bucket scheduler.
    clock:
        The service's monotonic time source (default
        ``time.monotonic``).  *One* clock drives everything time-shaped
        — ticket ``submitted_at``, age-based flush decisions and the
        responses' ``wait_seconds`` provenance — so tests and replay
        harnesses can inject a deterministic clock (or pass ``now=`` per
        call) without the wait accounting silently falling back to the
        real clock.
    flush_log_cap:
        Retained :attr:`flush_log` entries (a bounded deque; the
        oldest entries are dropped under sustained traffic and counted
        in ``stats()["flush_log_dropped"]``).
    max_tracked_buckets:
        Distinct bucket ids with individual ``stats()`` counters;
        traffic beyond the cap is rolled into an ``"(overflow)"``
        bucket so adversarial dtype/shape churn cannot grow the stats
        map without bound.
    """

    #: Rollup bucket id for per-bucket stats beyond ``max_tracked_buckets``.
    OVERFLOW_BUCKET = "(overflow)"

    def __init__(self, model: HAFusion, *, n_max: int | None = None,
                 view_dims: Sequence[int] | None = None,
                 view_names: Sequence[str] | None = None,
                 compiled: bool = True, lowering: str | None = None,
                 backend: str | None = None, num_workers: int | None = None,
                 plan_cache: PlanCache | None = None,
                 policy: FlushPolicy | None = None,
                 clock: Callable[[], float] | None = None,
                 flush_log_cap: int = 1024,
                 max_tracked_buckets: int = 64):
        inferred_n, inferred_dims = _infer_capacity(model)
        self.model = model
        self.n_max = int(n_max) if n_max is not None else inferred_n
        self.view_dims = (list(view_dims) if view_dims is not None
                          else inferred_dims)
        self.view_names = tuple(view_names) if view_names is not None else None
        self.compiled = compiled
        self.lowering = lowering
        self.backend = backend
        self.num_workers = num_workers
        self.plan_cache = (plan_cache if plan_cache is not None
                           else default_plan_cache())
        self.policy = policy if policy is not None else FlushPolicy()
        self.clock = clock if clock is not None else time.monotonic
        if flush_log_cap < 1:
            raise ValueError(f"flush_log_cap must be >= 1, "
                             f"got {flush_log_cap}")
        if max_tracked_buckets < 1:
            raise ValueError(f"max_tracked_buckets must be >= 1, "
                             f"got {max_tracked_buckets}")
        self.max_tracked_buckets = max_tracked_buckets
        self._scheduler: ShapeBucketScheduler | None = None
        self._bucket_stats: dict[str, _BucketStats] = {}
        self._overflow_flushes = 0
        self._submitted = 0
        self._answered = 0
        #: One entry per scheduler flush (bucket id, batch size, per-row
        #: region counts, plan event, monotone ``seq``) — the exact
        #: compositions served, which is what :meth:`WarmupPack.build`
        #: snapshots from a traffic sample.  Bounded: the oldest entries
        #: fall off after ``flush_log_cap`` flushes.
        self.flush_log: deque[dict] = deque(maxlen=flush_log_cap)
        self._flush_seq = 0

    @classmethod
    def build(cls, cities, config: HAFusionConfig | None = None,
              seed: int = 0, **kwargs) -> "EmbeddingService":
        """Size a fresh shared model for a sample of the expected traffic
        (the padded batch over ``cities``) and wrap it in a service."""
        from ..core.engine import build_batched_model, make_batch
        batch = make_batch(cities)
        model = build_batched_model(batch, config, seed)
        return cls(model, n_max=batch.n_max, view_dims=batch.view_dims,
                   view_names=batch.view_names, **kwargs)

    # ------------------------------------------------------------------
    # The single batch code path
    # ------------------------------------------------------------------
    def _plan(self, matrices: list[np.ndarray], mask: np.ndarray | None,
              tag: str) -> InferencePlan:
        """Fetch (or record) the forward-only plan for one batch shape.

        The cache key carries everything that changes the lowered
        program: config digest, input shapes, compute dtype and the mask
        contents (masks are baked into the plan as constants).
        Parameter *values* are rebound, so one spec serves every model
        of this architecture.
        """
        model = self.model
        params = model.parameters()
        key = inference_plan_key(
            model.config, [m.shape for m in matrices], get_default_dtype(),
            mask, extra=(tag, str(params[0].dtype) if params else "none"))

        def record():
            was_training = model.training
            model.eval()
            # Private slot copies: run() refills these per request, so
            # they must never alias the caller's arrays.
            slots = [Tensor(np.array(m, dtype=get_default_dtype()))
                     for m in matrices]
            with no_grad():
                output, nodes = record_forward(
                    lambda: model.forward(slots, mask=mask))
            model.train(was_training)
            return output, nodes, slots

        return self.plan_cache.get(key, params, record,
                                   lowering=self.lowering,
                                   backend=self.backend,
                                   num_workers=self.num_workers)

    def _plan_event(self, before: dict, after: dict) -> str:
        for field, event in (("misses", "record"), ("disk_hits", "disk"),
                             ("spec_hits", "spec"), ("hits", "hit")):
            if after[field] > before[field]:
                return event
        return "hit"

    def _run_batch(self, batch, compiled: bool | None,
                   tag: str = "batched_embed") -> tuple[list[np.ndarray], str]:
        """One fused ``(b, n, d)`` pass; returns (per-city crops, event)."""
        compiled = self.compiled if compiled is None else compiled
        if not compiled:
            model = self.model
            model.eval()
            with no_grad():
                h = model.forward([Tensor(m) for m in batch.matrices],
                                  mask=batch.forward_mask())
            model.train()
            return self._crop(h.data, batch), "eager"
        before = self.plan_cache.stats()
        plan = self._plan(batch.matrices, batch.forward_mask(), tag)
        event = self._plan_event(before, self.plan_cache.stats())
        return self._crop(plan.run(batch.matrices), batch), event

    @staticmethod
    def _crop(h: np.ndarray, batch) -> list[np.ndarray]:
        """Per-city **views** into the batch output.

        On the compiled path ``h`` is the resident
        :class:`InferencePlan`'s output buffer, silently overwritten by
        the next replay — so every egress point (:meth:`embed_batch`,
        :meth:`_flush_bucket`) must detach with exactly one copy before
        an array leaves the service.  Cropping lazily keeps that copy
        single: a dtype-converting or region-subset egress pays only its
        own copy, never a second one here.
        """
        return [h[i, :n] for i, n in enumerate(batch.n_regions)]

    @staticmethod
    def _detach(h: np.ndarray, request: EmbedRequest) -> np.ndarray:
        """Detach one response from the plan-owned batch output.

        Applies the request's region subset and dtype with exactly one
        copy, and **never** returns a view into the resident plan's
        output buffer — ``astype(..., copy=False)`` here was the
        aliasing trap: a same-dtype request would have handed the caller
        a window the next replay overwrites.
        """
        owned = False
        if request.region_subset is not None:
            h = h[request.region_subset]          # fancy indexing copies
            owned = True
        if request.dtype is not None and h.dtype != request.dtype:
            h = h.astype(request.dtype)           # dtype change copies
            owned = True
        return h if owned else h.copy()

    def embed_batch(self, batch, compiled: bool | None = None) -> list[np.ndarray]:
        """Embed a prebuilt :class:`CityBatch` in one vectorized pass,
        cropped back to each city's real region count."""
        return [h.copy() for h in self._run_batch(batch, compiled)[0]]

    def embed_each(self, batch, compiled: bool | None = None) -> list[np.ndarray]:
        """Per-city loop over the identical model — the parity/baseline
        twin of :meth:`embed_batch` (same padding, same mask, same
        weights, one city at a time)."""
        compiled = self.compiled if compiled is None else compiled
        mask = batch.forward_mask()
        if not compiled:
            model = self.model
            model.eval()
            outputs = []
            with no_grad():
                for i in range(batch.batch_size):
                    inputs = [Tensor(m[i:i + 1]) for m in batch.matrices]
                    item_mask = None if mask is None else mask[i:i + 1]
                    h = model.forward(inputs, mask=item_mask)
                    outputs.append(h.data[0, :batch.n_regions[i]].copy())
            model.train()
            return outputs
        outputs = []
        for i in range(batch.batch_size):
            item_mats = [m[i:i + 1] for m in batch.matrices]
            item_mask = None if mask is None else mask[i:i + 1]
            # Unpadded batches share one plan across all cities
            # (mask=None); ragged ones get one plan per distinct mask.
            plan = self._plan(item_mats, item_mask, "sequential_embed")
            h = plan.run(item_mats)
            outputs.append(h[0, :batch.n_regions[i]].copy())
        return outputs

    def plan_for(self, batch) -> InferencePlan:
        """The resident plan serving this batch shape (records on a cold
        cache) — the introspection hook behind the serving reports."""
        return self._plan(batch.matrices, batch.forward_mask(),
                          "batched_embed")

    # ------------------------------------------------------------------
    # Request scheduling
    # ------------------------------------------------------------------
    def _require_scheduler(self) -> ShapeBucketScheduler:
        if self._scheduler is None:
            if self.n_max is None:
                raise ValueError(
                    "service capacity unknown: pass n_max= (the model was "
                    "built with vanilla attention, which has no intrinsic "
                    "region width)")
            params = self.model.parameters()
            model_dtype = str(params[0].dtype) if params else "model"
            self._scheduler = ShapeBucketScheduler(self.n_max, self.policy,
                                                   default_dtype=model_dtype)
        return self._scheduler

    def _check_request(self, request: EmbedRequest) -> None:
        if request.n_regions > self.n_max:
            raise AdmissionError(
                f"request {request.name!r} has {request.n_regions} regions; "
                f"this service is built for n_max={self.n_max}",
                reason="oversize")
        dims = request.views.dims()
        if len(dims) != len(self.view_dims) or any(
                d > cap for d, cap in zip(dims, self.view_dims)):
            raise AdmissionError(
                f"request view widths {dims} incompatible with the service "
                f"model's {self.view_dims}", reason="view_mismatch")
        if self.view_names is None:
            # A service built straight from a model doesn't know its view
            # names; the first request fixes them, so a later request
            # with different names can never be co-batched with it (the
            # flush's make_batch would reject the mix after the tickets
            # were already popped).
            self.view_names = request.views.names
        if request.views.names != self.view_names:
            raise AdmissionError(
                f"request views {request.views.names} != service views "
                f"{self.view_names}", reason="view_mismatch")

    def submit(self, request: EmbedRequest,
               now: float | None = None) -> EmbedTicket:
        """Queue a request; may trigger size- and age-based flushes.

        The returned ticket's ``response`` fills when its bucket
        flushes; call :meth:`flush` to force everything through.
        Inadmissible requests raise :class:`AdmissionError` here, before
        anything is queued — the queues stay clean.
        """
        scheduler = self._require_scheduler()
        self._check_request(request)
        now = self.clock() if now is None else now
        ticket = EmbedTicket(request, "", now)
        # enqueue() computes the bucket key before touching its queue, so
        # an out-of-range size raises here — never mid-flush.
        key = scheduler.enqueue(ticket)
        ticket.bucket_id = key.bucket_id
        self._submitted += 1
        for full in scheduler.full_buckets():
            self._flush_bucket(full, now)
        self.poll(now)
        return ticket

    def poll(self, now: float | None = None) -> list[EmbedResponse]:
        """Flush buckets whose oldest request has aged past ``max_wait``."""
        scheduler = self._require_scheduler()
        now = self.clock() if now is None else now
        responses: list[EmbedResponse] = []
        for key in scheduler.overdue_buckets(now):
            responses.extend(self._flush_bucket(key, now))
        return responses

    def flush(self, now: float | None = None) -> list[EmbedResponse]:
        """Drain every bucket (an empty queue is a no-op)."""
        scheduler = self._require_scheduler()
        now = self.clock() if now is None else now
        responses: list[EmbedResponse] = []
        for key in scheduler.nonempty_buckets():
            while True:
                flushed = self._flush_bucket(key, now)
                if not flushed:
                    break
                responses.extend(flushed)
        return responses

    def run(self, requests: Sequence[EmbedRequest]) -> list[EmbedResponse]:
        """Submit a burst and drain it; responses come back in submission
        order regardless of which buckets (and flushes) served them."""
        tickets = [self.submit(r) for r in requests]
        self.flush()
        return [t.response for t in tickets]

    def _flush_bucket(self, key: BucketKey,
                      now: float | None = None) -> list[EmbedResponse]:
        from ..core.engine import make_batch
        scheduler = self._require_scheduler()
        tickets = scheduler.take(key)
        if not tickets:
            return []
        # Same clock the tickets were stamped on (injectable), so
        # wait_seconds stays truthful when tests/replays drive time.
        flushed_at = self.clock() if now is None else now
        try:
            batch = make_batch([t.request.views for t in tickets],
                               n_max=self.n_max, view_dims=self.view_dims)
            start = time.perf_counter()
            embeddings, event = self._run_batch(batch, None)
            seconds = time.perf_counter() - start
        except Exception:
            # Never strand popped tickets: put them back (FIFO order
            # preserved) before surfacing the failure.
            scheduler.requeue_front(key, tickets)
            raise

        b = len(tickets)
        real = sum(batch.n_regions)
        slots = b * self.n_max
        waste = 1.0 - real / slots
        self._flush_seq += 1
        self.flush_log.append({"seq": self._flush_seq,
                               "bucket_id": key.bucket_id, "batch_size": b,
                               "n_regions": list(batch.n_regions),
                               "plan_event": event})
        bucket_id = key.bucket_id
        if (bucket_id not in self._bucket_stats
                and len(self._bucket_stats) >= self.max_tracked_buckets):
            bucket_id = self.OVERFLOW_BUCKET
            self._overflow_flushes += 1
        stats = self._bucket_stats.setdefault(bucket_id, _BucketStats())
        stats.requests += b
        stats.batches += 1
        stats.regions += real
        stats.slots += slots
        stats.seconds += seconds
        stats.plan_events[event] = stats.plan_events.get(event, 0) + 1

        responses = []
        for ticket, h in zip(tickets, embeddings):
            request = ticket.request
            ticket.response = EmbedResponse(
                request_id=request.request_id, name=request.name,
                embeddings=self._detach(h, request), bucket_id=key.bucket_id,
                n_regions=request.n_regions, batch_size=b,
                padded=batch.is_padded, padding_waste=waste,
                plan_event=event,
                wait_seconds=max(0.0, flushed_at - ticket.submitted_at),
                compute_seconds=seconds)
            responses.append(ticket.response)
        self._answered += b
        return responses

    # ------------------------------------------------------------------
    # Warm-up + observability
    # ------------------------------------------------------------------
    def warm(self, batch_size: int, n_regions: "int | Sequence[int]") -> str:
        """Pre-record (or relower) the plan for one serving shape.

        ``n_regions`` is either one region count shared by all
        ``batch_size`` rows or a per-row sequence; the mask this builds
        is exactly the mask a scheduler flush of such requests produces,
        so the cached spec serves real traffic byte-for-byte.  Input
        *values* are irrelevant to a plan spec (only shapes, dtype and
        the mask constants are baked in), so zeros suffice.  Returns the
        served bucket id.
        """
        if self.n_max is None:
            raise ValueError("service capacity unknown; pass n_max=")
        rows = ([int(n_regions)] * batch_size
                if isinstance(n_regions, (int, np.integer))
                else [int(n) for n in n_regions])
        if len(rows) != batch_size:
            raise ValueError(f"{len(rows)} region counts for batch_size="
                             f"{batch_size}")
        if any(not 1 <= n <= self.n_max for n in rows):
            raise ValueError(f"region counts {rows} outside [1, {self.n_max}]")
        matrices = [np.zeros((batch_size, self.n_max, d))
                    for d in self.view_dims]
        if all(n == self.n_max for n in rows):
            mask = None
        else:
            mask = np.zeros((batch_size, self.n_max))
            for i, n in enumerate(rows):
                mask[i, :n] = 1.0
        self._plan(matrices, mask, "batched_embed")
        scheduler = self._require_scheduler()
        return BucketKey(scheduler.bucket_edge(max(rows)),
                         tuple(self.view_dims),
                         scheduler.default_dtype).bucket_id

    def pending(self) -> int:
        return self._scheduler.pending if self._scheduler is not None else 0

    @property
    def submitted(self) -> int:
        """Requests ever accepted by :meth:`submit` (admission-rejected
        ones never count)."""
        return self._submitted

    @property
    def answered(self) -> int:
        """Responses ever produced — the per-worker liveness/progress
        counter each fleet result carries back to the supervisor."""
        return self._answered

    @property
    def flush_seq(self) -> int:
        """Total flushes ever performed (monotone; unlike
        ``len(flush_log)`` it never shrinks when the bounded log drops
        old entries — mark-and-replay consumers filter on the entries'
        ``seq`` field against this)."""
        return self._flush_seq

    def stats(self) -> dict:
        """Serving report: per-bucket throughput and padding overhead,
        plan-cache hit rates, resident-plan replay counts."""
        buckets = {bid: s.report() for bid, s in self._bucket_stats.items()}
        regions = sum(s["regions"] for s in buckets.values())
        slots = sum(st.slots for st in self._bucket_stats.values())
        seconds = sum(s["seconds"] for s in buckets.values())
        from ..nn.compile import resolve_backend, resolve_lowering
        return {
            "n_max": self.n_max,
            "view_dims": list(self.view_dims),
            "compiled": self.compiled,
            "lowering": resolve_lowering(self.lowering),
            "backend": resolve_backend(self.backend),
            "requests": self._submitted,
            "responses": self._answered,
            "pending": self.pending(),
            "batches": sum(s["batches"] for s in buckets.values()),
            "regions": regions,
            "padding_overhead": 1.0 - regions / slots if slots else 0.0,
            "seconds": seconds,
            "regions_per_sec": regions / seconds if seconds > 0 else 0.0,
            "buckets": buckets,
            "flushes": self._flush_seq,
            "flush_log_dropped": self._flush_seq - len(self.flush_log),
            "bucket_stats_overflow_flushes": self._overflow_flushes,
            "plan_cache": self.plan_cache.stats(),
            "resident_plans": self.plan_cache.resident_report(),
        }
