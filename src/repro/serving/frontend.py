"""Network serving frontend: NDJSON socket protocol over a worker fleet.

The step from library to system: an :mod:`asyncio` TCP server speaking
newline-delimited JSON (one JSON object per line, stdlib only) that
accepts embed requests over the wire, feeds them through the same
:class:`~repro.serving.scheduler.ShapeBucketScheduler` the in-process
:class:`~repro.serving.service.EmbeddingService` uses, and dispatches
each flushed co-batch to a :class:`~repro.serving.fleet.ServingFleet`
of resident worker processes.

Protocol
--------

Every line is a JSON object with an ``op``; every reply echoes the
request's optional ``id`` (clients pipeline by tagging requests and
matching replies — replies may interleave across in-flight requests on
one connection):

- ``{"op": "embed", "id"?, "name"?, "dtype"?, "region_subset"?,
  "views": {"names": [...], "matrices": [[[...]]]}}`` →
  ``{"ok": true, "embeddings": ..., "latency_seconds": ...,
  <EmbedResponse provenance>}`` or
  ``{"ok": false, "error": <reason>, "message": ...,
  "retry_after": <seconds or null>}``;
- ``{"op": "stats"}`` → the frontend report (served/shed counts,
  p50/p99 latency, aggregate regions/sec, queue depths, fleet record
  epochs);
- ``{"op": "ping"}`` → ``{"ok": true, "pong": true}``.

Floats travel as ``repr`` (shortest round-trip), so embeddings are
**bit-identical** to the in-process service's on the same trace.

Admission control and backpressure
----------------------------------

Requests pass the same typed gates as the in-process service
(:class:`~repro.serving.api.AdmissionError`: ``oversize`` /
``view_mismatch`` at submit time), plus a per-bucket queue-depth limit:
when a bucket already holds ``max_queue_depth`` waiting requests the
frontend **sheds** the new one with reason ``"overload"`` and a
``retry_after`` hint (the flush policy's ``max_wait`` — by then the
bucket must have drained or flushed), instead of letting queues grow
without bound.

Lifecycle
---------

``await start()`` brings up the fleet (zero record epochs when warmed
from a pack), the TCP server, the age-flush loop and the result pump;
``await stop()`` drains queued and in-flight work, closes the server
and gracefully stops the fleet — the on-disk plan cache under the
pack directory survives, so the next ``start()`` is exactly as warm.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import socket
import threading
import time
from collections import deque
from typing import Sequence

from .api import (
    AdmissionError,
    EmbedRequest,
    EmbedResponse,
    EmbedTicket,
    FlushPolicy,
    ServingUnavailable,
    request_from_wire,
    request_to_wire,
    response_from_wire,
    response_to_wire,
)
from .fleet import ServingFleet
from .scheduler import ShapeBucketScheduler

__all__ = ["FrontendClient", "FrontendThread", "ServingFrontend"]


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile on an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1,
               max(0, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


class _LatencyWindow:
    """Bounded reservoir of recent request latencies (p50/p99 source)."""

    def __init__(self, window: int = 4096):
        self.samples: deque[float] = deque(maxlen=window)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def add(self, seconds: float) -> None:
        self.samples.append(seconds)
        self.count += 1
        self.total += seconds
        self.max = max(self.max, seconds)

    def report(self) -> dict:
        window = sorted(self.samples)
        return {
            "count": self.count,
            "mean_seconds": self.total / self.count if self.count else 0.0,
            "p50_latency": _percentile(window, 0.50),
            "p99_latency": _percentile(window, 0.99),
            "max_seconds": self.max,
            "window": len(window),
        }


class ServingFrontend:
    """The asyncio frontend (module docstring has protocol + lifecycle).

    Parameters
    ----------
    fleet:
        The worker fleet to dispatch flushed batches to; started by
        :meth:`start` if not already running.
    n_max:
        Serving capacity (the workers' model width) — the admission
        gate's oversize bound and the scheduler's largest edge.
    view_dims, view_names:
        Optional stricter admission caps, mirroring
        :class:`EmbeddingService`'s checks; when ``None`` the first
        request pins ``view_names`` and width checks are left to the
        workers.
    policy:
        Flush policy for the frontend's scheduler.  **Must equal the
        workers' policy** — equal bucket edges and ``max_batch`` are
        what make a dispatched group re-batch identically inside the
        worker (the bit-identical-to-in-process guarantee).
    max_queue_depth:
        Per-bucket admission bound; beyond it new requests for that
        bucket are shed with ``retry_after`` = ``policy.max_wait``.
        The bound **degrades with the fleet**: when only ``k`` of
        ``n_workers`` workers are live the effective depth is scaled by
        ``k / n_workers`` (min 1), so a degraded deployment sheds
        earlier instead of queueing work it has lost the capacity to
        drain; with zero live workers admission raises a typed
        :class:`ServingUnavailable` instead.
    batch_deadline:
        Wall-clock bound on one dispatched batch, dispatch→result.  A
        batch that misses it (worker wedged, straggler, silent loss)
        has its waiters failed with :class:`ServingUnavailable` and is
        dropped from fleet supervision — **no frontend future can hang
        forever**, whatever happens below.
    drain_timeout:
        How long :meth:`stop` waits for queued and in-flight work
        before failing the remaining futures typed (the
        no-pending-future-leak guarantee on shutdown).
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read
        :attr:`port` after :meth:`start`).
    max_line_bytes:
        Stream buffer limit for one protocol line.  A full-city embed
        request serializes its view matrices inline, so this must
        comfortably exceed the largest admissible request (the asyncio
        default of 64 KiB does not); longer lines get a typed
        ``bad_request`` reply and the connection is closed (the stream
        cannot resynchronize mid-line).
    """

    def __init__(self, fleet: ServingFleet, *, n_max: int,
                 view_dims: Sequence[int] | None = None,
                 view_names: Sequence[str] | None = None,
                 policy: FlushPolicy | None = None,
                 max_queue_depth: int = 64,
                 batch_deadline: float = 60.0,
                 drain_timeout: float = 30.0,
                 host: str = "127.0.0.1", port: int = 0,
                 max_line_bytes: int = 64 * 1024 * 1024):
        self.fleet = fleet
        self.n_max = int(n_max)
        self.view_dims = list(view_dims) if view_dims is not None else None
        self.view_names = tuple(view_names) if view_names is not None else None
        self.policy = policy if policy is not None else FlushPolicy()
        if max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, "
                             f"got {max_queue_depth}")
        if batch_deadline <= 0:
            raise ValueError(f"batch_deadline must be > 0, "
                             f"got {batch_deadline}")
        self.max_queue_depth = max_queue_depth
        self.batch_deadline = batch_deadline
        self.drain_timeout = drain_timeout
        self.host = host
        self.port = port
        self.max_line_bytes = int(max_line_bytes)
        self._scheduler = ShapeBucketScheduler(self.n_max, self.policy)
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._flush_task: asyncio.Task | None = None
        self._pump_thread: threading.Thread | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._closing = False
        self._batch_ids = itertools.count(1)
        #: batch_id -> (tickets in dispatched order — the worker's
        #: service.run returns responses in that same order — and the
        #: loop-clock instant the batch's deadline expires).
        self._inflight: dict[int, tuple[list[EmbedTicket], float]] = {}
        #: request_id -> future resolved with an EmbedResponse (or an
        #: exception) when the dispatched batch comes back.
        self._waiters: dict[int, asyncio.Future] = {}
        self.latency = _LatencyWindow()
        self.served = 0
        self.shed = 0
        self.rejected = 0
        self.errors = 0
        self.unavailable = 0
        self.deadline_failures = 0
        self.regions = 0
        self._first_request_at: float | None = None
        self._last_response_at: float | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("frontend already started")
        self._loop = asyncio.get_running_loop()
        if not self.fleet.started:
            # Worker start pays model build + warm-up; keep the loop
            # responsive while it happens.
            await self._loop.run_in_executor(None, self.fleet.start)
        self._closing = False
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=self.max_line_bytes)
        self.port = self._server.sockets[0].getsockname()[1]
        self._flush_task = asyncio.create_task(self._flush_loop())
        self._pump_thread = threading.Thread(
            target=self._pump_results, name="repro-frontend-pump", daemon=True)
        self._pump_thread.start()

    async def drain(self, timeout: float = 60.0) -> None:
        """Dispatch every queued request and wait for all in-flight
        batches to come back (the graceful half of :meth:`stop`)."""
        for key in list(self._scheduler.nonempty_buckets()):
            while self._scheduler.depth(key):
                self._dispatch(key)
        deadline = self._loop.time() + timeout
        while (self._inflight or self._waiters):
            if self._loop.time() > deadline:
                raise TimeoutError(
                    f"drain timed out with {len(self._inflight)} batches "
                    f"in flight")
            await asyncio.sleep(0.005)

    def _fail_pending(self, message: str,
                      retry_after: float | None = None) -> int:
        """Resolve every queued or in-flight request with a typed
        :class:`ServingUnavailable` — the anti-hang backstop used by
        :meth:`stop` (and the deadline path for single batches).  A
        future that never resolves leaves the client blocked until its
        socket timeout; failing it typed lets the client retry against
        the next deployment."""
        failed = 0
        # Queued but never dispatched: pull them out of the scheduler.
        for key in list(self._scheduler.nonempty_buckets()):
            while True:
                tickets = self._scheduler.take(key)
                if not tickets:
                    break
                failed += self._fail_tickets(tickets, message, retry_after)
        # Dispatched, still in flight: forget them in the fleet too so a
        # late result is discarded instead of resolving a dead future.
        for batch_id, (tickets, _) in list(self._inflight.items()):
            self._inflight.pop(batch_id, None)
            self.fleet.forget(batch_id)
            failed += self._fail_tickets(tickets, message, retry_after)
        return failed

    def _fail_tickets(self, tickets, message: str,
                      retry_after: float | None) -> int:
        failed = 0
        for ticket in tickets:
            future = self._waiters.get(ticket.request.request_id)
            if future is not None and not future.done():
                future.set_exception(
                    ServingUnavailable(message, retry_after=retry_after))
                failed += 1
        return failed

    async def stop(self, stop_fleet: bool = True) -> None:
        """Graceful shutdown: drain (bounded by ``drain_timeout``),
        fail whatever could not drain with a typed
        :class:`ServingUnavailable` — never leave a pending future
        unresolved — then close the server, stop the pump (and the
        fleet).  Workers' on-disk plan caches are preserved — a
        restarted frontend+fleet on the same pack directory serves the
        same traffic with zero record epochs."""
        if self._server is None:
            return
        try:
            await self.drain(timeout=self.drain_timeout)
        except TimeoutError:
            pass
        if self._fail_pending("frontend stopped with the request "
                              "still in flight"):
            # Give the per-request handler tasks one tick to pick the
            # failures up and write their typed error replies before the
            # listener goes away.  (They bump errors/unavailable.)
            await asyncio.sleep(0)
        self._closing = True
        if self._flush_task is not None:
            self._flush_task.cancel()
            try:
                await self._flush_task
            except asyncio.CancelledError:
                pass
            self._flush_task = None
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        # Close lingering connections so their handler coroutines finish
        # before the loop is torn down (transports flush buffered replies
        # on close — a typed shutdown error already written still lands).
        for conn_writer in list(self._connections):
            conn_writer.close()
        deadline = self._loop.time() + 1.0
        while self._connections and self._loop.time() < deadline:
            await asyncio.sleep(0.005)
        if self._pump_thread is not None:
            await self._loop.run_in_executor(None, self._pump_thread.join)
            self._pump_thread = None
        if stop_fleet:
            await self._loop.run_in_executor(
                None, lambda: self.fleet.stop(graceful=True))

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        self._connections.add(writer)

        async def answer(payload: dict) -> None:
            reply = await self._dispatch_op(payload)
            if "id" in payload:
                reply["id"] = payload["id"]
            async with write_lock:
                writer.write(json.dumps(reply).encode("utf-8") + b"\n")
                await writer.drain()

        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, OSError):
                    break
                except ValueError:
                    # Line overran max_line_bytes; the stream cannot
                    # resynchronize mid-line — reply typed and close.
                    async with write_lock:
                        writer.write(json.dumps(
                            {"ok": False, "error": "bad_request",
                             "message": f"protocol line exceeds "
                                        f"{self.max_line_bytes} bytes",
                             "retry_after": None}).encode() + b"\n")
                        await writer.drain()
                    break
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    if not isinstance(payload, dict):
                        raise ValueError("payload must be a JSON object")
                except ValueError as exc:
                    async with write_lock:
                        writer.write(json.dumps(
                            {"ok": False, "error": "bad_request",
                             "message": f"undecodable line: {exc}",
                             "retry_after": None}).encode() + b"\n")
                        await writer.drain()
                    continue
                # One task per line: replies may interleave, which is
                # what lets a single connection keep a bucket full.
                task = asyncio.create_task(answer(payload))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):   # pragma: no cover
                pass

    async def _dispatch_op(self, payload: dict) -> dict:
        op = payload.get("op")
        if op == "embed":
            return await self._handle_embed(payload)
        if op == "stats":
            return {"ok": True, "stats": self.stats()}
        if op == "flush":
            # Deterministic straggler dispatch: drain every queued
            # bucket now instead of waiting out max_wait.  With a
            # pipelined burst this reproduces exactly the in-process
            # ``run()`` composition (full buckets at max_batch, FIFO
            # remainders), which the bit-identity smoke relies on.
            dispatched = 0
            for key in list(self._scheduler.nonempty_buckets()):
                while self._scheduler.depth(key):
                    self._dispatch(key)
                    dispatched += 1
            return {"ok": True, "dispatched": dispatched}
        if op == "ping":
            return {"ok": True, "pong": True}
        return {"ok": False, "error": "bad_request",
                "message": f"unknown op {op!r}", "retry_after": None}

    async def _handle_embed(self, payload: dict) -> dict:
        received_at = self._loop.time()
        try:
            request = request_from_wire(payload)
            self._admit(request)
        except AdmissionError as exc:
            if exc.reason == "overload":
                self.shed += 1
            else:
                self.rejected += 1
            return {"ok": False, "error": exc.reason, "message": str(exc),
                    "retry_after": exc.retry_after}
        except ServingUnavailable as exc:
            self.unavailable += 1
            self.errors += 1
            return {"ok": False, "error": "unavailable",
                    "message": str(exc), "retry_after": exc.retry_after}
        if self._first_request_at is None:
            self._first_request_at = received_at
        ticket = EmbedTicket(request, "", received_at)
        key = self._scheduler.enqueue(ticket)
        ticket.bucket_id = key.bucket_id
        future: asyncio.Future = self._loop.create_future()
        self._waiters[request.request_id] = future
        if self._scheduler.depth(key) >= self.policy.max_batch:
            self._dispatch(key)
        try:
            response: EmbedResponse = await future
        except ServingUnavailable as exc:
            self.errors += 1
            self.unavailable += 1
            return {"ok": False, "error": "unavailable",
                    "message": str(exc), "retry_after": exc.retry_after}
        except Exception as exc:
            self.errors += 1
            return {"ok": False, "error": "worker_failure",
                    "message": str(exc), "retry_after": None}
        finally:
            self._waiters.pop(request.request_id, None)
        now = self._loop.time()
        latency = now - received_at
        self.latency.add(latency)
        self.served += 1
        self.regions += response.n_regions
        self._last_response_at = now
        wire = response_to_wire(response)
        # The frontend measures true queue wait on its own clock; the
        # worker-side wait (intra-batch rebatching) is not it.
        wire["wait_seconds"] = max(0.0, (now - received_at)
                                   - response.compute_seconds)
        wire["latency_seconds"] = latency
        return wire

    def _effective_queue_depth(self) -> int:
        """The per-bucket admission bound, degraded with fleet health.

        With ``k < n_workers`` live workers the deployment's drain rate
        has dropped by ``k / n_workers``; scaling the depth bound by the
        same factor sheds the excess at admission (with a retry hint)
        instead of queueing work the degraded fleet would serve late.
        Raises :class:`ServingUnavailable` when nothing is live: with a
        respawn possibly in flight it carries a ``retry_after`` hint,
        fully down it is terminal (``retry_after=None``).
        """
        if not self.fleet.started or self.fleet.fully_down:
            raise ServingUnavailable(
                "the serving fleet has no live workers and no respawn "
                "budget left", retry_after=None)
        live = self.fleet.live_workers()
        if live == 0:
            raise ServingUnavailable(
                "the serving fleet has no live workers (respawn pending)",
                retry_after=self.policy.max_wait)
        return max(1, (self.max_queue_depth * live) // self.fleet.n_workers)

    def _admit(self, request: EmbedRequest) -> None:
        """The service's submit-time gates plus the queue-depth bound."""
        if request.n_regions > self.n_max:
            raise AdmissionError(
                f"request {request.name!r} has {request.n_regions} regions; "
                f"this deployment serves n_max={self.n_max}",
                reason="oversize")
        dims = request.views.dims()
        if self.view_dims is not None and (
                len(dims) != len(self.view_dims)
                or any(d > cap for d, cap in zip(dims, self.view_dims))):
            raise AdmissionError(
                f"request view widths {dims} incompatible with the serving "
                f"model's {self.view_dims}", reason="view_mismatch")
        if self.view_names is None:
            self.view_names = request.views.names
        if request.views.names != self.view_names:
            raise AdmissionError(
                f"request views {request.views.names} != serving views "
                f"{self.view_names}", reason="view_mismatch")
        key = self._scheduler.key_for_request(request)   # oversize gate too
        depth_cap = self._effective_queue_depth()
        if self._scheduler.depth(key) >= depth_cap:
            degraded = "" if depth_cap == self.max_queue_depth else \
                f" (degraded from {self.max_queue_depth}: " \
                f"{self.fleet.live_workers()}/{self.fleet.n_workers} " \
                f"workers live)"
            raise AdmissionError(
                f"bucket {key.bucket_id} is at its queue-depth limit "
                f"({depth_cap}){degraded}; retry after the next flush",
                reason="overload", retry_after=self.policy.max_wait)

    # ------------------------------------------------------------------
    # Scheduling and fleet plumbing
    # ------------------------------------------------------------------
    def _dispatch(self, key) -> None:
        tickets = self._scheduler.take(key)
        if not tickets:
            return
        batch_id = next(self._batch_ids)
        self._inflight[batch_id] = (tickets,
                                    self._loop.time() + self.batch_deadline)
        self.fleet.submit(batch_id, [t.request for t in tickets])

    async def _flush_loop(self) -> None:
        """Age-based flushing: what ``poll()`` does for the in-process
        service, a background task does here.  Doubles as the deadline
        watchdog over dispatched batches."""
        interval = max(min(self.policy.max_wait / 2, 0.05), 0.001)
        interval = min(interval, max(self.batch_deadline / 4, 0.001))
        while True:
            await asyncio.sleep(interval)
            now = self._loop.time()
            for key in self._scheduler.overdue_buckets(now):
                self._dispatch(key)
            self._expire_deadlines(now)

    def _expire_deadlines(self, now: float) -> None:
        """Fail (typed) every in-flight batch past its deadline.  The
        batch is also forgotten in the fleet: a worker that eventually
        answers it finds nobody waiting, and a crash can no longer
        requeue it — deadline expiry is terminal for that dispatch."""
        for batch_id, (tickets, deadline_at) in list(self._inflight.items()):
            if now < deadline_at:
                continue
            self._inflight.pop(batch_id, None)
            self.fleet.forget(batch_id)
            self.deadline_failures += 1
            self._fail_tickets(
                tickets,
                f"batch {batch_id} missed its {self.batch_deadline}s "
                f"deadline", retry_after=self.policy.max_wait)

    def _pump_results(self) -> None:
        """Blocking thread: drain the fleet's result queue into the
        event loop (mp queues have no awaitable interface)."""
        import queue as queue_mod
        while not self._closing:
            try:
                result = self.fleet.next_result(timeout=0.1)
            except queue_mod.Empty:
                continue
            except (OSError, ValueError):   # queue closed under us
                break
            self._loop.call_soon_threadsafe(self._deliver, result)

    def _deliver(self, result) -> None:
        entry = self._inflight.pop(result.batch_id, None)
        if entry is None:   # late result of a deadline-expired batch
            return
        tickets, _ = entry
        if result.error is not None:
            # Terminal: the supervisor already spent the batch's retry
            # attempts — surface the typed exhaustion to every waiter.
            self._fail_tickets(
                tickets, f"batch {result.batch_id} exhausted its retries:\n"
                         f"{result.error}", retry_after=self.policy.max_wait)
            return
        # service.run preserves submission order, which is exactly the
        # order the batch was dispatched in.
        for ticket, response in zip(tickets, result.responses):
            ticket.response = response
            future = self._waiters.get(ticket.request.request_id)
            if future is not None and not future.done():
                future.set_result(response)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Frontend report: latency percentiles, aggregate throughput,
        shed/reject counters, queue depths and fleet warm-path proof."""
        elapsed = None
        if self._first_request_at is not None \
                and self._last_response_at is not None:
            elapsed = self._last_response_at - self._first_request_at
        depths = {key.bucket_id: self._scheduler.depth(key)
                  for key in self._scheduler.nonempty_buckets()}
        supervision = self.fleet.supervision_report()
        return {
            "served": self.served,
            "shed": self.shed,
            "rejected": self.rejected,
            "errors": self.errors,
            "unavailable": self.unavailable,
            "deadline_failures": self.deadline_failures,
            "batch_deadline": self.batch_deadline,
            "degraded": supervision["live"] < self.fleet.n_workers,
            "pending": self._scheduler.pending,
            "inflight_batches": len(self._inflight),
            "queue_depths": depths,
            "max_queue_depth": self.max_queue_depth,
            "latency": self.latency.report(),
            "regions": self.regions,
            "regions_per_sec": (self.regions / elapsed
                                if elapsed else 0.0),
            "fleet": {
                "n_workers": self.fleet.n_workers,
                "dispatched": self.fleet.dispatched,
                "record_epochs": self.fleet.total_record_epochs(),
                "alive": self.fleet.alive(),
                **supervision,
            },
        }


# ----------------------------------------------------------------------
# Blocking-world adapter
# ----------------------------------------------------------------------

class FrontendThread:
    """Run a :class:`ServingFrontend` on a dedicated event-loop thread.

    The adapter scripts, benchmarks and synchronous tests use to drive
    the asyncio frontend from blocking code::

        with FrontendThread(frontend) as ft:
            with ft.client() as client:
                responses = client.embed_many(requests)
    """

    def __init__(self, frontend: ServingFrontend):
        self.frontend = frontend
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._loop.run_forever,
                                        name="repro-frontend-loop",
                                        daemon=True)

    def start(self, timeout: float = 180.0) -> "FrontendThread":
        """Start the loop thread and bring the frontend (and its fleet)
        up; blocks until the server is listening."""
        self._thread.start()
        asyncio.run_coroutine_threadsafe(
            self.frontend.start(), self._loop).result(timeout=timeout)
        return self

    def stop(self, stop_fleet: bool = True, timeout: float = 60.0) -> None:
        """Gracefully stop the frontend, then tear the loop down."""
        asyncio.run_coroutine_threadsafe(
            self.frontend.stop(stop_fleet=stop_fleet),
            self._loop).result(timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop.close()

    def client(self, timeout: float = 120.0) -> "FrontendClient":
        return FrontendClient(self.frontend.host, self.frontend.port,
                              timeout=timeout)

    def __enter__(self) -> "FrontendThread":
        if not self._thread.is_alive():
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------

class FrontendClient:
    """Blocking NDJSON client for scripts, tests and trace replay.

    :meth:`embed` is one request/one reply.  :meth:`embed_many`
    pipelines a whole trace: every request is written tagged with a
    client-side ``id`` before any reply is read, so the frontend's
    scheduler sees the burst at once and co-batches it exactly as the
    in-process service would.  Replies (which may interleave) are
    matched back by ``id`` and returned in submission order.

    Retry (:meth:`embed` only — a pipelined burst has no single point
    to retry from): with ``retries > 0`` the client honours the typed
    transient failures instead of surfacing them —

    - ``overload`` sheds sleep out the server's ``retry_after`` hint
      (falling back to the exponential backoff when absent) and
      resubmit;
    - ``unavailable`` replies (fleet down, batch retry exhaustion,
      deadline) back off and resubmit — safe because serving is
      deterministic, so a retried request cannot change its answer;
    - a dropped/refused connection backs off, **reconnects** and
      resubmits (the frontend may be mid-restart).

    Permanent rejections (``oversize``, ``view_mismatch``,
    ``bad_request``) are never retried.  Backoff starts at ``backoff``
    seconds and doubles per attempt up to ``max_backoff``.
    """

    def __init__(self, host: str, port: int, timeout: float = 120.0,
                 retries: int = 0, backoff: float = 0.05,
                 max_backoff: float = 2.0):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff < 0 or max_backoff < backoff:
            raise ValueError(f"need 0 <= backoff <= max_backoff, got "
                             f"{backoff}/{max_backoff}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self._sock = None
        self._rfile = None
        self._ids = itertools.count(1)
        self._connect()

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    def _connect(self) -> None:
        self._sock = socket.create_connection((self.host, self.port),
                                              timeout=self.timeout)
        self._rfile = self._sock.makefile("rb")

    @property
    def closed(self) -> bool:
        return self._sock is None

    def close(self) -> None:
        """Release the socket.  Idempotent, and safe to call on a
        connection the server already dropped."""
        for handle in (self._rfile, self._sock):
            if handle is not None:
                try:
                    handle.close()
                except OSError:   # pragma: no cover - already dead
                    pass
        self._rfile = None
        self._sock = None

    def reconnect(self) -> None:
        """Drop the current socket (if any) and dial the frontend
        again — the recovery step after a ``ServingUnavailable`` from a
        bounced deployment."""
        self.close()
        self._connect()

    def __enter__(self) -> "FrontendClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _send(self, payload: dict) -> None:
        if self._sock is None:
            raise ConnectionError("client is closed (use reconnect())")
        self._sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")

    def _recv(self) -> dict:
        if self._rfile is None:
            raise ConnectionError("client is closed (use reconnect())")
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("frontend closed the connection")
        return json.loads(line)

    def call(self, payload: dict) -> dict:
        """One raw request/reply exchange (no pipelining)."""
        self._send(payload)
        return self._recv()

    def ping(self) -> bool:
        return self.call({"op": "ping"}).get("pong", False)

    def stats(self) -> dict:
        return self.call({"op": "stats"})["stats"]

    @staticmethod
    def _raise(reply: dict) -> None:
        if reply.get("error") == "unavailable":
            raise ServingUnavailable(reply.get("message", "request failed"),
                                     retry_after=reply.get("retry_after"))
        raise AdmissionError(reply.get("message", "request failed"),
                             reason=reply.get("error", "invalid"),
                             retry_after=reply.get("retry_after"))

    #: Error tags worth another attempt; everything else is permanent.
    _TRANSIENT = ("overload", "unavailable", "worker_failure")

    def embed(self, request: EmbedRequest,
              retries: int | None = None) -> EmbedResponse:
        """Serve one request (class docstring documents the retry
        policy; ``retries`` overrides the client default).  Exhausted
        or non-retried failures raise :class:`AdmissionError` /
        :class:`ServingUnavailable`, connection loss
        :class:`ConnectionError`."""
        attempts = (self.retries if retries is None else retries) + 1
        delay = self.backoff
        wire = request_to_wire(request)
        for attempt in range(attempts):
            last = attempt + 1 >= attempts
            try:
                if self._sock is None:
                    self._connect()
                reply = self.call(wire)
            except (ConnectionError, OSError):
                self.close()
                if last:
                    raise
                time.sleep(delay)
                delay = min(delay * 2, self.max_backoff)
                continue
            if reply.get("ok"):
                return response_from_wire(reply)
            if last or reply.get("error") not in self._TRANSIENT:
                self._raise(reply)
            time.sleep(reply.get("retry_after") or delay)
            delay = min(delay * 2, self.max_backoff)
        raise AssertionError("unreachable")   # pragma: no cover

    def embed_many(self, requests: Sequence[EmbedRequest],
                   on_error: str = "raise", flush: bool = True
                   ) -> "list[EmbedResponse | dict]":
        """Pipeline a burst; returns responses in submission order.

        ``flush`` (default) follows the burst with an ``op: "flush"``
        so straggler buckets dispatch immediately — deterministic
        co-batch compositions instead of max-wait timing.
        ``on_error="raise"`` raises on the first failed reply;
        ``"return"`` leaves the raw error payload in that slot instead
        (how the backpressure tests observe load shedding).
        """
        if on_error not in ("raise", "return"):
            raise ValueError(f"on_error must be 'raise' or 'return', "
                             f"got {on_error!r}")
        ids = []
        for request in requests:
            wire = request_to_wire(request)
            wire["id"] = next(self._ids)
            ids.append(wire["id"])
            self._send(wire)
        flush_id = None
        if flush:
            flush_id = next(self._ids)
            self._send({"op": "flush", "id": flush_id})
        replies: dict[int, dict] = {}
        expected = len(ids) + (1 if flush else 0)
        for _ in range(expected):
            reply = self._recv()
            replies[reply["id"]] = reply
        if flush_id is not None:
            replies.pop(flush_id, None)
        out: list = []
        for request_id in ids:
            reply = replies[request_id]
            if reply.get("ok"):
                out.append(response_from_wire(reply))
            elif on_error == "raise":
                self._raise(reply)
            else:
                out.append(reply)
        return out
